"""Pytest bootstrap: make the in-tree package importable without installation.

The canonical workflow is ``pip install -e .`` (see README); this shim keeps
``pytest`` working in offline environments where the editable install cannot
build its isolated environment.
"""
import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
