#!/usr/bin/env python
"""Analytics-tier smoke: sharded migrate into an analytics target, verify, SQL parity.

The ``analytics-smoke`` CI job's end-to-end guard for the DuckDB tier
(docs/backends.md).  For each available SQL engine — sqlite always, duckdb
when the package is installed (the CI job installs it; locally the duckdb
leg is reported as skipped) — the script:

1. runs a **sharded** ``repro migrate --backend <engine> --shards 2`` via
   the real CLI into a fresh target, capturing ``--report-json``;
2. runs ``repro verify`` against the target with ``--expect-report`` — this
   now includes the index-presence check, so a backend that stopped
   building the FK indexes fails here;
3. asserts every index name from ``expected_index_names`` is present in the
   target (``sqlite_master`` / ``duckdb_indexes()``);
4. runs the pinned SQL parity battery against an in-process memory
   ground-truth execution of the same document: per-table ``COUNT(*)``,
   per-FK join cardinality, zero dangling FK values, and a pinned
   ``GROUP BY`` aggregate over the first FK column.

Exit 0 only if every leg passes.  Usage::

    PYTHONPATH=src python tools/analytics_smoke.py [--scale N]
"""

import argparse
import collections
import json
import os
import sqlite3
import subprocess
import sys
import tempfile
import time

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.codegen import expected_index_names  # noqa: E402
from repro.datasets import dblp  # noqa: E402
from repro.runtime import MemoryBackend, MigrationPlan, execute_plan  # noqa: E402
from repro.runtime.backends import HAVE_DUCKDB  # noqa: E402
from repro.runtime.verify import read_target_indexes  # noqa: E402

LIMIT_SECONDS = 240.0


def _cli(arguments, cwd):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    result = subprocess.run(
        [sys.executable, "-m", "repro", *arguments],
        capture_output=True,
        text=True,
        env=env,
        cwd=cwd,
    )
    if result.returncode != 0:
        print(f"CLI FAILED: repro {' '.join(arguments)}")
        sys.stdout.write(result.stdout)
        sys.stderr.write(result.stderr)
        raise SystemExit(1)
    return result.stdout


def _connect(engine, path):
    if engine == "duckdb":
        import duckdb

        return duckdb.connect(path, read_only=True)
    connection = sqlite3.connect(f"file:{path}?mode=ro", uri=True)
    return connection


def _one(connection, sql):
    cursor = connection.execute(sql)
    return cursor.fetchone()[0]


def _parity_battery(connection, schema, rows_by_table):
    """Pinned SQL battery vs the in-process memory ground truth."""
    failures = []
    pinned_done = False
    for table in schema.tables:
        rows = rows_by_table[table.name]
        count = _one(connection, f'SELECT COUNT(*) FROM "{table.name}"')
        if count != len(rows):
            failures.append(f"{table.name}: COUNT(*) {count} != {len(rows)}")
        for fk in table.foreign_keys:
            col = table.column_names.index(fk.column)
            joined = _one(
                connection,
                f'SELECT COUNT(*) FROM "{table.name}" c '
                f'JOIN "{fk.target_table}" p ON c."{fk.column}" = p."{fk.target_column}"',
            )
            truth = sum(1 for r in rows if r[col] is not None)
            if joined != truth:
                failures.append(
                    f"{table.name} JOIN {fk.target_table}: {joined} != {truth}"
                )
            dangling = _one(
                connection,
                f'SELECT COUNT(*) FROM "{table.name}" c '
                f'LEFT JOIN "{fk.target_table}" p '
                f'ON c."{fk.column}" = p."{fk.target_column}" '
                f'WHERE c."{fk.column}" IS NOT NULL AND p."{fk.target_column}" IS NULL',
            )
            if dangling:
                failures.append(f"{table.name}.{fk.column}: {dangling} dangling FK(s)")
            if not pinned_done:
                # The pinned aggregate: group the first FK column of the first
                # FK-bearing table in schema order — stable across runs because
                # the synthetic dataset and the learned plan are deterministic.
                grouped = connection.execute(
                    f'SELECT "{fk.column}", COUNT(*) FROM "{table.name}" '
                    f'WHERE "{fk.column}" IS NOT NULL GROUP BY "{fk.column}" '
                    f'ORDER BY "{fk.column}"'
                ).fetchall()
                truth_groups = sorted(
                    collections.Counter(
                        r[col] for r in rows if r[col] is not None
                    ).items()
                )
                if [tuple(g) for g in grouped] != truth_groups:
                    failures.append(
                        f"pinned GROUP BY {table.name}.{fk.column} diverged"
                    )
                pinned_done = True
    return failures


def _run_engine(engine, scale, spec_path, rows_by_table, schema, workdir):
    suffix = "duckdb" if engine == "duckdb" else "db"
    target = os.path.join(workdir, f"out-{engine}.{suffix}")
    report = os.path.join(workdir, f"report-{engine}.json")
    cache = os.path.join(workdir, "cache")
    _cli(
        [
            "migrate",
            "--spec", spec_path,
            "--backend", engine,
            "--output", target,
            "--shards", "2",
            "--force",
            "--cache-dir", cache,
            "--report-json", report,
        ],
        workdir,
    )
    with open(report, "r", encoding="utf-8") as handle:
        total = json.load(handle)["total_rows"]
    expected_total = sum(len(rows) for rows in rows_by_table.values())
    if total != expected_total:
        print(f"FAIL({engine}): report total_rows {total} != {expected_total}")
        return False
    _cli(
        [
            "verify",
            "--spec", spec_path,
            "--backend", engine,
            "--output", target,
            "--expect-report", report,
            "--cache-dir", cache,
        ],
        workdir,
    )
    present = set(read_target_indexes(engine, target) or [])
    expected = {n for names in expected_index_names(schema).values() for n in names}
    if not expected <= present:
        print(f"FAIL({engine}): missing secondary indexes {sorted(expected - present)}")
        return False
    connection = _connect(engine, target)
    try:
        failures = _parity_battery(connection, schema, rows_by_table)
    finally:
        connection.close()
    if failures:
        print(f"FAIL({engine}): SQL parity battery diverged:")
        for failure in failures:
            print(f"  - {failure}")
        return False
    print(
        f"  {engine}: sharded migrate + verify + {len(expected)} indexes + "
        f"SQL parity ok ({total} rows)"
    )
    return True


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=150)
    args = parser.parse_args(argv)

    start = time.perf_counter()
    engines = ["sqlite"] + (["duckdb"] if HAVE_DUCKDB else [])
    print(f"analytics smoke: scale {args.scale}, engines: {', '.join(engines)}")
    if not HAVE_DUCKDB:
        print("  duckdb leg: skipped (package not installed)")

    bundle = dblp.dataset(scale=args.scale)
    plan = MigrationPlan.learn(bundle.migration_spec())
    whole = execute_plan(plan, bundle.generate(args.scale), MemoryBackend())
    rows_by_table = {
        t: whole.backend.fetch_rows(t) for t in plan.schema.table_names
    }

    with tempfile.TemporaryDirectory(prefix="analytics-smoke-") as workdir:
        spec_path = os.path.join(workdir, "spec.json")
        with open(spec_path, "w", encoding="utf-8") as handle:
            json.dump({"dataset": "dblp", "scale": args.scale}, handle)
        ok = all(
            _run_engine(
                engine, args.scale, spec_path, rows_by_table, plan.schema, workdir
            )
            for engine in engines
        )
    elapsed = time.perf_counter() - start
    if not ok:
        return 1
    if elapsed >= LIMIT_SECONDS:
        print(f"FAIL: analytics smoke took {elapsed:.1f}s (limit {LIMIT_SECONDS:.0f}s)")
        return 1
    print(f"analytics smoke ok: {len(engines)} engine(s) in {elapsed:.1f}s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
