#!/usr/bin/env python
"""End-to-end smoke test for the migration service (CI job ``service-smoke``).

Drives the full crash/resume/verify story against a real daemon:

1. boot ``repro serve`` as a subprocess on an OS-assigned port;
2. submit a sharded migrate job over HTTP (with a per-shard delay so the
   kill window is deterministic);
3. ``SIGKILL`` the daemon mid-run, after at least one shard completed;
4. restart the daemon on the same state dir and assert the job was
   recovered as ``interrupted``;
5. resume it, wait for success, and assert the report shows
   ``shards_resumed >= 1`` with fewer shards re-executed than the total;
6. submit a ``verify`` job referencing the migrate job and assert it
   passes;
7. shut the daemon down cleanly over HTTP.

Usage::

    PYTHONPATH=src python tools/service_smoke.py

Exit code 0 on success; any assertion failure prints ``smoke: FAIL ...``
and exits 1.  See docs/service.md for the service itself.
"""

import argparse
import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))

LISTEN_RE = re.compile(r"listening on http://([\w.]+):(\d+)")


class SmokeFailure(Exception):
    pass


def log(message):
    print(f"smoke: {message}", flush=True)


def http(method, url, payload=None, timeout=10.0):
    data = None if payload is None else json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url, data=data, method=method,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode("utf-8"))


def boot_daemon(state_dir, deadline):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--state-dir", state_dir, "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    while True:
        if time.monotonic() > deadline:
            process.kill()
            raise SmokeFailure("daemon did not announce its port in time")
        line = process.stdout.readline()
        if not line:
            process.wait()
            raise SmokeFailure(
                f"daemon exited (code {process.returncode}) before listening"
            )
        match = LISTEN_RE.search(line)
        if match:
            host, port = match.group(1), int(match.group(2))
            return process, f"http://{host}:{port}"


def poll_job(base, job_id, condition, deadline, interval=0.05):
    while time.monotonic() < deadline:
        status, job = http("GET", f"{base}/jobs/{job_id}")
        if status != 200:
            raise SmokeFailure(f"GET /jobs/{job_id} -> {status}: {job}")
        if condition(job):
            return job
        time.sleep(interval)
    raise SmokeFailure(f"timed out waiting on {job_id} ({condition.__name__})")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=8, help="dblp dataset scale")
    parser.add_argument("--shards", type=int, default=6, help="shard count")
    parser.add_argument(
        "--shard-delay", type=float, default=0.75,
        help="seconds the job sleeps after each shard (the kill window)",
    )
    parser.add_argument(
        "--timeout", type=float, default=180.0, help="overall deadline in seconds"
    )
    args = parser.parse_args(argv)
    deadline = time.monotonic() + args.timeout

    with tempfile.TemporaryDirectory(prefix="repro-service-smoke-") as state_dir:
        process, base = boot_daemon(state_dir, deadline)
        try:
            status, health = http("GET", f"{base}/health")
            if status != 200:
                raise SmokeFailure(f"/health -> {status}: {health}")
            log(f"daemon up at {base}")

            status, job = http("POST", f"{base}/jobs", {
                "kind": "migrate",
                "params": {
                    "spec": {"dataset": "dblp", "scale": args.scale},
                    "backend": "sqlite",
                    "shards": args.shards,
                    "workers": 1,
                    "shard_delay": args.shard_delay,
                },
            })
            if status != 201:
                raise SmokeFailure(f"submit -> {status}: {job}")
            job_id = job["id"]
            log(f"submitted {job_id} ({args.shards} shards, "
                f"{args.shard_delay}s/shard kill window)")

            def mid_run(record):
                done = (record.get("progress") or {}).get("shards_done", 0)
                return 0 < done < args.shards

            job = poll_job(base, job_id, mid_run, deadline)
            done = job["progress"]["shards_done"]
            log(f"{job_id} at {done}/{args.shards} shards -> SIGKILL daemon")
            process.send_signal(signal.SIGKILL)
            process.wait()
        except BaseException:
            process.kill()
            raise

        process, base = boot_daemon(state_dir, deadline)
        try:
            def interrupted(record):
                return record["state"] == "interrupted"

            job = poll_job(base, job_id, interrupted, deadline)
            log(f"restarted daemon recovered {job_id} as interrupted")

            status, job = http("POST", f"{base}/jobs/{job_id}/resume")
            if status != 200:
                raise SmokeFailure(f"resume -> {status}: {job}")

            def finished(record):
                return record["state"] in ("succeeded", "failed", "cancelled")

            job = poll_job(base, job_id, finished, deadline)
            if job["state"] != "succeeded":
                raise SmokeFailure(
                    f"resumed job ended {job['state']}: {job.get('error')}"
                )
            status, report = http("GET", f"{base}/jobs/{job_id}/report")
            if status != 200:
                raise SmokeFailure(f"report -> {status}: {report}")
            resumed = report["shards_resumed"]
            executed = report["shards_executed"]
            if resumed < 1:
                raise SmokeFailure("resume re-executed every shard "
                                   f"(resumed={resumed})")
            if executed >= args.shards:
                raise SmokeFailure("resume did not skip any shard "
                                   f"(executed={executed})")
            if resumed + executed != args.shards:
                raise SmokeFailure(
                    f"shard accounting off: {resumed} resumed + "
                    f"{executed} executed != {args.shards}"
                )
            log(f"{job_id} succeeded: {resumed} shards resumed from "
                f"checkpoint, {executed} re-executed, "
                f"{report['total_rows']} rows")

            status, verify = http("POST", f"{base}/jobs", {
                "kind": "verify", "params": {"job": job_id},
            })
            if status != 201:
                raise SmokeFailure(f"verify submit -> {status}: {verify}")
            verify = poll_job(base, verify["id"], finished, deadline)
            if verify["state"] != "succeeded":
                raise SmokeFailure(
                    f"verify job ended {verify['state']}: {verify.get('error')}"
                )
            status, verdict = http("GET", f"{base}/jobs/{verify['id']}/report")
            if status != 200 or not verdict.get("passed"):
                raise SmokeFailure(f"verification did not pass: {verdict}")
            log(f"verification passed for {job_id}'s target")

            http("POST", f"{base}/shutdown")
            process.wait(timeout=30)
            if process.returncode != 0:
                raise SmokeFailure(
                    f"daemon exited {process.returncode} after /shutdown"
                )
            log("daemon shut down cleanly — PASS")
        except BaseException:
            process.kill()
            raise
    return 0


if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except SmokeFailure as failure:
        print(f"smoke: FAIL {failure}", file=sys.stderr)
        raise SystemExit(1)
