#!/usr/bin/env python
"""Distributed-execution smoke test (CI job ``dist-smoke``).

Holds the remote-worker path (docs/distributed.md) to its contract with
real processes and a real mid-run SIGKILL:

1. boot two ``repro worker`` subprocesses on OS-assigned loopback ports;
2. pre-learn the plan (``repro learn``) so the migrate run enters the
   sharded map stage quickly;
3. run a sharded ``repro migrate --remote-workers`` over both workers,
   with an injected per-shard delay so the fleet is mid-shard for a
   deterministic window, and **SIGKILL one worker** inside that window;
4. assert the migrate **succeeds anyway** — shards re-dispatched to the
   surviving worker (``shards_retried >= 1``, ``shards_failed == 0``,
   ``transport == "socket"`` in the JSON report);
5. assert ``repro verify`` passes over the produced database — the
   redispatched run's target is complete and canonical.

Usage::

    PYTHONPATH=src python tools/dist_smoke.py

Exit code 0 on success; any assertion failure prints ``smoke: FAIL ...``
and exits 1.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile
import threading
import time

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
SRC_DIR = os.path.join(REPO_ROOT, "src")


class SmokeFailure(Exception):
    """An assertion of the smoke scenario failed."""


def log(message):
    print(f"smoke: {message}", flush=True)


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [SRC_DIR] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    env["PYTHONUNBUFFERED"] = "1"
    return env


def boot_worker(deadline):
    """Start one ``repro worker`` subprocess; return (process, address)."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", "--listen", "127.0.0.1:0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=_env(),
    )
    line = process.stdout.readline()
    if time.monotonic() > deadline:
        process.kill()
        raise SmokeFailure("deadline exceeded while booting a worker")
    marker = "worker listening on "
    if marker not in line:
        process.kill()
        raise SmokeFailure(f"worker did not announce its address (got {line!r})")
    address = line.split(marker, 1)[1].strip()
    log(f"worker pid={process.pid} listening on {address}")
    return process, address


def run_cli(args, deadline, **popen_kwargs):
    timeout = max(1.0, deadline - time.monotonic())
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        env=_env(),
        timeout=timeout,
        capture_output=True,
        text=True,
        **popen_kwargs,
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=10, help="dblp dataset scale")
    parser.add_argument("--shards", type=int, default=6, help="shard count")
    parser.add_argument(
        "--delay-ms", type=int, default=400,
        help="injected per-shard delay keeping workers busy for the kill window",
    )
    parser.add_argument(
        "--timeout", type=float, default=240.0, help="overall deadline in seconds"
    )
    args = parser.parse_args(argv)
    deadline = time.monotonic() + args.timeout

    with tempfile.TemporaryDirectory(prefix="repro-dist-smoke-") as work_dir:
        spec_path = os.path.join(work_dir, "spec.json")
        with open(spec_path, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "dataset": "dblp",
                    "scale": args.scale,
                    "cache_dir": os.path.join(work_dir, "cache"),
                },
                handle,
            )
        output = os.path.join(work_dir, "out.db")
        report_path = os.path.join(work_dir, "report.json")

        learn = run_cli(["learn", "--spec", spec_path], deadline)
        if learn.returncode != 0:
            raise SmokeFailure(f"pre-learn failed: {learn.stderr.strip()}")
        log("plan learned and cached")

        victim, victim_addr = boot_worker(deadline)
        survivor, survivor_addr = boot_worker(deadline)
        try:
            migrate = subprocess.Popen(
                [sys.executable, "-m", "repro", "migrate",
                 "--spec", spec_path,
                 "--shards", str(args.shards),
                 "--chunk-size", "2",
                 "--remote-workers", f"{victim_addr},{survivor_addr}",
                 "--backend", "sqlite", "--output", output,
                 "--inject-faults", f"delay:ms={args.delay_ms}",
                 "--report-json", report_path],
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
                text=True,
                env=_env(),
            )
            # Wait for the plan line (the map stage starts right after it),
            # then kill inside the injected-delay window: 6 shards x 400ms
            # over 2 workers keeps both busy for >= 1.2s.
            lines = []
            for line in migrate.stdout:
                lines.append(line)
                if line.startswith("plan:"):
                    break
            else:
                migrate.wait()
                raise SmokeFailure(
                    f"migrate never reached the plan stage:\n{''.join(lines)}"
                )
            time.sleep(1.0)
            victim.kill()
            log(f"SIGKILLed worker pid={victim.pid} mid-run")
            drain = threading.Thread(
                target=lambda: lines.extend(migrate.stdout), daemon=True
            )
            drain.start()
            returncode = migrate.wait(timeout=max(1.0, deadline - time.monotonic()))
            drain.join(timeout=5)
            transcript = "".join(lines)
            if returncode != 0:
                raise SmokeFailure(
                    f"migrate exited {returncode} after the kill:\n{transcript}"
                )
            with open(report_path, "r", encoding="utf-8") as handle:
                report = json.load(handle)
            if report.get("transport") != "socket":
                raise SmokeFailure(
                    f"expected the socket transport, got {report.get('transport')!r}"
                )
            retried = report.get("shards_retried", 0)
            if retried < 1:
                raise SmokeFailure(
                    f"killed worker was not redispatched (shards_retried={retried})"
                )
            if report.get("shards_failed") or report.get("shard_failures"):
                raise SmokeFailure(f"unexpected permanent failures: {report}")
            log(
                f"migrate succeeded despite the kill: {retried} shard "
                f"attempt(s) retried, {report['total_rows']} rows via "
                f"{report['transport']} transport"
            )

            verify = run_cli(
                ["verify", "--spec", spec_path, "--backend", "sqlite",
                 "--output", output],
                deadline,
            )
            if verify.returncode != 0:
                raise SmokeFailure(
                    f"verify failed on the redispatched target:\n{verify.stdout}"
                    f"{verify.stderr}"
                )
            log("verification passed on the redispatched target")
        finally:
            for process in (victim, survivor):
                if process.poll() is None:
                    process.kill()
            victim.wait(timeout=10)
            survivor.wait(timeout=10)

    log("OK distributed smoke: kill survived, redispatch verified")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except SmokeFailure as failure:
        print(f"smoke: FAIL {failure}", file=sys.stderr)
        sys.exit(1)
