#!/usr/bin/env python
"""Fault-injection smoke test for the migration service (CI job ``chaos-smoke``).

Extends ``tools/service_smoke.py`` (whose helpers it imports): instead of
killing the *daemon*, it injects faults into the *shard workers* through
the deterministic fault-injection harness (docs/robustness.md) and holds
the supervision layer to its contract against a live daemon:

1. boot ``repro serve`` as a subprocess on an OS-assigned port;
2. submit a sharded migrate job with an injected worker kill plus a shard
   delay (``kill:shard=1:attempt=1,delay:shard=0:ms=500``) and two
   workers, so a real worker process dies mid-spill;
3. assert the job **succeeds anyway**, with ``shards_retried >= 1`` and
   zero ``shard_failures`` in its report;
4. submit a ``verify`` job referencing it and assert it passes — the
   retried run's target is a valid, complete database;
5. submit a second migrate job with a **non-retryable** plan
   (``fail:shard=1``) and assert it ends ``failed`` with a populated
   ``error_detail`` and a report whose ``shard_failures`` names shard 1;
6. shut the daemon down cleanly over HTTP.

Usage::

    PYTHONPATH=src python tools/chaos_smoke.py

Exit code 0 on success; any assertion failure prints ``smoke: FAIL ...``
and exits 1.
"""

import argparse
import sys
import tempfile
import time

from service_smoke import SmokeFailure, boot_daemon, http, log, poll_job


def finished(record):
    return record["state"] in ("succeeded", "failed", "cancelled")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=8, help="dblp dataset scale")
    parser.add_argument("--shards", type=int, default=4, help="shard count")
    parser.add_argument(
        "--timeout", type=float, default=240.0, help="overall deadline in seconds"
    )
    args = parser.parse_args(argv)
    deadline = time.monotonic() + args.timeout

    with tempfile.TemporaryDirectory(prefix="repro-chaos-smoke-") as state_dir:
        process, base = boot_daemon(state_dir, deadline)
        try:
            # --- scenario A: retryable faults; the job must converge -------
            plan = "kill:shard=1:attempt=1,delay:shard=0:ms=500"
            status, job = http("POST", f"{base}/jobs", {
                "kind": "migrate",
                "params": {
                    "spec": {"dataset": "dblp", "scale": args.scale},
                    "backend": "sqlite",
                    "shards": args.shards,
                    "workers": 2,
                    "inject_faults": plan,
                },
            })
            if status != 201:
                raise SmokeFailure(f"submit -> {status}: {job}")
            job_id = job["id"]
            log(f"submitted {job_id} with injected faults: {plan}")

            job = poll_job(base, job_id, finished, deadline)
            if job["state"] != "succeeded":
                raise SmokeFailure(
                    f"fault-injected job ended {job['state']}: {job.get('error')}"
                )
            status, report = http("GET", f"{base}/jobs/{job_id}/report")
            if status != 200:
                raise SmokeFailure(f"report -> {status}: {report}")
            retried = report.get("shards_retried", 0)
            if retried < 1:
                raise SmokeFailure(
                    f"killed worker was not retried (shards_retried={retried})"
                )
            if report.get("shards_failed") or report.get("shard_failures"):
                raise SmokeFailure(f"unexpected permanent failures: {report}")
            log(f"{job_id} succeeded despite worker kill: "
                f"{retried} shard attempt(s) retried, "
                f"{report['total_rows']} rows")

            status, verify = http("POST", f"{base}/jobs", {
                "kind": "verify", "params": {"job": job_id},
            })
            if status != 201:
                raise SmokeFailure(f"verify submit -> {status}: {verify}")
            verify = poll_job(base, verify["id"], finished, deadline)
            if verify["state"] != "succeeded":
                raise SmokeFailure(
                    f"verify job ended {verify['state']}: {verify.get('error')}"
                )
            status, verdict = http("GET", f"{base}/jobs/{verify['id']}/report")
            if status != 200 or not verdict.get("passed"):
                raise SmokeFailure(f"verification did not pass: {verdict}")
            log(f"verification passed for {job_id}'s retried target")

            # --- scenario B: non-retryable fault; structured degradation ---
            status, job = http("POST", f"{base}/jobs", {
                "kind": "migrate",
                "params": {
                    "spec": {"dataset": "dblp", "scale": args.scale},
                    "backend": "sqlite",
                    "shards": args.shards,
                    "workers": 1,
                    "inject_faults": "fail:shard=1",
                },
            })
            if status != 201:
                raise SmokeFailure(f"submit -> {status}: {job}")
            job_id = job["id"]
            log(f"submitted {job_id} with non-retryable fault: fail:shard=1")

            job = poll_job(base, job_id, finished, deadline)
            if job["state"] != "failed":
                raise SmokeFailure(
                    f"permanently-faulted job ended {job['state']}, not failed"
                )
            if not job.get("error_detail"):
                raise SmokeFailure("failed job has no error_detail")
            status, report = http("GET", f"{base}/jobs/{job_id}/report")
            if status != 200:
                raise SmokeFailure(
                    f"degraded job kept no report -> {status}: {report}"
                )
            failures = report.get("shard_failures") or []
            if not failures:
                raise SmokeFailure(f"degraded report has no shard_failures: {report}")
            if failures[0].get("shard") != 1:
                raise SmokeFailure(f"wrong shard in failure record: {failures}")
            if failures[0].get("error_type") != "FaultInjected":
                raise SmokeFailure(f"wrong error_type in failure record: {failures}")
            log(f"{job_id} degraded as specified: shard 1 failed permanently, "
                f"{report.get('shards_failed')} failed / "
                f"{report.get('shards', 0)} total, report retained")

            http("POST", f"{base}/shutdown")
            process.wait(timeout=30)
            if process.returncode != 0:
                raise SmokeFailure(
                    f"daemon exited {process.returncode} after /shutdown"
                )
            log("daemon shut down cleanly — PASS")
        except BaseException:
            process.kill()
            raise
    return 0


if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except SmokeFailure as failure:
        print(f"smoke: FAIL {failure}", file=sys.stderr)
        raise SystemExit(1)
