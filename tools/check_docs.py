#!/usr/bin/env python
"""Documentation checks: dead links, required anchors, CLI --help snapshots.

Three guards keep the docs/ site honest (CI job ``docs-check``):

1. **Dead links** — every relative markdown link in ``docs/*.md`` and
   ``README.md`` must resolve to an existing file, and every ``#anchor``
   must match a heading of the target page (GitHub slug rules).
2. **Required anchors** — load-bearing section anchors (listed in
   ``REQUIRED_ANCHORS``) must keep existing even if no in-repo page links
   to them at the moment: external docs, CLI ``--help`` text and commit
   messages reference them, so renaming a heading silently strands readers.
   The backends/operations chapter is the first page pinned this way.
3. **Help snapshots** — the ``--help`` output of ``python -m repro`` and
   each subcommand is snapshotted under ``docs/help/``; the check re-runs
   the CLI and diffs, so the CLI reference can never drift from the code.

Usage::

    PYTHONPATH=src python tools/check_docs.py           # check (exit 1 on drift)
    PYTHONPATH=src python tools/check_docs.py --regen   # rewrite the snapshots

Snapshots are rendered with ``COLUMNS=80``; regenerate with the Python
version the CI job pins (argparse wrapping can vary across versions).
"""

import argparse
import os
import re
import subprocess
import sys

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
DOCS_DIR = os.path.join(REPO_ROOT, "docs")
HELP_DIR = os.path.join(DOCS_DIR, "help")

HELP_SNAPSHOTS = {
    "repro.txt": ["--help"],
    "repro-learn.txt": ["learn", "--help"],
    "repro-run.txt": ["run", "--help"],
    "repro-migrate.txt": ["migrate", "--help"],
    "repro-verify.txt": ["verify", "--help"],
    "repro-serve.txt": ["serve", "--help"],
    "repro-worker.txt": ["worker", "--help"],
}

#: Section anchors that must exist on a page, link or no link.  Keys are
#: repo-relative markdown paths; values are GitHub anchor slugs.
REQUIRED_ANCHORS = {
    "docs/backends.md": [
        "the-backend-protocol",
        "the-shipped-backends",
        "the-duckdb-analytics-backend",
        "streamed-record-batches-and-dictionary-encoding",
        "index-ddl-and-the-index-presence-check",
        "shardreduce-dataflow",
        "cross-shard-key-reconciliation",
        "choosing-a-backend",
    ],
    "docs/service.md": [
        "the-http-api",
        "job-lifecycle",
        "checkpoints-and-resume",
        "dry-runs",
        "verification",
    ],
    "docs/robustness.md": [
        "retry-policy",
        "error-classification",
        "timeout-semantics",
        "fault-injection-spec-grammar",
        "degradation-contract",
    ],
    "docs/distributed.md": [
        "wire-protocol",
        "handshake-and-fingerprint-rules",
        "retry-and-redispatch",
        "shard-count-auto-tuning",
        "the-xml-byte-offset-record-index",
        "fault-injection",
        "security-model",
    ],
}

LINK_RE = re.compile(r"(?<!!)\[[^\]]+\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def github_slug(heading):
    """GitHub's anchor slug: lowercase, spaces to dashes, drop punctuation."""
    slug = heading.strip().lower()
    slug = re.sub(r"[`*_]", "", slug)
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def markdown_files():
    files = [os.path.join(REPO_ROOT, "README.md")]
    for name in sorted(os.listdir(DOCS_DIR)):
        if name.endswith(".md"):
            files.append(os.path.join(DOCS_DIR, name))
    return files


def check_links():
    errors = []
    anchors = {}

    def anchors_of(path):
        if path not in anchors:
            with open(path, "r", encoding="utf-8") as handle:
                text = CODE_FENCE_RE.sub("", handle.read())
            anchors[path] = {github_slug(h) for h in HEADING_RE.findall(text)}
        return anchors[path]

    for path in markdown_files():
        relative = os.path.relpath(path, REPO_ROOT)
        with open(path, "r", encoding="utf-8") as handle:
            text = CODE_FENCE_RE.sub("", handle.read())
        for target in LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            file_part, _, anchor = target.partition("#")
            if file_part:
                resolved = os.path.normpath(
                    os.path.join(os.path.dirname(path), file_part)
                )
                if not os.path.exists(resolved):
                    errors.append(f"{relative}: dead link -> {target}")
                    continue
            else:
                resolved = path
            if anchor and resolved.endswith(".md"):
                if github_slug(anchor) not in anchors_of(resolved):
                    errors.append(f"{relative}: dead anchor -> {target}")

    for relative, required in sorted(REQUIRED_ANCHORS.items()):
        path = os.path.join(REPO_ROOT, relative)
        if not os.path.exists(path):
            errors.append(f"{relative}: required page is missing")
            continue
        present = anchors_of(path)
        for slug in required:
            if slug not in present:
                errors.append(
                    f"{relative}: required anchor #{slug} is stale or missing "
                    f"(a heading was renamed or removed)"
                )
    return errors


def render_help(arguments):
    env = dict(os.environ)
    env["COLUMNS"] = "80"
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    result = subprocess.run(
        [sys.executable, "-m", "repro", *arguments],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
        check=True,
    )
    return result.stdout


def check_help(regen):
    errors = []
    os.makedirs(HELP_DIR, exist_ok=True)
    for name, arguments in HELP_SNAPSHOTS.items():
        path = os.path.join(HELP_DIR, name)
        rendered = render_help(arguments)
        if regen:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(rendered)
            print(f"wrote {os.path.relpath(path, REPO_ROOT)}")
            continue
        if not os.path.exists(path):
            errors.append(f"missing help snapshot docs/help/{name} (run --regen)")
            continue
        with open(path, "r", encoding="utf-8") as handle:
            expected = handle.read()
        if expected != rendered:
            errors.append(
                f"docs/help/{name} is stale (run "
                f"`PYTHONPATH=src python tools/check_docs.py --regen`)"
            )
    return errors


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--regen", action="store_true", help="rewrite the --help snapshots"
    )
    args = parser.parse_args(argv)

    errors = check_links()
    errors.extend(check_help(args.regen))
    if errors:
        for error in errors:
            print(f"docs-check: {error}", file=sys.stderr)
        return 1
    checked = len(markdown_files())
    print(f"docs-check ok: {checked} markdown files, {len(HELP_SNAPSHOTS)} help snapshots")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
