"""Registry-driven backend conformance suite.

One parametrized battery runs over **every** name in ``available_backends()``
— current backends and future ones alike inherit the full contract coverage
instead of hand-copied per-backend tests:

* insert/fetch_rows parity against the memory backend (the ground truth);
* canonical whole-tree ≡ streamed ≡ sharded output per backend;
* the verify read-side hook returns exactly what ``fetch_rows`` returns,
  and a full ``verify_rows`` pass (row counts, keys, index presence) holds;
* empty tables and zero-row insert batches are well-formed edge cases.

DuckDB participates whenever the optional dependency is installed and is
skip-marked otherwise.  The SQL-side parity oracle (the independent check in
the spirit of the paper's output-equivalence validation) executes COUNT /
COUNT(DISTINCT pk) / FK-dangle aggregates in each SQL engine over the
migrated target and compares them against the memory backend's ground truth
— deterministically on the DBLP example and under hypothesis on random
record-local programs.
"""

import os

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.codegen.sql_gen import expected_index_names, generate_sql_dump
from repro.datasets import dblp
from repro.relational import ColumnDef, DatabaseSchema, TableSchema
from repro.runtime import (
    MemoryBackend,
    MigrationPlan,
    SQLiteBackend,
    canonical_table_rows,
    execute_plan,
    shard_execute,
    stream_execute,
)
from repro.runtime.backends import (
    HAVE_DUCKDB,
    OUTPUT_KIND,
    available_backends,
    create_backend,
)
from repro.runtime.streaming import iter_tree_chunks
from repro.runtime.verify import (
    read_target_indexes,
    read_target_rows,
    verify_backend,
    verify_rows,
)

# Same-directory test modules are importable under pytest's rootdir sys.path;
# reuse the program strategies and plan builders instead of re-rolling them.
from test_properties import random_programs
from test_sharded import _single_table_plan, multi_record_trees

ALL_BACKENDS = available_backends()


@pytest.fixture(scope="module")
def dblp_plan():
    return MigrationPlan.learn(dblp.dataset(scale=3).migration_spec())


@pytest.fixture(scope="module")
def document():
    return dblp.dataset(scale=3).generate(6)


def _make_backend(name, tmp_path, tag=""):
    """Construct a registry backend with a kind-appropriate tmp output."""
    if name == "duckdb" and not HAVE_DUCKDB:
        pytest.skip("duckdb not installed")
    kind = OUTPUT_KIND[name]
    if kind is None:
        return create_backend(name), None
    output = str(tmp_path / f"{tag}{name}.out")
    return create_backend(name, output), output


def _fetch_all(plan, backend):
    return {t: backend.fetch_rows(t) for t in plan.schema.table_names}


def _canonical(plan, backend):
    return canonical_table_rows(plan.schema, _fetch_all(plan, backend))


# --------------------------------------------------------------------------- #
# The battery — identical for every registered backend
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("name", ALL_BACKENDS)
def test_insert_fetch_parity_vs_memory(name, tmp_path, dblp_plan, document):
    """Same process, same document: every backend returns exactly the rows
    the memory backend holds, table for table, in insertion order."""
    memory = execute_plan(dblp_plan, document, MemoryBackend()).backend
    backend, _ = _make_backend(name, tmp_path)
    execute_plan(dblp_plan, document, backend)
    for table in dblp_plan.schema.table_names:
        assert backend.fetch_rows(table) == memory.fetch_rows(table)
    backend.close()


@pytest.mark.parametrize("name", ALL_BACKENDS)
def test_whole_streamed_sharded_canonical(name, tmp_path, dblp_plan, document):
    """Whole-tree ≡ streamed ≡ sharded (canonically) on every backend."""
    whole, _ = _make_backend(name, tmp_path, tag="whole-")
    execute_plan(dblp_plan, document, whole)
    reference = _canonical(dblp_plan, whole)
    whole.close()

    streamed, _ = _make_backend(name, tmp_path, tag="streamed-")
    stream_execute(dblp_plan, iter_tree_chunks(document, 2), streamed)
    assert _canonical(dblp_plan, streamed) == reference
    streamed.close()

    sharded, _ = _make_backend(name, tmp_path, tag="sharded-")
    shard_execute(dblp_plan, document, sharded, shards=2, workers=1)
    assert _canonical(dblp_plan, sharded) == reference
    sharded.close()


@pytest.mark.parametrize("name", ALL_BACKENDS)
def test_verify_read_hook_contract(name, tmp_path, dblp_plan, document):
    """The read-side hook sees exactly what fetch_rows sees, and the full
    verification (counts, keys, index presence where applicable) passes."""
    backend, output = _make_backend(name, tmp_path)
    report = execute_plan(dblp_plan, document, backend)
    expected = dict(report.per_table_rows)
    if output is None:
        assert verify_backend(backend, dblp_plan.schema, expected).passed
        return
    in_process = _fetch_all(dblp_plan, backend)
    read_back = read_target_rows(name, output, dblp_plan.schema)
    assert read_back == in_process
    index_names = read_target_indexes(name, output)
    verdict = verify_rows(
        dblp_plan.schema, read_back, expected, index_names=index_names
    )
    assert verdict.passed, verdict.describe()
    backend.close()


@pytest.mark.parametrize("name", ALL_BACKENDS)
def test_empty_tables_and_zero_row_batches(name, tmp_path):
    """A table that never receives rows, and explicit zero-row batches, are
    both well-formed: counts are 0 and reads return empty lists."""
    schema = DatabaseSchema(
        name="edge",
        tables=[
            TableSchema("full", [ColumnDef("a", "text")], natural_keys=True),
            TableSchema("empty", [ColumnDef("b", "text")], natural_keys=True),
        ],
    )
    backend, output = _make_backend(name, tmp_path)
    backend.begin(schema)
    assert backend.insert_rows("empty", []) == 0  # zero-row batch
    assert backend.insert_rows("full", [("x",)]) == 1
    assert backend.insert_rows("full", iter(())) == 0  # lazy empty generator
    backend.finalize()
    assert backend.fetch_rows("full") == [("x",)]
    assert backend.fetch_rows("empty") == []
    if output is not None:
        read_back = read_target_rows(name, output, schema)
        assert read_back == {"full": [("x",)], "empty": []}
    backend.close()


# --------------------------------------------------------------------------- #
# Index DDL: emitted in dumps, applied post-load, checked by verify
# --------------------------------------------------------------------------- #


def test_sql_dump_emits_fk_indexes(dblp_plan, document):
    memory = execute_plan(dblp_plan, document, MemoryBackend()).backend
    expected = expected_index_names(dblp_plan.schema)
    assert expected, "the DBLP schema has FK columns to index"
    dump = generate_sql_dump(memory.database)
    for names in expected.values():
        for index in names:
            assert f'CREATE INDEX "{index}"' in dump
    # Indexes land inside the transaction, before the closing COMMIT.
    assert dump.index("CREATE INDEX") < dump.index("COMMIT;")

    import sqlite3

    connection = sqlite3.connect(":memory:")
    connection.executescript(dump)
    loaded = {
        row[0]
        for row in connection.execute(
            "SELECT name FROM sqlite_master WHERE type = 'index' "
            "AND name NOT LIKE 'sqlite_autoindex_%'"
        )
    }
    assert loaded == {name for names in expected.values() for name in names}


def test_missing_indexes_fail_verification(tmp_path, dblp_plan, document):
    """A target loaded without its secondary indexes fails the index check
    (and only that check)."""
    path = str(tmp_path / "bare.db")
    backend = SQLiteBackend(path, apply_indexes=False)
    execute_plan(dblp_plan, document, backend)
    backend.close()
    rows = read_target_rows("sqlite", path, dblp_plan.schema)
    index_names = read_target_indexes("sqlite", path)
    assert index_names == []
    verdict = verify_rows(dblp_plan.schema, rows, index_names=index_names)
    assert not verdict.passed
    problems = [p for check in verdict.tables for p in check.problems]
    assert all("secondary index" in p for p in problems)
    # Without the index check the same target verifies clean.
    assert verify_rows(dblp_plan.schema, rows).passed


# --------------------------------------------------------------------------- #
# The SQL-side parity oracle
# --------------------------------------------------------------------------- #


def _sql_engines(tmp_path):
    """(name, backend factory) for every installed SQL engine."""
    engines = [("sqlite", lambda: SQLiteBackend(str(tmp_path / "oracle.db")))]
    if HAVE_DUCKDB:
        from repro.runtime.backends import DuckDBBackend

        engines.append(
            ("duckdb", lambda: DuckDBBackend(str(tmp_path / "oracle.duckdb")))
        )
    return engines


def _oracle_battery(connection, schema, memory):
    """COUNT / COUNT(DISTINCT pk) / FK-dangle queries vs memory ground truth."""
    for table in schema.tables:
        rows = memory.fetch_rows(table.name)
        names = table.column_names
        count = connection.execute(
            f'SELECT COUNT(*) FROM "{table.name}"'
        ).fetchone()[0]
        assert count == len(rows)
        if table.primary_key is not None:
            pk = names.index(table.primary_key)
            distinct = connection.execute(
                f'SELECT COUNT(DISTINCT "{table.primary_key}") FROM "{table.name}"'
            ).fetchone()[0]
            assert distinct == len({r[pk] for r in rows if r[pk] is not None})
        for fk in table.foreign_keys:
            dangling = connection.execute(
                f'SELECT COUNT(*) FROM "{table.name}" c '
                f'LEFT JOIN "{fk.target_table}" p '
                f'ON c."{fk.column}" = p."{fk.target_column}" '
                f'WHERE c."{fk.column}" IS NOT NULL '
                f'AND p."{fk.target_column}" IS NULL'
            ).fetchone()[0]
            assert dangling == 0


def test_sql_oracle_on_dblp(tmp_path, dblp_plan, document):
    """The independent SQL-side check on the DBLP example: aggregates run in
    each installed SQL engine over the migrated target must equal the memory
    backend's ground truth (sqlite always; DuckDB when installed)."""
    memory = execute_plan(dblp_plan, document, MemoryBackend()).backend
    for name, factory in _sql_engines(tmp_path):
        backend = factory()
        execute_plan(dblp_plan, document, backend)
        _oracle_battery(backend.connection, dblp_plan.schema, memory)
        backend.close()


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(multi_record_trees(), st.data())
def test_sql_oracle_on_random_programs(tmp_path_factory, tree, data):
    """Hypothesis: for random record-local programs, SQL aggregates over the
    migrated single-table target equal the memory-backend ground truth in
    every installed SQL engine."""
    plan = _single_table_plan(data.draw(random_programs()))
    memory = MemoryBackend(validate=False)
    execute_plan(plan, tree, memory)
    tmp_path = tmp_path_factory.mktemp("oracle")
    for name, factory in _sql_engines(tmp_path):
        backend = factory()
        execute_plan(plan, tree, backend)
        rows = memory.fetch_rows("t")
        count = backend.connection.execute('SELECT COUNT(*) FROM "t"').fetchone()[0]
        assert count == len(rows)
        if name == "sqlite":
            # SQLite keeps dynamic types, so distinct counts compare exactly.
            distinct = backend.connection.execute(
                'SELECT COUNT(DISTINCT "c0") FROM "t"'
            ).fetchone()[0]
            assert distinct == len({r[0] for r in rows if r[0] is not None})
        else:
            # DuckDB casts every value into the declared TEXT column, so the
            # ground-truth distinct set is compared after the same cast.
            distinct = backend.connection.execute(
                'SELECT COUNT(DISTINCT "c0") FROM "t"'
            ).fetchone()[0]
            assert distinct == len({str(r[0]) for r in rows if r[0] is not None})
        backend.close()


# --------------------------------------------------------------------------- #
# Registry hygiene
# --------------------------------------------------------------------------- #


def test_every_backend_has_an_output_kind():
    assert set(OUTPUT_KIND) >= set(ALL_BACKENDS)


def test_file_backends_write_their_output(tmp_path, dblp_plan, document):
    for name in ALL_BACKENDS:
        if OUTPUT_KIND[name] is None or (name == "duckdb" and not HAVE_DUCKDB):
            continue
        backend, output = _make_backend(name, tmp_path, tag="artifact-")
        execute_plan(dblp_plan, document, backend)
        backend.close()
        assert os.path.exists(output)
