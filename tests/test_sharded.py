"""Tests for the sharded multi-process run path (`repro.runtime.sharded`).

Covers the PR-5 map/reduce execution: contiguous record partitioning, the
shardable sources (tree, XML/JSON file, document directory), the spill
protocol's corruption handling, canonical parity between whole-tree,
streamed and sharded execution across all three backends, and the CLI's
execution-mode flag validation.
"""

import json
import os
import pickle

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.datasets import dblp
from repro.hdt import build_tree, xml_file_to_hdt
from repro.hdt.xml_plugin import hdt_to_xml
from repro.relational import ColumnDef, DatabaseSchema, TableSchema
from repro.runtime import (
    MemoryBackend,
    MigrationPlan,
    SQLiteBackend,
    ShardError,
    canonical_table_rows,
    execute_plan,
    shard_execute,
    shard_source,
    stream_execute,
)
from repro.runtime.backends import ColumnarBackend
from repro.runtime.cli import main as cli_main
from repro.runtime.plan import TablePlan
from repro.runtime.service import CHECKPOINT_MANIFEST_NAME, ShardCheckpoint
from repro.runtime.sharded import (
    DocumentSetSource,
    JSONSource,
    ShardSpec,
    SpillWriter,
    TreeSource,
    XMLSource,
    _spill_path,
    execute_shard,
    iter_spill,
    partition_records,
    validate_spill,
)
from repro.runtime.streaming import (
    count_json_records,
    count_xml_records,
    iter_tree_chunks,
)

# Reuse the program strategies of test_properties and the two-table library
# fixture of test_runtime (same directory, importable as top-level modules
# under pytest's rootdir-based sys.path).
from test_properties import random_programs
from test_runtime import _library_spec, _library_tree


@pytest.fixture(scope="module")
def dblp_plan():
    return MigrationPlan.learn(dblp.dataset(scale=3).migration_spec())


def _canonical(plan, backend):
    return canonical_table_rows(
        plan.schema, {t: backend.fetch_rows(t) for t in plan.schema.table_names}
    )


def _whole_tree_reference(plan, document):
    report = execute_plan(plan, document, MemoryBackend())
    return _canonical(plan, report.backend)


# --------------------------------------------------------------------------- #
# Partitioning
# --------------------------------------------------------------------------- #


def test_partition_records_balanced_contiguous():
    specs = partition_records(10, 3)
    assert [(s.start, s.stop) for s in specs] == [(0, 4), (4, 7), (7, 10)]
    assert [s.index for s in specs] == [0, 1, 2]
    assert sum(s.records for s in specs) == 10


def test_partition_records_more_shards_than_records():
    specs = partition_records(2, 4)
    assert [(s.start, s.stop) for s in specs] == [(0, 1), (1, 2), (2, 2), (2, 2)]
    assert specs[3].records == 0


def test_partition_records_empty_and_invalid():
    assert [(s.start, s.stop) for s in partition_records(0, 2)] == [(0, 0), (0, 0)]
    with pytest.raises(ShardError):
        partition_records(5, 0)
    with pytest.raises(ShardError):
        partition_records(-1, 2)


# --------------------------------------------------------------------------- #
# Record-range chunk iterators
# --------------------------------------------------------------------------- #


def test_iter_tree_chunks_record_range():
    tree = build_tree({"item": [{"v": i} for i in range(7)]}, tag="root")
    all_records = [
        node.children[0].data
        for chunk in iter_tree_chunks(tree, 2)
        for node in chunk.tree.root.children
    ]
    window = [
        node.children[0].data
        for chunk in iter_tree_chunks(tree, 2, record_range=(2, 5))
        for node in chunk.tree.root.children
    ]
    assert window == all_records[2:5]
    with pytest.raises(ValueError):
        list(iter_tree_chunks(tree, 2, record_range=(3, 1)))


def test_count_records_helpers(tmp_path):
    tree = build_tree({"item": [{"v": i} for i in range(5)]}, tag="root")
    xml_path = str(tmp_path / "doc.xml")
    with open(xml_path, "w", encoding="utf-8") as handle:
        handle.write(hdt_to_xml(tree))
    assert count_xml_records(xml_path) == 5
    assert count_json_records([{"v": i} for i in range(4)]) == 4
    json_path = str(tmp_path / "doc.json")
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump({"item": [1, 2, 3]}, handle)
    assert count_json_records(json_path) == 3


# --------------------------------------------------------------------------- #
# Sharded vs whole-tree vs streamed: the DBLP plan (surrogate keys + FKs)
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("shards", [1, 2, 4])
@pytest.mark.parametrize(
    "make_backend", [MemoryBackend, SQLiteBackend, ColumnarBackend]
)
def test_sharded_matches_whole_tree_canonically(dblp_plan, shards, make_backend):
    document = dblp.dataset(scale=30).generate(30)
    reference = _whole_tree_reference(dblp_plan, document)
    report = shard_execute(
        dblp_plan, document, make_backend(), shards=shards, workers=1, chunk_size=7
    )
    assert report.shards == shards
    assert _canonical(dblp_plan, report.backend) == reference
    truth = dblp.ground_truth_counts(30)
    assert report.total_rows == sum(truth.values())


def test_sharded_pool_matches_in_process(dblp_plan):
    document = dblp.dataset(scale=12).generate(12)
    serial = shard_execute(dblp_plan, document, shards=2, workers=1, chunk_size=5)
    pooled = shard_execute(dblp_plan, document, shards=2, workers=2, chunk_size=5)
    assert _canonical(dblp_plan, pooled.backend) == _canonical(
        dblp_plan, serial.backend
    )
    assert pooled.per_table_rows == serial.per_table_rows


def test_sharded_matches_streamed(dblp_plan):
    document = dblp.dataset(scale=20).generate(20)
    streamed = stream_execute(dblp_plan, iter_tree_chunks(document, 6))
    sharded = shard_execute(dblp_plan, document, shards=3, workers=1, chunk_size=6)
    assert _canonical(dblp_plan, sharded.backend) == _canonical(
        dblp_plan, streamed.backend
    )


def test_pool_file_source_with_surrogate_keys(tmp_path):
    """Worker pool + file source + surrogate keys: the uid-collision case.

    Forked workers share the node-uid counter start value, so without
    per-shard key namespacing two shards mint identical ``key_of`` keys for
    different rows (duplicate primary keys, ambiguous foreign keys).  The
    library plan is surrogate-keyed and the JSON file is re-parsed inside
    each worker — exactly the combination a tree-source pool test misses.
    """
    plan = MigrationPlan.learn(_library_spec(_library_tree()))
    full = {
        "author": [
            {
                "name": f"Author {i}",
                "country": ["NZ", "NG", "DE"][i % 3],
                "book": [{"title": f"Book {i}", "year": 1990 + i % 20}],
            }
            for i in range(40)
        ]
    }
    path = tmp_path / "library.json"
    path.write_text(json.dumps(full))
    from repro.hdt import json_to_hdt

    reference = _whole_tree_reference(plan, json_to_hdt(full))
    report = shard_execute(
        plan, str(path), shards=4, workers=4, chunk_size=5
    )
    assert _canonical(plan, report.backend) == reference
    report.backend.database.validate()  # no duplicate keys, FKs resolve


def test_sharded_empty_document(dblp_plan):
    tree = build_tree({}, tag="dblp")
    report = shard_execute(dblp_plan, tree, shards=3, workers=1)
    assert report.total_rows == 0
    assert report.shards == 3


# --------------------------------------------------------------------------- #
# Shardable sources: files and directories
# --------------------------------------------------------------------------- #


def _write_xml(tmp_path, name, tree):
    path = str(tmp_path / name)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(hdt_to_xml(tree))
    return path


def test_xml_source_parity(dblp_plan, tmp_path):
    document = dblp.dataset(scale=15).generate(15)
    path = _write_xml(tmp_path, "doc.xml", document)
    reparsed = xml_file_to_hdt(path)
    reference = _whole_tree_reference(dblp_plan, reparsed)
    source = shard_source(path)
    assert isinstance(source, XMLSource)
    assert source.count_records() == len(reparsed.root.children)
    report = shard_execute(dblp_plan, path, shards=3, workers=1, chunk_size=4)
    assert _canonical(dblp_plan, report.backend) == reference


def test_directory_source_parity(dblp_plan, tmp_path):
    first = dblp.dataset(scale=8).generate(8)
    second = dblp.dataset(scale=9).generate(9)
    path_a = _write_xml(tmp_path, "a.xml", first)
    path_b = _write_xml(tmp_path, "b.xml", second)
    source = shard_source(str(tmp_path))
    assert isinstance(source, DocumentSetSource)
    parsed = [xml_file_to_hdt(path_a), xml_file_to_hdt(path_b)]
    assert source.count_records() == sum(len(t.root.children) for t in parsed)
    # Reference: both documents streamed in sorted-name order (each file is
    # its own document; records of different files never share a chunk).
    streamed = stream_execute(
        dblp_plan,
        (chunk for tree in parsed for chunk in iter_tree_chunks(tree, 1)),
    )
    # The shard boundary deliberately cuts across the two files.
    report = shard_execute(dblp_plan, source, shards=2, workers=1, chunk_size=1)
    assert _canonical(dblp_plan, report.backend) == _canonical(
        dblp_plan, streamed.backend
    )


def test_json_source_counts():
    source = JSONSource({"item": [{"v": 1}, {"v": 2}]})
    assert source.count_records() == 2
    chunks = list(source.iter_chunks(1, 2, 10))
    assert sum(c.records for c in chunks) == 1


def test_shard_source_inference_errors(tmp_path):
    with pytest.raises(ShardError):
        shard_source(str(tmp_path / "doc.csv"))  # unknown extension, no fmt
    empty = tmp_path / "empty"
    empty.mkdir()
    with pytest.raises(ShardError):
        shard_source(str(empty))
    with pytest.raises(ShardError):
        shard_source(42)  # type: ignore[arg-type]


def test_shard_source_mixed_directory_needs_explicit_format(tmp_path):
    (tmp_path / "a.xml").write_text("<root><item/></root>")
    (tmp_path / "b.json").write_text("[1]")
    with pytest.raises(ShardError, match="mixes"):
        shard_source(str(tmp_path))
    # An explicit format picks the matching file set instead of guessing.
    source = shard_source(str(tmp_path), "json")
    assert isinstance(source, DocumentSetSource)
    assert source.paths == [str(tmp_path / "b.json")]


# --------------------------------------------------------------------------- #
# The spill protocol: corruption surfaces, never silent truncation
# --------------------------------------------------------------------------- #


def _write_spill(path, fingerprint="fp0", shard_index=0):
    writer = SpillWriter(str(path), shard_index, fingerprint, batch_rows=2)
    writer.write_rows("t", [("a",), ("b",), ("c",)])
    writer.finish(chunks=1, records=3)
    return str(path)


def test_spill_roundtrip(tmp_path):
    path = _write_spill(tmp_path / "s.spill")
    batches = list(iter_spill(path, plan_fingerprint="fp0", shard_index=0))
    assert [rows for _, rows in batches] == [[("a",), ("b",)], [("c",)]]


def test_spill_truncation_is_an_error(tmp_path):
    path = _write_spill(tmp_path / "s.spill")
    payload = open(path, "rb").read()
    open(path, "wb").write(payload[:-9])
    with pytest.raises(ShardError, match="truncated|corrupt"):
        list(iter_spill(path, plan_fingerprint="fp0", shard_index=0))


def test_spill_plan_fingerprint_mismatch(tmp_path):
    path = _write_spill(tmp_path / "s.spill")
    with pytest.raises(ShardError, match="different plan"):
        list(iter_spill(path, plan_fingerprint="other", shard_index=0))


def test_spill_shard_index_mismatch(tmp_path):
    path = _write_spill(tmp_path / "s.spill")
    with pytest.raises(ShardError, match="belongs to shard"):
        list(iter_spill(path, plan_fingerprint="fp0", shard_index=1))


def test_spill_missing_and_foreign_files(tmp_path):
    with pytest.raises(ShardError, match="missing"):
        list(iter_spill(str(tmp_path / "nope.spill"), plan_fingerprint="x", shard_index=0))
    garbage = tmp_path / "garbage.spill"
    garbage.write_text("this is not a pickle stream")
    with pytest.raises(ShardError, match="header|spill"):
        list(iter_spill(str(garbage), plan_fingerprint="x", shard_index=0))


def test_spill_manifest_count_mismatch(tmp_path):
    path = str(tmp_path / "s.spill")
    with open(path, "wb") as handle:
        pickle.dump(
            ("begin", {"magic": "repro-shard-spill/1", "shard": 0, "plan_fingerprint": "fp0"}),
            handle,
        )
        pickle.dump(("rows", "t", [("a",)]), handle)
        pickle.dump(
            ("end", {"shard": 0, "batches": 1, "per_table_rows": {"t": 5}}), handle
        )
    with pytest.raises(ShardError, match="do not match"):
        list(iter_spill(path, plan_fingerprint="fp0", shard_index=0))


def test_worker_death_surfaces_through_shard_execute(dblp_plan, monkeypatch):
    """A shard whose worker never wrote the end manifest fails the reduce."""
    document = dblp.dataset(scale=4).generate(4)

    def _broken_shard(plan, source, spec, *, spill_path, plan_fingerprint=None, **kw):
        # Simulated crash: header written, stream abandoned mid-shard.
        writer = SpillWriter(
            spill_path, spec.index, plan_fingerprint or plan.content_fingerprint()
        )
        writer._handle.close()
        return {"chunks": 0, "records": 0}

    monkeypatch.setattr("repro.runtime.sharded.execute_shard", _broken_shard)
    with pytest.raises(ShardError, match="truncated"):
        shard_execute(dblp_plan, document, shards=2, workers=1)


def test_execute_shard_manifest_shape(dblp_plan, tmp_path):
    document = dblp.dataset(scale=6).generate(6)
    spec = ShardSpec(index=0, start=0, stop=10)
    manifest = execute_shard(
        dblp_plan,
        TreeSource(document),
        spec,
        chunk_size=3,
        spill_path=str(tmp_path / "s.spill"),
    )
    assert manifest["shard"] == 0
    assert manifest["records"] == 10
    assert manifest["chunks"] == 4
    assert sum(manifest["per_table_rows"].values()) > 0


# --------------------------------------------------------------------------- #
# Property tests: random program/tree pairs across modes and backends
# --------------------------------------------------------------------------- #


def _single_table_plan(program):
    arity = program.arity
    table = TableSchema(
        "t", [ColumnDef(f"c{i}", "text") for i in range(arity)], natural_keys=True
    )
    return MigrationPlan(
        schema=DatabaseSchema(name="prop", tables=[table]),
        tables={
            "t": TablePlan(
                table="t",
                program=program,
                data_columns=[f"c{i}" for i in range(arity)],
            )
        },
    )


def _rows_multiset(backend):
    return sorted(map(repr, backend.fetch_rows("t")))


_BACKEND_FACTORIES = (
    lambda: MemoryBackend(validate=False),
    lambda: SQLiteBackend(),
    lambda: ColumnarBackend(),
)


@st.composite
def single_record_trees(draw):
    """One root record: every program is record-local, so all execution modes
    must agree (chunking and sharding cannot separate any nodes)."""
    scalars = st.one_of(st.integers(0, 5), st.sampled_from(["a", "b", "c"]))
    doc = {
        "item": [
            {
                "k": draw(scalars),
                "v": draw(scalars),
                "sub": [{"x": draw(scalars)} for _ in range(draw(st.integers(0, 2)))],
            }
        ]
    }
    return build_tree(doc, tag="root")


@st.composite
def multi_record_trees(draw):
    scalars = st.sampled_from([0, 1, "a"])
    doc = {
        "item": [
            {
                "k": draw(scalars),
                "v": draw(scalars),
                "sub": [{"x": draw(scalars)} for _ in range(draw(st.integers(0, 1)))],
            }
            for _ in range(draw(st.integers(1, 4)))
        ]
    }
    return build_tree(doc, tag="root")


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(single_record_trees(), st.data())
def test_all_modes_and_backends_agree_on_record_local_programs(tree, data):
    """Whole-tree == streamed == sharded (1/2/4 shards), on every backend."""
    plan = _single_table_plan(data.draw(random_programs()))
    modes = [
        lambda b: execute_plan(plan, tree, b),
        lambda b: stream_execute(plan, iter_tree_chunks(tree, 1), b),
    ]
    for shards in (1, 2, 4):
        modes.append(
            lambda b, s=shards: shard_execute(
                plan, tree, b, shards=s, workers=1, chunk_size=1
            )
        )
    for make_backend in _BACKEND_FACTORIES:
        reference = None
        for index, run in enumerate(modes):
            backend = make_backend()
            run(backend)
            rows = _rows_multiset(backend)
            if reference is None:
                reference = rows
            else:
                assert rows == reference, f"mode {index} diverged"


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(multi_record_trees(), st.data())
def test_sharded_is_boundary_invariant(tree, data):
    """With per-record chunks, sharding must not change the row multiset
    relative to serial streaming, for *any* program (record-local or not) —
    shard boundaries fall on chunk boundaries by construction."""
    plan = _single_table_plan(data.draw(random_programs()))
    streamed = MemoryBackend(validate=False)
    stream_execute(plan, iter_tree_chunks(tree, 1), streamed)
    reference = _rows_multiset(streamed)
    for shards in (1, 2, 4):
        backend = MemoryBackend(validate=False)
        shard_execute(plan, tree, backend, shards=shards, workers=1, chunk_size=1)
        assert _rows_multiset(backend) == reference


# --------------------------------------------------------------------------- #
# CLI: execution-mode validation and the sharded end-to-end path
# --------------------------------------------------------------------------- #


def _demo_spec(tmp_path, **extra):
    payload = {"dataset": "dblp", "scale": 4, "cache_dir": str(tmp_path / "cache")}
    payload.update(extra)
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(payload))
    return str(path)


@pytest.mark.parametrize(
    "flags, message",
    [
        (["--streaming", "--no-stream"], "conflicts with --no-stream"),
        (["--shards", "2", "--no-stream"], "conflicts with --no-stream"),
        (["--shards", "2", "--streaming"], "different execution modes"),
        (["--shards", "0"], "--shards must be >= 1"),
        (["--chunk-size", "5"], "--chunk-size and --workers only apply"),
        (["--workers", "2"], "--chunk-size and --workers only apply"),
        (["--no-stream", "--chunk-size", "5"], "--chunk-size and --workers only apply"),
    ],
)
def test_cli_rejects_conflicting_execution_flags(tmp_path, capsys, flags, message):
    spec = _demo_spec(tmp_path)
    assert cli_main(["migrate", "--spec", spec, *flags]) == 1
    assert message in capsys.readouterr().err


def test_cli_rejects_conflicting_spec_keys(tmp_path, capsys):
    spec = _demo_spec(tmp_path, streaming=True, shards=2)
    assert cli_main(["migrate", "--spec", spec]) == 1
    assert 'spec keys "streaming" and "shards" conflict' in capsys.readouterr().err
    # ...but a CLI mode flag overrides the conflicting spec keys.
    assert cli_main(["migrate", "--spec", spec, "--no-stream"]) == 0


def test_cli_rejects_memory_backend_with_output(tmp_path, capsys):
    spec = _demo_spec(tmp_path)
    assert cli_main(["migrate", "--spec", spec, "--output", str(tmp_path / "x.db")]) == 1
    assert "memory backend produces no output" in capsys.readouterr().err


def test_cli_rejects_sql_dump_with_columnar(tmp_path, capsys):
    spec = _demo_spec(tmp_path)
    assert (
        cli_main(
            [
                "migrate",
                "--spec",
                spec,
                "--backend",
                "columnar",
                "--output",
                str(tmp_path / "out"),
                "--sql-dump",
                str(tmp_path / "d.sql"),
            ]
        )
        == 1
    )
    assert "--sql-dump only applies" in capsys.readouterr().err


def test_cli_columnar_backend_requires_output(tmp_path, capsys):
    spec = _demo_spec(tmp_path)
    assert cli_main(["migrate", "--spec", spec, "--backend", "columnar"]) == 1
    assert "needs an output directory" in capsys.readouterr().err


def test_cli_sharded_columnar_end_to_end(tmp_path, capsys):
    spec = _demo_spec(tmp_path)
    out = str(tmp_path / "columns")
    assert (
        cli_main(
            ["migrate", "--spec", spec, "--shards", "2",
             "--backend", "columnar", "--output", out]
        )
        == 0
    )
    captured = capsys.readouterr().out
    assert "in 2 shard(s)" in captured
    assert os.path.exists(os.path.join(out, "manifest.json"))
    from repro.runtime.backends import load_table_rows

    manifest = json.loads(open(os.path.join(out, "manifest.json")).read())
    assert manifest["format"] in ("json", "arrow")
    entry = manifest["tables"]["journal"]
    rows = load_table_rows(out, "journal")
    assert len(rows) == entry["rows"] > 0
    assert all(len(row) == len(entry["columns"]) for row in rows)


def test_cli_spec_shards_key(tmp_path, capsys):
    spec = _demo_spec(tmp_path, shards=3)
    assert cli_main(["migrate", "--spec", spec]) == 0
    assert "in 3 shard(s)" in capsys.readouterr().out


def test_cli_non_integer_spec_workers_is_a_usage_error(tmp_path, capsys):
    spec = _demo_spec(tmp_path, shards=2, workers="two")
    assert cli_main(["migrate", "--spec", spec]) == 1
    assert 'spec key "workers" must be an integer' in capsys.readouterr().err


def test_cli_columnar_output_must_be_a_directory(tmp_path, capsys):
    spec = _demo_spec(tmp_path)
    plain = tmp_path / "plain"
    plain.write_text("not a directory")
    assert (
        cli_main(
            ["migrate", "--spec", spec, "--backend", "columnar", "--output", str(plain)]
        )
        == 1
    )
    assert "not a directory" in capsys.readouterr().err
    assert plain.read_text() == "not a directory"  # untouched


def test_cli_force_clears_stale_columnar_output(tmp_path):
    spec = _demo_spec(tmp_path)
    out = tmp_path / "out"
    out.mkdir()
    (out / "old_table.columns.json").write_text("{}")
    assert (
        cli_main(
            ["migrate", "--spec", spec, "--backend", "columnar",
             "--output", str(out), "--force"]
        )
        == 0
    )
    assert not (out / "old_table.columns.json").exists()
    assert (out / "manifest.json").exists()


def test_cli_failed_columnar_run_removes_partial_directory(tmp_path, monkeypatch):
    spec = _demo_spec(tmp_path)
    out = tmp_path / "out"

    def _boom(*args, **kwargs):
        raise RuntimeError("mid-run failure")

    monkeypatch.setattr("repro.runtime.cli.shard_execute", _boom)
    with pytest.raises(RuntimeError):
        cli_main(
            ["migrate", "--spec", spec, "--shards", "2",
             "--backend", "columnar", "--output", str(out)]
        )
    assert not out.exists()


def test_cli_failed_columnar_run_preserves_user_directory(tmp_path, monkeypatch):
    """A pre-existing (user-created) output directory survives a failure;
    only the files this run would have written are cleaned up."""
    spec = _demo_spec(tmp_path)
    out = tmp_path / "out"
    out.mkdir()  # user-created, empty: accepted without --force

    def _boom(*args, **kwargs):
        raise RuntimeError("mid-run failure")

    monkeypatch.setattr("repro.runtime.cli.shard_execute", _boom)
    with pytest.raises(RuntimeError):
        cli_main(
            ["migrate", "--spec", spec, "--shards", "2",
             "--backend", "columnar", "--output", str(out)]
        )
    assert out.exists() and list(out.iterdir()) == []


def test_cli_columnar_format_requires_columnar_backend(tmp_path, capsys):
    spec = _demo_spec(tmp_path)
    assert (
        cli_main(
            ["migrate", "--spec", spec, "--backend", "sqlite",
             "--output", str(tmp_path / "x.db"), "--columnar-format", "json"]
        )
        == 1
    )
    assert "--columnar-format only applies" in capsys.readouterr().err


# --------------------------------------------------------------------------- #
# Checkpointed resume: kill after shard k, resume, identical canonical output
# --------------------------------------------------------------------------- #


class _Abort(Exception):
    """Stands in for SIGKILL: raised from the progress callback mid-map."""


def _abort_after(n):
    def progress(done, total):
        if done >= n:
            raise _Abort()

    return progress


@pytest.mark.parametrize(
    "make_backend", [MemoryBackend, SQLiteBackend, ColumnarBackend]
)
def test_checkpoint_resume_is_canonically_identical(dblp_plan, tmp_path, make_backend):
    """Abort after 2 of 4 shards, resume, and match the uninterrupted run —
    across every backend: the reduce replays resumed and fresh spills alike."""
    document = dblp.dataset(scale=12).generate(12)
    reference = _whole_tree_reference(dblp_plan, document)
    directory = str(tmp_path / "ckpt")
    with pytest.raises(_Abort):
        shard_execute(
            dblp_plan, document, make_backend(), shards=4, workers=1,
            chunk_size=5, checkpoint=ShardCheckpoint(directory),
            progress=_abort_after(2),
        )
    assert os.path.exists(os.path.join(directory, CHECKPOINT_MANIFEST_NAME))
    report = shard_execute(
        dblp_plan, document, make_backend(), shards=4, workers=1,
        chunk_size=5, checkpoint=ShardCheckpoint(directory), resume=True,
    )
    assert report.shards_resumed == 2
    assert report.shards_executed == 2
    assert _canonical(dblp_plan, report.backend) == reference
    # Success clears the checkpoint: no manifest, no spills.
    assert os.listdir(directory) == []


def test_checkpoint_truncated_spill_is_reexecuted(dblp_plan, tmp_path):
    """A spill truncated by a killed worker fails validation and re-runs."""
    document = dblp.dataset(scale=8).generate(8)
    reference = _whole_tree_reference(dblp_plan, document)
    directory = str(tmp_path / "ckpt")
    with pytest.raises(_Abort):
        shard_execute(
            dblp_plan, document, shards=4, workers=1, chunk_size=5,
            checkpoint=ShardCheckpoint(directory), progress=_abort_after(2),
        )
    victim = _spill_path(directory, 0)
    payload = open(victim, "rb").read()
    open(victim, "wb").write(payload[:-7])
    report = shard_execute(
        dblp_plan, document, shards=4, workers=1, chunk_size=5,
        checkpoint=ShardCheckpoint(directory), resume=True,
    )
    assert report.shards_resumed == 1  # only the intact spill survived
    assert report.shards_executed == 3
    assert _canonical(dblp_plan, report.backend) == reference


def test_checkpoint_resume_rejects_changed_parameters(dblp_plan, tmp_path):
    document = dblp.dataset(scale=6).generate(6)
    directory = str(tmp_path / "ckpt")
    with pytest.raises(_Abort):
        shard_execute(
            dblp_plan, document, shards=3, workers=1, chunk_size=5,
            checkpoint=ShardCheckpoint(directory), progress=_abort_after(1),
        )
    with pytest.raises(ShardError, match="different.*shards"):
        shard_execute(
            dblp_plan, document, shards=4, workers=1, chunk_size=5,
            checkpoint=ShardCheckpoint(directory), resume=True,
        )
    with pytest.raises(ShardError, match="different.*chunk_size"):
        shard_execute(
            dblp_plan, document, shards=3, workers=1, chunk_size=9,
            checkpoint=ShardCheckpoint(directory), resume=True,
        )


def test_checkpoint_argument_validation(dblp_plan, tmp_path):
    document = dblp.dataset(scale=3).generate(3)
    with pytest.raises(ShardError, match="needs a checkpoint"):
        shard_execute(dblp_plan, document, shards=2, workers=1, resume=True)
    with pytest.raises(ShardError, match="mutually exclusive"):
        shard_execute(
            dblp_plan, document, shards=2, workers=1,
            checkpoint=ShardCheckpoint(str(tmp_path / "c")),
            spill_dir=str(tmp_path / "s"),
        )


def test_progress_callback_reports_shard_completions(dblp_plan):
    document = dblp.dataset(scale=6).generate(6)
    seen = []
    shard_execute(
        dblp_plan, document, shards=3, workers=1,
        progress=lambda done, total: seen.append((done, total)),
    )
    assert seen == [(0, 3), (1, 3), (2, 3), (3, 3)]


def test_validate_spill_returns_manifest(tmp_path):
    path = _write_spill(tmp_path / "s.spill")
    manifest = validate_spill(path, plan_fingerprint="fp0", shard_index=0)
    assert manifest["per_table_rows"] == {"t": 3}
    with pytest.raises(ShardError):
        validate_spill(path, plan_fingerprint="other", shard_index=0)


def test_cli_resume_flag_validation(tmp_path, capsys):
    spec = _demo_spec(tmp_path)
    assert cli_main(["migrate", "--spec", spec, "--shards", "2", "--resume"]) == 1
    assert "--resume needs --checkpoint-dir" in capsys.readouterr().err
    assert (
        cli_main(
            ["migrate", "--spec", spec,
             "--checkpoint-dir", str(tmp_path / "ckpt")]
        )
        == 1
    )
    assert "only apply to sharded execution" in capsys.readouterr().err


def test_cli_checkpoint_resume_end_to_end(tmp_path, capsys, monkeypatch):
    """`repro migrate --checkpoint-dir` crashes mid-map; `--resume` finishes
    from the first unfinished shard and verify passes on the target."""
    spec = _demo_spec(tmp_path)
    out = tmp_path / "out.db"
    ckpt = tmp_path / "ckpt"
    real_execute = execute_shard
    calls = []

    def flaky(plan, source, spec_, **kwargs):
        calls.append(spec_.index)
        if len(calls) > 1:
            raise RuntimeError("simulated worker crash")
        return real_execute(plan, source, spec_, **kwargs)

    monkeypatch.setattr("repro.runtime.sharded.execute_shard", flaky)
    assert (
        cli_main(
            ["migrate", "--spec", spec, "--shards", "3", "--workers", "1",
             "--backend", "sqlite", "--output", str(out),
             "--checkpoint-dir", str(ckpt)]
        )
        == 1
    )
    degraded = capsys.readouterr()
    assert "failed permanently" in degraded.err
    assert "simulated worker crash" in degraded.err
    assert "--resume" in degraded.err
    monkeypatch.setattr("repro.runtime.sharded.execute_shard", real_execute)
    assert (
        cli_main(
            ["migrate", "--spec", spec, "--shards", "3", "--workers", "1",
             "--backend", "sqlite", "--output", str(out),
             "--checkpoint-dir", str(ckpt), "--resume"]
        )
        == 0
    )
    resumed_output = capsys.readouterr().out
    assert "(1 resumed from checkpoint, 2 executed)" in resumed_output
    assert cli_main(
        ["verify", "--spec", spec, "--backend", "sqlite", "--output", str(out)]
    ) == 0
    assert "verification: PASS" in capsys.readouterr().out
