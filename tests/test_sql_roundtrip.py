"""The SQL dump must actually load into SQLite and reproduce every row.

``generate_sql_dump`` renders DDL + INSERT statements as text; these tests
execute that text in a real ``sqlite3`` database and compare the stored rows
against the source :class:`Database`, guarding the quoting and typing rules
of ``render_value`` (bool-vs-int literals, embedded quotes, NULLs, floats).
"""

import sqlite3

import pytest

from repro.codegen import generate_sql_dump
from repro.relational import ColumnDef, Database, DatabaseSchema, ForeignKey, TableSchema


def _tricky_database() -> Database:
    schema = DatabaseSchema(
        "tricky",
        [
            TableSchema(
                "item",
                [
                    ColumnDef("id", "text", nullable=False),
                    ColumnDef("label", "text"),
                    ColumnDef("count", "integer"),
                    ColumnDef("ratio", "real"),
                    ColumnDef("flag", "integer"),
                ],
                primary_key="id",
            ),
            TableSchema(
                "note",
                [
                    ColumnDef("note_id", "text", nullable=False),
                    ColumnDef("item_id", "text"),
                    ColumnDef("body", "text"),
                ],
                primary_key="note_id",
                foreign_keys=[ForeignKey("item_id", "item", "id")],
            ),
        ],
    )
    database = Database(schema)
    database.insert("item", ("i1", "plain", 3, 1.5, True))
    database.insert("item", ("i2", "O'Brien's \"quote\"", 0, -2.25, False))
    database.insert("item", ("i3", None, None, None, None))
    database.insert("item", ("i4", "semi;colon -- comment", 42, 0.0, True))
    database.insert("note", ("n1", "i1", "references i1"))
    database.insert("note", ("n2", None, "dangling-free NULL fk"))
    return database


def _normalize(value):
    # SQLite stores booleans as the integers render_value emits.
    if isinstance(value, bool):
        return int(value)
    return value


def test_sql_dump_loads_into_sqlite_and_reproduces_rows():
    database = _tricky_database()
    dump = generate_sql_dump(database)
    connection = sqlite3.connect(":memory:")
    connection.execute("PRAGMA foreign_keys = ON")
    connection.executescript(dump)
    for table_schema in database.schema.tables:
        expected = [
            tuple(_normalize(v) for v in row)
            for row in database.table(table_schema.name).rows
        ]
        columns = ", ".join(f'"{c}"' for c in table_schema.column_names)
        actual = connection.execute(
            f'SELECT {columns} FROM "{table_schema.name}" ORDER BY rowid'
        ).fetchall()
        assert actual == expected, f"table {table_schema.name} did not round-trip"
    assert connection.execute("PRAGMA foreign_key_check").fetchall() == []


def test_sql_dump_bool_literals_load_as_integers():
    database = _tricky_database()
    dump = generate_sql_dump(database)
    connection = sqlite3.connect(":memory:")
    connection.executescript(dump)
    flags = [
        row[0]
        for row in connection.execute('SELECT "flag" FROM "item" ORDER BY rowid').fetchall()
    ]
    assert flags == [1, 0, None, 1]
    assert all(value is None or isinstance(value, int) for value in flags)


def test_sql_dump_respects_batch_size():
    """Many rows split across several INSERT statements but load identically."""
    schema = DatabaseSchema(
        "bulk",
        [TableSchema("t", [ColumnDef("n", "integer", nullable=False)], primary_key="n")],
    )
    database = Database(schema)
    for value in range(1200):  # > one 500-row batch
        database.insert("t", (value,))
    dump = generate_sql_dump(database)
    assert dump.count("INSERT INTO") >= 3
    connection = sqlite3.connect(":memory:")
    connection.executescript(dump)
    count, low, high = connection.execute('SELECT COUNT(*), MIN("n"), MAX("n") FROM "t"').fetchone()
    assert (count, low, high) == (1200, 0, 1199)


def test_sql_dump_from_migrated_database():
    """End-to-end: a real migration result survives the dump round-trip."""
    from repro.datasets import dblp
    from repro.runtime import MigrationPlan, execute_plan

    bundle = dblp.dataset(scale=2)
    plan = MigrationPlan.learn(bundle.migration_spec())
    report = execute_plan(plan, bundle.generate(2))
    database = report.backend.database
    connection = sqlite3.connect(":memory:")
    connection.executescript(generate_sql_dump(database))
    for name, table in database.tables.items():
        count = connection.execute(f'SELECT COUNT(*) FROM "{name}"').fetchone()[0]
        assert count == len(table.rows)
