"""Tests for key generation and the whole-database migration engine."""

import pytest

from repro.dsl import Child, NodeVar, Parent
from repro.hdt import build_tree
from repro.migration import (
    ForeignKeyRule,
    LinkRule,
    MigrationEngine,
    MigrationError,
    MigrationSpec,
    TableExampleSpec,
    key_of,
    learn_link_rules,
    path_extractor,
)
from repro.optimizer import execute_nodes
from repro.relational import ColumnDef, DatabaseSchema, ForeignKey, TableSchema


@pytest.fixture
def library_tree():
    return build_tree(
        {
            "author": [
                {
                    "name": "Ada Chen",
                    "country": "NZ",
                    "book": [
                        {"title": "Harbor", "year": 2001},
                        {"title": "Meadow", "year": 2007},
                    ],
                },
                {
                    "name": "Brian Okafor",
                    "country": "NG",
                    "book": [{"title": "Quartz", "year": 2013}],
                },
            ]
        },
        tag="library",
    )


def library_schema() -> DatabaseSchema:
    """A small schema exercising surrogate keys and structural foreign keys."""
    return DatabaseSchema(
        "library",
        [
            TableSchema(
                "author",
                [
                    ColumnDef("author_id", "text", nullable=False),
                    ColumnDef("name", "text"),
                    ColumnDef("country", "text"),
                ],
                primary_key="author_id",
            ),
            TableSchema(
                "book",
                [
                    ColumnDef("book_id", "text", nullable=False),
                    ColumnDef("author_id", "text"),
                    ColumnDef("title", "text"),
                    ColumnDef("year", "integer"),
                ],
                primary_key="book_id",
                foreign_keys=[ForeignKey("author_id", "author", "author_id")],
            ),
        ],
    )


def library_spec(tree) -> MigrationSpec:
    return MigrationSpec(
        schema=library_schema(),
        example_tree=tree,
        table_examples=[
            TableExampleSpec(
                "author",
                [("a1", "Ada Chen", "NZ"), ("a2", "Brian Okafor", "NG")],
            ),
            TableExampleSpec(
                "book",
                [
                    ("b1", "a1", "Harbor", 2001),
                    ("b2", "a1", "Meadow", 2007),
                    ("b3", "a2", "Quartz", 2013),
                ],
            ),
        ],
    )


# --------------------------------------------------------------------------- #
# Key helpers
# --------------------------------------------------------------------------- #


def test_key_of_is_injective(library_tree):
    nodes = list(library_tree.nodes())
    keys = {key_of((a, b)) for a in nodes[:5] for b in nodes[:5]}
    assert len(keys) == 25


def test_path_extractor_parent_then_child(library_tree):
    title = library_tree.find_first("title")
    author_name = title.parent.parent.child_with("name", 0)
    extractor = path_extractor(title, author_name)
    assert isinstance(extractor, Child)
    from repro.dsl import eval_node_extractor

    assert eval_node_extractor(extractor, title) is author_name


def test_path_extractor_identity(library_tree):
    node = library_tree.find_first("name")
    extractor = path_extractor(node, node)
    assert isinstance(extractor, NodeVar)


def test_path_extractor_disjoint_trees(library_tree):
    other = build_tree({"x": 1})
    assert path_extractor(library_tree.root, other.root) is None


def test_learn_link_rules_consistent(library_tree):
    books = library_tree.root.descendants_with_tag("book")
    pairs = []
    for book in books:
        author = book.parent
        pairs.append(
            (
                (book.child_with("title", 0), book.child_with("year", 0)),
                (author.child_with("name", 0), author.child_with("country", 0)),
            )
        )
    rules = learn_link_rules(pairs)
    assert rules is not None and len(rules) == 2
    fk_rule = ForeignKeyRule("author_id", "author", rules)
    for (book_nodes, author_nodes) in pairs:
        assert fk_rule.foreign_key_for(book_nodes) == key_of(author_nodes)


def test_learn_link_rules_empty():
    assert learn_link_rules([]) is None


def test_link_rule_out_of_range(library_tree):
    rule = LinkRule(5, NodeVar())
    assert rule.apply((library_tree.root,)) is None


# --------------------------------------------------------------------------- #
# Migration engine with surrogate keys
# --------------------------------------------------------------------------- #


def test_migration_learn_and_migrate_surrogate_keys(library_tree):
    spec = library_spec(library_tree)
    engine = MigrationEngine()
    result = engine.migrate(spec, library_tree)
    database = result.database
    assert database.row_count("author") == 2
    assert database.row_count("book") == 3
    assert database.validate_foreign_keys() == []
    # every book's author_id resolves to the right author name
    authors = {row[0]: row[1] for row in database.table("author").rows}
    books = database.table("book").rows
    harbor = next(row for row in books if row[2] == "Harbor")
    assert authors[harbor[1]] == "Ada Chen"


def test_migration_scales_to_larger_document(library_tree):
    spec = library_spec(library_tree)
    engine = MigrationEngine()
    bigger = build_tree(
        {
            "author": [
                {
                    "name": f"author{i}",
                    "country": f"country{i}",
                    "book": [{"title": f"t{i}_{j}", "year": 2000 + j} for j in range(3)],
                }
                for i in range(10)
            ]
        },
        tag="library",
    )
    result = engine.migrate(spec, bigger)
    assert result.per_table_rows == {"author": 10, "book": 30}
    assert result.database.validate_foreign_keys() == []
    assert result.total_rows == 40


def test_migration_missing_example_raises(library_tree):
    spec = MigrationSpec(
        schema=library_schema(),
        example_tree=library_tree,
        table_examples=[TableExampleSpec("author", [("a1", "Ada Chen", "NZ")])],
    )
    with pytest.raises(MigrationError):
        MigrationEngine().learn(spec)


def test_migration_result_reports_times(library_tree):
    result = MigrationEngine().migrate(library_spec(library_tree), library_tree)
    assert result.synthesis_time > 0
    assert set(result.per_table_synthesis_time) == {"author", "book"}
    assert set(result.per_table_rows) == {"author", "book"}


def test_table_program_exposes_learned_program(library_tree):
    programs, _ = MigrationEngine().learn(library_spec(library_tree))
    book_program = programs["book"]
    assert book_program.data_columns == ["title", "year"]
    assert len(book_program.foreign_key_rules) == 1
    assert book_program.program.arity == 2
    node_rows = execute_nodes(book_program.program, library_tree)
    assert len(node_rows) == 3


# --------------------------------------------------------------------------- #
# Natural-key path (DBLP-style)
# --------------------------------------------------------------------------- #


def test_migration_natural_keys_small():
    tree = build_tree(
        {
            "article": [
                {"key": "a/1", "title": "T1", "author": [{"name": "X", "position": 1}, {"name": "Y", "position": 2}]},
                {"key": "a/2", "title": "T2", "author": [{"name": "Z", "position": 1}]},
            ]
        },
        tag="dblp",
    )
    schema = DatabaseSchema(
        "mini",
        [
            TableSchema(
                "article",
                [ColumnDef("key", "text", nullable=False), ColumnDef("title", "text")],
                primary_key="key",
                natural_keys=True,
            ),
            TableSchema(
                "authorship",
                [
                    ColumnDef("article_key", "text", nullable=False),
                    ColumnDef("author_name", "text"),
                    ColumnDef("position", "integer"),
                ],
                foreign_keys=[ForeignKey("article_key", "article", "key")],
                natural_keys=True,
            ),
        ],
    )
    spec = MigrationSpec(
        schema=schema,
        example_tree=tree,
        table_examples=[
            TableExampleSpec("article", [("a/1", "T1"), ("a/2", "T2")]),
            TableExampleSpec(
                "authorship", [("a/1", "X", 1), ("a/1", "Y", 2), ("a/2", "Z", 1)]
            ),
        ],
    )
    result = MigrationEngine().migrate(spec, tree)
    assert result.per_table_rows == {"article": 2, "authorship": 3}
    assert result.database.validate_foreign_keys() == []
