"""Tests for the columnar execution backend and the backend registry."""

import json
import os

import pytest

from repro.datasets import dblp
from repro.runtime import MemoryBackend, MigrationPlan, execute_plan
from repro.runtime.backends import (
    HAVE_PYARROW,
    ColumnarBackend,
    ColumnarBackendError,
    available_backends,
    create_backend,
    load_table_rows,
)
from repro.runtime.backends.columnar import MANIFEST_NAME
from repro.relational import ColumnDef, DatabaseSchema, TableSchema


@pytest.fixture(scope="module")
def dblp_plan():
    return MigrationPlan.learn(dblp.dataset(scale=3).migration_spec())


def _simple_schema():
    return DatabaseSchema(
        name="db",
        tables=[
            TableSchema(
                "t",
                [ColumnDef("a", "text"), ColumnDef("n", "integer")],
                natural_keys=True,
            )
        ],
    )


# --------------------------------------------------------------------------- #
# In-memory batches
# --------------------------------------------------------------------------- #


def test_columnar_matches_memory_backend(dblp_plan):
    document = dblp.dataset(scale=10).generate(10)
    memory = execute_plan(dblp_plan, document, MemoryBackend()).backend
    columnar = execute_plan(dblp_plan, document, ColumnarBackend()).backend
    for table in dblp_plan.schema.table_names:
        # Both store Python values verbatim, so rows agree exactly —
        # including surrogate keys (same process, same node uids).
        assert columnar.fetch_rows(table) == memory.fetch_rows(table)
        assert columnar.row_count(table) == len(memory.fetch_rows(table))


def test_batch_sealing():
    backend = ColumnarBackend(batch_size=3)
    backend.begin(_simple_schema())
    assert backend.insert_rows("t", [("r%d" % i, i) for i in range(8)]) == 8
    # Mid-execution reads include the open batch.
    assert len(backend.fetch_rows("t")) == 8
    backend.finalize()
    batches = backend.batches("t")
    assert [b.num_rows for b in batches] == [3, 3, 2]
    assert [row for b in batches for row in b.rows()] == backend.fetch_rows("t")


def test_insert_arity_mismatch_and_unknown_table():
    backend = ColumnarBackend()
    backend.begin(_simple_schema())
    with pytest.raises(ColumnarBackendError, match="arity"):
        backend.insert_rows("t", [("only-one-cell",)])
    with pytest.raises(ColumnarBackendError, match="unknown table"):
        backend.insert_rows("nope", [("a", 1)])


def test_finalize_requires_begin():
    with pytest.raises(ColumnarBackendError, match="begin"):
        ColumnarBackend().finalize()


# --------------------------------------------------------------------------- #
# File output: JSON-columns fallback (always available)
# --------------------------------------------------------------------------- #


def test_json_columns_roundtrip(tmp_path):
    out = str(tmp_path / "out")
    backend = ColumnarBackend(out, batch_size=2, file_format="json")
    backend.begin(_simple_schema())
    rows = [("a", 1), ("b", 2), ("c", None)]
    backend.insert_rows("t", rows)
    backend.finalize()
    manifest = json.loads(open(os.path.join(out, MANIFEST_NAME)).read())
    assert manifest["format"] == "json"
    assert manifest["tables"]["t"]["rows"] == 3
    assert manifest["tables"]["t"]["columns"] == ["a", "n"]
    assert load_table_rows(out, "t") == rows
    with pytest.raises(ColumnarBackendError, match="not in"):
        load_table_rows(out, "unknown")


def test_load_table_rows_without_manifest(tmp_path):
    with pytest.raises(ColumnarBackendError, match="cannot read"):
        load_table_rows(str(tmp_path), "t")


def test_default_format_matches_environment():
    assert ColumnarBackend().file_format == ("arrow" if HAVE_PYARROW else "json")


def test_unknown_file_format_rejected():
    with pytest.raises(ColumnarBackendError, match="unknown file format"):
        ColumnarBackend(file_format="orc")


@pytest.mark.skipif(HAVE_PYARROW, reason="pyarrow installed: arrow formats work")
def test_arrow_formats_fail_early_without_pyarrow():
    for fmt in ("arrow", "parquet"):
        with pytest.raises(ColumnarBackendError, match="needs pyarrow"):
            ColumnarBackend(file_format=fmt)


@pytest.mark.skipif(not HAVE_PYARROW, reason="pyarrow not installed")
@pytest.mark.parametrize("fmt", ["arrow", "parquet"])
def test_arrow_family_roundtrip(tmp_path, fmt):  # pragma: no cover - needs pyarrow
    out = str(tmp_path / fmt)
    backend = ColumnarBackend(out, batch_size=2, file_format=fmt)
    backend.begin(_simple_schema())
    rows = [("a", 1), ("b", 2), ("c", None)]
    backend.insert_rows("t", rows)
    backend.finalize()
    assert load_table_rows(out, "t") == rows


# --------------------------------------------------------------------------- #
# The registry
# --------------------------------------------------------------------------- #


def test_registry_names_and_dispatch(tmp_path):
    assert available_backends() == ("memory", "sqlite", "columnar")
    assert type(create_backend("memory")).__name__ == "MemoryBackend"
    sqlite = create_backend("sqlite", str(tmp_path / "x.db"))
    assert type(sqlite).__name__ == "SQLiteBackend"
    columnar = create_backend("columnar", str(tmp_path / "dir"), batch_size=4)
    assert isinstance(columnar, ColumnarBackend)
    assert columnar.batch_size == 4


def test_registry_rejects_bad_combinations(tmp_path):
    with pytest.raises(ValueError, match="unknown backend"):
        create_backend("duckdb")
    with pytest.raises(ValueError, match="no output path"):
        create_backend("memory", str(tmp_path / "x"))
    with pytest.raises(ValueError, match="needs an output path"):
        create_backend("sqlite")
