"""Tests for the columnar execution backend and the backend registry."""

import json
import os

import pytest

from repro.datasets import dblp
from repro.runtime import MemoryBackend, MigrationPlan, execute_plan
from repro.runtime.backends import (
    HAVE_DUCKDB,
    HAVE_PYARROW,
    ColumnarBackend,
    ColumnarBackendError,
    DuckDBBackendError,
    available_backends,
    create_backend,
    load_table_rows,
)
from repro.runtime.backends.columnar import MANIFEST_NAME
from repro.relational import ColumnDef, DatabaseSchema, TableSchema


@pytest.fixture(scope="module")
def dblp_plan():
    return MigrationPlan.learn(dblp.dataset(scale=3).migration_spec())


def _simple_schema():
    return DatabaseSchema(
        name="db",
        tables=[
            TableSchema(
                "t",
                [ColumnDef("a", "text"), ColumnDef("n", "integer")],
                natural_keys=True,
            )
        ],
    )


# --------------------------------------------------------------------------- #
# In-memory batches
# --------------------------------------------------------------------------- #


def test_columnar_matches_memory_backend(dblp_plan):
    document = dblp.dataset(scale=10).generate(10)
    memory = execute_plan(dblp_plan, document, MemoryBackend()).backend
    columnar = execute_plan(dblp_plan, document, ColumnarBackend()).backend
    for table in dblp_plan.schema.table_names:
        # Both store Python values verbatim, so rows agree exactly —
        # including surrogate keys (same process, same node uids).
        assert columnar.fetch_rows(table) == memory.fetch_rows(table)
        assert columnar.row_count(table) == len(memory.fetch_rows(table))


def test_batch_sealing():
    backend = ColumnarBackend(batch_size=3)
    backend.begin(_simple_schema())
    assert backend.insert_rows("t", [("r%d" % i, i) for i in range(8)]) == 8
    # Mid-execution reads include the open batch.
    assert len(backend.fetch_rows("t")) == 8
    backend.finalize()
    batches = backend.batches("t")
    assert [b.num_rows for b in batches] == [3, 3, 2]
    assert [row for b in batches for row in b.rows()] == backend.fetch_rows("t")


def test_insert_arity_mismatch_and_unknown_table():
    backend = ColumnarBackend()
    backend.begin(_simple_schema())
    with pytest.raises(ColumnarBackendError, match="arity"):
        backend.insert_rows("t", [("only-one-cell",)])
    with pytest.raises(ColumnarBackendError, match="unknown table"):
        backend.insert_rows("nope", [("a", 1)])


def test_finalize_requires_begin():
    with pytest.raises(ColumnarBackendError, match="begin"):
        ColumnarBackend().finalize()


# --------------------------------------------------------------------------- #
# File output: JSON-columns fallback (always available)
# --------------------------------------------------------------------------- #


def test_json_columns_roundtrip(tmp_path):
    out = str(tmp_path / "out")
    backend = ColumnarBackend(out, batch_size=2, file_format="json")
    backend.begin(_simple_schema())
    rows = [("a", 1), ("b", 2), ("c", None)]
    backend.insert_rows("t", rows)
    backend.finalize()
    manifest = json.loads(open(os.path.join(out, MANIFEST_NAME)).read())
    assert manifest["format"] == "json"
    assert manifest["tables"]["t"]["rows"] == 3
    assert manifest["tables"]["t"]["columns"] == ["a", "n"]
    assert load_table_rows(out, "t") == rows
    with pytest.raises(ColumnarBackendError, match="not in"):
        load_table_rows(out, "unknown")


def test_load_table_rows_without_manifest(tmp_path):
    with pytest.raises(ColumnarBackendError, match="cannot read"):
        load_table_rows(str(tmp_path), "t")


def test_default_format_matches_environment():
    assert ColumnarBackend().file_format == ("arrow" if HAVE_PYARROW else "json")


def test_unknown_file_format_rejected():
    with pytest.raises(ColumnarBackendError, match="unknown file format"):
        ColumnarBackend(file_format="orc")


@pytest.mark.skipif(HAVE_PYARROW, reason="pyarrow installed: arrow formats work")
def test_arrow_formats_fail_early_without_pyarrow():
    for fmt in ("arrow", "parquet"):
        with pytest.raises(ColumnarBackendError, match="needs pyarrow"):
            ColumnarBackend(file_format=fmt)


@pytest.mark.skipif(not HAVE_PYARROW, reason="pyarrow not installed")
@pytest.mark.parametrize("fmt", ["arrow", "parquet"])
def test_arrow_family_roundtrip(tmp_path, fmt):  # pragma: no cover - needs pyarrow
    out = str(tmp_path / fmt)
    backend = ColumnarBackend(out, batch_size=2, file_format=fmt)
    backend.begin(_simple_schema())
    rows = [("a", 1), ("b", 2), ("c", None)]
    backend.insert_rows("t", rows)
    backend.finalize()
    assert load_table_rows(out, "t") == rows


# --------------------------------------------------------------------------- #
# Streamed batches (spill=True) vs materialize-at-finalize (spill=False)
# --------------------------------------------------------------------------- #


def _write_rows(directory, rows, *, spill, batch_size=4, dictionary="auto"):
    backend = ColumnarBackend(
        str(directory),
        batch_size=batch_size,
        file_format="json",
        spill=spill,
        dictionary=dictionary,
    )
    backend.begin(_simple_schema())
    backend.insert_rows("t", rows)
    backend.finalize()
    return backend


def test_spill_and_materialize_bytes_identical(tmp_path):
    # Both modes route batches through the same writers, so the files (and
    # the manifest) are byte-for-byte identical — only peak memory differs.
    rows = [("v%d" % (i % 2), i) for i in range(11)]
    _write_rows(tmp_path / "spill", rows, spill=True)
    _write_rows(tmp_path / "mat", rows, spill=False)
    for name in ("t.columns.json", MANIFEST_NAME):
        spilled = (tmp_path / "spill" / name).read_bytes()
        materialized = (tmp_path / "mat" / name).read_bytes()
        assert spilled == materialized
    assert load_table_rows(str(tmp_path / "spill"), "t") == rows


def test_spill_streams_sealed_batches_out_of_memory(tmp_path):
    backend = ColumnarBackend(
        str(tmp_path / "out"), batch_size=2, file_format="json"
    )
    backend.begin(_simple_schema())
    backend.insert_rows("t", [("r%d" % i, i) for i in range(7)])
    # Sealed batches went straight to the writer — nothing retained.
    assert backend._buffers["t"].batches == []
    assert backend.row_count("t") == 7
    # Mid-run reads of spilled data are a clear error, not silent truncation.
    with pytest.raises(ColumnarBackendError, match="spilled to disk"):
        backend.fetch_rows("t")
    with pytest.raises(ColumnarBackendError, match="streamed to disk"):
        backend.batches("t")
    backend.finalize()
    # After finalize, fetch_rows answers from the finished files.
    assert backend.fetch_rows("t") == [("r%d" % i, i) for i in range(7)]


# --------------------------------------------------------------------------- #
# Dictionary encoding
# --------------------------------------------------------------------------- #


def test_dictionary_roundtrip_identical_across_modes(tmp_path):
    # None-heavy, single-distinct and mixed columns must decode row-for-row
    # identically whether encoded always, never, or by the auto heuristic.
    rows = (
        [("only", None)] * 5
        + [(None, 1), (None, 2), ("only", 3)]
        + [("x%d" % i, i) for i in range(4)]
    )
    decoded = {}
    for label, dictionary in (("on", True), ("off", False), ("auto", "auto")):
        directory = tmp_path / label
        _write_rows(directory, rows, spill=True, dictionary=dictionary)
        decoded[label] = load_table_rows(str(directory), "t")
    assert decoded["on"] == decoded["off"] == decoded["auto"] == rows
    # dictionary=True stores codes; dictionary=False stores plain lists.
    assert '"d":' in (tmp_path / "on" / "t.columns.json").read_text()
    assert '"d":' not in (tmp_path / "off" / "t.columns.json").read_text()


def test_dictionary_auto_heuristic():
    from repro.runtime.backends.columnar import _should_dict_encode

    assert _should_dict_encode(["a"] * 8, "auto")  # single distinct value
    assert _should_dict_encode(["a", "a", "b", "b"], "auto")  # half distinct
    assert not _should_dict_encode(["a", "b", "c"], "auto")  # all distinct
    assert not _should_dict_encode([], "auto")
    assert _should_dict_encode(["a", "b", "c"], True)
    assert not _should_dict_encode(["a"] * 8, False)


def test_dictionary_mode_validated():
    with pytest.raises(ColumnarBackendError, match="dictionary"):
        ColumnarBackend(dictionary="sometimes")


# --------------------------------------------------------------------------- #
# Abort cleanup: close() before finalize() scrubs partial output
# --------------------------------------------------------------------------- #


def test_abort_removes_partial_files(tmp_path):
    from repro.runtime.backends.columnar import read_table_rows

    out = tmp_path / "out"
    backend = ColumnarBackend(str(out), batch_size=2, file_format="json")
    backend.begin(_simple_schema())
    backend.insert_rows("t", [("a", 1), ("b", 2), ("c", 3)])  # seals a batch
    backend.close()  # abort: no finalize happened
    assert os.listdir(out) == []  # no partial table file, no manifest
    with pytest.raises(ColumnarBackendError, match="cannot read"):
        read_table_rows(str(out), _simple_schema())
    backend.close()  # idempotent


def test_close_after_finalize_keeps_output(tmp_path):
    out = tmp_path / "out"
    backend = _write_rows(out, [("a", 1)], spill=True)
    backend.close()
    assert load_table_rows(str(out), "t") == [("a", 1)]


def test_sharded_reduce_failure_leaves_clean_directory(tmp_path, monkeypatch):
    """A reduce-stage crash (truncate_spill-style: the replayed stream dies
    mid-batch) must abort the streaming columnar backend — the output
    directory ends up empty instead of holding a manifest that points at
    unreadable half-written batch files."""
    import repro.runtime.sharded as sharded_module
    from repro.runtime.backends.columnar import read_table_rows
    from repro.runtime.sharded import ShardError, shard_execute

    real_iter_spill = sharded_module.iter_spill

    def dying_replay(path, **kwargs):
        iterator = real_iter_spill(path, **kwargs)
        yield next(iterator)
        raise ShardError("spill truncated mid-replay (injected)")

    monkeypatch.setattr(sharded_module, "iter_spill", dying_replay)
    plan = MigrationPlan.learn(dblp.dataset(scale=3).migration_spec())
    out = tmp_path / "columnar"
    backend = ColumnarBackend(str(out), batch_size=4, file_format="json")
    with pytest.raises(ShardError, match="injected"):
        shard_execute(plan, dblp.dataset(scale=3).generate(6), backend, shards=2, workers=1)
    assert os.listdir(out) == []
    with pytest.raises(ColumnarBackendError, match="cannot read"):
        read_table_rows(str(out), plan.schema)


# --------------------------------------------------------------------------- #
# The registry
# --------------------------------------------------------------------------- #


def test_registry_names_and_dispatch(tmp_path):
    assert available_backends() == ("memory", "sqlite", "columnar", "duckdb")
    assert type(create_backend("memory")).__name__ == "MemoryBackend"
    sqlite = create_backend("sqlite", str(tmp_path / "x.db"))
    assert type(sqlite).__name__ == "SQLiteBackend"
    columnar = create_backend("columnar", str(tmp_path / "dir"), batch_size=4)
    assert isinstance(columnar, ColumnarBackend)
    assert columnar.batch_size == 4


def test_registry_rejects_bad_combinations(tmp_path):
    with pytest.raises(ValueError, match="unknown backend"):
        create_backend("orc")
    with pytest.raises(ValueError, match="no output path"):
        create_backend("memory", str(tmp_path / "x"))
    with pytest.raises(ValueError, match="needs an output path"):
        create_backend("sqlite")
    with pytest.raises(ValueError, match="needs an output path"):
        create_backend("duckdb")


def test_duckdb_registered_but_guarded(tmp_path):
    # duckdb is always a *recognized* name; without the library installed,
    # construction fails with a pointer at the extra instead of "unknown".
    assert "duckdb" in available_backends()
    if not HAVE_DUCKDB:
        with pytest.raises(DuckDBBackendError, match="pip install repro\\[duckdb\\]"):
            create_backend("duckdb", str(tmp_path / "x.duckdb"))
