"""Tests for the migration service (`repro.runtime.service`) and `verify`.

Covers the PR-6 subsystem: durable job records and daemon recovery, the
shard checkpoint's validation semantics, the job runner (warm plan reuse,
dry runs, cooperative cancel, resume), the HTTP/JSON API end to end, the
post-run verification layer, and the new CLI surface (``--dry-run``,
``--report-json``, ``repro verify``).
"""

import importlib
import json
import os
import sqlite3
import threading
import time
import urllib.error
import urllib.request
import warnings

import pytest

from repro.datasets import dblp
from repro.relational import ColumnDef, DatabaseSchema, ForeignKey, TableSchema
from repro.runtime.cli import main as cli_main
from repro.runtime.service import (
    CHECKPOINT_MANIFEST_NAME,
    JobRunner,
    JobStore,
    MigrationService,
    ShardCheckpoint,
)
from repro.runtime.service.jobs import JobError
from repro.runtime.verify import VerificationError, read_target_rows, verify_rows

TERMINAL = ("succeeded", "failed", "cancelled")


def _demo_spec(tmp_path, **extra):
    payload = {"dataset": "dblp", "scale": 4, "cache_dir": str(tmp_path / "cache")}
    payload.update(extra)
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(payload))
    return str(path)


# --------------------------------------------------------------------------- #
# Job store: durable records, recovery
# --------------------------------------------------------------------------- #


def test_job_store_roundtrip_and_recovery(tmp_path):
    store = JobStore(str(tmp_path))
    job = store.create("migrate", {"shards": 3})
    job.state = "running"
    store.save(job)
    (tmp_path / "junk.json").write_text("{not json at all")
    reloaded = JobStore(str(tmp_path))
    assert reloaded.get(job.id).params == {"shards": 3}
    interrupted = reloaded.recover()
    assert [j.id for j in interrupted] == [job.id]
    assert reloaded.get(job.id).state == "interrupted"
    # Recovery is persisted: a third load sees the transition.
    assert JobStore(str(tmp_path)).get(job.id).state == "interrupted"


def test_job_store_ids_survive_restarts(tmp_path):
    store = JobStore(str(tmp_path))
    assert store.create("learn", {}).id == "job-000001"
    assert store.create("run", {}).id == "job-000002"
    assert JobStore(str(tmp_path)).create("verify", {}).id == "job-000003"
    with pytest.raises(JobError, match="unknown job kind"):
        store.create("explode", {})
    with pytest.raises(JobError, match="unknown job"):
        store.get("job-999999")


# --------------------------------------------------------------------------- #
# Checkpoint manifest semantics (resume paths are covered in test_sharded)
# --------------------------------------------------------------------------- #


def test_checkpoint_fresh_begin_clears_leftover_spills(tmp_path):
    directory = tmp_path / "ckpt"
    directory.mkdir()
    (directory / "shard-00000.spill").write_bytes(b"stale")
    checkpoint = ShardCheckpoint(str(directory))
    completed = checkpoint.begin(
        plan_fingerprint="fp", shards=2, chunk_size=10, records=7, resume=False
    )
    assert completed == {}
    assert not (directory / "shard-00000.spill").exists()
    assert (directory / CHECKPOINT_MANIFEST_NAME).exists()
    checkpoint.mark_complete(0, {"shard": 0, "chunks": 1})
    assert ShardCheckpoint(str(directory)).completed_indices() == {
        0: {"shard": 0, "chunks": 1}
    }
    checkpoint.finish()
    assert list(directory.iterdir()) == []


def test_checkpoint_corrupt_manifest_is_a_fresh_start(tmp_path):
    directory = tmp_path / "ckpt"
    directory.mkdir()
    (directory / CHECKPOINT_MANIFEST_NAME).write_text("][ not json")
    checkpoint = ShardCheckpoint(str(directory))
    assert checkpoint.load() is None
    completed = checkpoint.begin(
        plan_fingerprint="fp", shards=2, chunk_size=10, records=7, resume=True
    )
    assert completed == {}


# --------------------------------------------------------------------------- #
# Verification invariants
# --------------------------------------------------------------------------- #


def _toy_schema():
    return DatabaseSchema(
        name="toy",
        tables=[
            TableSchema(
                name="author",
                columns=[ColumnDef("id"), ColumnDef("name")],
                primary_key="id",
            ),
            TableSchema(
                name="book",
                columns=[ColumnDef("id"), ColumnDef("author")],
                primary_key="id",
                foreign_keys=[ForeignKey("author", "author", "id")],
            ),
        ],
    )


def test_verify_rows_passes_on_consistent_target():
    schema = _toy_schema()
    rows = {
        "author": [("a1", "Ada"), ("a2", "Grace")],
        "book": [("b1", "a1"), ("b2", "a2"), ("b3", None)],
    }
    report = verify_rows(schema, rows, {"author": 2, "book": 3})
    assert report.passed
    assert "verification: PASS" in report.describe()
    payload = report.to_json()
    assert payload["kind"] == "repro_verification_report"
    assert payload["tables"]["book"]["rows"] == 3


def test_verify_rows_flags_every_invariant():
    schema = _toy_schema()
    rows = {
        "author": [("a1", "Ada"), ("a1", "Twin"), (None, "Ghost")],
        "book": [("b1", "a9"), ("b1", "a1")],
    }
    report = verify_rows(schema, rows, {"author": 2, "book": 2})
    problems = {c.table: c.problems for c in report.tables}
    assert any("row count mismatch" in p for p in problems["author"])
    assert any("duplicate" in p for p in problems["author"])
    assert any("NULL" in p for p in problems["author"])
    assert any("dangles" in p for p in problems["book"])
    assert any("duplicate" in p for p in problems["book"])
    assert not report.passed


def test_verify_rows_missing_table_fails():
    report = verify_rows(_toy_schema(), {"author": [("a1", "Ada")]})
    by_table = {c.table: c for c in report.tables}
    assert by_table["book"].problems == ["table is missing from the target"]
    assert by_table["author"].passed


def test_read_target_rows_error_paths(tmp_path):
    schema = _toy_schema()
    with pytest.raises(VerificationError, match="no on-disk target"):
        read_target_rows("memory", None, schema)
    with pytest.raises(VerificationError, match="unknown backend"):
        read_target_rows("bogus", "x", schema)
    with pytest.raises(Exception, match="not found"):
        read_target_rows("sqlite", str(tmp_path / "missing.db"), schema)


# --------------------------------------------------------------------------- #
# Job runner: dry runs, warm plans, cancel, resume
# --------------------------------------------------------------------------- #


def _await(runner, job_id, timeout=90):
    deadline = time.time() + timeout
    while time.time() < deadline:
        job = runner.store.get(job_id)
        if job.state in TERMINAL:
            return job
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} did not finish in {timeout}s")


@pytest.fixture
def runner(tmp_path):
    instance = JobRunner(str(tmp_path / "state"), max_workers=1)
    yield instance
    instance.close(wait=False)


SPEC_PARAMS = {"spec": {"dataset": "dblp", "scale": 3}, "shards": 2, "workers": 1}


def test_runner_dry_run_then_warm_plan_reuse(runner):
    job = runner.submit("migrate", dict(SPEC_PARAMS, dry_run=True))
    job = _await(runner, job.id)
    assert job.state == "succeeded", job.error
    assert job.report["backend"] == "null"
    assert job.report["dry_run"] is True
    assert job.report["output"] is None
    assert job.report["total_rows"] == sum(dblp.ground_truth_counts(3).values())
    # Same spec again: the plan must come from the daemon's in-memory memo.
    second = _await(runner, runner.submit("migrate", dict(SPEC_PARAMS, dry_run=True)).id)
    assert second.state == "succeeded", second.error
    assert second.provenance == "warm (daemon memory)"


def test_runner_migrate_sqlite_then_verify_job(runner):
    job = _await(runner, runner.submit("migrate", dict(SPEC_PARAMS, backend="sqlite")).id)
    assert job.state == "succeeded", job.error
    output = job.report["output"]
    assert output and os.path.exists(output)
    assert job.report["backend"] == "sqlite"
    verify = _await(runner, runner.submit("verify", {"job": job.id}).id)
    assert verify.state == "succeeded", verify.error
    assert verify.report["passed"] is True
    # Corrupt the target; the verify job now reports failure per table.
    connection = sqlite3.connect(output)
    connection.execute("DELETE FROM journal")
    connection.commit()
    connection.close()
    broken = _await(runner, runner.submit("verify", {"job": job.id}).id)
    assert broken.state == "succeeded"
    assert broken.report["passed"] is False
    assert broken.error == "verification failed"
    assert not broken.report["tables"]["journal"]["passed"]


def test_runner_run_without_plan_fails_cleanly(runner):
    job = _await(runner, runner.submit("run", dict(SPEC_PARAMS, dry_run=True)).id)
    assert job.state == "failed"
    assert "plan" in job.error


def test_runner_cancel_then_resume_completes(runner):
    params = dict(SPEC_PARAMS, backend="sqlite", shards=4, shard_delay=0.3)
    job = runner.submit("migrate", params)
    deadline = time.time() + 60
    while time.time() < deadline:
        current = runner.store.get(job.id)
        if current.progress.get("shards_done", 0) >= 1:
            break
        time.sleep(0.02)
    runner.cancel(job.id)
    job = _await(runner, job.id)
    assert job.state == "cancelled"
    resumed = runner.resume(job.id)
    assert resumed.resumes == 1
    job = _await(runner, job.id)
    assert job.state == "succeeded", job.error
    assert job.report["shards_resumed"] >= 1
    assert job.report["shards_executed"] < job.report["shards"]
    with pytest.raises(JobError, match="can be resumed"):
        runner.resume(job.id)
    with pytest.raises(JobError, match="nothing to cancel"):
        runner.cancel(job.id)


def test_runner_start_recovers_interrupted_jobs(tmp_path):
    state = str(tmp_path / "state")
    store = JobStore(os.path.join(state, "jobs"))
    job = store.create("migrate", dict(SPEC_PARAMS, dry_run=True))
    job.state = "running"
    store.save(job)
    runner = JobRunner(state, max_workers=1)
    try:
        interrupted = runner.start()
        assert [j.id for j in interrupted] == [job.id]
        assert runner.store.get(job.id).state == "interrupted"
        runner.resume(job.id)
        finished = _await(runner, job.id)
        assert finished.state == "succeeded", finished.error
    finally:
        runner.close(wait=False)


# --------------------------------------------------------------------------- #
# HTTP API
# --------------------------------------------------------------------------- #


def _request(port, path, method="GET", body=None):
    data = json.dumps(body).encode("utf-8") if body is not None else None
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=data,
        method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def test_http_api_end_to_end(tmp_path):
    service = MigrationService(
        str(tmp_path / "state"), ("127.0.0.1", 0), max_workers=1, quiet=True
    )
    thread = threading.Thread(target=service.serve_forever, daemon=True)
    thread.start()
    port = service.port
    try:
        status, health = _request(port, "/health")
        assert (status, health["status"]) == (200, "ok")

        status, job = _request(
            port,
            "/jobs",
            "POST",
            {"kind": "migrate", "params": dict(SPEC_PARAMS, backend="sqlite")},
        )
        assert status == 201
        job_id = job["id"]
        deadline = time.time() + 90
        while time.time() < deadline:
            status, job = _request(port, f"/jobs/{job_id}")
            if job["state"] in TERMINAL:
                break
            time.sleep(0.1)
        assert job["state"] == "succeeded", job["error"]

        status, report = _request(port, f"/jobs/{job_id}/report")
        assert status == 200
        assert report["kind"] == "repro_execution_report"
        assert report["total_rows"] == sum(dblp.ground_truth_counts(3).values())

        status, verify_job = _request(
            port, "/jobs", "POST", {"kind": "verify", "params": {"job": job_id}}
        )
        assert status == 201
        while time.time() < deadline:
            status, verify_job = _request(port, f"/jobs/{verify_job['id']}")
            if verify_job["state"] in TERMINAL:
                break
            time.sleep(0.1)
        assert verify_job["state"] == "succeeded", verify_job["error"]
        status, verdict = _request(port, f"/jobs/{verify_job['id']}/report")
        assert verdict["passed"] is True

        status, listing = _request(port, "/jobs")
        assert {j["id"] for j in listing["jobs"]} == {job_id, verify_job["id"]}

        assert _request(port, "/jobs/job-999999")[0] == 404
        assert _request(port, "/jobs", "POST", {"kind": "explode"})[0] == 400
        assert _request(port, "/jobs", "POST", {"kind": "run", "params": 3})[0] == 400
        assert _request(port, "/nope")[0] == 404
        assert _request(port, f"/jobs/{job_id}/resume", "POST")[0] == 409

        status, _ = _request(port, "/shutdown", "POST")
        assert status == 200
        thread.join(timeout=10)
        assert not thread.is_alive()
    finally:
        service.runner.close(wait=False)
        service.server_close()


# --------------------------------------------------------------------------- #
# CLI: --dry-run, --report-json, verify
# --------------------------------------------------------------------------- #


def test_cli_dry_run_writes_nothing_and_reports(tmp_path, capsys):
    spec = _demo_spec(tmp_path)
    report_path = tmp_path / "report.json"
    assert (
        cli_main(
            ["migrate", "--spec", spec, "--dry-run", "--shards", "2",
             "--workers", "1", "--report-json", str(report_path)]
        )
        == 0
    )
    output = capsys.readouterr().out
    assert "would load" in output
    assert "dry run: no rows were written" in output
    payload = json.loads(report_path.read_text())
    assert payload["kind"] == "repro_execution_report"
    assert payload["backend"] == "null"
    assert payload["dry_run"] is True
    assert payload["output"] is None
    assert payload["total_rows"] == sum(dblp.ground_truth_counts(4).values())


def test_cli_dry_run_conflicts_with_output_flags(tmp_path, capsys):
    spec = _demo_spec(tmp_path)
    assert (
        cli_main(
            ["migrate", "--spec", spec, "--dry-run",
             "--backend", "sqlite", "--output", str(tmp_path / "x.db")]
        )
        == 1
    )
    assert "--dry-run writes nothing" in capsys.readouterr().err


def test_cli_report_json_matches_execution(tmp_path, capsys):
    spec = _demo_spec(tmp_path)
    out = tmp_path / "out.db"
    report_path = tmp_path / "report.json"
    assert (
        cli_main(
            ["migrate", "--spec", spec, "--backend", "sqlite",
             "--output", str(out), "--report-json", str(report_path)]
        )
        == 0
    )
    payload = json.loads(report_path.read_text())
    assert payload["backend"] == "sqlite"
    assert payload["output"] == str(out)
    assert payload["per_table_rows"] == dblp.ground_truth_counts(4)
    assert payload["shards_resumed"] == 0


def test_cli_verify_detects_deliberate_corruption(tmp_path, capsys):
    spec = _demo_spec(tmp_path)
    out = tmp_path / "out.db"
    report_path = tmp_path / "report.json"
    assert (
        cli_main(
            ["migrate", "--spec", spec, "--backend", "sqlite",
             "--output", str(out), "--report-json", str(report_path)]
        )
        == 0
    )
    assert (
        cli_main(["verify", "--spec", spec, "--backend", "sqlite", "--output", str(out)])
        == 0
    )
    assert "verification: PASS" in capsys.readouterr().out
    connection = sqlite3.connect(str(out))
    connection.execute("DELETE FROM journal WHERE rowid = 1")
    connection.commit()
    connection.close()
    verdict_path = tmp_path / "verdict.json"
    assert (
        cli_main(
            ["verify", "--spec", spec, "--backend", "sqlite", "--output", str(out),
             "--expect-report", str(report_path), "--report-json", str(verdict_path)]
        )
        == 1
    )
    output = capsys.readouterr().out
    assert "row count mismatch" in output
    assert "dangles" in output
    assert "verification: FAIL" in output
    verdict = json.loads(verdict_path.read_text())
    assert verdict["passed"] is False
    assert verdict["tables"]["journal"]["passed"] is False


def test_cli_verify_usage_errors(tmp_path, capsys):
    spec = _demo_spec(tmp_path)
    assert cli_main(["verify", "--spec", spec]) == 1
    assert "verify needs --backend" in capsys.readouterr().err
    assert (
        cli_main(
            ["verify", "--spec", spec, "--backend", "sqlite",
             "--output", str(tmp_path / "missing.db")]
        )
        == 1
    )
    assert "not found" in capsys.readouterr().err
    bogus = tmp_path / "bogus.json"
    bogus.write_text('{"kind": "something-else"}')
    assert (
        cli_main(
            ["verify", "--spec", spec, "--backend", "sqlite",
             "--output", str(tmp_path / "missing.db"),
             "--expect-report", str(bogus)]
        )
        == 1
    )
    assert "not an execution report" in capsys.readouterr().err


# --------------------------------------------------------------------------- #
# The deprecated sqlite_backend shim
# --------------------------------------------------------------------------- #


def test_sqlite_backend_shim_warns_on_import():
    import repro.runtime.sqlite_backend as shim

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        importlib.reload(shim)
    assert any(
        issubclass(w.category, DeprecationWarning)
        and "repro.runtime.backends" in str(w.message)
        for w in caught
    )
    # The re-exports still work: the shim deprecates, it does not break.
    assert shim.SQLiteBackend is not None
