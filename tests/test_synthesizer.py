"""End-to-end synthesis tests: the paper's worked examples plus variations."""

import pytest

from repro import ExamplePair, SynthesisConfig, SynthesisTask, Synthesizer, synthesize
from repro.dsl import pretty_program, run_program
from repro.hdt import build_tree, json_to_hdt, xml_to_hdt
from repro.synthesis import BaselineSynthesizer
from repro.synthesis.predicate_learner import check_program, row_in_table, rows_equal

FAST = SynthesisConfig.fast()


MOTIVATING_XML = """
<root>
  <Person id="1"><name>Alice</name>
    <Friendship><Friend><fid>2</fid><years>3</years></Friend><Friend><fid>3</fid><years>5</years></Friend></Friendship>
  </Person>
  <Person id="2"><name>Bob</name>
    <Friendship><Friend><fid>1</fid><years>3</years></Friend></Friendship>
  </Person>
  <Person id="3"><name>Carol</name>
    <Friendship><Friend><fid>1</fid><years>5</years></Friend></Friendship>
  </Person>
</root>
"""
MOTIVATING_ROWS = [
    ("Alice", "Bob", 3),
    ("Alice", "Carol", 5),
    ("Bob", "Alice", 3),
    ("Carol", "Alice", 5),
]


def test_motivating_example_synthesizes():
    """Section 2: the social-network friendship table."""
    tree = xml_to_hdt(MOTIVATING_XML)
    result = synthesize([(tree, MOTIVATING_ROWS)], name="motivating")
    assert result.success
    produced = set(run_program(result.program, tree))
    assert produced == set(MOTIVATING_ROWS)
    # the paper's solution uses a handful of structural predicates
    assert 1 <= result.num_atomic_predicates <= 6


def test_example3_filter_with_constant():
    """Example 3 / Figure 8: nested objects filtered by id < 20."""
    xml = """
    <root>
      <object id="10"><text>parent-a</text>
        <object id="30"><text>child-a1</text></object>
        <object id="11"><text>child-a2</text></object>
      </object>
      <object id="25"><text>parent-b</text>
        <object id="12"><text>child-b1</text></object>
      </object>
      <object id="13"><text>parent-c</text>
        <object id="40"><text>child-c1</text></object>
      </object>
    </root>
    """
    tree = xml_to_hdt(xml)
    rows = [("parent-a", "child-a1"), ("parent-a", "child-a2"), ("parent-c", "child-c1")]
    result = synthesize([(tree, rows)], name="example3")
    assert result.success
    assert set(run_program(result.program, tree)) == set(rows)
    assert result.num_atomic_predicates <= 3


def test_single_column_no_filter_needed():
    tree = json_to_hdt({"users": [{"name": "ann"}, {"name": "bob"}]})
    result = synthesize([(tree, [("ann",), ("bob",)])], config=FAST)
    assert result.success
    assert result.num_atomic_predicates == 0


def test_two_column_join_json():
    doc = {"users": [{"name": "ann", "age": 31}, {"name": "bob", "age": 25}]}
    tree = json_to_hdt(doc)
    result = synthesize([(tree, [("ann", 31), ("bob", 25)])], config=FAST)
    assert result.success
    assert set(run_program(result.program, tree)) == {("ann", 31), ("bob", 25)}


def test_nested_join_parent_child():
    doc = {
        "order": [
            {"oid": "o1", "item": [{"sku": "a"}, {"sku": "b"}]},
            {"oid": "o2", "item": [{"sku": "c"}]},
        ]
    }
    tree = build_tree(doc, tag="orders")
    rows = [("o1", "a"), ("o1", "b"), ("o2", "c")]
    result = synthesize([(tree, rows)], config=FAST)
    assert result.success
    assert set(run_program(result.program, tree)) == set(rows)


def test_multiple_examples_constrain_generalization():
    tree1 = json_to_hdt({"emp": [{"name": "a", "dept": "x"}, {"name": "b", "dept": "y"}]})
    tree2 = json_to_hdt({"emp": [{"name": "c", "dept": "z"}]})
    task = SynthesisTask(
        examples=[
            ExamplePair(tree1, [("a", "x"), ("b", "y")]),
            ExamplePair(tree2, [("c", "z")]),
        ]
    )
    result = Synthesizer(FAST).synthesize(task)
    assert result.success
    assert set(run_program(result.program, tree2)) == {("c", "z")}


def test_unsatisfiable_output_value_fails_gracefully():
    tree = json_to_hdt({"a": [{"b": 1}]})
    result = synthesize([(tree, [("no-such-value",)])], config=FAST)
    assert not result.success
    assert result.message


def test_union_column_task_is_unsolvable():
    """One output column mixing two unrelated tags is outside the DSL."""
    tree = build_tree(
        {"book": [{"title": "t1"}], "magazine": [{"name": "m1"}]}, tag="shelf"
    )
    result = synthesize([(tree, [("t1",), ("m1",)])], config=FAST)
    assert not result.success


def test_empty_output_rows_rejected():
    tree = json_to_hdt({"a": [{"b": 1}]})
    result = synthesize([(tree, [])], config=FAST)
    assert not result.success


def test_result_describe_and_stats():
    tree = json_to_hdt({"users": [{"name": "ann"}, {"name": "bob"}]})
    result = synthesize([(tree, [("ann",), ("bob",)])], config=FAST)
    assert "filter" in result.describe()
    assert result.synthesis_time > 0
    assert result.candidates_tried >= 1
    assert result.column_candidates and result.column_candidates[0] >= 1


def test_generated_program_is_checkable():
    tree = json_to_hdt({"users": [{"name": "ann", "age": 3}, {"name": "bob", "age": 4}]})
    rows = [("ann", 3), ("bob", 4)]
    result = synthesize([(tree, rows)], config=FAST)
    assert check_program(result.program, [(tree, rows)])


def test_row_helpers():
    assert rows_equal(("a", 3), ("a", 3.0))
    assert not rows_equal(("a",), ("a", "b"))
    assert row_in_table(("a", 3), [("x", 1), ("a", 3)])
    assert not row_in_table(("a", 9), [("a", 3)])


def test_stop_after_first_solution_config():
    tree = json_to_hdt({"users": [{"name": "ann", "age": 31}, {"name": "bob", "age": 25}]})
    config = SynthesisConfig(stop_after_first_solution=True)
    result = Synthesizer(config).synthesize(
        SynthesisTask(examples=[ExamplePair(tree, [("ann", 31), ("bob", 25)])])
    )
    assert result.success


def test_inconsistent_arities_rejected():
    tree = json_to_hdt({"a": [{"b": 1}]})
    with pytest.raises(ValueError):
        SynthesisTask(
            examples=[ExamplePair(tree, [(1,)]), ExamplePair(tree, [(1, 2)])]
        )


# --------------------------------------------------------------------------- #
# Baseline synthesizer (ablation comparator)
# --------------------------------------------------------------------------- #


def test_baseline_single_column_task():
    tree = json_to_hdt({"users": [{"name": "ann"}, {"name": "bob"}]})
    result = BaselineSynthesizer(FAST).synthesize(
        SynthesisTask(examples=[ExamplePair(tree, [("ann",), ("bob",)])])
    )
    assert result.success
    assert set(run_program(result.program, tree)) == {("ann",), ("bob",)}


def test_baseline_is_bounded_on_join_task():
    """The enumerative baseline either solves the join task or gives up within
    its budget — quantifying that gap is exactly the E6 ablation."""
    tree = json_to_hdt({"users": [{"name": "ann", "age": 31}, {"name": "bob", "age": 25}]})
    config = SynthesisConfig.fast()
    result = BaselineSynthesizer(config, max_conjunction=2).synthesize(
        SynthesisTask(examples=[ExamplePair(tree, [("ann", 31), ("bob", 25)])])
    )
    if result.success:
        assert set(run_program(result.program, tree)) == {("ann", 31), ("bob", 25)}
    else:
        assert result.synthesis_time >= 0


def test_baseline_enumerates_column_extractors():
    from repro.synthesis import enumerate_column_extractors

    tree = json_to_hdt({"a": [{"b": 1}]})
    pool = enumerate_column_extractors(tree, 2)
    sizes = {e.size() for e in pool}
    assert 0 in sizes and 1 in sizes and 2 in sizes
