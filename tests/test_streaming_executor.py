"""Tests for the streaming fused-dedup execution engine (optimizer + runtime).

Covers the PR-2 executor rework: generator pipelines (`iter_execute_nodes`),
value-equality hash joins, fused projection dedup (linear output for the DBLP
author link tables), the HDT tag index, and the column-cache regression.
"""

import math

import pytest

from repro.datasets import dblp
from repro.dsl import (
    CompareNodes,
    Descendants,
    NodeVar,
    Op,
    Parent,
    Program,
    TableExtractor,
    True_,
    Var,
)
from repro.dsl.semantics import eval_column, eval_column_on_tree, run_program
from repro.hdt import build_tree
from repro.migration.engine import consumed_projection, iter_generate_table_rows
from repro.optimizer import (
    TupleProjection,
    execute_nodes,
    iter_execute_nodes,
    plan,
)
from repro.optimizer.optimize import DATA, IDENTITY, IGNORED
from repro.relational import ColumnDef, TableSchema
from repro.runtime import MigrationPlan


@pytest.fixture(scope="module")
def dblp_plan():
    return MigrationPlan.learn(dblp.dataset(scale=3).migration_spec())


def _all_data_projection(arity):
    return TupleProjection(tuple(DATA for _ in range(arity)))


def _content_rows(node_rows):
    """First-occurrence content dedup, as the natural-key row generator does."""
    seen, out = set(), []
    for row in node_rows:
        content = tuple(node.data for node in row)
        if content not in seen:
            seen.add(content)
            out.append(content)
    return out


# --------------------------------------------------------------------------- #
# Streaming semantics
# --------------------------------------------------------------------------- #


def test_iter_execute_nodes_matches_execute_nodes_order(dblp_plan):
    tree = dblp.dataset(scale=4).generate(4)
    for table in dblp_plan.tables.values():
        assert list(iter_execute_nodes(table.program, tree)) == execute_nodes(
            table.program, tree
        )


def test_streamed_equals_naive_semantics(dblp_plan):
    tree = dblp.dataset(scale=2).generate(2)
    for table in dblp_plan.tables.values():
        naive = run_program(table.program, tree)
        streamed = [
            tuple(n.data for n in row) for row in iter_execute_nodes(table.program, tree)
        ]
        # Multiset equality: the greedy join ordering may enumerate in a
        # different (but deterministic) order than the naive cross product.
        assert sorted(map(repr, streamed)) == sorted(map(repr, naive))


def test_stream_is_lazy(dblp_plan):
    """The generator yields without exhausting the document's tuple space."""
    tree = dblp.dataset(scale=50).generate(50)
    program = dblp_plan.table_plan("article_author").program
    stream = iter_execute_nodes(program, tree)
    first = next(stream)
    assert len(first) == program.arity
    stream.close()


# --------------------------------------------------------------------------- #
# Fused dedup: linear output for value joins
# --------------------------------------------------------------------------- #


def test_fused_value_join_is_linear_in_records(dblp_plan):
    """Acceptance: intermediate tuple count for the DBLP link tables is
    O(records), not O(records²) — counted through the pipeline's stats."""
    program = dblp_plan.table_plan("article_author").program
    projection = _all_data_projection(program.arity)
    counts = {}
    for scale in (50, 100, 200):
        tree = dblp.dataset(scale=scale).generate(scale)
        records = len(tree.root.children)
        execution = plan(program, projection)
        rows = list(iter_execute_nodes(program, tree, execution=execution))
        assert rows
        counts[scale] = (records, execution.stats["partial_tuples"])
    # Linear: tuples per record stays flat as the document quadruples.
    per_record = {s: tuples / records for s, (records, tuples) in counts.items()}
    assert per_record[200] <= per_record[50] * 1.25
    # And absolutely small: a handful of tuples per record, not records/3.
    for scale, (records, tuples) in counts.items():
        assert tuples <= 6 * records


def test_unfused_value_join_is_quadratic_which_fusion_removes(dblp_plan):
    """The same program without a projection enumerates the full value-join
    groups (exact tuple semantics) — fusion is what removes the blow-up."""
    program = dblp_plan.table_plan("article_author").program
    tree = dblp.dataset(scale=60).generate(60)
    records = len(tree.root.children)

    fused = plan(program, _all_data_projection(program.arity))
    fused_rows = list(iter_execute_nodes(program, tree, execution=fused))
    unfused = plan(program)
    unfused_rows = list(iter_execute_nodes(program, tree, execution=unfused))

    assert unfused.stats["partial_tuples"] > records * records / 20  # quadratic
    assert fused.stats["partial_tuples"] <= 6 * records  # linear
    # Same logical output: fused representatives reproduce the content rows
    # (order included) that full enumeration + downstream dedup yields.
    assert _content_rows(fused_rows) == _content_rows(unfused_rows)


def test_fused_rows_match_ground_truth_counts(dblp_plan):
    scale = 100
    tree = dblp.dataset(scale=scale).generate(scale)
    truth = dblp.ground_truth_counts(scale)
    for name in ("article_author", "inproceedings_author", "phdthesis_author"):
        table_plan = dblp_plan.table_plan(name)
        schema = dblp_plan.schema.table(name)
        projection = consumed_projection(
            schema, table_plan.data_columns, table_plan.program.arity
        )
        rows = list(
            iter_generate_table_rows(
                schema,
                table_plan.data_columns,
                table_plan.foreign_key_rules,
                iter_execute_nodes(table_plan.program, tree, projection=projection),
            )
        )
        assert len(rows) == truth[name]


def test_describe_reports_value_joins_and_fusion(dblp_plan):
    program = dblp_plan.table_plan("article_author").program
    execution = plan(program, _all_data_projection(program.arity))
    tree = dblp.dataset(scale=50).generate(50)
    list(iter_execute_nodes(program, tree, execution=execution))
    description = execution.describe()
    assert "value_joins=1" in description
    assert "node_joins=1" in description
    assert "fusable_columns=[0, 1, 2]" in description
    assert "partial_tuples=" in description
    # How many columns actually fuse depends on the greedy join order, but
    # the position value-join must always collapse.
    assert execution.stats["fused_columns"] >= 1
    assert execution.stats["partial_tuples"] <= 6 * len(tree.root.children)


# --------------------------------------------------------------------------- #
# Projection derivation
# --------------------------------------------------------------------------- #


def test_consumed_projection_natural_vs_surrogate():
    natural = TableSchema(
        "link",
        [ColumnDef("a", "text"), ColumnDef("b", "text")],
        natural_keys=True,
    )
    projection = consumed_projection(natural, ["a", "b"], 3)
    assert projection is not None
    assert projection.kinds == (DATA, DATA, IGNORED)

    surrogate = TableSchema(
        "entity",
        [ColumnDef("id", "text", nullable=False), ColumnDef("a", "text")],
        primary_key="id",
    )
    assert consumed_projection(surrogate, ["a"], 1) is None


def test_tuple_projection_rejects_unknown_kind():
    with pytest.raises(ValueError):
        TupleProjection(("bogus",))
    assert TupleProjection.identity(2).kinds == (IDENTITY, IDENTITY)


# --------------------------------------------------------------------------- #
# Value-join key semantics
# --------------------------------------------------------------------------- #


def _two_column_value_join(tag_left, tag_right):
    return Program(
        TableExtractor((Descendants(Var(), tag_left), Descendants(Var(), tag_right))),
        CompareNodes(NodeVar(), 0, Op.EQ, NodeVar(), 1),
    )


def test_value_join_matches_bool_and_numeric_like_eval_predicate():
    """`True == 1 == 1.0` under Figure 7 EQ; the hash join must agree."""
    tree = build_tree({"l": [{"x": True}, {"x": 1}, {"x": 2}], "r": [{"y": 1.0}, {"y": 2}]})
    program = _two_column_value_join("x", "y")
    naive = run_program(program, tree)
    planned = [tuple(n.data for n in r) for r in iter_execute_nodes(program, tree)]
    assert planned == naive
    assert (True, 1.0) in planned and (1, 1.0) in planned and (2, 2) in planned


def test_value_join_never_coerces_strings_to_numbers():
    tree = build_tree({"l": [{"x": "1"}], "r": [{"y": 1}]})
    program = _two_column_value_join("x", "y")
    assert run_program(program, tree) == []
    assert list(iter_execute_nodes(program, tree)) == []


def test_value_join_nan_never_matches():
    tree = build_tree({"l": [{"x": math.nan}], "r": [{"y": math.nan}]})
    program = _two_column_value_join("x", "y")
    assert run_program(program, tree) == []
    assert list(iter_execute_nodes(program, tree)) == []


# --------------------------------------------------------------------------- #
# Column-cache regression (satellite): empty hits, frozen keys, None guard
# --------------------------------------------------------------------------- #


def test_eval_column_caches_empty_results():
    tree = build_tree({"a": [{"b": 1}]})
    extractor = Descendants(Var(), "nonexistent")
    cache = {}
    first = eval_column_on_tree(extractor, tree, cache=cache)
    assert first == []
    key = (extractor, (tree.root.uid,))
    assert key in cache and cache[key] == []  # frozen uid-tuple key, [] cached
    # A second evaluation must be served from the cache (same list object),
    # not recomputed — `[]` is falsy but it is a hit, not a miss.
    second = eval_column_on_tree(extractor, tree, cache=cache)
    assert second is first


def test_eval_column_guards_against_none_valued_cache_hits():
    tree = build_tree({"a": [{"b": 1}]})
    extractor = Descendants(Var(), "b")
    cache = {(extractor, (tree.root.uid,)): None}  # corrupt/foreign entry
    result = eval_column(extractor, [tree.root], cache=cache)
    assert result != [] and result is not None  # recomputed, not returned as None
    assert [n.data for n in result] == [1]


# --------------------------------------------------------------------------- #
# HDT tag index
# --------------------------------------------------------------------------- #


def test_tag_index_matches_traversal():
    tree = build_tree(
        {
            "article": [
                {"key": "a1", "author": [{"name": "x", "position": 1}]},
                {"key": "a2", "author": [{"name": "y", "position": 2}]},
            ],
            "www": [{"key": "w1", "name": "deep"}],
        },
        tag="dblp",
    )
    index = tree.tag_index()
    for tag in ("dblp", "article", "key", "name", "position", "missing"):
        assert index.nodes_with_tag(tag) == tree.find_all(tag)
        for node in tree.nodes():
            assert index.descendants_with_tag(node, tag) == node.descendants_with_tag(tag)
            assert index.children_with_tag(node, tag) == node.children_with_tag(tag)


def test_indexed_eval_column_matches_plain_traversal():
    tree = build_tree(
        {"a": [{"b": [{"c": 1}, {"c": 2}]}, {"b": [{"c": 3}], "c": 4}]}, tag="root"
    )
    for extractor in (
        Descendants(Var(), "c"),
        Descendants(Descendants(Var(), "b"), "c"),
    ):
        indexed = eval_column_on_tree(extractor, tree)
        plain = eval_column_on_tree(extractor, tree, use_index=False)
        assert indexed == plain


def test_tag_index_invalidation():
    tree = build_tree({"a": [{"b": 1}]})
    assert len(tree.tag_index().nodes_with_tag("b")) == 1
    tree.root.children[0].new_child("b", 1, 2)
    tree.invalidate_indexes()
    assert len(tree.tag_index().nodes_with_tag("b")) == 2


# --------------------------------------------------------------------------- #
# Degenerate programs
# --------------------------------------------------------------------------- #


def test_single_column_program_streams():
    tree = build_tree({"x": [1, 2, 2, 3]})
    program = Program(TableExtractor((Descendants(Var(), "x"),)), True_())
    rows = [tuple(n.data for n in r) for r in iter_execute_nodes(program, tree)]
    assert rows == run_program(program, tree)


def test_disconnected_columns_cross_product():
    tree = build_tree({"x": [1, 2], "y": ["a"]})
    program = Program(
        TableExtractor((Descendants(Var(), "x"), Descendants(Var(), "y"))), True_()
    )
    rows = [tuple(n.data for n in r) for r in iter_execute_nodes(program, tree)]
    assert rows == run_program(program, tree)
    assert sorted(rows) == [(1, "a"), (2, "a")]


def test_residual_predicate_blocks_fusion():
    """A residual clause mentioning a column must keep it out of `fusable`."""
    from repro.dsl import CompareConst, Or

    tree = build_tree({"x": [1, 2], "y": [1, 1]})
    program = Program(
        TableExtractor((Descendants(Var(), "x"), Descendants(Var(), "y"))),
        Or(
            CompareConst(NodeVar(), 0, Op.EQ, 1),
            CompareConst(NodeVar(), 1, Op.GT, 5),
        ),
    )
    projection = _all_data_projection(2)
    execution = plan(program, projection)
    assert execution.fusable == set()
    rows = [tuple(n.data for n in r) for r in iter_execute_nodes(program, tree, execution=execution)]
    assert rows == run_program(program, tree)
