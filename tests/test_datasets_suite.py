"""Tests for the dataset simulators and the StackOverflow-style benchmark suite."""

import pytest

from repro.benchmarks_suite import load_suite, suite_summary
from repro.datasets import all_datasets, dblp, imdb, mondial, yelp
from repro.evaluation.table1 import run_task
from repro.synthesis import SynthesisConfig


# --------------------------------------------------------------------------- #
# Dataset bundles
# --------------------------------------------------------------------------- #

BUNDLES = {
    "DBLP": (dblp, 9, "xml"),
    "IMDB": (imdb, 9, "json"),
    "MONDIAL": (mondial, 25, "xml"),
    "YELP": (yelp, 7, "json"),
}


@pytest.mark.parametrize("name", sorted(BUNDLES))
def test_bundle_table_counts_match_paper(name):
    module, expected_tables, fmt = BUNDLES[name]
    bundle = module.dataset(scale=2)
    assert bundle.num_tables == expected_tables
    assert bundle.format == fmt
    assert bundle.num_columns >= 2 * expected_tables


@pytest.mark.parametrize("name", sorted(BUNDLES))
def test_bundle_examples_cover_every_table(name):
    module, expected_tables, _ = BUNDLES[name]
    bundle = module.dataset(scale=2)
    example_tables = {spec.table for spec in bundle.table_examples}
    assert example_tables == set(bundle.schema.table_names)
    for spec in bundle.table_examples:
        assert spec.rows, f"example for {spec.table} is empty"
        arity = bundle.schema.table(spec.table).arity
        assert all(len(row) == arity for row in spec.rows)


@pytest.mark.parametrize("name", sorted(BUNDLES))
def test_bundle_generators_are_deterministic(name):
    module, _, _ = BUNDLES[name]
    bundle = module.dataset(scale=2)
    first = bundle.ground_truth(2)
    second = bundle.ground_truth(2)
    assert first == second
    assert bundle.generate(2).size() == bundle.generate(2).size()


@pytest.mark.parametrize("name", sorted(BUNDLES))
def test_bundle_scales_with_parameter(name):
    module, _, _ = BUNDLES[name]
    bundle = module.dataset(scale=2)
    small = sum(bundle.ground_truth(2).values())
    large = sum(bundle.ground_truth(6).values())
    assert large > small


def test_all_datasets_returns_four():
    bundles = all_datasets(scale=2)
    assert set(bundles) == {"DBLP", "IMDB", "MONDIAL", "YELP"}


def test_dblp_example_document_consistent_with_tables():
    bundle = dblp.dataset(scale=2)
    tree = bundle.example_tree
    article_rows = next(s.rows for s in bundle.table_examples if s.table == "article")
    keys_in_tree = {n.data for n in tree.root.descendants_with_tag("key")}
    assert {row[0] for row in article_rows} <= keys_in_tree


def test_mondial_schema_has_expected_shapes():
    schema = mondial.schema()
    assert schema.table("membership").foreign_keys[0].target_table == "organization"
    assert schema.table("city").foreign_keys[0].target_table == "province"
    ordered = [t.name for t in schema.topological_order()]
    assert ordered.index("country") < ordered.index("province") < ordered.index("city")


# --------------------------------------------------------------------------- #
# StackOverflow suite (Table 1 composition)
# --------------------------------------------------------------------------- #


def test_suite_has_98_tasks_with_paper_composition():
    tasks = load_suite()
    assert len(tasks) == 98
    summary = suite_summary(tasks)
    assert summary["xml"]["total"] == 51
    assert summary["json"]["total"] == 47
    assert summary["xml"] == {"<=2": 17, "3": 12, "4": 12, ">=5": 10, "total": 51}
    assert summary["json"] == {"<=2": 11, "3": 11, "4": 11, ">=5": 14, "total": 47}


def test_suite_task_names_unique_and_nonempty():
    tasks = load_suite()
    names = [t.name for t in tasks]
    assert len(set(names)) == len(names)
    assert all(t.rows for t in tasks)
    assert all(t.num_elements > 0 for t in tasks)


def test_suite_contains_six_inexpressible_tasks():
    tasks = load_suite()
    inexpressible = [t for t in tasks if not t.expressible]
    assert len(inexpressible) == 6
    assert {t.format for t in inexpressible} == {"xml", "json"}


@pytest.mark.parametrize("index", [0, 20, 40, 60, 80])
def test_sampled_expressible_tasks_are_solvable(index):
    tasks = [t for t in load_suite() if t.expressible]
    task = tasks[index % len(tasks)]
    result = run_task(task, SynthesisConfig.fast())
    assert result.solved, f"{task.name}: {result.message}"
    assert result.generated_loc > 0


def test_inexpressible_tasks_fail_as_expected():
    task = next(t for t in load_suite() if not t.expressible and "union" in t.name)
    result = run_task(task, SynthesisConfig.fast())
    assert not result.solved
