"""Equivalence of the bitset-vectorized synthesis engine and the seed algorithms.

The vectorized engine (lazy product DFA, predicate bitmatrices, bitmask
solvers) must be a pure performance transformation: on every task it returns a
program semantically equivalent to the seed learner's — same output tables,
same θ-cost — and in practice the identical pretty-printed program, which the
BENCH_PR3 acceptance criterion relies on.
"""

import random

import pytest

from repro.dsl.cost import program_cost
from repro.dsl.pretty import pretty_program
from repro.dsl.semantics import run_program
from repro.hdt import build_tree
from repro.synthesis import (
    ColumnLearningError,
    SynthesisConfig,
    SynthesisContext,
    learn_column_extractors_eager,
    learn_column_extractors_lazy,
    synthesize,
)

FAST = SynthesisConfig.fast()
FAST_SEED = FAST.seed_variant()

NAMES = ["ann", "bob", "cara", "dan", "eve", "fay"]
CATEGORIES = ["red", "blue", "green"]


# --------------------------------------------------------------------------- #
# Random task generation
# --------------------------------------------------------------------------- #


def _random_document(rnd: random.Random):
    """A record-shaped document: recs with scalar fields and nested items."""
    records = []
    for index in range(rnd.randint(2, 4)):
        record = {
            "id": index + 1,
            "name": rnd.choice(NAMES) + str(index),
            "cat": rnd.choice(CATEGORIES),
        }
        if rnd.random() < 0.7:
            record["item"] = [
                {"v": rnd.randint(1, 9), "w": rnd.choice(CATEGORIES)}
                for _ in range(rnd.randint(1, 3))
            ]
        records.append(record)
    return records


def _random_task(rnd: random.Random):
    """A (tree, rows) synthesis task over a random document.

    Mixes the shapes that exercise every engine stage: plain projections
    (no filter), per-record joins (structural predicates), record-item joins
    (hierarchical predicates), and value-filtered subsets (constant
    predicates).  Some tasks are unsolvable within the FAST bounds — both
    engines must then agree on the failure.
    """
    records = _random_document(rnd)
    tree = build_tree({"rec": records}, tag="root")
    shape = rnd.randrange(4)
    if shape == 0:
        field = rnd.choice(["id", "name", "cat"])
        rows = [(r[field],) for r in records]
    elif shape == 1:
        rows = [(r["id"], r["name"]) for r in records]
    elif shape == 2:
        rows = [
            (r["id"], item["v"])
            for r in records
            for item in r.get("item", [])
        ]
        if not rows:
            rows = [(r["id"],) for r in records]
    else:
        cutoff = rnd.randint(1, len(records))
        rows = [(r["name"],) for r in records if r["id"] <= cutoff]
    return tree, rows


def test_property_vectorized_equals_seed_on_random_tasks():
    """≥100 random tasks: identical success, outputs, θ-cost and rendering."""
    rnd = random.Random(20260727)
    solved = 0
    for trial in range(110):
        tree, rows = _random_task(rnd)
        fast_result = synthesize([(tree, rows)], config=FAST, name=f"t{trial}")
        seed_result = synthesize([(tree, rows)], config=FAST_SEED, name=f"t{trial}")
        assert fast_result.success == seed_result.success, (
            trial,
            fast_result.message,
            seed_result.message,
        )
        if not fast_result.success:
            continue
        solved += 1
        fast_program, seed_program = fast_result.program, seed_result.program
        assert program_cost(fast_program) == program_cost(seed_program), trial
        assert pretty_program(fast_program) == pretty_program(seed_program), trial
        fast_rows = sorted(map(repr, run_program(fast_program, tree)))
        seed_rows = sorted(map(repr, run_program(seed_program, tree)))
        assert fast_rows == seed_rows, trial
    # The generator is tuned so most tasks are solvable; make sure the test
    # actually exercised the synthesis pipeline.
    assert solved >= 80


def test_property_column_learner_lazy_equals_eager():
    """Random (tree, column) examples: identical extractor lists."""
    rnd = random.Random(7)
    context = SynthesisContext()
    checked = 0
    for _ in range(60):
        records = _random_document(rnd)
        tree = build_tree({"rec": records}, tag="root")
        field = rnd.choice(["id", "name", "cat"])
        values = [r[field] for r in records]
        if rnd.random() < 0.5:
            values = values[: rnd.randint(1, len(values))]
        examples = [(tree, values)]
        try:
            eager = learn_column_extractors_eager(examples, FAST)
        except ColumnLearningError:
            with pytest.raises(ColumnLearningError):
                learn_column_extractors_lazy(examples, FAST, context)
            continue
        lazy = learn_column_extractors_lazy(examples, FAST, context)
        assert eager == lazy
        checked += 1
    assert checked >= 30


def test_column_learner_multi_example_parity():
    tree1 = build_tree(
        {"rec": [{"id": 1, "name": "a"}, {"id": 2, "name": "b"}]}, tag="root"
    )
    tree2 = build_tree({"rec": [{"id": 9, "name": "z"}]}, tag="root")
    examples = [(tree1, ["a", "b"]), (tree2, ["z"])]
    assert learn_column_extractors_eager(examples, FAST) == learn_column_extractors_lazy(
        examples, FAST
    )


def test_column_learner_error_parity_value_absent():
    tree = build_tree({"rec": [{"id": 1}]}, tag="root")
    for learner in (learn_column_extractors_eager, learn_column_extractors_lazy):
        with pytest.raises(ColumnLearningError):
            learner([(tree, ["missing"])], FAST)


def test_column_learner_none_value_parity():
    """A None column value matches data-less (internal) nodes in both engines."""
    tree = build_tree({"item": [{"name": "a"}]}, tag="root")
    examples = [(tree, [None])]
    eager = learn_column_extractors_eager(examples, FAST)
    lazy = learn_column_extractors_lazy(examples, FAST)
    assert eager == lazy
    assert eager  # compare_values(None, =, None) holds, so extractors exist


def test_column_learner_nan_value_rejected_by_both():
    """NaN equals nothing under compare_values — both engines must fail."""
    tree = build_tree({"item": [{"v": float("nan")}]}, tag="root")
    examples = [(tree, [float("nan")])]
    for learner in (learn_column_extractors_eager, learn_column_extractors_lazy):
        with pytest.raises(ColumnLearningError):
            learner(examples, FAST)


def test_classify_tuples_nan_identity_parity():
    """A NaN object shared by the document and an output row must classify
    identically in both implementations (negative: NaN equals nothing)."""
    from repro.dsl import Children, Var
    from repro.dsl.ast import TableExtractor
    from repro.synthesis import classify_tuples, classify_tuples_fast

    shared_nan = float("nan")
    tree = build_tree({"rec": [{"v": shared_nan}, {"v": 1}]}, tag="root")
    extractor = TableExtractor((Children(Children(Var(), "rec"), "v"),))
    rows = [(shared_nan,), (1,)]
    seed_pos, seed_neg = classify_tuples([(tree, rows)], extractor)
    fast_pos, fast_neg = classify_tuples_fast([(tree, rows)], extractor)
    assert seed_pos == fast_pos
    assert seed_neg == fast_neg


def test_synthesis_nan_output_parity():
    """Tasks whose output rows contain NaN fail identically in both engines."""
    shared_nan = float("nan")
    tree = build_tree({"rec": [{"v": shared_nan}, {"v": 2}]}, tag="root")
    rows = [(shared_nan,), (2,)]
    fast_result = synthesize([(tree, rows)], config=FAST)
    seed_result = synthesize([(tree, rows)], config=FAST_SEED)
    assert fast_result.success == seed_result.success


def test_multi_example_synthesis_parity():
    tree1 = build_tree(
        {"emp": [{"name": "a", "dept": "x"}, {"name": "b", "dept": "y"}]}, tag="root"
    )
    tree2 = build_tree({"emp": [{"name": "c", "dept": "z"}]}, tag="root")
    examples = [(tree1, [("a", "x"), ("b", "y")]), (tree2, [("c", "z")])]
    fast_result = synthesize(examples, config=FAST)
    seed_result = synthesize(examples, config=FAST_SEED)
    assert fast_result.success and seed_result.success
    assert pretty_program(fast_result.program) == pretty_program(seed_result.program)


def test_stats_parity():
    """The diagnostics collected by both engines agree."""
    tree = build_tree(
        {
            "rec": [
                {"id": 1, "name": "a", "item": [{"v": 5}]},
                {"id": 2, "name": "b", "item": [{"v": 7}]},
            ]
        },
        tag="root",
    )
    rows = [(1, 5), (2, 7)]
    fast_result = synthesize([(tree, rows)], config=FAST)
    seed_result = synthesize([(tree, rows)], config=FAST_SEED)
    assert fast_result.success and seed_result.success
    assert fast_result.candidates_tried == seed_result.candidates_tried
    assert fast_result.column_candidates == seed_result.column_candidates
    fast_stats, seed_stats = fast_result.predicate_stats, seed_result.predicate_stats
    assert (fast_stats is None) == (seed_stats is None)
    if fast_stats is not None:
        for field in (
            "universe_size",
            "distinct_feature_vectors",
            "positive_examples",
            "negative_examples",
            "selected_predicates",
            "dnf_terms",
        ):
            assert getattr(fast_stats, field) == getattr(seed_stats, field), field


# --------------------------------------------------------------------------- #
# Shared context and engine integration
# --------------------------------------------------------------------------- #


def test_context_rejects_cross_config_sharing():
    from repro.synthesis.synthesizer import Synthesizer

    context = SynthesisContext()
    Synthesizer(FAST, context)
    with pytest.raises(ValueError):
        Synthesizer(SynthesisConfig(), context)


def test_context_reuse_across_tasks_is_transparent():
    """A synthesizer reused across tasks (shared caches) stays correct."""
    from repro.synthesis.synthesizer import ExamplePair, SynthesisTask, Synthesizer

    synthesizer = Synthesizer(FAST)
    tree = build_tree(
        {"rec": [{"id": 1, "name": "a"}, {"id": 2, "name": "b"}]}, tag="root"
    )
    first = synthesizer.synthesize(
        SynthesisTask(examples=[ExamplePair(tree, [(1, "a"), (2, "b")])])
    )
    second = synthesizer.synthesize(
        SynthesisTask(examples=[ExamplePair(tree, [("a",), ("b",)])])
    )
    third = synthesizer.synthesize(
        SynthesisTask(examples=[ExamplePair(tree, [(1, "a"), (2, "b")])])
    )
    assert first.success and second.success and third.success
    assert pretty_program(first.program) == pretty_program(third.program)
    fresh = Synthesizer(FAST).synthesize(
        SynthesisTask(examples=[ExamplePair(tree, [(1, "a"), (2, "b")])])
    )
    assert pretty_program(fresh.program) == pretty_program(first.program)


def test_engine_rejects_negative_jobs():
    from repro.migration.engine import MigrationEngine

    with pytest.raises(ValueError):
        MigrationEngine(jobs=-1)


def test_parallel_engine_matches_serial():
    """jobs>1 fans per-table synthesis out to processes; programs identical."""
    from repro.datasets import dblp
    from repro.migration.engine import MigrationEngine

    spec = dblp.dataset(scale=2).migration_spec()
    serial, _ = MigrationEngine().learn(spec)
    parallel, _ = MigrationEngine(jobs=2).learn(spec)
    assert set(serial) == set(parallel)
    for name in serial:
        assert pretty_program(serial[name].program) == pretty_program(
            parallel[name].program
        )
        assert serial[name].data_columns == parallel[name].data_columns
