"""Incremental synthesis: spec diffing, the context store, and byte-identity.

The load-bearing property: an incremental learn (reused programs + rehydrated
context + re-synthesis of the affected tables) must produce a plan
**byte-identical** to a cold learn of the same edited spec — same programs,
same θ-cost, same key rules.  The tests drive every single-edit class the
diff layer recognizes (add/remove/rename table, add/remove column, key-rule
change) plus randomized single edits, in both serial and ``--jobs`` mode.
"""

import json
import random

import pytest

from repro.datasets import dblp
from repro.migration.engine import MigrationSpec, TableExampleSpec
from repro.relational.schema import DatabaseSchema, ForeignKey, TableSchema
from repro.runtime import (
    ContextStore,
    MigrationPlan,
    diff_specs,
    learn_incremental,
    reusable_plans,
)
from repro.synthesis.config import SynthesisConfig

CONFIG = SynthesisConfig.for_migration()


# --------------------------------------------------------------------------- #
# Spec-editing helpers
# --------------------------------------------------------------------------- #


def _copy_table(table, *, name=None, drop=None, retarget=None):
    retarget = retarget or {}
    columns = [c for c in table.columns if c.name != drop]
    return TableSchema(
        name=name if name is not None else table.name,
        columns=columns,
        primary_key=table.primary_key,
        foreign_keys=[
            ForeignKey(fk.column, retarget.get(fk.target_table, fk.target_table), fk.target_column)
            for fk in table.foreign_keys
        ],
        natural_keys=table.natural_keys,
    )


def _rebuild(spec, tables, examples):
    return MigrationSpec(
        schema=DatabaseSchema(name=spec.schema.name, tables=tables),
        example_tree=spec.example_tree,
        table_examples=[
            TableExampleSpec(table=t.name, rows=[tuple(r) for r in examples[t.name]])
            for t in tables
        ],
    )


def _examples_of(spec):
    return {e.table: [tuple(r) for r in e.rows] for e in spec.table_examples}


def drop_table(spec, victim):
    tables = [_copy_table(t) for t in spec.schema.tables if t.name != victim]
    return _rebuild(spec, tables, _examples_of(spec))


def rename_table(spec, old, new):
    retarget = {old: new}
    tables = [
        _copy_table(t, name=new if t.name == old else t.name, retarget=retarget)
        for t in spec.schema.tables
    ]
    examples = _examples_of(spec)
    examples[new] = examples.pop(old)
    return _rebuild(spec, tables, examples)


def drop_column(spec, table_name, column):
    examples = _examples_of(spec)
    tables = []
    for t in spec.schema.tables:
        if t.name != table_name:
            tables.append(_copy_table(t))
            continue
        index = t.column_names.index(column)
        tables.append(_copy_table(t, drop=column))
        examples[table_name] = [
            tuple(v for i, v in enumerate(row) if i != index)
            for row in examples[table_name]
        ]
    return _rebuild(spec, tables, examples)


def removable_tables(spec):
    """Tables no foreign key points at — safe to drop from the schema."""
    referenced = {fk.target_table for t in spec.schema.tables for fk in t.foreign_keys}
    return [t.name for t in spec.schema.topological_order() if t.name not in referenced]


def droppable_columns(spec):
    """(table, column) pairs whose removal keeps the schema valid."""
    referenced = {
        (fk.target_table, fk.target_column)
        for t in spec.schema.tables
        for fk in t.foreign_keys
    }
    pairs = []
    for t in spec.schema.tables:
        fk_columns = {fk.column for fk in t.foreign_keys}
        data = t.data_columns()
        if len(data) < 2:
            continue
        for c in data:
            if c == t.primary_key or c in fk_columns:
                continue
            if (t.name, c) in referenced:
                continue
            pairs.append((t.name, c))
    return pairs


def plan_body(plan):
    """The plan minus provenance metadata — the byte-identity comparand."""
    payload = {k: v for k, v in plan.to_json().items() if k not in ("metadata",)}
    return json.dumps(payload, sort_keys=True)


@pytest.fixture(scope="module")
def full_spec():
    return dblp.dataset().migration_spec()


@pytest.fixture(scope="module")
def cold_plan(full_spec):
    return MigrationPlan.learn(full_spec, engine=None, jobs=1)


# --------------------------------------------------------------------------- #
# The diff layer
# --------------------------------------------------------------------------- #


def test_diff_identical_spec(full_spec):
    diff = diff_specs(full_spec.schema, _examples_of(full_spec), full_spec)
    assert diff.identical()
    assert diff.reusable_programs == full_spec.schema.num_tables
    assert not diff.removed and not diff.added and not diff.changed


def test_diff_added_and_removed_table(full_spec):
    victim = removable_tables(full_spec)[-1]
    base = drop_table(full_spec, victim)
    # base → full: the victim is new.
    diff = diff_specs(base.schema, _examples_of(base), full_spec)
    assert diff.added == [victim]
    assert diff.tables[victim].reuse_program is False
    others = [n for n in diff.tables if n != victim]
    assert all(diff.tables[n].status == "unchanged" for n in others)
    assert all(diff.tables[n].reuse_keys for n in others)
    # full → base: the victim is gone.
    diff = diff_specs(full_spec.schema, _examples_of(full_spec), base)
    assert diff.removed == [victim]
    assert diff.identical() is False
    assert diff.reusable_programs == len(base.schema.tables)


def test_diff_renamed_table_keeps_referrers_unchanged(full_spec):
    referenced = sorted(
        {fk.target_table for t in full_spec.schema.tables for fk in t.foreign_keys}
    )
    old = referenced[0]
    renamed = rename_table(full_spec, old, f"{old}_v2")
    diff = diff_specs(full_spec.schema, _examples_of(full_spec), renamed)
    assert diff.renamed == {f"{old}_v2": old}
    referrers = [
        t.name
        for t in renamed.schema.tables
        if any(fk.target_table == f"{old}_v2" for fk in t.foreign_keys)
    ]
    assert referrers
    for name in referrers:
        assert diff.tables[name].status == "unchanged"
        assert diff.tables[name].reuse_keys
    assert diff.reusable_programs == full_spec.schema.num_tables


def test_diff_column_edit_reuses_other_programs_but_not_target_keys(full_spec):
    table, column = droppable_columns(full_spec)[0]
    base = drop_column(full_spec, table, column)
    diff = diff_specs(base.schema, _examples_of(base), full_spec)
    change = diff.tables[table]
    assert change.status == "changed"
    assert change.reuse_program is False  # the synthesis task itself changed
    referrers = [
        t.name
        for t in full_spec.schema.tables
        if any(fk.target_table == table for fk in t.foreign_keys)
    ]
    for name in referrers:
        assert diff.tables[name].reuse_program
        assert not diff.tables[name].reuse_keys  # target's program changed
    untouched = set(diff.tables) - {table} - set(referrers)
    assert all(diff.tables[n].reuse_keys for n in untouched)


def test_diff_ambiguous_rename_degrades_to_added():
    tree = dblp.dataset().migration_spec().example_tree
    twins = [
        TableSchema(
            name=name,
            columns=[c for c in dblp.dataset().migration_spec().schema.tables[0].columns],
            primary_key=dblp.dataset().migration_spec().schema.tables[0].primary_key,
            natural_keys=dblp.dataset().migration_spec().schema.tables[0].natural_keys,
        )
        for name in ("twin_a", "twin_b")
    ]
    rows = [("x",)] if len(twins[0].data_columns()) == 1 else [
        tuple("x" for _ in twins[0].data_columns())
    ]
    old = MigrationSpec(
        schema=DatabaseSchema(name="twins", tables=twins),
        example_tree=tree,
        table_examples=[TableExampleSpec(t.name, [tuple(rows[0])]) for t in twins],
    )
    renamed = [_copy_table(t, name=t.name + "_x") for t in twins]
    new = MigrationSpec(
        schema=DatabaseSchema(name="twins", tables=renamed),
        example_tree=tree,
        table_examples=[TableExampleSpec(t.name, [tuple(rows[0])]) for t in renamed],
    )
    diff = diff_specs(old.schema, _examples_of(old), new)
    # Both candidates match both spares: no unique witness, so no rename.
    assert sorted(diff.added) == ["twin_a_x", "twin_b_x"]
    assert sorted(diff.removed) == ["twin_a", "twin_b"]


def test_reusable_plans_rewrites_renamed_fk_targets(full_spec, cold_plan):
    referenced = sorted(
        {fk.target_table for t in full_spec.schema.tables for fk in t.foreign_keys}
    )
    old = referenced[0]
    renamed = rename_table(full_spec, old, f"{old}_v2")
    diff = diff_specs(full_spec.schema, _examples_of(full_spec), renamed)
    reuse, reuse_keys = reusable_plans(diff, cold_plan, renamed.schema)
    assert set(reuse) == set(renamed.schema.table_names)
    assert reuse_keys == set(renamed.schema.table_names)
    for name, table_plan in reuse.items():
        for rule in table_plan.foreign_key_rules:
            assert rule.target_table in renamed.schema.table_names


# --------------------------------------------------------------------------- #
# The context store
# --------------------------------------------------------------------------- #


def test_store_context_round_trip_and_config_keying(tmp_path, full_spec):
    store = ContextStore(str(tmp_path))
    plan, report = learn_incremental(full_spec, store, config=CONFIG)
    assert report.cold and len(report.tables_synthesized) == len(plan.tables)
    context = store.load_context([full_spec.example_tree], CONFIG)
    assert context is not None
    assert context.stats()["column_results"] > 0
    # Different bounds → different content address → miss.
    other = SynthesisConfig.fast()
    assert store.load_context([full_spec.example_tree], other) is None


def test_store_treats_corruption_as_miss(tmp_path, full_spec):
    store = ContextStore(str(tmp_path))
    learn_incremental(full_spec, store, config=CONFIG)
    path = store.context_path(store.context_key([full_spec.example_tree], CONFIG))
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("{not json")
    assert store.load_context([full_spec.example_tree], CONFIG) is None
    import os

    assert not os.path.exists(path)
    # Corrupt snapshots read as misses too.
    snapshot_path = store.snapshot_path(full_spec, CONFIG)
    with open(snapshot_path, "w", encoding="utf-8") as handle:
        handle.write("]")
    assert store.snapshots_for(full_spec.example_tree, CONFIG) == []


def test_best_base_prefers_max_reuse(tmp_path, full_spec):
    store = ContextStore(str(tmp_path))
    victims = removable_tables(full_spec)
    small = drop_table(drop_table(full_spec, victims[-1]), victims[-2])
    large = drop_table(full_spec, victims[-1])
    learn_incremental(small, store, config=CONFIG)
    learn_incremental(large, store, config=CONFIG)
    snapshot, diff = store.best_base(full_spec, CONFIG)
    assert len(snapshot.plan.tables) == len(large.schema.tables)
    assert diff.reusable_programs == len(large.schema.tables)


def test_snapshots_are_config_keyed(tmp_path, full_spec):
    """Programs learned under other search bounds are never reuse candidates:
    a config switch must trigger a full re-learn, byte-identical to a cold
    learn under the new config."""
    from dataclasses import replace

    store = ContextStore(str(tmp_path))
    learn_incremental(full_spec, store, config=CONFIG)
    tight = replace(CONFIG, max_column_program_length=2, max_column_programs=4)
    assert store.best_base(full_spec, tight) is None
    plan, report = learn_incremental(full_spec, store, config=tight)
    assert report.tables_reused == []
    assert len(report.tables_synthesized) == full_spec.schema.num_tables
    from repro.migration.engine import MigrationEngine

    programs, _ = MigrationEngine(tight).learn(full_spec)
    cold = MigrationPlan.from_programs(full_spec.schema, programs)
    assert plan_body(plan) == plan_body(cold)
    # Both snapshots coexist; the original config still gets its exact hit.
    plan, report = learn_incremental(full_spec, store, config=CONFIG)
    assert report.tables_synthesized == []


# --------------------------------------------------------------------------- #
# Byte-identity of incremental vs cold learning
# --------------------------------------------------------------------------- #


def test_cold_incremental_matches_plain_learn(tmp_path, full_spec, cold_plan):
    store = ContextStore(str(tmp_path))
    plan, report = learn_incremental(full_spec, store, config=CONFIG)
    assert plan_body(plan) == plan_body(cold_plan)
    assert report.cold


def test_exact_relearn_reuses_everything(tmp_path, full_spec, cold_plan):
    store = ContextStore(str(tmp_path))
    learn_incremental(full_spec, store, config=CONFIG)
    plan, report = learn_incremental(full_spec, store, config=CONFIG)
    assert report.tables_synthesized == []
    assert report.diff is not None and report.diff.identical()
    assert plan_body(plan) == plan_body(cold_plan)


def test_add_one_table_synthesizes_only_that_table(tmp_path, full_spec, cold_plan):
    victim = removable_tables(full_spec)[-1]
    store = ContextStore(str(tmp_path))
    learn_incremental(drop_table(full_spec, victim), store, config=CONFIG)
    plan, report = learn_incremental(full_spec, store, config=CONFIG)
    assert report.tables_synthesized == [victim]
    assert report.context_hit
    assert plan_body(plan) == plan_body(cold_plan)


def test_add_one_column_synthesizes_only_that_table(tmp_path, full_spec, cold_plan):
    table, column = droppable_columns(full_spec)[0]
    store = ContextStore(str(tmp_path))
    learn_incremental(drop_column(full_spec, table, column), store, config=CONFIG)
    plan, report = learn_incremental(full_spec, store, config=CONFIG)
    assert report.tables_synthesized == [table]
    assert plan_body(plan) == plan_body(cold_plan)


def test_rename_table_synthesizes_nothing(tmp_path, full_spec):
    referenced = sorted(
        {fk.target_table for t in full_spec.schema.tables for fk in t.foreign_keys}
    )
    renamed_spec = rename_table(full_spec, referenced[0], f"{referenced[0]}_v2")
    store = ContextStore(str(tmp_path))
    learn_incremental(full_spec, store, config=CONFIG)
    plan, report = learn_incremental(renamed_spec, store, config=CONFIG)
    assert report.tables_synthesized == []
    cold = MigrationPlan.learn(renamed_spec)
    assert plan_body(plan) == plan_body(cold)


def test_incremental_with_jobs_seeds_workers(tmp_path, full_spec, cold_plan):
    victim = removable_tables(full_spec)[-1]
    table, column = droppable_columns(full_spec)[0]
    base = drop_column(drop_table(full_spec, victim), table, column)
    store = ContextStore(str(tmp_path))
    learn_incremental(base, store, config=CONFIG)
    plan, report = learn_incremental(full_spec, store, config=CONFIG, jobs=2)
    assert sorted(report.tables_synthesized) == sorted([victim, table])
    assert report.context_hit
    assert plan_body(plan) == plan_body(cold_plan)


def test_property_random_single_edits_are_byte_identical(tmp_path, full_spec):
    """Every random single edit: incremental == cold, bit for bit."""
    rnd = random.Random(20260727)
    store = ContextStore(str(tmp_path))
    learn_incremental(full_spec, store, config=CONFIG)
    for trial in range(5):
        kind = rnd.choice(["drop_table", "drop_column", "rename"])
        if kind == "drop_table":
            victim = rnd.choice(removable_tables(full_spec))
            edited = drop_table(full_spec, victim)
        elif kind == "drop_column":
            table, column = rnd.choice(droppable_columns(full_spec))
            edited = drop_column(full_spec, table, column)
        else:
            name = rnd.choice(full_spec.schema.table_names)
            edited = rename_table(full_spec, name, f"{name}_r{trial}")
        plan, report = learn_incremental(edited, store, config=CONFIG)
        cold = MigrationPlan.learn(edited)
        assert plan_body(plan) == plan_body(cold), (kind, report.tables_synthesized)
