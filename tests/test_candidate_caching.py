"""Candidate-level caching, the parallel ψ stage and the large-cover solver.

PR 8 turns predicate learning incremental across the candidate table
extractors of one task (universes, χi sets and per-predicate satisfying-node
sets are keyed by column *node-list signatures* and reused), adds a
process-parallel candidate stage, and replaces HiGHS with a deterministic
exact search on large pair-cover instances.  Every one of those is required
to be a pure performance transformation: identical programs, identical
θ-costs, identical success — which is what this module checks, from the
solver level up to whole random synthesis tasks.
"""

import random
from dataclasses import replace

import pytest

from test_vectorized_synthesis import _random_task

from repro.dsl.ast import (
    CompareConst,
    CompareNodes,
    Descendants,
    NodeVar,
    Op,
    Parent,
    Var,
)
from repro.dsl.cost import program_cost
from repro.dsl.pretty import pretty_program
from repro.dsl.serialize import (
    column_to_json,
    node_extractor_to_json,
    predicate_to_json,
)
from repro.hdt import build_tree
from repro.synthesis import SynthesisConfig, SynthesisContext, synthesize
from repro.synthesis.predicate_matrix import build_predicate_masks
from repro.synthesis.serialize import deserialize_context, serialize_context
from repro.synthesis.set_cover import (
    branch_and_bound_cover_bits,
    exact_cover_bits,
    greedy_cover_bits,
    minimum_cover,
    minimum_cover_bits,
)
from repro.synthesis.synthesizer import (
    ExamplePair,
    SynthesisTask,
    Synthesizer,
)

FAST = SynthesisConfig.fast()
FAST_UNCACHED = replace(FAST, candidate_caching=False)


def _signature(result):
    if not result.success or result.program is None:
        return ("unsolved", result.message)
    return (pretty_program(result.program), program_cost(result.program))


# --------------------------------------------------------------------------- #
# Property: caching and parallelism never change the learned program
# --------------------------------------------------------------------------- #


def test_property_cached_equals_uncached_on_random_tasks():
    """≥100 random tasks: candidate caching on vs off, identical results."""
    rnd = random.Random(20260808)
    solved = 0
    for trial in range(110):
        tree, rows = _random_task(rnd)
        cached = synthesize([(tree, rows)], config=FAST, name=f"t{trial}")
        uncached = synthesize([(tree, rows)], config=FAST_UNCACHED, name=f"t{trial}")
        assert _signature(cached) == _signature(uncached), trial
        if cached.success:
            solved += 1
    assert solved >= 80


def test_property_parallel_equals_serial_on_random_tasks():
    """Candidate-level --jobs fan-out returns byte-identical programs."""
    rnd = random.Random(1147)
    checked = 0
    for trial in range(10):
        tree, rows = _random_task(rnd)
        task = SynthesisTask(examples=[ExamplePair(tree, rows)], name=f"p{trial}")
        serial = Synthesizer(FAST).synthesize(task)
        parallel = Synthesizer(FAST, jobs=2).synthesize(task)
        assert _signature(serial) == _signature(parallel), trial
        assert serial.candidates_tried == parallel.candidates_tried, trial
        if serial.success:
            checked += 1
    assert checked >= 5


def test_synthesizer_rejects_negative_jobs():
    with pytest.raises(ValueError):
        Synthesizer(FAST, jobs=-1)


def test_synthesis_stats_are_populated():
    """Per-candidate universe sizes, phase timings and cache counters."""
    doc = {
        "person": [
            {"name": "Ann", "age": 31, "city": "Oslo"},
            {"name": "Bob", "age": 24, "city": "Pune"},
            {"name": "Cid", "age": 31, "city": "Oslo"},
        ]
    }
    tree = build_tree(doc)
    rows = [("Ann", "Oslo"), ("Cid", "Oslo")]
    result = synthesize([(tree, rows)], config=FAST, name="stats")
    assert result.success
    stats = result.stats
    assert stats is not None
    assert len(stats.universe_sizes) == result.candidates_tried
    assert all(size >= 0 for size in stats.universe_sizes)
    assert stats.universe_seconds >= 0.0
    assert stats.bitmatrix_seconds >= 0.0
    assert stats.cover_seconds >= 0.0
    assert stats.cache_counters.get("universe_misses", 0) >= 1
    assert "universe sizes per candidate" in stats.describe()

    uncached = synthesize([(tree, rows)], config=FAST_UNCACHED, name="stats")
    assert uncached.stats is not None
    # The cold path never touches the candidate-level caches.
    assert not any(uncached.stats.cache_counters.values())


# --------------------------------------------------------------------------- #
# Bitmask recomposition when one column changes
# --------------------------------------------------------------------------- #


def _nodes_by_tag(tree, tag):
    return [n for n in tree.nodes() if n.tag == tag]


def test_mask_recomposition_after_one_column_change():
    """Predicates on the unchanged column recompose from cached node sets."""
    doc = {
        "person": [
            {"name": "Ann", "age": 31, "city": "Oslo"},
            {"name": "Bob", "age": 24, "city": "Pune"},
            {"name": "Cid", "age": 31, "city": "Oslo"},
            {"name": "Dee", "age": 27, "city": "Lima"},
        ]
    }
    tree = build_tree(doc)
    cities = _nodes_by_tag(tree, "city")
    ages = _nodes_by_tag(tree, "age")
    assert len(cities) == 4 and len(ages) == 4
    universe = [
        CompareConst(NodeVar(), 0, Op.EQ, "Oslo"),
        CompareConst(NodeVar(), 1, Op.GT, 25),
        CompareNodes(NodeVar(), 0, Op.EQ, NodeVar(), 1),
        CompareNodes(Parent(NodeVar()), 1, Op.EQ, Parent(NodeVar()), 1),
    ]
    context = SynthesisContext()

    tuples1 = [(c, a) for c in cities for a in ages]
    cold1 = build_predicate_masks(universe, tuples1, 2, context, cache=False)
    warm1 = build_predicate_masks(universe, tuples1, 2, context, cache=True)
    assert warm1 == cold1
    assert context.counters["mask_misses"] == len(universe)

    # ψₙ₊₁ differs from ψₙ in column 0 only (one city dropped), and the tuple
    # order changes too: cached node sets must recompose to exactly the masks
    # a cold evaluation produces.
    tuples2 = [(c, a) for a in ages for c in cities[1:]]
    cold2 = build_predicate_masks(universe, tuples2, 2, context, cache=False)
    hits_before = context.counters["mask_hits"]
    warm2 = build_predicate_masks(universe, tuples2, 2, context, cache=True)
    assert warm2 == cold2
    # Exactly the predicates reading only column 1 (the age constant and the
    # same-column age comparison) hit; everything touching column 0 misses.
    assert context.counters["mask_hits"] == hits_before + 2

    # An identical tuple space is a full cache hit.
    hits_before = context.counters["mask_hits"]
    misses_before = context.counters["mask_misses"]
    warm2_again = build_predicate_masks(universe, tuples2, 2, context, cache=True)
    assert warm2_again == cold2
    assert context.counters["mask_hits"] == hits_before + len(universe)
    assert context.counters["mask_misses"] == misses_before


# --------------------------------------------------------------------------- #
# Large-instance exact cover
# --------------------------------------------------------------------------- #


def _random_cover_instance(rnd):
    width = rnd.randint(4, 16)
    universe = (1 << width) - 1
    masks = []
    for _ in range(rnd.randint(3, 30)):
        mask = 0
        for element in range(width):
            if rnd.random() < 0.35:
                mask |= 1 << element
        masks.append(mask)
    covered = 0
    for mask in masks:
        covered |= mask
    missing = universe & ~covered
    if missing:
        masks.append(missing)  # keep the instance coverable
    return masks, universe


def test_exact_cover_matches_branch_and_bound_on_random_instances():
    """The numpy-accelerated search makes the identical decisions."""
    rnd = random.Random(88)
    for trial in range(60):
        masks, universe = _random_cover_instance(rnd)
        reference = branch_and_bound_cover_bits(masks, universe)
        cover, complete = exact_cover_bits(masks, universe)
        assert complete, trial
        assert cover == reference, trial


def test_exact_cover_budget_exhaustion_returns_valid_cover():
    rnd = random.Random(9)
    masks, universe = _random_cover_instance(rnd)
    cover, complete = exact_cover_bits(masks, universe, max_nodes=1)
    assert not complete
    covered = 0
    for idx in cover:
        covered |= masks[idx]
    assert covered & universe == universe
    assert cover == greedy_cover_bits(masks, universe)


def test_auto_dispatch_uses_exact_search_above_the_small_limit():
    """> exact_limit sets: auto must still return a provably minimal cover."""
    rnd = random.Random(4242)
    for _ in range(10):
        masks, universe = _random_cover_instance(rnd)
        if len(masks) <= 26:
            masks = masks * (26 // len(masks) + 1)  # force the large path
        auto = minimum_cover_bits(masks, universe, strategy="auto")
        reference = branch_and_bound_cover_bits(masks, universe)
        assert len(auto) == len(reference)
        covered = 0
        for idx in auto:
            covered |= masks[idx]
        assert covered & universe == universe


def test_legacy_strategy_matches_auto_cover_size():
    """'legacy' (HiGHS on large instances) stays available and optimal."""
    rnd = random.Random(7)
    masks, universe = _random_cover_instance(rnd)
    masks = masks * (26 // len(masks) + 2)
    legacy = minimum_cover_bits(masks, universe, strategy="legacy")
    auto = minimum_cover_bits(masks, universe, strategy="auto")
    assert len(legacy) == len(auto)
    covered = 0
    for idx in legacy:
        covered |= masks[idx]
    assert covered & universe == universe
    # The list-based twin dispatches the same way.
    sets = [{e for e in range(universe.bit_length()) if (m >> e) & 1} for m in masks]
    listed = minimum_cover(sets, set(range(universe.bit_length())), strategy="legacy")
    assert len(listed) == len(auto)


def test_cost_aware_search_prefers_cheaper_equally_minimal_cover():
    """With per-set costs, swaps pick the cheaper of two same-size optima."""
    # Elements {0,1}: sets 0 and 1 each cover both (interchangeable minimum
    # covers of size 1); set 2 covers only element 0 (never sufficient).
    masks = [0b11, 0b11, 0b01]
    universe = 0b11
    without_costs, complete = exact_cover_bits(masks, universe)
    assert complete and without_costs == [0]
    preferring_second, complete = exact_cover_bits(masks, universe, costs=[5, 1, 0])
    assert complete and preferring_second == [1]
    # Swapping never changes the cover size, only which optimum is returned.
    rnd = random.Random(31)
    for trial in range(30):
        masks, universe = _random_cover_instance(rnd)
        costs = [rnd.randrange(10) for _ in masks]
        plain, _ = exact_cover_bits(masks, universe)
        swapped, _ = exact_cover_bits(masks, universe, costs=costs)
        assert len(swapped) == len(plain), trial
        covered = 0
        for idx in swapped:
            covered |= masks[idx]
        assert covered & universe == universe, trial
        assert sum(costs[i] for i in swapped) <= sum(costs[i] for i in plain), trial


def test_unknown_cover_strategy_is_rejected():
    with pytest.raises(ValueError):
        minimum_cover_bits([1], 1, strategy="simulated-annealing")
    with pytest.raises(ValueError):
        minimum_cover([{0}], {0}, strategy="simulated-annealing")


# --------------------------------------------------------------------------- #
# Context wire format: version 1 payloads still load
# --------------------------------------------------------------------------- #

_DOC = {
    "person": [
        {"name": "Ann", "city": "Oslo"},
        {"name": "Bob", "city": "Pune"},
    ]
}


def test_v1_context_payload_loads_by_evaluating_column_asts():
    """χi/universe entries keyed by column AST re-key onto node signatures."""
    tree = build_tree(_DOC)
    column = Descendants(Var(), "city")
    predicate = CompareConst(NodeVar(), 0, Op.EQ, "Oslo")
    payload = {
        "kind": "synthesis_context",
        "version": 1,
        "trees": [{"fingerprint": tree.content_fingerprint(), "size": tree.size()}],
        "columns_pool": [column_to_json(column)],
        "node_extractors_pool": [node_extractor_to_json(NodeVar())],
        "predicates_pool": [predicate_to_json(predicate)],
        "column_results": [],
        "chi": [{"trees": [0], "column": 0, "extractors": [0]}],
        "universes": [{"trees": [0], "columns": [0], "predicates": [0]}],
    }
    context = deserialize_context(payload, [tree])
    sig = context.column_signature(column, [tree])
    assert context.chi[((id(tree),), sig)] == [NodeVar()]
    assert context.universes[((id(tree),), (sig,))] == [predicate]


def test_v2_round_trip_preserves_signature_keys():
    """Serializing the rehydrated v1 context produces loadable v2 entries."""
    tree = build_tree(_DOC)
    column = Descendants(Var(), "name")
    context = SynthesisContext()
    context.facts(tree)
    sig = context.column_signature(column, [tree])
    context.chi[((id(tree),), sig)] = [NodeVar()]
    context.universes[((id(tree),), (sig,))] = [
        CompareConst(NodeVar(), 0, Op.EQ, "Ann")
    ]
    payload = serialize_context(context)
    assert payload["version"] == 2
    rebuilt = build_tree(_DOC)  # fresh uids: positions must re-key
    restored = deserialize_context(payload, [rebuilt])
    new_sig = restored.column_signature(column, [rebuilt])
    assert restored.chi[((id(rebuilt),), new_sig)] == [NodeVar()]
    assert restored.universes[((id(rebuilt),), (new_sig,))] == [
        CompareConst(NodeVar(), 0, Op.EQ, "Ann")
    ]
