"""Tests for the DSL: abstract syntax, semantics, cost model, pretty-printer."""

import pytest

from repro.dsl import (
    And,
    Child,
    Children,
    CompareConst,
    CompareNodes,
    Descendants,
    False_,
    NodeVar,
    Not,
    Op,
    Or,
    Parent,
    PChildren,
    Program,
    TableExtractor,
    True_,
    Var,
    compare_values,
    conjoin,
    disjoin,
    eval_column_on_tree,
    eval_node_extractor,
    eval_predicate,
    eval_table,
    pretty_predicate,
    pretty_program,
    program_cost,
    run_program,
    simpler,
)
from repro.hdt import build_tree, xml_to_hdt


@pytest.fixture
def people_tree():
    return build_tree(
        {
            "person": [
                {"name": "Ann", "age": 31, "pet": [{"kind": "cat"}, {"kind": "dog"}]},
                {"name": "Bob", "age": 25, "pet": [{"kind": "fish"}]},
            ]
        },
        tag="root",
    )


# --------------------------------------------------------------------------- #
# Column extractors
# --------------------------------------------------------------------------- #


def test_var_returns_input(people_tree):
    assert eval_column_on_tree(Var(), people_tree) == [people_tree.root]


def test_children_by_tag(people_tree):
    nodes = eval_column_on_tree(Children(Var(), "person"), people_tree)
    assert [n.tag for n in nodes] == ["person", "person"]


def test_pchildren_selects_position(people_tree):
    nodes = eval_column_on_tree(PChildren(Var(), "person", 1), people_tree)
    assert len(nodes) == 1 and nodes[0].child_with("name", 0).data == "Bob"


def test_descendants_reaches_deep_nodes(people_tree):
    nodes = eval_column_on_tree(Descendants(Var(), "kind"), people_tree)
    assert [n.data for n in nodes] == ["cat", "dog", "fish"]


def test_nested_extractors(people_tree):
    extractor = PChildren(Children(Var(), "person"), "name", 0)
    assert [n.data for n in eval_column_on_tree(extractor, people_tree)] == ["Ann", "Bob"]


def test_extractor_size():
    assert Var().size() == 0
    assert Children(Var(), "a").size() == 1
    assert PChildren(Descendants(Var(), "a"), "b", 0).size() == 2


def test_table_extractor_cross_product(people_tree):
    table = TableExtractor((Children(Var(), "person"), Descendants(Var(), "kind")))
    rows = eval_table(table, people_tree)
    assert len(rows) == 2 * 3
    assert table.arity == 2


# --------------------------------------------------------------------------- #
# Node extractors
# --------------------------------------------------------------------------- #


def test_node_var_identity(people_tree):
    node = people_tree.find_first("name")
    assert eval_node_extractor(NodeVar(), node) is node


def test_parent_extractor(people_tree):
    node = people_tree.find_first("name")
    assert eval_node_extractor(Parent(NodeVar()), node).tag == "person"


def test_parent_of_root_is_bottom(people_tree):
    assert eval_node_extractor(Parent(NodeVar()), people_tree.root) is None


def test_child_extractor(people_tree):
    person = people_tree.find_first("person")
    target = eval_node_extractor(Child(NodeVar(), "age", 0), person)
    assert target.data == 31


def test_child_extractor_missing_is_bottom(people_tree):
    person = people_tree.find_first("person")
    assert eval_node_extractor(Child(NodeVar(), "zzz", 0), person) is None


def test_chained_node_extractor(people_tree):
    kind = people_tree.find_first("kind")
    extractor = Child(Parent(Parent(NodeVar())), "name", 0)
    assert eval_node_extractor(extractor, kind).data == "Ann"


# --------------------------------------------------------------------------- #
# Value comparison
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize(
    "left,op,right,expected",
    [
        (3, Op.EQ, 3, True),
        (3, Op.EQ, 3.0, True),
        ("3", Op.EQ, 3, False),
        ("a", Op.EQ, "a", True),
        (3, Op.NE, 4, True),
        (3, Op.LT, 5, True),
        (5, Op.LE, 5, True),
        (7, Op.GT, 5, True),
        (7, Op.GE, 8, False),
        ("abc", Op.LT, "abd", True),
        ("abc", Op.LT, 5, False),
        (None, Op.EQ, None, True),
    ],
)
def test_compare_values(left, op, right, expected):
    assert compare_values(left, op, right) is expected


# --------------------------------------------------------------------------- #
# Predicates
# --------------------------------------------------------------------------- #


def test_compare_const_predicate(people_tree):
    ages = eval_column_on_tree(Children(Children(Var(), "person"), "age"), people_tree)
    pred = CompareConst(NodeVar(), 0, Op.LT, 30)
    assert eval_predicate(pred, (ages[1],)) is True
    assert eval_predicate(pred, (ages[0],)) is False


def test_compare_const_bottom_is_false(people_tree):
    person = people_tree.find_first("person")
    pred = CompareConst(Child(NodeVar(), "zzz", 0), 0, Op.EQ, 1)
    assert eval_predicate(pred, (person,)) is False


def test_compare_nodes_leaf_data_equality(people_tree):
    names = eval_column_on_tree(Descendants(Var(), "name"), people_tree)
    pred = CompareNodes(NodeVar(), 0, Op.EQ, NodeVar(), 1)
    assert eval_predicate(pred, (names[0], names[0])) is True
    assert eval_predicate(pred, (names[0], names[1])) is False


def test_compare_nodes_internal_identity(people_tree):
    persons = eval_column_on_tree(Children(Var(), "person"), people_tree)
    pred = CompareNodes(NodeVar(), 0, Op.EQ, NodeVar(), 1)
    assert eval_predicate(pred, (persons[0], persons[0])) is True
    assert eval_predicate(pred, (persons[0], persons[1])) is False


def test_compare_nodes_mixed_leaf_internal_is_false(people_tree):
    person = people_tree.find_first("person")
    name = people_tree.find_first("name")
    pred = CompareNodes(NodeVar(), 0, Op.EQ, NodeVar(), 1)
    assert eval_predicate(pred, (person, name)) is False


def test_boolean_connectives(people_tree):
    row = (people_tree.find_first("name"),)
    true_pred = CompareConst(NodeVar(), 0, Op.EQ, "Ann")
    false_pred = CompareConst(NodeVar(), 0, Op.EQ, "Zed")
    assert eval_predicate(And(true_pred, false_pred), row) is False
    assert eval_predicate(Or(true_pred, false_pred), row) is True
    assert eval_predicate(Not(false_pred), row) is True
    assert eval_predicate(True_(), row) is True
    assert eval_predicate(False_(), row) is False


def test_conjoin_disjoin_helpers():
    assert isinstance(conjoin([]), True_)
    assert isinstance(disjoin([]), False_)
    pred = CompareConst(NodeVar(), 0, Op.EQ, 1)
    assert conjoin([pred]) is pred
    assert isinstance(conjoin([pred, pred]), And)
    assert isinstance(disjoin([pred, pred]), Or)


# --------------------------------------------------------------------------- #
# Programs, cost, pretty-printing
# --------------------------------------------------------------------------- #


def _name_age_program():
    table = TableExtractor(
        (
            PChildren(Children(Var(), "person"), "name", 0),
            PChildren(Children(Var(), "person"), "age", 0),
        )
    )
    predicate = CompareNodes(Parent(NodeVar()), 0, Op.EQ, Parent(NodeVar()), 1)
    return Program(table, predicate)


def test_run_program(people_tree):
    rows = run_program(_name_age_program(), people_tree)
    assert sorted(rows) == [("Ann", 31), ("Bob", 25)]


def test_run_program_true_predicate(people_tree):
    table = TableExtractor((Descendants(Var(), "name"),))
    rows = run_program(Program(table, True_()), people_tree)
    assert sorted(rows) == [("Ann",), ("Bob",)]


def test_program_cost_prefers_fewer_predicates(people_tree):
    simple = Program(TableExtractor((Descendants(Var(), "name"),)), True_())
    complex_ = _name_age_program()
    assert program_cost(simple) < program_cost(complex_)
    assert simpler(simple, complex_) is simple


def test_pretty_program_roundtrips_constructs():
    text = pretty_program(_name_age_program())
    assert "filter" in text and "pchildren" in text and "parent(n)" in text
    assert "t[0]" in text and "t[1]" in text


def test_pretty_predicate_operators():
    pred = Not(And(CompareConst(NodeVar(), 0, Op.LT, 5), True_()))
    text = pretty_predicate(pred)
    assert "¬" in text and "∧" in text and "< 5" in text


def test_op_flipped_and_negated():
    assert Op.LT.flipped() is Op.GT
    assert Op.LE.negated() is Op.GT
    assert Op.EQ.flipped() is Op.EQ
    assert Op.EQ.negated() is Op.NE
