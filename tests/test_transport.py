"""Transport-level conformance and wire-protocol tests (PR 9).

Covers the `ShardTransport` seam: frame encoding/decoding (length bound,
CRC, truncation), worker addresses, the handshake + fingerprint rules, and
the conformance matrix — `LocalTransport` and `SocketTransport` must both
produce byte-canonically the output of whole-tree execution, across the
memory / SQLite / columnar backends, on the DBLP plan and on random
record-local programs.  Also the subprocess `repro worker` CLI, SIGKILL
redispatch, Unix-domain sockets, and the `--remote-workers` flag.
"""

import json
import os
import socket
import struct
import subprocess
import sys
import threading
import time
import zlib

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

import repro
from repro.datasets import dblp
from repro.runtime import (
    MemoryBackend,
    MigrationPlan,
    SQLiteBackend,
    ShardDegradedError,
    canonical_table_rows,
    execute_plan,
    shard_execute,
)
from repro.runtime.backends import ColumnarBackend
from repro.runtime.cli import main as cli_main
from repro.runtime.transport import (
    FRAME_HEADER,
    MAX_FRAME_BYTES,
    WIRE_MAGIC,
    ConnectionLost,
    FrameError,
    HandshakeError,
    LocalTransport,
    SocketTransport,
    TransportError,
    WorkerUnavailable,
    encode_frame,
    format_address,
    parse_address,
    recv_frame,
    send_frame,
)
from repro.runtime.worker import ShardWorker

from test_sharded import _single_table_plan, single_record_trees
from test_properties import random_programs


@pytest.fixture(scope="module")
def dblp_plan():
    return MigrationPlan.learn(dblp.dataset(scale=3).migration_spec())


@pytest.fixture(scope="module")
def worker_pair():
    """Two in-process shard workers on loopback TCP, shared by the module."""
    with ShardWorker() as first, ShardWorker() as second:
        yield (first, second)


def _canonical(plan, backend):
    return canonical_table_rows(
        plan.schema, {t: backend.fetch_rows(t) for t in plan.schema.table_names}
    )


def _whole_tree_reference(plan, document):
    report = execute_plan(plan, document, MemoryBackend())
    return _canonical(plan, report.backend)


# --------------------------------------------------------------------------- #
# Framing
# --------------------------------------------------------------------------- #


def test_frame_roundtrip_over_socketpair():
    left, right = socket.socketpair()
    try:
        message = ("shard", {"spec": (0, 0, 10), "chunk": b"\x00\xffpayload"})
        send_frame(left, message)
        assert recv_frame(right) == message
    finally:
        left.close()
        right.close()


def test_recv_frame_rejects_corrupted_payload():
    left, right = socket.socketpair()
    try:
        frame = bytearray(encode_frame(("data", b"x" * 100)))
        frame[-1] ^= 0xFF  # flip a payload byte after the CRC was stamped
        left.sendall(bytes(frame))
        with pytest.raises(FrameError, match="CRC"):
            recv_frame(right)
    finally:
        left.close()
        right.close()


def test_recv_frame_truncated_stream_is_connection_lost():
    left, right = socket.socketpair()
    try:
        frame = encode_frame(("data", b"y" * 1000))
        left.sendall(frame[: len(frame) // 2])
        left.close()
        with pytest.raises(ConnectionLost, match="mid-"):
            recv_frame(right)
    finally:
        right.close()


def test_recv_frame_rejects_oversized_declared_length():
    left, right = socket.socketpair()
    try:
        left.sendall(FRAME_HEADER.pack(MAX_FRAME_BYTES + 1, 0))
        with pytest.raises(FrameError, match="limit"):
            recv_frame(right)
    finally:
        left.close()
        right.close()


def test_recv_frame_rejects_undecodable_payload():
    left, right = socket.socketpair()
    try:
        data = b"not a pickle at all"
        left.sendall(FRAME_HEADER.pack(len(data), zlib.crc32(data) & 0xFFFFFFFF) + data)
        with pytest.raises(FrameError, match="does not decode"):
            recv_frame(right)
    finally:
        left.close()
        right.close()


# --------------------------------------------------------------------------- #
# Addresses
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize(
    "text, expected",
    [
        ("127.0.0.1:9100", ("tcp", ("127.0.0.1", 9100))),
        ("localhost:0", ("tcp", ("localhost", 0))),
        ("unix:/tmp/w.sock", ("unix", "/tmp/w.sock")),
        ("/tmp/w.sock", ("unix", "/tmp/w.sock")),
        ("./w.sock", ("unix", "./w.sock")),
        ("  10.0.0.2:81  ", ("tcp", ("10.0.0.2", 81))),
    ],
)
def test_parse_address_accepts(text, expected):
    assert parse_address(text) == expected


@pytest.mark.parametrize("text", ["", "   ", "nohost", ":80", "host:notaport"])
def test_parse_address_rejects(text):
    with pytest.raises(TransportError):
        parse_address(text)


def test_format_address_round_trips():
    for text in ("127.0.0.1:9100", "unix:/tmp/w.sock"):
        assert format_address(*parse_address(text)) == text


def test_socket_transport_validates_addresses_up_front():
    with pytest.raises(TransportError):
        SocketTransport([])
    with pytest.raises(TransportError):
        SocketTransport(["127.0.0.1:9", "host:notaport"])


# --------------------------------------------------------------------------- #
# Conformance matrix: transports x backends == whole-tree
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("transport_name", ["local", "socket"])
@pytest.mark.parametrize(
    "make_backend", [MemoryBackend, SQLiteBackend, ColumnarBackend]
)
def test_transport_conformance_matches_whole_tree(
    dblp_plan, worker_pair, transport_name, make_backend
):
    document = dblp.dataset(scale=12).generate(12)
    reference = _whole_tree_reference(dblp_plan, document)
    if transport_name == "socket":
        transport = SocketTransport([w.address for w in worker_pair])
    else:
        transport = LocalTransport()
    try:
        report = shard_execute(
            dblp_plan,
            document,
            make_backend(),
            shards=4,
            workers=2,
            chunk_size=5,
            transport=transport,
        )
    finally:
        transport.close()
    assert report.transport == transport_name
    assert report.shards == 4
    assert _canonical(dblp_plan, report.backend) == reference


def test_socket_transport_spreads_shards_across_workers(dblp_plan):
    document = dblp.dataset(scale=8).generate(8)
    with ShardWorker() as first, ShardWorker() as second:
        with SocketTransport([first.address, second.address]) as transport:
            shard_execute(
                dblp_plan, document, shards=4, workers=2, chunk_size=4,
                transport=transport,
            )
        assert first.shards_served > 0
        assert second.shards_served > 0
        assert first.shards_served + second.shards_served == 4


def test_socket_transport_over_unix_socket(dblp_plan, tmp_path):
    document = dblp.dataset(scale=6).generate(6)
    reference = _whole_tree_reference(dblp_plan, document)
    sock_path = str(tmp_path / "worker.sock")
    with ShardWorker(sock_path) as worker:
        assert worker.address == f"unix:{sock_path}"
        with SocketTransport([worker.address]) as transport:
            report = shard_execute(
                dblp_plan, document, shards=3, workers=1, chunk_size=4,
                transport=transport,
            )
    assert report.transport == "socket"
    assert _canonical(dblp_plan, report.backend) == reference


def test_socket_transport_file_source_parity(dblp_plan, tmp_path, worker_pair):
    """Path-based sources ship as locators; the worker re-reads the file."""
    from repro.hdt import xml_file_to_hdt
    from repro.hdt.xml_plugin import hdt_to_xml

    document = dblp.dataset(scale=6).generate(6)
    path = str(tmp_path / "dblp.xml")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(hdt_to_xml(document))
    reference = _whole_tree_reference(dblp_plan, xml_file_to_hdt(path))
    with SocketTransport([w.address for w in worker_pair]) as transport:
        report = shard_execute(
            dblp_plan, path, shards=3, workers=2, chunk_size=4,
            transport=transport,
        )
    assert _canonical(dblp_plan, report.backend) == reference


_BACKEND_FACTORIES = (
    lambda: MemoryBackend(validate=False),
    lambda: SQLiteBackend(),
    lambda: ColumnarBackend(),
)


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(single_record_trees(), st.data())
def test_remote_and_local_agree_on_random_record_local_programs(tree, data):
    """For record-local programs the transport must be invisible: remote
    execution equals local equals whole-tree, on every backend."""
    plan = _single_table_plan(data.draw(random_programs()))
    with ShardWorker() as worker:
        for make_backend in _BACKEND_FACTORIES:
            whole = make_backend()
            execute_plan(plan, tree, whole)
            reference = sorted(map(repr, whole.fetch_rows("t")))
            local = make_backend()
            shard_execute(plan, tree, local, shards=2, workers=1, chunk_size=1)
            assert sorted(map(repr, local.fetch_rows("t"))) == reference
            remote = make_backend()
            with SocketTransport([worker.address]) as transport:
                shard_execute(
                    plan, tree, remote, shards=2, workers=1, chunk_size=1,
                    transport=transport,
                )
            assert sorted(map(repr, remote.fetch_rows("t"))) == reference


# --------------------------------------------------------------------------- #
# Handshake and fingerprint rules
# --------------------------------------------------------------------------- #


def test_fingerprint_pinned_worker_rejects_other_plans(dblp_plan):
    document = dblp.dataset(scale=4).generate(4)
    with ShardWorker(expect_fingerprint="not-this-plan") as worker:
        with SocketTransport([worker.address]) as transport:
            with pytest.raises(ShardDegradedError) as excinfo:
                shard_execute(
                    dblp_plan, document, shards=2, workers=1, chunk_size=4,
                    transport=transport,
                )
            assert transport.live_endpoints() == []
    failures = excinfo.value.failures
    assert failures and all(f.error_type == "WorkerUnavailable" for f in failures)


def test_mixed_pool_survives_on_the_accepting_worker(dblp_plan):
    """One pinned-wrong worker in the pool is condemned at handshake; the
    surviving worker serves every shard and the output stays canonical."""
    document = dblp.dataset(scale=6).generate(6)
    reference = _whole_tree_reference(dblp_plan, document)
    fingerprint = dblp_plan.content_fingerprint()
    with ShardWorker(expect_fingerprint="some-other-plan") as bad:
        with ShardWorker(expect_fingerprint=fingerprint) as good:
            with SocketTransport([bad.address, good.address]) as transport:
                report = shard_execute(
                    dblp_plan, document, shards=3, workers=2, chunk_size=4,
                    transport=transport,
                )
                assert transport.live_endpoints() == [good.address]
            assert good.shards_served == 3
            assert bad.shards_served == 0
    assert _canonical(dblp_plan, report.backend) == reference


def test_worker_recomputes_shipped_plan_fingerprint(dblp_plan):
    """The driver cannot assert a fingerprint the shipped plan does not hash
    to: the worker recomputes and rejects, permanently condemning it."""
    with ShardWorker() as worker:
        sock = socket.create_connection(parse_address(worker.address)[1], timeout=5)
        try:
            send_frame(sock, ("hello", {"magic": WIRE_MAGIC, "fingerprint": "lie"}))
            kind, info = recv_frame(sock)
            assert kind == "ready" and info["have_plan"] is False
            send_frame(sock, ("plan", dblp_plan))
            kind, info = recv_frame(sock)
            assert kind == "reject"
            assert "fingerprint mismatch" in info["reason"]
        finally:
            sock.close()


def test_worker_rejects_wrong_protocol_magic():
    with ShardWorker() as worker:
        sock = socket.create_connection(parse_address(worker.address)[1], timeout=5)
        try:
            send_frame(sock, ("hello", {"magic": "some-other-wire/9", "fingerprint": "x"}))
            kind, info = recv_frame(sock)
            assert kind == "reject"
            assert "protocol mismatch" in info["reason"]
        finally:
            sock.close()


def test_no_reachable_worker_degrades_immediately(dblp_plan, tmp_path):
    """A connect failure condemns the endpoint; with none left the run
    degrades with WorkerUnavailable instead of burning retry attempts."""
    document = dblp.dataset(scale=4).generate(4)
    with SocketTransport(
        [str(tmp_path / "nobody.sock")], connect_timeout=0.5
    ) as transport:
        with pytest.raises(ShardDegradedError) as excinfo:
            shard_execute(
                dblp_plan, document, shards=2, workers=1, chunk_size=4,
                transport=transport,
            )
    failures = excinfo.value.failures
    assert failures and all(f.error_type == "WorkerUnavailable" for f in failures)
    assert all(f.attempts == 1 for f in failures)


# --------------------------------------------------------------------------- #
# Worker death and redispatch
# --------------------------------------------------------------------------- #


def _worker_env():
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [src] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return env


def _spawn_worker_process(*extra_args):
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", "--listen", "127.0.0.1:0",
         *extra_args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=_worker_env(),
    )
    line = proc.stdout.readline()
    if "worker listening on " not in line:
        proc.kill()
        raise AssertionError(f"no listen announcement, got {line!r}")
    return proc, line.split("worker listening on ", 1)[1].strip()


def test_repro_worker_cli_serves_shards(dblp_plan):
    document = dblp.dataset(scale=6).generate(6)
    reference = _whole_tree_reference(dblp_plan, document)
    proc, address = _spawn_worker_process()
    try:
        with SocketTransport([address]) as transport:
            report = shard_execute(
                dblp_plan, document, shards=2, workers=1, chunk_size=4,
                transport=transport,
            )
        assert report.transport == "socket"
        assert _canonical(dblp_plan, report.backend) == reference
    finally:
        proc.kill()
        proc.wait(timeout=10)


def test_sigkilled_worker_redispatches_to_survivor(dblp_plan):
    """SIGKILL one of two subprocess workers mid-run: in-flight shards are
    re-dispatched to the survivor and the output stays byte-canonical."""
    document = dblp.dataset(scale=10).generate(10)
    reference = _whole_tree_reference(dblp_plan, document)
    victim, victim_addr = _spawn_worker_process()
    survivor, survivor_addr = _spawn_worker_process()
    try:
        # ~400ms per shard attempt keeps both workers busy long enough for
        # the kill to land mid-shard (6 shards over 2 workers >= 1.2s).
        killer = threading.Timer(0.6, victim.kill)
        killer.start()
        with SocketTransport([victim_addr, survivor_addr]) as transport:
            report = shard_execute(
                dblp_plan,
                document,
                shards=6,
                workers=2,
                chunk_size=2,
                faults="delay:ms=400",
                transport=transport,
            )
            assert transport.live_endpoints() == [survivor_addr]
        killer.cancel()
        assert report.shards_retried >= 1
        assert report.shards_failed == 0
        assert _canonical(dblp_plan, report.backend) == reference
    finally:
        victim.kill()
        survivor.kill()
        victim.wait(timeout=10)
        survivor.wait(timeout=10)


# --------------------------------------------------------------------------- #
# CLI: --remote-workers and the worker subcommand
# --------------------------------------------------------------------------- #


def _demo_spec(tmp_path, **extra):
    payload = {"dataset": "dblp", "scale": 4, "cache_dir": str(tmp_path / "cache")}
    payload.update(extra)
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(payload))
    return str(path)


def test_cli_remote_workers_end_to_end(tmp_path, capsys):
    spec = _demo_spec(tmp_path)
    with ShardWorker() as worker:
        assert (
            cli_main(
                ["migrate", "--spec", spec, "--shards", "2",
                 "--remote-workers", worker.address]
            )
            == 0
        )
        assert worker.shards_served == 2
    out = capsys.readouterr().out
    assert "via socket transport" in out
    assert "in 2 shard(s)" in out


def test_cli_remote_workers_requires_sharded_mode(tmp_path, capsys):
    spec = _demo_spec(tmp_path)
    assert (
        cli_main(
            ["migrate", "--spec", spec, "--streaming",
             "--remote-workers", "127.0.0.1:9"]
        )
        == 1
    )
    assert "--remote-workers only applies to sharded execution" in capsys.readouterr().err


def test_cli_remote_workers_conflicts_with_workers(tmp_path, capsys):
    spec = _demo_spec(tmp_path)
    assert (
        cli_main(
            ["migrate", "--spec", spec, "--shards", "2", "--workers", "2",
             "--remote-workers", "127.0.0.1:9"]
        )
        == 1
    )
    assert "conflicts with --workers" in capsys.readouterr().err


def test_cli_remote_workers_malformed_address(tmp_path, capsys):
    spec = _demo_spec(tmp_path)
    assert (
        cli_main(
            ["migrate", "--spec", spec, "--shards", "2",
             "--remote-workers", "host:notaport"]
        )
        == 1
    )
    assert "non-numeric port" in capsys.readouterr().err


def test_cli_spec_remote_workers_key(tmp_path, capsys):
    with ShardWorker() as worker:
        spec = _demo_spec(tmp_path, shards=2, remote_workers=worker.address)
        assert cli_main(["migrate", "--spec", spec]) == 0
        assert worker.shards_served == 2
    assert "via socket transport" in capsys.readouterr().out


def test_cli_worker_help_and_report_transport_key(tmp_path, capsys):
    with pytest.raises(SystemExit):
        cli_main(["worker", "--help"])
    assert "--listen" in capsys.readouterr().out
    # Whole-tree runs report the local transport in their JSON report.
    spec = _demo_spec(tmp_path)
    report_path = tmp_path / "report.json"
    assert (
        cli_main(
            ["migrate", "--spec", spec, "--no-stream",
             "--report-json", str(report_path)]
        )
        == 0
    )
    assert json.loads(report_path.read_text())["transport"] == "local"
