"""Tests for the relational substrate: tables, schemas, the in-memory database."""

import pytest

from repro.relational import (
    ColumnDef,
    Database,
    DatabaseSchema,
    ForeignKey,
    IntegrityError,
    SchemaError,
    Table,
    TableError,
    TableSchema,
)


@pytest.fixture
def people():
    return Table("people", ["name", "age", "city"], [("Ann", 31, "austin"), ("Bob", 25, "dallas")])


def test_table_insert_and_len(people):
    people.insert(("Cam", 40, "austin"))
    assert len(people) == 3


def test_table_insert_arity_check(people):
    with pytest.raises(TableError):
        people.insert(("only-one",))


def test_table_duplicate_columns_rejected():
    with pytest.raises(TableError):
        Table("t", ["a", "a"])


def test_table_column_values(people):
    assert people.column_values("name") == ["Ann", "Bob"]
    with pytest.raises(TableError):
        people.column_values("missing")


def test_table_project(people):
    projected = people.project(["age", "name"])
    assert projected.columns == ["age", "name"]
    assert projected.rows == [(31, "Ann"), (25, "Bob")]


def test_table_select(people):
    young = people.select(lambda row: row["age"] < 30)
    assert young.rows == [("Bob", 25, "dallas")]


def test_table_distinct():
    table = Table("t", ["x"], [(1,), (1,), (2,)])
    assert table.distinct().rows == [(1,), (2,)]


def test_table_rename(people):
    renamed = people.rename({"name": "full_name"})
    assert renamed.columns == ["full_name", "age", "city"]


def test_table_cross(people):
    cities = Table("cities", ["city_name"], [("austin",), ("dallas",)])
    crossed = people.cross(cities)
    assert len(crossed) == 4
    assert crossed.arity == 4


def test_table_equi_join(people):
    cities = Table("cities", ["cname", "state"], [("austin", "TX"), ("dallas", "TX")])
    joined = people.equi_join(cities, "city", "cname")
    assert len(joined) == 2
    assert ("Ann", 31, "austin", "austin", "TX") in joined.rows


def test_table_union_arity_check(people):
    with pytest.raises(TableError):
        people.union(Table("t", ["x"], [(1,)]))
    merged = people.union(Table("more", ["n", "a", "c"], [("Cam", 1, "x")]))
    assert len(merged) == 3


def test_table_order_by_and_group_count(people):
    ordered = people.order_by("age")
    assert ordered.rows[0][1] == 25
    counts = people.group_count("city")
    assert counts == {"austin": 1, "dallas": 1}


def test_table_csv_roundtrip(people):
    text = people.to_csv()
    parsed = Table.from_csv("people", text)
    assert parsed.columns == people.columns
    assert parsed.rows[0][0] == "Ann"


def test_table_pretty_and_dicts(people):
    assert "Ann" in people.pretty()
    assert people.to_dicts()[1]["city"] == "dallas"
    assert people.contains_row(("Ann", 31, "austin"))


# --------------------------------------------------------------------------- #
# Schemas
# --------------------------------------------------------------------------- #


def _schema():
    return DatabaseSchema(
        "shop",
        [
            TableSchema(
                "customer",
                [ColumnDef("id", "integer", nullable=False), ColumnDef("name", "text")],
                primary_key="id",
            ),
            TableSchema(
                "order",
                [
                    ColumnDef("order_id", "integer", nullable=False),
                    ColumnDef("customer_id", "integer"),
                    ColumnDef("total", "real"),
                ],
                primary_key="order_id",
                foreign_keys=[ForeignKey("customer_id", "customer", "id")],
            ),
        ],
    )


def test_schema_basic_queries():
    schema = _schema()
    assert schema.num_tables == 2
    assert schema.num_columns == 5
    assert schema.table("order").foreign_key_for("customer_id").target_table == "customer"
    assert schema.table("customer").column("name").dtype == "text"


def test_schema_data_columns_exclude_keys():
    order = _schema().table("order")
    assert order.data_columns() == ["total"]
    natural = TableSchema(
        "n", [ColumnDef("id", "text"), ColumnDef("v", "text")], primary_key="id", natural_keys=True
    )
    assert natural.data_columns() == ["id", "v"]


def test_schema_topological_order():
    ordered = [t.name for t in _schema().topological_order()]
    assert ordered.index("customer") < ordered.index("order")


def test_schema_validation_errors():
    with pytest.raises(SchemaError):
        TableSchema("t", [ColumnDef("a"), ColumnDef("a")])
    with pytest.raises(SchemaError):
        TableSchema("t", [ColumnDef("a")], primary_key="zzz")
    with pytest.raises(SchemaError):
        ColumnDef("x", "varchar")
    with pytest.raises(SchemaError):
        DatabaseSchema(
            "bad",
            [
                TableSchema(
                    "a",
                    [ColumnDef("x")],
                    foreign_keys=[ForeignKey("x", "missing", "y")],
                )
            ],
        )


def test_schema_unknown_table_lookup():
    with pytest.raises(SchemaError):
        _schema().table("nope")


# --------------------------------------------------------------------------- #
# Database
# --------------------------------------------------------------------------- #


def test_database_insert_and_lookup():
    database = Database(_schema())
    database.insert("customer", (1, "Ann"))
    database.insert_many("order", [(10, 1, 9.5), (11, 1, 3.25)])
    assert database.row_count() == 3
    assert database.row_count("order") == 2
    assert database.lookup("order", "customer_id", 1) == [(10, 1, 9.5), (11, 1, 3.25)]


def test_database_primary_key_uniqueness():
    database = Database(_schema())
    database.insert("customer", (1, "Ann"))
    with pytest.raises(IntegrityError):
        database.insert("customer", (1, "Bob"))


def test_database_null_primary_key_rejected():
    database = Database(_schema())
    with pytest.raises(IntegrityError):
        database.insert("customer", (None, "Ann"))


def test_database_arity_check():
    database = Database(_schema())
    with pytest.raises(IntegrityError):
        database.insert("customer", (1,))


def test_database_type_checks():
    database = Database(_schema())
    with pytest.raises(IntegrityError):
        database.insert("customer", ("not-an-int", "Ann"))
    database.insert("customer", (2, "Ok"))
    with pytest.raises(IntegrityError):
        database.insert("order", (5, 2, "not-a-number"))


def test_database_foreign_key_validation():
    database = Database(_schema())
    database.insert("customer", (1, "Ann"))
    database.insert("order", (10, 1, 5.0))
    assert database.validate_foreign_keys() == []
    database.insert("order", (11, 99, 5.0))
    violations = database.validate_foreign_keys()
    assert len(violations) == 1 and "99" in violations[0]
    with pytest.raises(IntegrityError):
        database.validate()


def test_database_summary_and_csv():
    database = Database(_schema())
    database.insert("customer", (1, "Ann"))
    assert database.summary() == {"customer": 1, "order": 0}
    files = database.to_csv_files()
    assert "customer" in files and "Ann" in files["customer"]
