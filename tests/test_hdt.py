"""Tests for the hierarchical data tree substrate and the XML/JSON plug-ins."""

import pytest

from repro.hdt import (
    HDT,
    Node,
    build_tree,
    hdt_to_json,
    hdt_to_json_string,
    hdt_to_xml,
    json_to_hdt,
    xml_to_hdt,
)


# --------------------------------------------------------------------------- #
# Node
# --------------------------------------------------------------------------- #


def test_node_add_child_sets_parent():
    parent = Node("a")
    child = parent.new_child("b", 0, "x")
    assert child.parent is parent
    assert parent.children == [child]


def test_node_is_leaf():
    node = Node("a", 0, "data")
    assert node.is_leaf()
    node.new_child("b")
    assert not node.is_leaf()


def test_node_children_with_tag_preserves_order():
    parent = Node("p")
    first = parent.new_child("x", 0)
    parent.new_child("y", 0)
    second = parent.new_child("x", 1)
    assert parent.children_with_tag("x") == [first, second]


def test_node_child_with_tag_and_pos():
    parent = Node("p")
    parent.new_child("x", 0, "a")
    target = parent.new_child("x", 1, "b")
    assert parent.child_with("x", 1) is target
    assert parent.child_with("x", 5) is None
    assert parent.child_with("z", 0) is None


def test_node_descendants_document_order():
    root = Node("r")
    a = root.new_child("a")
    b = a.new_child("b")
    c = root.new_child("c")
    assert list(root.descendants()) == [a, b, c]


def test_node_ancestors_and_depth():
    root = Node("r")
    a = root.new_child("a")
    b = a.new_child("b")
    assert list(b.ancestors()) == [a, root]
    assert b.depth() == 2
    assert root.depth() == 0


def test_node_path_from_root():
    root = Node("r")
    a = root.new_child("a")
    b = a.new_child("b")
    assert b.path_from_root() == [root, a, b]


def test_node_identity_equality_and_hash():
    a = Node("same", 0, "same")
    b = Node("same", 0, "same")
    assert a != b
    assert a == a
    assert len({a, b}) == 2


def test_node_uids_unique():
    nodes = [Node("n") for _ in range(50)]
    assert len({n.uid for n in nodes}) == 50


# --------------------------------------------------------------------------- #
# HDT
# --------------------------------------------------------------------------- #


@pytest.fixture
def small_tree():
    return build_tree(
        {"person": [{"name": "Ann", "age": 31}, {"name": "Bob", "age": 25}]},
        tag="people",
    )


def test_tree_size_and_counts(small_tree):
    assert small_tree.size() == 7  # root + 2 persons + 4 leaves
    assert small_tree.element_count() == 3
    assert small_tree.leaf_count() == 4


def test_tree_height(small_tree):
    assert small_tree.height() == 2


def test_tree_tags_first_seen_order(small_tree):
    assert small_tree.tags() == ["people", "person", "name", "age"]


def test_tree_positions_for_tag(small_tree):
    assert small_tree.positions_for_tag("person") == [0, 1]
    assert small_tree.positions_for_tag("name") == [0]


def test_tree_constants(small_tree):
    assert set(small_tree.constants()) == {"Ann", 31, "Bob", 25}


def test_tree_find_all_and_first(small_tree):
    assert len(small_tree.find_all("person")) == 2
    assert small_tree.find_first("name").data == "Ann"
    assert small_tree.find_first("missing") is None


def test_tree_node_by_uid(small_tree):
    node = small_tree.find_first("age")
    assert small_tree.node_by_uid(node.uid) is node


def test_tree_pretty_contains_labels(small_tree):
    text = small_tree.pretty()
    assert "people" in text and "name[0]='Ann'" in text


def test_build_tree_list_positions():
    tree = build_tree({"k": [1, 2, 3]})
    nodes = tree.root.children_with_tag("k")
    assert [(n.pos, n.data) for n in nodes] == [(0, 1), (1, 2), (2, 3)]


# --------------------------------------------------------------------------- #
# XML plug-in
# --------------------------------------------------------------------------- #


def test_xml_pure_text_element_becomes_leaf():
    tree = xml_to_hdt("<r><name>Alice</name></r>")
    name = tree.find_first("name")
    assert name.is_leaf() and name.data == "Alice"


def test_xml_attributes_become_children():
    tree = xml_to_hdt('<r><person id="7"><name>A</name></person></r>')
    person = tree.find_first("person")
    id_node = person.child_with("id", 0)
    assert id_node is not None and id_node.data == 7


def test_xml_mixed_text_becomes_text_child():
    tree = xml_to_hdt('<r><obj id="1">hello<sub>x</sub></obj></r>')
    obj = tree.find_first("obj")
    text = obj.child_with("text", 0)
    assert text is not None and text.data == "hello"


def test_xml_positions_per_tag():
    tree = xml_to_hdt("<r><a>1</a><b>2</b><a>3</a></r>")
    a_nodes = tree.root.children_with_tag("a")
    assert [n.pos for n in a_nodes] == [0, 1]
    assert tree.root.children_with_tag("b")[0].pos == 0


def test_xml_numeric_coercion_toggle():
    coerced = xml_to_hdt("<r><v>42</v><w>4.5</w></r>")
    assert coerced.find_first("v").data == 42
    assert coerced.find_first("w").data == 4.5
    raw = xml_to_hdt("<r><v>42</v></r>", coerce_numbers=False)
    assert raw.find_first("v").data == "42"


def test_xml_roundtrip_structure():
    xml = "<catalog><item><sku>a1</sku><price>10</price></item></catalog>"
    tree = xml_to_hdt(xml)
    rendered = hdt_to_xml(tree)
    again = xml_to_hdt(rendered)
    assert again.find_first("sku").data == "a1"
    assert again.find_first("price").data == 10


# --------------------------------------------------------------------------- #
# JSON plug-in
# --------------------------------------------------------------------------- #


def test_json_scalars_become_leaves():
    tree = json_to_hdt({"name": "Ann", "age": 31})
    assert tree.find_first("name").data == "Ann"
    assert tree.find_first("age").data == 31


def test_json_array_flattens_to_positions():
    tree = json_to_hdt({"k": [18, 45, 32]})
    nodes = tree.root.children_with_tag("k")
    assert [(n.pos, n.data) for n in nodes] == [(0, 18), (1, 45), (2, 32)]


def test_json_nested_objects():
    tree = json_to_hdt({"a": {"b": {"c": 1}}})
    assert tree.find_first("c").data == 1
    assert tree.find_first("a").is_leaf() is False


def test_json_array_of_objects():
    tree = json_to_hdt({"users": [{"n": 1}, {"n": 2}]})
    users = tree.root.children_with_tag("users")
    assert len(users) == 2 and users[1].child_with("n", 0).data == 2


def test_json_top_level_list():
    tree = json_to_hdt([1, 2])
    items = tree.root.children_with_tag("item")
    assert [n.data for n in items] == [1, 2]


def test_json_string_input():
    tree = json_to_hdt('{"x": [true, false]}')
    assert [n.data for n in tree.root.children_with_tag("x")] == [True, False]


def test_json_roundtrip():
    doc = {"users": [{"name": "Ann", "tags": ["a", "b"]}, {"name": "Bob", "tags": ["c", "d"]}]}
    tree = json_to_hdt(doc)
    assert hdt_to_json(tree) == doc
    assert "Ann" in hdt_to_json_string(tree)


def test_json_roundtrip_single_element_array_collapses():
    # A single-element array is indistinguishable from a scalar in the HDT
    # encoding (Section 3), so reconstruction yields the scalar form.
    tree = json_to_hdt({"tags": ["only"]})
    assert hdt_to_json(tree) == {"tags": "only"}
