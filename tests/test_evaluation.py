"""Smoke tests for the evaluation harnesses (Table 1, Table 2, scalability, ablations)."""

import pytest

from repro.benchmarks_suite import load_suite
from repro.datasets import dblp
from repro.evaluation import (
    run_dataset,
    run_optimizer_ablation,
    run_scalability,
    run_table1,
    render_ablation_report,
)
from repro.evaluation.table2 import Table2Report
from repro.synthesis import SynthesisConfig


def test_table1_small_subset_produces_report():
    tasks = [t for t in load_suite() if t.expressible][:4]
    report = run_table1(tasks, SynthesisConfig.fast())
    assert report.total == 4
    assert report.solved == 4
    text = report.render()
    assert "Overall" in text and "solved" in text
    for bucket in report.buckets:
        row = bucket.as_row()
        assert row["total"] >= row["solved"]


def test_table1_counts_unsolved_tasks():
    tasks = [t for t in load_suite() if not t.expressible][:2]
    report = run_table1(tasks, SynthesisConfig.fast())
    assert report.solved == 0
    assert report.solve_rate == 0.0


def test_table2_single_dataset_row():
    bundle = dblp.dataset(scale=2)
    report = run_dataset(bundle, scale=2)
    assert report.num_tables == 9
    assert report.error == ""
    assert report.total_rows > 0
    assert report.fk_violations == 0
    assert report.tables_matching_ground_truth == 9
    rendered = Table2Report([report]).render()
    assert "DBLP" in rendered


def test_scalability_points_are_monotone():
    report = run_scalability(sizes=(20, 60))
    assert len(report.points) == 2
    assert report.points[0].document_nodes < report.points[1].document_nodes
    assert report.points[0].rows_produced < report.points[1].rows_produced
    assert "persons" in report.render()


def test_optimizer_ablation_preserves_semantics_and_reports_speedup():
    points = run_optimizer_ablation(sizes=(10, 25))
    assert len(points) == 2
    assert all(p.naive_seconds > 0 and p.optimized_seconds > 0 for p in points)
    text = render_ablation_report(points, [])
    assert "naive" in text and "speedup" in text
