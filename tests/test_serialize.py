"""Round-trip tests for the JSON serialization of programs, rules and schemas.

Every DSL construct the synthesizer can emit must satisfy
``x == from_json(to_json(x))`` and — for programs — produce identical output
on a sample tree after a trip through an actual JSON string.
"""

import json

import pytest

from repro.dsl import (
    And,
    Child,
    Children,
    CompareConst,
    CompareNodes,
    Descendants,
    False_,
    NodeVar,
    Not,
    Op,
    Or,
    Parent,
    PChildren,
    Program,
    SerializationError,
    TableExtractor,
    True_,
    Var,
    program_from_json,
    program_to_json,
    run_program,
    schema_from_json,
    schema_to_json,
)
from repro.dsl.serialize import (
    column_from_json,
    column_to_json,
    foreign_key_rule_from_json,
    foreign_key_rule_to_json,
    link_rule_from_json,
    link_rule_to_json,
    node_extractor_from_json,
    node_extractor_to_json,
    predicate_from_json,
    predicate_to_json,
)
from repro.hdt import build_tree
from repro.migration import ForeignKeyRule, LinkRule
from repro.relational import ColumnDef, DatabaseSchema, ForeignKey, TableSchema
from repro.synthesis import synthesize


# --------------------------------------------------------------------------- #
# Individual constructs
# --------------------------------------------------------------------------- #

COLUMN_EXTRACTORS = [
    Var(),
    Children(Var(), "person"),
    PChildren(Var(), "person", 2),
    Descendants(Var(), "name"),
    Descendants(Children(PChildren(Var(), "a", 0), "b"), "c"),
]


@pytest.mark.parametrize("extractor", COLUMN_EXTRACTORS, ids=repr)
def test_column_extractor_round_trip(extractor):
    payload = json.loads(json.dumps(column_to_json(extractor)))
    assert column_from_json(payload) == extractor


NODE_EXTRACTORS = [
    NodeVar(),
    Parent(NodeVar()),
    Child(NodeVar(), "tag", 3),
    Child(Parent(Parent(NodeVar())), "name", 0),
]


@pytest.mark.parametrize("extractor", NODE_EXTRACTORS, ids=repr)
def test_node_extractor_round_trip(extractor):
    payload = json.loads(json.dumps(node_extractor_to_json(extractor)))
    assert node_extractor_from_json(payload) == extractor


PREDICATES = [
    True_(),
    False_(),
    CompareConst(NodeVar(), 0, Op.EQ, "Alice"),
    CompareConst(Parent(NodeVar()), 1, Op.LT, 20),
    CompareConst(NodeVar(), 0, Op.GE, 3.5),
    CompareConst(NodeVar(), 0, Op.NE, True),
    CompareConst(NodeVar(), 0, Op.LE, None),
    CompareNodes(NodeVar(), 0, Op.EQ, Parent(NodeVar()), 1),
    CompareNodes(Child(NodeVar(), "id", 0), 2, Op.GT, NodeVar(), 0),
    And(CompareConst(NodeVar(), 0, Op.EQ, "x"), True_()),
    Or(False_(), CompareNodes(NodeVar(), 0, Op.EQ, NodeVar(), 1)),
    Not(CompareConst(NodeVar(), 0, Op.EQ, 1)),
    And(
        Or(Not(True_()), CompareConst(NodeVar(), 0, Op.GT, 7)),
        CompareNodes(Parent(NodeVar()), 0, Op.EQ, Parent(NodeVar()), 1),
    ),
]


@pytest.mark.parametrize("predicate", PREDICATES, ids=lambda p: type(p).__name__ + str(hash(p) % 1000))
def test_predicate_round_trip(predicate):
    payload = json.loads(json.dumps(predicate_to_json(predicate)))
    assert predicate_from_json(payload) == predicate


@pytest.mark.parametrize("op", list(Op))
def test_every_operator_round_trips(op):
    predicate = CompareConst(NodeVar(), 0, op, 5)
    assert predicate_from_json(predicate_to_json(predicate)) == predicate


def test_constant_types_are_preserved_exactly():
    """True vs 1 vs 1.0 must stay distinct through the wire format."""
    for constant in [True, False, 1, 0, 1.0, 0.0, "1", None]:
        predicate = CompareConst(NodeVar(), 0, Op.EQ, constant)
        restored = predicate_from_json(json.loads(json.dumps(predicate_to_json(predicate))))
        assert restored.constant == constant
        assert type(restored.constant) is type(constant)


# --------------------------------------------------------------------------- #
# Programs
# --------------------------------------------------------------------------- #


def _sample_program() -> Program:
    table = TableExtractor(
        (
            Descendants(Var(), "name"),
            Children(Descendants(Var(), "person"), "age"),
            PChildren(Var(), "person", 0),
        )
    )
    predicate = And(
        CompareNodes(Parent(NodeVar()), 0, Op.EQ, Parent(NodeVar()), 1),
        Or(
            CompareConst(NodeVar(), 1, Op.GT, 18),
            Not(CompareConst(Child(NodeVar(), "name", 0), 2, Op.EQ, "Bob")),
        ),
    )
    return Program(table=table, predicate=predicate)


def test_program_round_trip_structural():
    program = _sample_program()
    assert program_from_json(json.loads(json.dumps(program_to_json(program)))) == program


def test_program_round_trip_execution_identical():
    tree = build_tree(
        {
            "person": [
                {"name": "Ann", "age": 31},
                {"name": "Bob", "age": 12},
                {"name": "Cid", "age": 45},
            ]
        }
    )
    program = _sample_program()
    restored = program_from_json(program_to_json(program))
    assert run_program(restored, tree) == run_program(program, tree)


def test_synthesized_program_round_trips():
    """A program actually produced by the synthesizer survives the trip."""
    tree = build_tree(
        {
            "person": [
                {"name": "Ann", "age": 31},
                {"name": "Bob", "age": 12},
            ]
        }
    )
    result = synthesize([(tree, [("Ann", 31), ("Bob", 12)])])
    assert result.success
    restored = program_from_json(json.loads(json.dumps(program_to_json(result.program))))
    assert restored == result.program
    assert run_program(restored, tree) == run_program(result.program, tree)


def test_program_version_gate():
    payload = program_to_json(_sample_program())
    payload["version"] = 99
    with pytest.raises(SerializationError):
        program_from_json(payload)


@pytest.mark.parametrize(
    "payload",
    [
        {"kind": "no_such_kind"},
        {"not_kind": "var"},
        "just a string",
        {"kind": "program", "columns": [{"kind": "bogus"}], "predicate": {"kind": "true"}},
    ],
)
def test_malformed_payloads_raise(payload):
    with pytest.raises(SerializationError):
        program_from_json(payload if isinstance(payload, dict) and payload.get("kind") == "program" else {"kind": "program", "version": 1, "columns": [], "predicate": payload})


# --------------------------------------------------------------------------- #
# Key rules
# --------------------------------------------------------------------------- #


def test_link_rule_round_trip():
    rule = LinkRule(source_column=2, extractor=Child(Parent(Parent(NodeVar())), "name", 0))
    assert link_rule_from_json(json.loads(json.dumps(link_rule_to_json(rule)))) == rule


def test_foreign_key_rule_round_trip():
    rule = ForeignKeyRule(
        column="author_id",
        target_table="author",
        links=[
            LinkRule(0, Child(Parent(Parent(NodeVar())), "name", 0)),
            LinkRule(0, Child(Parent(Parent(NodeVar())), "country", 0)),
        ],
    )
    restored = foreign_key_rule_from_json(json.loads(json.dumps(foreign_key_rule_to_json(rule))))
    assert restored == rule


# --------------------------------------------------------------------------- #
# Schemas
# --------------------------------------------------------------------------- #


def test_schema_round_trip_with_all_features():
    schema = DatabaseSchema(
        "shop",
        [
            TableSchema(
                "customer",
                [
                    ColumnDef("id", "text", nullable=False),
                    ColumnDef("name", "text"),
                    ColumnDef("age", "integer"),
                    ColumnDef("score", "real"),
                ],
                primary_key="id",
            ),
            TableSchema(
                "order",
                [
                    ColumnDef("order_id", "text", nullable=False),
                    ColumnDef("customer_id", "text"),
                    ColumnDef("total", "real"),
                ],
                primary_key="order_id",
                foreign_keys=[ForeignKey("customer_id", "customer", "id")],
            ),
            TableSchema(
                "tag",
                [ColumnDef("label", "text", nullable=False)],
                primary_key="label",
                natural_keys=True,
            ),
        ],
    )
    restored = schema_from_json(json.loads(json.dumps(schema_to_json(schema))))
    assert restored == schema


def test_schema_rejects_non_schema_payload():
    with pytest.raises(SerializationError):
        schema_from_json({"kind": "program"})
