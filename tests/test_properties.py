"""Property-based tests (hypothesis) for core data structures and invariants."""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.dsl import (
    And,
    Children,
    CompareConst,
    CompareNodes,
    Descendants,
    NodeVar,
    Not,
    Op,
    Or,
    Parent,
    PChildren,
    Program,
    TableExtractor,
    True_,
    Var,
    run_program,
)
from repro.hdt import build_tree, hdt_to_json, json_to_hdt
from repro.optimizer import (
    TupleProjection,
    execute,
    execute_nodes,
    iter_execute_nodes,
    to_cnf_clauses,
    clauses_to_predicate,
)
from repro.optimizer.optimize import DATA
from repro.dsl.semantics import eval_column_on_tree, eval_predicate, eval_table, run_program_nodes
from repro.synthesis.qm import evaluate_dnf, minimize, minterm_to_bits
from repro.synthesis.set_cover import branch_and_bound_cover, greedy_cover, ilp_cover

# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #

scalars = st.one_of(
    st.integers(min_value=-50, max_value=50),
    st.text(alphabet="abcxyz", min_size=1, max_size=4),
)

json_docs = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=3),
        st.dictionaries(st.sampled_from(["a", "b", "c", "d"]), children, max_size=3),
    ),
    max_leaves=12,
)

tag_names = st.sampled_from(["a", "b", "c", "d"])


@st.composite
def small_trees(draw):
    """Small nested documents with repeated tags (good for extractor testing)."""
    doc = {
        "item": [
            {
                "k": draw(scalars),
                "v": draw(scalars),
                "sub": [{"x": draw(scalars)} for _ in range(draw(st.integers(0, 2)))],
            }
            for _ in range(draw(st.integers(1, 3)))
        ]
    }
    return build_tree(doc, tag="root")


@st.composite
def column_extractors(draw, depth=2):
    extractor = Var()
    for _ in range(draw(st.integers(0, depth))):
        kind = draw(st.sampled_from(["children", "pchildren", "descendants"]))
        tag = draw(st.sampled_from(["item", "k", "v", "sub", "x"]))
        if kind == "children":
            extractor = Children(extractor, tag)
        elif kind == "descendants":
            extractor = Descendants(extractor, tag)
        else:
            extractor = PChildren(extractor, tag, draw(st.integers(0, 1)))
    return extractor


@st.composite
def node_extractors(draw):
    extractor = NodeVar()
    for _ in range(draw(st.integers(0, 2))):
        if draw(st.booleans()):
            extractor = Parent(extractor)
        else:
            extractor = __import__("repro.dsl", fromlist=["Child"]).Child(
                extractor, draw(st.sampled_from(["k", "v", "x"])), 0
            )
    return extractor


# --------------------------------------------------------------------------- #
# HDT properties
# --------------------------------------------------------------------------- #


@settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
@given(json_docs)
def test_json_roundtrip_preserves_scalars(doc):
    """json -> HDT -> json preserves every leaf value (as a multiset)."""
    tree = json_to_hdt({"root_value": doc})
    def leaves(value):
        if isinstance(value, dict):
            out = []
            for v in value.values():
                out.extend(leaves(v))
            return out
        if isinstance(value, list):
            out = []
            for v in value:
                out.extend(leaves(v))
            return out
        return [value]

    original = sorted(map(repr, leaves(doc)))
    restored = sorted(repr(n.data) for n in tree.nodes() if n.is_leaf() and n.data is not None)
    # Empty containers become leaves with data None and are excluded; every
    # original scalar must survive.
    assert all(item in restored for item in original) or original == restored


@settings(max_examples=50, suppress_health_check=[HealthCheck.too_slow])
@given(small_trees())
def test_document_order_and_size_invariants(tree):
    nodes = list(tree.nodes())
    assert len(nodes) == tree.size()
    assert len({n.uid for n in nodes}) == len(nodes)
    for node in nodes:
        for child in node.children:
            assert child.parent is node


# --------------------------------------------------------------------------- #
# DSL / optimizer equivalence
# --------------------------------------------------------------------------- #


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(small_trees(), column_extractors(), column_extractors())
def test_optimizer_equals_naive_semantics(tree, left, right):
    """The cross-product-free executor agrees with the formal semantics."""
    program = Program(
        TableExtractor((left, right)),
        CompareNodes(Parent(NodeVar()), 0, Op.EQ, Parent(NodeVar()), 1),
    )
    assert sorted(map(repr, execute(program, tree))) == sorted(
        map(repr, run_program(program, tree))
    )


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(small_trees(), column_extractors())
def test_true_filter_returns_all_extracted_tuples(tree, extractor):
    program = Program(TableExtractor((extractor,)), True_())
    rows = run_program(program, tree)
    table = eval_table(program.table, tree)
    assert len(rows) == len(table)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(small_trees(), column_extractors(), node_extractors(), node_extractors())
def test_cnf_conversion_preserves_semantics(tree, extractor, ne1, ne2):
    """Converting a predicate to CNF and back does not change its value."""
    from repro.dsl import And, Not, Or

    atom1 = CompareNodes(ne1, 0, Op.EQ, ne2, 1)
    atom2 = CompareNodes(NodeVar(), 0, Op.EQ, NodeVar(), 1)
    predicate = Or(And(atom1, atom2), Not(atom1))
    rebuilt = clauses_to_predicate(to_cnf_clauses(predicate))
    table = TableExtractor((extractor, extractor))
    for row in eval_table(table, tree)[:20]:
        assert eval_predicate(predicate, row) == eval_predicate(rebuilt, row)


# --------------------------------------------------------------------------- #
# Naive / planned / streamed executor equivalence (PR-2 acceptance: ≥200
# random program/tree pairs across the three properties below)
# --------------------------------------------------------------------------- #

#: Small value domains force value collisions, so random programs exercise
#: value-equality hash joins (including bool/number cross-type equality).
join_scalars = st.one_of(
    st.integers(min_value=-2, max_value=3),
    st.sampled_from(["a", "b", "c"]),
    st.booleans(),
    st.sampled_from([1.0, 2.0]),
)

comparison_ops = st.sampled_from([Op.EQ, Op.EQ, Op.EQ, Op.NE, Op.LT, Op.GE])


@st.composite
def join_trees(draw):
    """Documents with heavily repeated leaf values (join-friendly)."""
    doc = {
        "item": [
            {
                "k": draw(join_scalars),
                "v": draw(join_scalars),
                "sub": [{"x": draw(join_scalars)} for _ in range(draw(st.integers(0, 2)))],
            }
            for _ in range(draw(st.integers(1, 4)))
        ]
    }
    return build_tree(doc, tag="root")


@st.composite
def random_predicates(draw, arity):
    """Random filter predicates: node/const comparisons under ∧ ∨ ¬."""

    def draw_atom():
        if draw(st.booleans()):
            return CompareNodes(
                draw(node_extractors()),
                draw(st.integers(0, arity - 1)),
                draw(comparison_ops),
                draw(node_extractors()),
                draw(st.integers(0, arity - 1)),
            )
        return CompareConst(
            draw(node_extractors()),
            draw(st.integers(0, arity - 1)),
            draw(comparison_ops),
            draw(join_scalars),
        )

    predicate = draw_atom()
    for _ in range(draw(st.integers(0, 2))):
        shape = draw(st.sampled_from(["and", "or", "not"]))
        if shape == "and":
            predicate = And(predicate, draw_atom())
        elif shape == "or":
            predicate = Or(predicate, draw_atom())
        else:
            predicate = Not(predicate)
    return predicate


@st.composite
def random_programs(draw, max_arity=3):
    arity = draw(st.integers(1, max_arity))
    columns = tuple(draw(column_extractors()) for _ in range(arity))
    return Program(TableExtractor(columns), draw(random_predicates(arity)))


@settings(max_examples=120, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(join_trees(), st.data())
def test_naive_planned_streamed_executors_agree(tree, data):
    """run_program (formal semantics) == execute (planned) == iter (streamed).

    The planner's greedy join ordering may enumerate rows in a different
    order than the naive cross product (it seeds the walk on the smallest
    column), so agreement with the formal semantics is as a multiset; the
    planned and streamed paths must agree exactly, order included.
    """
    program = data.draw(random_programs())
    naive = run_program(program, tree)
    planned = execute(program, tree)
    streamed = [tuple(n.data for n in row) for row in iter_execute_nodes(program, tree)]
    assert sorted(map(repr, planned)) == sorted(map(repr, naive))
    assert streamed == planned


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(join_trees(), st.data())
def test_streamed_node_tuples_match_formal_semantics(tree, data):
    """Tuple-level (not just data-level) agreement with Figure 7."""
    program = data.draw(random_programs())

    def key(rows):
        return sorted(tuple(node.uid for node in row) for row in rows)

    naive_nodes = run_program_nodes(program, tree)
    streamed_nodes = list(iter_execute_nodes(program, tree))
    assert key(streamed_nodes) == key(naive_nodes)
    assert execute_nodes(program, tree) == streamed_nodes


def _first_occurrence_contents(node_rows):
    seen, out = set(), []
    for row in node_rows:
        content = tuple(node.data for node in row)
        if content not in seen:
            seen.add(content)
            out.append(content)
    return out


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(join_trees(), st.data())
def test_fused_projection_preserves_content_rows(tree, data):
    """With an all-DATA projection the executor may collapse join groups, but
    the deduplicated content rows (what a natural-key table stores) must be
    identical — values and first-occurrence order — to full enumeration
    through the same planned pipeline, and the same multiset as the formal
    semantics."""
    program = data.draw(random_programs())
    projection = TupleProjection(tuple(DATA for _ in range(program.arity)))
    fused = _first_occurrence_contents(
        iter_execute_nodes(program, tree, projection=projection)
    )
    unfused = _first_occurrence_contents(iter_execute_nodes(program, tree))
    assert fused == unfused
    naive = _first_occurrence_contents(run_program_nodes(program, tree))
    assert sorted(map(repr, fused)) == sorted(map(repr, naive))


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(small_trees(), column_extractors())
def test_tag_index_eval_column_parity(tree, extractor):
    """The TagIndex-backed column scan equals the plain traversal."""
    assert eval_column_on_tree(extractor, tree) == eval_column_on_tree(
        extractor, tree, use_index=False
    )


# --------------------------------------------------------------------------- #
# Quine–McCluskey and set cover properties
# --------------------------------------------------------------------------- #


@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=1, max_value=4),
    st.data(),
)
def test_qm_minimization_is_correct(num_vars, data):
    universe = list(range(1 << num_vars))
    on_set = data.draw(st.lists(st.sampled_from(universe), unique=True, max_size=len(universe)))
    remaining = [m for m in universe if m not in on_set]
    dc_set = data.draw(st.lists(st.sampled_from(remaining), unique=True, max_size=len(remaining))) if remaining else []
    implicants = minimize(num_vars, on_set, dc_set)
    for minterm in on_set:
        assert evaluate_dnf(implicants, minterm_to_bits(minterm, num_vars))
    off_set = [m for m in universe if m not in on_set and m not in dc_set]
    for minterm in off_set:
        assert not evaluate_dnf(implicants, minterm_to_bits(minterm, num_vars))


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_set_cover_solvers_agree_on_validity_and_optimality(data):
    num_elements = data.draw(st.integers(min_value=1, max_value=6))
    universe = set(range(num_elements))
    sets = data.draw(
        st.lists(
            st.sets(st.integers(0, num_elements - 1), min_size=1, max_size=num_elements),
            min_size=1,
            max_size=6,
        )
    )
    covered = set().union(*sets)
    if not universe.issubset(covered):
        universe = covered
    if not universe:
        return
    exact = branch_and_bound_cover(sets, universe)
    ilp = ilp_cover(sets, universe)
    greedy = greedy_cover(sets, universe)
    for solution in (exact, ilp, greedy):
        chosen = set().union(*(sets[i] for i in solution)) if solution else set()
        assert universe.issubset(chosen)
    assert len(exact) == len(ilp)
    assert len(greedy) >= len(exact)
