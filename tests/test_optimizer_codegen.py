"""Tests for the optimizer (cross-product-free execution) and the code generators."""

import pytest

from repro import SynthesisConfig, synthesize
from repro.codegen import (
    compile_loaders,
    compile_program,
    count_program_loc,
    generate_javascript,
    generate_python,
    generate_xslt,
)
from repro.codegen.xslt_gen import column_to_xpath
from repro.dsl import (
    And,
    Children,
    CompareConst,
    CompareNodes,
    Descendants,
    NodeVar,
    Not,
    Op,
    Or,
    Parent,
    PChildren,
    Program,
    TableExtractor,
    True_,
    Var,
    run_program,
)
from repro.hdt import build_tree, json_to_hdt, xml_to_hdt
from repro.optimizer import (
    execute,
    execute_nodes,
    is_equijoin_clause,
    plan,
    push_negations,
    to_cnf_clauses,
)

FAST = SynthesisConfig.fast()


@pytest.fixture
def orders_tree():
    return build_tree(
        {
            "order": [
                {"oid": "o1", "customer": "ann", "item": [{"sku": "a"}, {"sku": "b"}]},
                {"oid": "o2", "customer": "bob", "item": [{"sku": "c"}]},
            ]
        },
        tag="orders",
    )


def _join_program():
    table = TableExtractor(
        (
            Children(Children(Var(), "order"), "oid"),
            Descendants(Var(), "sku"),
        )
    )
    predicate = CompareNodes(Parent(NodeVar()), 0, Op.EQ, Parent(Parent(NodeVar())), 1)
    return Program(table, predicate)


# --------------------------------------------------------------------------- #
# CNF conversion
# --------------------------------------------------------------------------- #


def test_push_negations_de_morgan():
    a = CompareConst(NodeVar(), 0, Op.EQ, 1)
    b = CompareConst(NodeVar(), 0, Op.EQ, 2)
    nnf = push_negations(Not(And(a, b)))
    assert isinstance(nnf, Or)
    assert isinstance(nnf.left, Not) and isinstance(nnf.right, Not)


def test_to_cnf_true_and_false():
    assert to_cnf_clauses(True_()) == []
    assert to_cnf_clauses(Not(True_())) == [[]]


def test_to_cnf_conjunction_splits_clauses():
    a = CompareConst(NodeVar(), 0, Op.EQ, 1)
    b = CompareNodes(NodeVar(), 0, Op.EQ, NodeVar(), 1)
    clauses = to_cnf_clauses(And(a, b))
    assert len(clauses) == 2
    assert is_equijoin_clause(clauses[1])
    assert not is_equijoin_clause(clauses[0])


def test_to_cnf_distributes_disjunction():
    a = CompareConst(NodeVar(), 0, Op.EQ, 1)
    b = CompareConst(NodeVar(), 1, Op.EQ, 2)
    c = CompareConst(NodeVar(), 0, Op.EQ, 3)
    clauses = to_cnf_clauses(Or(And(a, b), c))
    assert len(clauses) == 2
    for clause in clauses:
        assert c in clause


# --------------------------------------------------------------------------- #
# Optimized execution
# --------------------------------------------------------------------------- #


def test_plan_classifies_join_clause(orders_tree):
    execution = plan(_join_program())
    assert len(execution.joins) == 1
    assert not execution.residual
    assert "hash_joins=1" in execution.describe()


def test_execute_matches_naive_semantics(orders_tree):
    program = _join_program()
    assert set(execute(program, orders_tree)) == set(run_program(program, orders_tree))
    assert set(execute(program, orders_tree)) == {("o1", "a"), ("o1", "b"), ("o2", "c")}


def test_execute_nodes_returns_nodes(orders_tree):
    rows = execute_nodes(_join_program(), orders_tree)
    assert all(len(row) == 2 for row in rows)
    assert all(hasattr(node, "uid") for row in rows for node in row)


def test_execute_with_constant_pushdown(orders_tree):
    table = TableExtractor((Children(Children(Var(), "order"), "oid"),))
    predicate = CompareConst(NodeVar(), 0, Op.EQ, "o1")
    program = Program(table, predicate)
    assert execute(program, orders_tree) == [("o1",)]


def test_execute_true_predicate_is_cross_product(orders_tree):
    table = TableExtractor(
        (Children(Children(Var(), "order"), "oid"), Descendants(Var(), "sku"))
    )
    program = Program(table, True_())
    assert len(execute(program, orders_tree)) == 2 * 3


@pytest.mark.parametrize(
    "doc,rows",
    [
        ({"users": [{"name": "a", "age": 1}, {"name": "b", "age": 2}]}, [("a", 1), ("b", 2)]),
        (
            {"team": [{"name": "x", "member": [{"id": 1}, {"id": 2}]}]},
            [("x", 1), ("x", 2)],
        ),
    ],
)
def test_optimizer_agrees_with_naive_on_synthesized_programs(doc, rows):
    tree = json_to_hdt(doc)
    result = synthesize([(tree, rows)], config=FAST)
    assert result.success
    assert set(execute(result.program, tree)) == set(run_program(result.program, tree))


# --------------------------------------------------------------------------- #
# Code generation
# --------------------------------------------------------------------------- #


def test_generated_python_matches_semantics(orders_tree):
    program = _join_program()
    transform = compile_program(program)
    loaders = compile_loaders()
    # Execute the generated program against the generated loader's own node type.
    xml = "<orders>" + "".join(
        f"<order><oid>{o}</oid><customer>{c}</customer>" + "".join(f"<item><sku>{s}</sku></item>" for s in skus) + "</order>"
        for o, c, skus in [("o1", "ann", ["a", "b"]), ("o2", "bob", ["c"])]
    ) + "</orders>"
    root = loaders["load_xml"](xml)
    produced = {tuple(row) for row in transform(root)}
    assert produced == {("o1", "a"), ("o1", "b"), ("o2", "c")}


def test_generated_python_json_loader_roundtrip():
    doc = {"users": [{"name": "ann", "age": 31}, {"name": "bob", "age": 25}]}
    tree = json_to_hdt(doc)
    result = synthesize([(tree, [("ann", 31), ("bob", 25)])], config=FAST)
    transform = compile_program(result.program)
    loaders = compile_loaders()
    produced = {tuple(r) for r in transform(loaders["load_json"](doc))}
    assert produced == {("ann", 31), ("bob", 25)}


def test_generate_python_contains_markers():
    source = generate_python(_join_program())
    assert "BEGIN SYNTHESIZED PROGRAM" in source
    assert "def transform(root):" in source
    assert count_program_loc(source) > 0


def test_generate_xslt_structure():
    xslt = generate_xslt(_join_program())
    assert xslt.count("<xsl:for-each") == 2
    assert "<xsl:if" in xslt and "stylesheet" in xslt
    assert count_program_loc(xslt) >= 8


def test_generate_javascript_structure():
    js = generate_javascript(_join_program())
    assert "function transform(root)" in js
    transform_section = js.split("BEGIN SYNTHESIZED PROGRAM")[1].split("END SYNTHESIZED PROGRAM")[0]
    assert transform_section.count(".forEach(function (n") == 2
    assert count_program_loc(js) >= 8


def test_column_to_xpath():
    extractor = PChildren(Children(Var(), "order"), "item", 1)
    assert column_to_xpath(extractor) == "/*/order/item[2]"
    assert column_to_xpath(Descendants(Var(), "sku")) == "/*//sku"


def test_count_program_loc_without_markers():
    assert count_program_loc("a = 1\n\n# comment\nb = 2\n") == 2


def test_sql_generation_roundtrip():
    from repro.codegen import create_table_statement, generate_sql_dump, insert_statements
    from repro.relational import ColumnDef, Database, DatabaseSchema, ForeignKey, TableSchema

    schema = DatabaseSchema(
        "shop",
        [
            TableSchema(
                "customer",
                [ColumnDef("id", "integer", nullable=False), ColumnDef("name", "text")],
                primary_key="id",
            ),
            TableSchema(
                "purchase",
                [ColumnDef("customer_id", "integer"), ColumnDef("total", "real")],
                foreign_keys=[ForeignKey("customer_id", "customer", "id")],
            ),
        ],
    )
    database = Database(schema)
    database.insert("customer", (1, "Ann"))
    database.insert("purchase", (1, 9.5))
    ddl = create_table_statement(schema.table("customer"))
    assert "PRIMARY KEY" in ddl
    dml = insert_statements(database.table("purchase"))
    assert dml and "INSERT INTO" in dml[0]
    dump = generate_sql_dump(database)
    assert "FOREIGN KEY" in dump and "'Ann'" in dump and dump.strip().endswith("COMMIT;")
