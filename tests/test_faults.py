"""Tests for shard supervision and fault injection (PR-7 robustness layer).

Covers `repro.runtime.faults` (the `FaultPlan` spec grammar and hook
sites), `repro.runtime.supervisor` (`RetryPolicy` classification and
deterministic backoff, crash/timeout re-dispatch), the sharded executor's
graceful degradation (`ShardDegradedError`, checkpoint preservation,
resume of only the failed shards), the hardened SQLite insert path, the
CLI's `--shard-retries`/`--shard-timeout`/`--inject-faults` surface, and
the service's `error_detail` + degraded-job reporting.  See
docs/robustness.md.
PR 9 adds the wire-path actions (`drop_conn`, `corrupt_frame`, `stall`):
their grammar, the transport error classification in `RetryPolicy`, and
the end-to-end guarantees — a connection cut mid-frame retries to a
byte-identical result, and a persistently corrupted stream degrades
loudly instead of ever truncating output silently.
"""

import json
import sqlite3
import time

import pytest

from repro.datasets import dblp
from repro.relational import ColumnDef, DatabaseSchema, TableSchema
from repro.runtime import (
    MemoryBackend,
    MigrationPlan,
    SQLiteBackend,
    canonical_table_rows,
    shard_execute,
)
from repro.runtime.backends import ColumnarBackend
from repro.runtime.backends.sqlite import SQLiteBackendError
from repro.runtime.cli import main as cli_main
from repro.runtime.faults import (
    FaultError,
    FaultInjected,
    FaultPlan,
    FaultRule,
    WorkerKilled,
    activation,
    resolve_plan,
)
from repro.runtime.service import JobRunner, ShardCheckpoint
from repro.runtime.service.jobs import Job
from repro.runtime.sharded import ShardDegradedError, ShardError
from repro.runtime.supervisor import (
    RetryPolicy,
    ShardFailure,
    ShardTimeout,
    WorkerCrash,
)


@pytest.fixture(scope="module")
def dblp_plan():
    return MigrationPlan.learn(dblp.dataset(scale=3).migration_spec())


@pytest.fixture(scope="module")
def document():
    return dblp.dataset(scale=8).generate(8)


def _canonical(plan, backend):
    return canonical_table_rows(
        plan.schema, {t: backend.fetch_rows(t) for t in plan.schema.table_names}
    )


@pytest.fixture(scope="module")
def reference(dblp_plan, document):
    report = shard_execute(dblp_plan, document, shards=3, workers=1)
    return _canonical(dblp_plan, report.backend)


# --------------------------------------------------------------------------- #
# FaultPlan: spec grammar
# --------------------------------------------------------------------------- #


def test_fault_plan_parse_roundtrip():
    spec = "kill:shard=2:attempt=1,delay:shard=0:ms=500,truncate_spill:shard=1,lock_db:attempt=1"
    plan = FaultPlan.parse(spec)
    assert plan.to_spec() == spec
    assert plan.rules[0] == FaultRule("kill", shard=2, attempt=1)
    assert plan.rules[1].ms == 500
    # Pickles unchanged into worker payloads.
    import pickle

    assert pickle.loads(pickle.dumps(plan)) == plan


def test_fault_plan_selector_matching():
    plan = FaultPlan.parse("kill:shard=2:attempt=1")
    assert plan.match("kill", shard=2, attempt=1) is not None
    assert plan.match("kill", shard=2, attempt=2) is None
    assert plan.match("kill", shard=1, attempt=1) is None
    assert plan.match("delay", shard=2, attempt=1) is None
    # Omitted selectors match everything.
    broad = FaultPlan.parse("fail")
    assert broad.match("fail", shard=7, attempt=3) is not None


@pytest.mark.parametrize(
    "bad, message",
    [
        ("explode:shard=1", "unknown fault action"),
        ("kill:shard", "expected key=value"),
        ("kill:shard=x", "not an integer"),
        ("kill:shard=-1", "must be >= 0"),
        ("kill:attempt=0", "attempts are 1-based"),
        ("delay:shard=1", "needs ms="),
        ("kill:ms=100", "ms= only applies to delay"),
        ("kill:color=red", "unknown fault selector"),
        ("", "empty fault spec"),
    ],
)
def test_fault_plan_parse_errors(bad, message):
    with pytest.raises(FaultError, match=message):
        FaultPlan.parse(bad)


def test_resolve_plan_forms(monkeypatch):
    plan = FaultPlan.parse("fail:shard=1")
    assert resolve_plan(plan) is plan
    assert resolve_plan("fail:shard=1") == plan
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    assert resolve_plan(None) is None
    monkeypatch.setenv("REPRO_FAULTS", "fail:shard=1")
    assert resolve_plan(None) == plan


# --------------------------------------------------------------------------- #
# RetryPolicy: classification and determinism
# --------------------------------------------------------------------------- #


def test_retry_policy_classification():
    policy = RetryPolicy()
    retryable = [
        WorkerCrash("worker died"),
        WorkerKilled("injected"),
        ShardTimeout("too slow"),
        sqlite3.OperationalError("database is locked"),
        sqlite3.OperationalError("database table is busy"),
        OSError("spill I/O"),
    ]
    for error in retryable:
        assert policy.is_retryable(error), error
    permanent = [
        ShardError("fingerprint mismatch"),
        FaultInjected("injected permanent"),
        ValueError("a bug"),
        sqlite3.OperationalError("no such table: author"),
    ]
    for error in permanent:
        assert not policy.is_retryable(error), error


def test_retry_policy_broken_pool_by_name():
    from concurrent.futures.process import BrokenProcessPool

    assert RetryPolicy().is_retryable(BrokenProcessPool("pool died"))


def test_retry_policy_walks_cause_chain():
    policy = RetryPolicy()
    wrapped = SQLiteBackendError("insert failed")
    wrapped.__cause__ = sqlite3.OperationalError("database is locked")
    assert policy.is_retryable(wrapped)
    plain = SQLiteBackendError("schema error")
    plain.__cause__ = sqlite3.OperationalError("no such table")
    assert not policy.is_retryable(plain)


def test_retry_policy_deterministic_delays():
    a = RetryPolicy(seed=7)
    b = RetryPolicy(seed=7)
    schedule = [a.delay_for(shard, attempt) for shard in range(3) for attempt in (1, 2)]
    assert schedule == [
        b.delay_for(shard, attempt) for shard in range(3) for attempt in (1, 2)
    ]
    # Backoff grows and respects the ceiling.
    assert a.delay_for(0, 2) > a.delay_for(0, 1)
    capped = RetryPolicy(base_delay=10.0, max_delay=1.0, jitter=0.0)
    assert capped.delay_for(0, 5) == 1.0


def test_shard_failure_json_roundtrip():
    failure = ShardFailure(
        shard=2, attempts=3, error_type="WorkerCrash",
        error="exited", retryable=True, traceback="tb",
    )
    assert ShardFailure.from_json(failure.to_json()) == failure
    assert "shard 2" in failure.describe()
    assert "3 attempt(s)" in failure.describe()


# --------------------------------------------------------------------------- #
# Injected faults through shard_execute: retry paths
# --------------------------------------------------------------------------- #


def test_truncated_spill_is_retried_in_process(dblp_plan, document, reference):
    report = shard_execute(
        dblp_plan, document, shards=3, workers=1,
        faults="truncate_spill:shard=0:attempt=1",
    )
    assert report.shards_retried == 1
    assert report.shards_failed == 0
    assert report.shard_failures == []
    assert _canonical(dblp_plan, report.backend) == reference


def test_in_process_kill_is_retried(dblp_plan, document, reference):
    report = shard_execute(
        dblp_plan, document, shards=3, workers=1, faults="kill:shard=1:attempt=1"
    )
    assert report.shards_retried == 1
    assert _canonical(dblp_plan, report.backend) == reference


@pytest.mark.parametrize(
    "make_backend", [MemoryBackend, SQLiteBackend, ColumnarBackend]
)
def test_killed_worker_process_redispatches_canonically(
    dblp_plan, document, reference, make_backend
):
    """A worker killed with os._exit mid-spill re-dispatches only its shard,
    and the finished output is byte-canonically identical to an
    uninterrupted run — across all three backends."""
    report = shard_execute(
        dblp_plan, document, make_backend(), shards=3, workers=2,
        faults="kill:shard=1:attempt=1",
    )
    assert report.shards_retried >= 1
    assert report.shards_failed == 0
    assert _canonical(dblp_plan, report.backend) == reference


def test_shard_timeout_cancels_and_redispatches(dblp_plan, document, reference):
    report = shard_execute(
        dblp_plan, document, shards=3, workers=2, shard_timeout=0.5,
        faults="delay:shard=0:ms=2500:attempt=1",
    )
    assert report.shards_retried >= 1
    assert report.shards_failed == 0
    assert _canonical(dblp_plan, report.backend) == reference


def test_lock_db_fault_exercises_sqlite_insert_retry(dblp_plan, document, reference):
    backend = SQLiteBackend()
    report = shard_execute(
        dblp_plan, document, backend, shards=3, workers=1, faults="lock_db:attempt=1"
    )
    assert _canonical(dblp_plan, report.backend) == reference


def test_env_var_activates_faults(dblp_plan, document, reference, monkeypatch):
    monkeypatch.setenv("REPRO_FAULTS", "truncate_spill:shard=0:attempt=1")
    report = shard_execute(dblp_plan, document, shards=3, workers=1)
    assert report.shards_retried == 1
    assert _canonical(dblp_plan, report.backend) == reference


# --------------------------------------------------------------------------- #
# Graceful degradation and resume
# --------------------------------------------------------------------------- #


def test_permanent_fault_degrades_gracefully(dblp_plan, document):
    with pytest.raises(ShardDegradedError) as excinfo:
        shard_execute(dblp_plan, document, shards=3, workers=1, faults="fail:shard=1")
    error = excinfo.value
    assert len(error.failures) == 1
    failure = error.failures[0]
    assert failure.shard == 1
    assert failure.error_type == "FaultInjected"
    assert failure.attempts == 1  # non-retryable: no second attempt
    assert not failure.retryable
    assert error.report.shards_failed == 1
    assert error.report.shard_failures == [failure.to_json()]
    assert not error.resumable  # no checkpoint was configured
    assert "failed permanently" in str(error)


def test_retryable_exhaustion_records_attempts(dblp_plan, document):
    policy = RetryPolicy(max_attempts=2, base_delay=0.01)
    with pytest.raises(ShardDegradedError) as excinfo:
        shard_execute(
            dblp_plan, document, shards=3, workers=1,
            faults="truncate_spill:shard=0", retry_policy=policy,
        )
    failure = excinfo.value.failures[0]
    assert failure.shard == 0
    assert failure.attempts == 2
    assert failure.retryable  # transient, but the budget ran out
    assert excinfo.value.report.shards_retried == 1


def test_degraded_run_keeps_checkpoint_and_resumes(
    dblp_plan, document, reference, tmp_path
):
    """The acceptance path: exhausted retries degrade without losing the
    completed shards; a resume re-executes only the failed one and the
    final output matches an uninterrupted run canonically."""
    directory = str(tmp_path / "ckpt")
    with pytest.raises(ShardDegradedError) as excinfo:
        shard_execute(
            dblp_plan, document, shards=3, workers=1,
            checkpoint=ShardCheckpoint(directory), faults="fail:shard=1",
        )
    assert excinfo.value.resumable
    assert "resume" in str(excinfo.value)
    report = shard_execute(
        dblp_plan, document, shards=3, workers=1,
        checkpoint=ShardCheckpoint(directory), resume=True,
    )
    assert report.shards_resumed == 2  # only the failed shard re-executed
    assert report.shards_executed == 1
    assert _canonical(dblp_plan, report.backend) == reference


def test_degradation_skips_reduce_entirely(dblp_plan, document):
    """No partial target: the backend never begins when any shard failed."""

    class _Recording(MemoryBackend):
        began = False

        def begin(self, schema):
            self.began = True
            super().begin(schema)

    backend = _Recording()
    with pytest.raises(ShardDegradedError):
        shard_execute(
            dblp_plan, document, backend, shards=3, workers=1, faults="fail:shard=0"
        )
    assert not backend.began


# --------------------------------------------------------------------------- #
# SQLite insert hardening
# --------------------------------------------------------------------------- #


def _toy_schema():
    return DatabaseSchema(
        name="toy",
        tables=[
            TableSchema(
                name="author",
                columns=[ColumnDef("id"), ColumnDef("name")],
                primary_key="id",
            )
        ],
    )


def test_sqlite_injected_lock_is_retried(tmp_path):
    backend = SQLiteBackend(str(tmp_path / "t.db"))
    backend.begin(_toy_schema())
    with activation(FaultPlan.parse("lock_db:attempt=1")):
        assert backend.insert_rows("author", [("a1", "Ada"), ("a2", "Grace")]) == 2
    backend.finalize()
    assert backend.fetch_rows("author") == [("a1", "Ada"), ("a2", "Grace")]
    backend.close()


def test_sqlite_lock_exhaustion_surfaces(tmp_path):
    policy = RetryPolicy(max_attempts=2, base_delay=0.01)
    backend = SQLiteBackend(str(tmp_path / "t.db"), retry_policy=policy)
    backend.begin(_toy_schema())
    with activation(FaultPlan.parse("lock_db")):  # every attempt locks
        with pytest.raises(SQLiteBackendError, match="after 2 attempt"):
            backend.insert_rows("author", [("a1", "Ada")])
    backend.close()


def test_sqlite_busy_timeout_pragma(tmp_path):
    backend = SQLiteBackend(str(tmp_path / "t.db"), busy_timeout_ms=1234)
    backend.begin(_toy_schema())
    (value,) = backend.connection.execute("PRAGMA busy_timeout").fetchone()
    assert value == 1234
    backend.close()


# --------------------------------------------------------------------------- #
# CLI surface
# --------------------------------------------------------------------------- #


def _demo_spec(tmp_path, **extra):
    payload = {"dataset": "dblp", "scale": 4, "cache_dir": str(tmp_path / "cache")}
    payload.update(extra)
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(payload))
    return str(path)


def test_cli_inject_faults_end_to_end(tmp_path, capsys):
    spec = _demo_spec(tmp_path)
    out = tmp_path / "out.db"
    report_path = tmp_path / "report.json"
    assert cli_main(
        ["migrate", "--spec", spec, "--shards", "3", "--workers", "1",
         "--backend", "sqlite", "--output", str(out),
         "--inject-faults", "truncate_spill:shard=0:attempt=1",
         "--report-json", str(report_path)]
    ) == 0
    assert "retried" in capsys.readouterr().out
    report = json.loads(report_path.read_text())
    assert report["shards_retried"] == 1
    assert report["shards_failed"] == 0
    assert cli_main(
        ["verify", "--spec", spec, "--backend", "sqlite", "--output", str(out)]
    ) == 0


def test_cli_degraded_run_exits_one_then_resumes(tmp_path, capsys):
    spec = _demo_spec(tmp_path)
    out = tmp_path / "out.db"
    ckpt = tmp_path / "ckpt"
    report_path = tmp_path / "report.json"
    assert cli_main(
        ["migrate", "--spec", spec, "--shards", "3", "--workers", "1",
         "--backend", "sqlite", "--output", str(out),
         "--checkpoint-dir", str(ckpt),
         "--inject-faults", "fail:shard=1",
         "--report-json", str(report_path)]
    ) == 1
    captured = capsys.readouterr()
    assert "failed permanently" in captured.err
    assert "FaultInjected" in captured.err
    assert "--resume" in captured.err
    report = json.loads(report_path.read_text())
    assert report["shards_failed"] == 1
    assert report["shard_failures"][0]["shard"] == 1
    # The fix (no fault plan) + --resume finishes from the checkpoint.
    assert cli_main(
        ["migrate", "--spec", spec, "--shards", "3", "--workers", "1",
         "--backend", "sqlite", "--output", str(out),
         "--checkpoint-dir", str(ckpt), "--resume"]
    ) == 0
    assert "(2 resumed from checkpoint, 1 executed)" in capsys.readouterr().out
    assert cli_main(
        ["verify", "--spec", spec, "--backend", "sqlite", "--output", str(out)]
    ) == 0


@pytest.mark.parametrize(
    "flag", [["--shard-retries", "2"], ["--shard-timeout", "5"],
             ["--inject-faults", "fail:shard=0"]]
)
def test_cli_supervision_flags_need_sharded_mode(tmp_path, capsys, flag):
    spec = _demo_spec(tmp_path)
    assert cli_main(["migrate", "--spec", spec, *flag]) == 1
    assert "only applies to sharded execution" in capsys.readouterr().err


def test_cli_rejects_bad_fault_spec_and_values(tmp_path, capsys):
    spec = _demo_spec(tmp_path)
    assert cli_main(
        ["migrate", "--spec", spec, "--shards", "2",
         "--inject-faults", "explode:shard=1"]
    ) == 1
    assert "--inject-faults" in capsys.readouterr().err
    assert cli_main(
        ["migrate", "--spec", spec, "--shards", "2", "--shard-retries", "-1"]
    ) == 1
    assert "--shard-retries" in capsys.readouterr().err
    assert cli_main(
        ["migrate", "--spec", spec, "--shards", "2", "--shard-timeout", "0"]
    ) == 1
    assert "--shard-timeout" in capsys.readouterr().err


# --------------------------------------------------------------------------- #
# Service: error_detail and degraded-job reports
# --------------------------------------------------------------------------- #


def test_job_error_detail_roundtrip():
    job = Job(id="job-000001", kind="migrate", params={})
    job.state = "failed"
    job.error = "boom"
    job.error_detail = "Traceback (most recent call last):\n  ...\nboom"
    reloaded = Job.from_json(job.to_json())
    assert reloaded.error_detail == job.error_detail
    assert Job.from_json(Job(id="j2", kind="run", params={}).to_json()).error_detail is None


TERMINAL = ("succeeded", "failed", "cancelled")


def _await(runner, job_id, timeout=90):
    deadline = time.time() + timeout
    while time.time() < deadline:
        job = runner.store.get(job_id)
        if job.state in TERMINAL:
            return job
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} did not finish in {timeout}s")


@pytest.fixture
def runner(tmp_path):
    instance = JobRunner(str(tmp_path / "state"), max_workers=1)
    yield instance
    instance.close(wait=False)


SPEC_PARAMS = {"spec": {"dataset": "dblp", "scale": 3}, "shards": 2, "workers": 1}


def test_failed_job_records_traceback(runner):
    job = _await(runner, runner.submit("run", dict(SPEC_PARAMS, dry_run=True)).id)
    assert job.state == "failed"
    assert job.error_detail and "Traceback" in job.error_detail


def test_fault_injected_job_retries_and_succeeds(runner):
    params = dict(
        SPEC_PARAMS, backend="sqlite",
        inject_faults="truncate_spill:shard=0:attempt=1",
    )
    job = _await(runner, runner.submit("migrate", params).id)
    assert job.state == "succeeded", job.error
    assert job.report["shards_retried"] == 1
    verify = _await(runner, runner.submit("verify", {"job": job.id}).id)
    assert verify.state == "succeeded", verify.error
    assert verify.report["passed"] is True


def test_degraded_job_keeps_structured_report(runner):
    params = dict(SPEC_PARAMS, backend="sqlite", inject_faults="fail:shard=1")
    job = _await(runner, runner.submit("migrate", params).id)
    assert job.state == "failed"
    assert "FaultInjected" in (job.error or "")
    assert job.error_detail  # the shard's traceback
    assert job.report is not None
    assert job.report["shards_failed"] == 1
    assert job.report["shard_failures"][0]["shard"] == 1
    # Resume without the fault param would rerun with the same params, so
    # degraded jobs resume only after the caller fixes them; here we just
    # assert the transition clears the failure fields.
    resumed = runner.resume(job.id)
    assert resumed.error is None
    assert resumed.error_detail is None
    assert resumed.report is None
    _await(runner, job.id)  # let it finish (it degrades again) before teardown


# --------------------------------------------------------------------------- #
# Wire-path faults (PR 9): grammar, classification, end-to-end guarantees
# --------------------------------------------------------------------------- #


def test_wire_fault_grammar():
    spec = "drop_conn:shard=1:attempt=1,corrupt_frame:shard=0,stall:shard=2:ms=250"
    plan = FaultPlan.parse(spec)
    assert plan.to_spec() == spec
    assert plan.rules[0] == FaultRule("drop_conn", shard=1, attempt=1)
    assert plan.rules[2].ms == 250
    with pytest.raises(FaultError, match="needs ms="):
        FaultPlan.parse("stall:shard=1")  # stall is a timed action
    with pytest.raises(FaultError, match="ms= only applies to delay/stall"):
        FaultPlan.parse("corrupt_frame:ms=5")
    with pytest.raises(FaultError, match="ms= only applies to delay/stall"):
        FaultPlan.parse("drop_conn:ms=5")


def test_retry_policy_transport_error_classification():
    from repro.runtime.transport import (
        ConnectionLost,
        FrameError,
        HandshakeError,
        RemoteShardError,
        TransportError,
        WorkerUnavailable,
    )

    policy = RetryPolicy()
    for error in (
        TransportError("generic wire trouble"),
        ConnectionLost("peer reset mid-frame"),
        FrameError("crc mismatch"),
    ):
        assert policy.is_retryable(error), error
    for error in (
        HandshakeError("plan fingerprint rejected"),
        WorkerUnavailable("no live workers"),
    ):
        assert not policy.is_retryable(error), error
    # A remote failure carries the worker's own classification, made with
    # the driver's shipped policy; the hint is honoured verbatim.
    assert policy.is_retryable(
        RemoteShardError("remote crash", remote_type="WorkerCrash", retryable=True)
    )
    assert not policy.is_retryable(
        RemoteShardError("remote bug", remote_type="ValueError", retryable=False)
    )


def test_drop_conn_mid_frame_retries_to_identical_result(
    dblp_plan, document, reference
):
    """The acceptance case: a connection severed mid-frame (half a frame
    delivered, then a dead socket) re-dispatches the shard and the final
    output is byte-identical to an unfaulted run."""
    from repro.runtime.transport import SocketTransport
    from repro.runtime.worker import ShardWorker

    with ShardWorker() as worker:
        with SocketTransport([worker.address]) as transport:
            report = shard_execute(
                dblp_plan, document, shards=3, workers=1, chunk_size=4,
                faults="drop_conn:shard=1:attempt=1", transport=transport,
            )
    assert report.shards_retried == 1
    assert report.shards_failed == 0
    assert _canonical(dblp_plan, report.backend) == reference


def test_corrupt_frame_is_caught_and_retried(dblp_plan, document, reference):
    """A flipped byte in a spill frame fails the CRC check; the shard is
    re-streamed from scratch, never patched around."""
    from repro.runtime.transport import SocketTransport
    from repro.runtime.worker import ShardWorker

    with ShardWorker() as worker:
        with SocketTransport([worker.address]) as transport:
            report = shard_execute(
                dblp_plan, document, shards=3, workers=1, chunk_size=4,
                faults="corrupt_frame:shard=0:attempt=1", transport=transport,
            )
    assert report.shards_retried == 1
    assert _canonical(dblp_plan, report.backend) == reference


def test_persistent_corruption_degrades_never_truncates(dblp_plan, document):
    """Corruption on *every* attempt exhausts the retry budget and degrades
    with a structured FrameError failure — silent truncation of the target
    is impossible because no spill means no reduce."""
    from repro.runtime.transport import SocketTransport
    from repro.runtime.worker import ShardWorker

    policy = RetryPolicy(max_attempts=2, base_delay=0.01)
    with ShardWorker() as worker:
        with SocketTransport([worker.address]) as transport:
            with pytest.raises(ShardDegradedError) as excinfo:
                shard_execute(
                    dblp_plan, document, shards=3, workers=1, chunk_size=4,
                    faults="corrupt_frame:shard=1", retry_policy=policy,
                    transport=transport,
                )
    failure = excinfo.value.failures[0]
    assert failure.shard == 1
    assert failure.error_type == "FrameError"
    assert failure.attempts == 2
    assert failure.retryable  # transient class, but the budget ran out


def test_stall_fault_delays_the_stream(dblp_plan, document, reference):
    from repro.runtime.transport import SocketTransport
    from repro.runtime.worker import ShardWorker

    with ShardWorker() as worker:
        with SocketTransport([worker.address]) as transport:
            started = time.monotonic()
            report = shard_execute(
                dblp_plan, document, shards=2, workers=1, chunk_size=4,
                faults="stall:shard=0:ms=400", transport=transport,
            )
            elapsed = time.monotonic() - started
    assert elapsed >= 0.4
    assert report.shards_failed == 0
    assert _canonical(dblp_plan, report.backend) == reference


def test_remote_kill_fault_takes_down_the_worker_daemon(dblp_plan, document):
    """A `kill` rule inside a remote worker os._exits the daemon process —
    remote workers ARE the worker process.  With no survivor the run
    degrades as WorkerUnavailable."""
    import os
    import subprocess
    import sys

    import repro as _repro
    from repro.runtime.transport import SocketTransport

    src = os.path.dirname(os.path.dirname(os.path.abspath(_repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = src
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", "--listen", "127.0.0.1:0"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
    )
    try:
        line = proc.stdout.readline()
        address = line.split("worker listening on ", 1)[1].strip()
        with SocketTransport([address]) as transport:
            with pytest.raises(ShardDegradedError):
                shard_execute(
                    dblp_plan, document, shards=2, workers=1, chunk_size=4,
                    faults="kill:shard=0", transport=transport,
                )
        assert proc.wait(timeout=10) != 0  # the daemon really died
    finally:
        proc.kill()
