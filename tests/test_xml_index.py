"""The XML byte-offset record index, source-count caching, and shard
auto-tuning (PR 9).

The counting pass over an XML source now builds a byte-offset index of
record boundaries (`build_xml_record_index`), so a shard *seeks* to its
record window instead of re-parsing the whole document.  These tests pin
the contract: seeking must equal a full reparse on DBLP-style documents
with comments, CDATA sections, and multi-byte UTF-8 straddling shard
boundaries; documents the index cannot serve (namespaces) fall back with
identical output; counts and indexes are cached by the file's
identity+stat so resume/dry-run never re-scan an unchanged source; and
`--shards auto` sizes the partition from records x cores x chunk size at
pinned, deterministic points.
"""

import json
import os
import xml.etree.ElementTree as ET

import pytest

from repro.datasets import dblp
from repro.hdt.xml_plugin import (
    build_xml_record_index,
    hdt_to_xml,
)
from repro.runtime import (
    MemoryBackend,
    MigrationPlan,
    canonical_table_rows,
    execute_plan,
    shard_execute,
)
from repro.runtime.cli import main as cli_main
from repro.runtime.sharded import (
    _JSON_COUNT_CACHE,
    _XML_INDEX_CACHE,
    MIN_AUTO_SHARD_RECORDS,
    JSONSource,
    ShardError,
    XMLSource,
    auto_shard_count,
    clear_source_caches,
    resolve_shard_count,
)
from repro.runtime.streaming import (
    count_xml_records,
    iter_indexed_xml_chunks,
    iter_xml_chunks,
)

TRICKY_XML = """<?xml version="1.0" encoding="UTF-8"?>
<!-- catalogue preamble -->
<dblp version="7">
  <!-- leading comment between records -->
  <article><title>Tést 中文 ünïçode — δοκιμή</title><year>2001</year></article>
  <book><title><![CDATA[CDATA <raw> &amp; bytes]]></title><pages>42</pages></book>
  <article><author>名前 αβγ</author><note>multi–byte “quotes”</note></article>
  <!-- trailing comment -->
</dblp>
"""


@pytest.fixture
def tricky_path(tmp_path):
    path = tmp_path / "tricky.xml"
    path.write_text(TRICKY_XML, encoding="utf-8")
    return str(path)


def _shape(node):
    return (node.tag, node.pos, node.data, tuple(_shape(c) for c in node.children))


def _records(chunks):
    """Flatten a chunk stream into comparable (tag, pos, subtree) shapes."""
    out = []
    for chunk in chunks:
        for record in chunk.tree.root.children:
            out.append(_shape(record))
    return out


# --------------------------------------------------------------------------- #
# Index structure
# --------------------------------------------------------------------------- #


def test_index_structure_on_tricky_document(tricky_path):
    index = build_xml_record_index(tricky_path)
    assert index.root_tag == "dblp"
    assert index.tags == ("article", "book", "article")
    assert index.record_count == 3
    assert index.seekable
    assert index.encoding.lower() == "utf-8"
    raw = open(tricky_path, "rb").read()
    # Every offset lands on the ASCII '<' that opens its record element, so
    # a byte splice can never split a multi-byte sequence.
    for offset, tag in zip(index.offsets, index.tags):
        assert raw[offset : offset + 1] == b"<"
        assert raw[offset : offset + len(tag) + 1] == b"<" + tag.encode()
    assert index.offsets == tuple(sorted(index.offsets))
    # content_end points at the closing root tag, after the last record.
    assert index.content_end > index.offsets[-1]
    assert raw[index.content_end :].strip().startswith(b"</dblp>")


def test_index_counts_match_streaming_counter(tricky_path):
    assert build_xml_record_index(tricky_path).record_count == count_xml_records(
        tricky_path
    )


# --------------------------------------------------------------------------- #
# Seek == full reparse
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("record_range", [(0, 3), (0, 1), (1, 2), (2, 3), (1, 3), (3, 3)])
@pytest.mark.parametrize("chunk_size", [1, 2, 10])
def test_seek_equals_full_reparse(tricky_path, record_range, chunk_size):
    index = build_xml_record_index(tricky_path)
    seeked = _records(
        iter_indexed_xml_chunks(
            tricky_path, index, chunk_size, record_range=record_range
        )
    )
    reparsed = _records(
        iter_xml_chunks(tricky_path, chunk_size, record_range=record_range)
    )
    assert seeked == reparsed


def test_seek_equals_reparse_on_generated_dblp(tmp_path):
    document = dblp.dataset(scale=10).generate(10)
    path = str(tmp_path / "dblp.xml")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(hdt_to_xml(document))
    index = build_xml_record_index(path)
    total = index.record_count
    assert total == count_xml_records(path)
    for record_range in ((0, total), (0, total // 2), (total // 2, total), (1, total - 1)):
        assert _records(
            iter_indexed_xml_chunks(path, index, 3, record_range=record_range)
        ) == _records(iter_xml_chunks(path, 3, record_range=record_range))


def test_multibyte_straddles_every_shard_boundary(tmp_path):
    """Records made almost entirely of multi-byte UTF-8: every per-record
    window must splice on the ASCII '<' boundaries and decode cleanly."""
    records = "".join(
        f"<item><name>中文{i}éèαω</name></item>"
        for i in range(9)
    )
    path = tmp_path / "mb.xml"
    path.write_text(f"<root>{records}</root>", encoding="utf-8")
    index = build_xml_record_index(str(path))
    assert index.record_count == 9
    for start in range(9):
        window = (start, start + 1)
        assert _records(
            iter_indexed_xml_chunks(str(path), index, 1, record_range=window)
        ) == _records(iter_xml_chunks(str(path), 1, record_range=window))


def test_tag_positions_are_preserved_across_windows(tricky_path):
    """A seeked window's records keep their whole-document per-tag positions
    (the second `article` is article pos=1 even when read alone)."""
    index = build_xml_record_index(tricky_path)
    records = _records(
        iter_indexed_xml_chunks(tricky_path, index, 1, record_range=(2, 3))
    )
    # Root attributes (version="7") ride along as attribute nodes, exactly
    # as they do in a whole-document parse; the record itself comes last.
    tag, pos, _data, _children = records[-1]
    assert (tag, pos) == ("article", 1)


# --------------------------------------------------------------------------- #
# Fallbacks: namespaces, malformed documents
# --------------------------------------------------------------------------- #


def test_namespaced_document_is_not_seekable(tmp_path):
    path = tmp_path / "ns.xml"
    path.write_text(
        '<root xmlns:x="http://example.com/ns">'
        "<x:item><x:v>1</x:v></x:item><x:item><x:v>2</x:v></x:item></root>",
        encoding="utf-8",
    )
    index = build_xml_record_index(str(path))
    assert not index.seekable
    with pytest.raises(ValueError, match="not seekable"):
        list(iter_indexed_xml_chunks(str(path), index, 1))
    # The source transparently falls back to the incremental reparse.
    source = XMLSource(str(path))
    assert source.count_records() == 2
    assert _records(source.iter_chunks(0, 2, 1)) == _records(
        iter_xml_chunks(str(path), 1, record_range=(0, 2))
    )


def test_malformed_xml_keeps_elementtree_error_surface(tmp_path):
    path = tmp_path / "bad.xml"
    path.write_text("<root><item>unclosed", encoding="utf-8")
    with pytest.raises(Exception):
        build_xml_record_index(str(path))
    # XMLSource falls back, so callers still see ElementTree's ParseError,
    # not an expat error from the indexing attempt.
    source = XMLSource(str(path))
    with pytest.raises(ET.ParseError):
        source.count_records()


# --------------------------------------------------------------------------- #
# Source-count caching (fix: resume/dry-run re-scanned every time)
# --------------------------------------------------------------------------- #


def test_xml_index_cached_by_file_identity(tricky_path, monkeypatch):
    clear_source_caches()
    calls = []
    real = build_xml_record_index

    def counting(path):
        calls.append(path)
        return real(path)

    monkeypatch.setattr("repro.runtime.sharded.build_xml_record_index", counting)
    assert XMLSource(tricky_path).count_records() == 3
    # A *fresh* source instance for the same unchanged file hits the cache.
    assert XMLSource(tricky_path).count_records() == 3
    assert len(calls) == 1
    assert len(_XML_INDEX_CACHE) == 1
    clear_source_caches()


def test_xml_index_cache_invalidated_by_edit(tricky_path, monkeypatch):
    clear_source_caches()
    calls = []
    real = build_xml_record_index

    def counting(path):
        calls.append(path)
        return real(path)

    monkeypatch.setattr("repro.runtime.sharded.build_xml_record_index", counting)
    assert XMLSource(tricky_path).count_records() == 3
    # Rewrite the file (content + size change): the stat key changes, so the
    # stale index is never served for the edited document.
    with open(tricky_path, "w", encoding="utf-8") as handle:
        handle.write("<dblp><article><t>only one</t></article></dblp>")
    assert XMLSource(tricky_path).count_records() == 1
    assert len(calls) == 2
    clear_source_caches()


def test_json_count_cached_for_files_not_inline_content(tmp_path, monkeypatch):
    clear_source_caches()
    calls = []
    from repro.runtime.streaming import count_json_records as real

    def counting(source):
        calls.append(source)
        return real(source)

    monkeypatch.setattr("repro.runtime.sharded.count_json_records", counting)
    path = str(tmp_path / "doc.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"item": [1, 2, 3, 4]}, handle)
    assert JSONSource(path).count_records() == 4
    assert JSONSource(path).count_records() == 4
    assert len(calls) == 1  # second fresh instance served from the cache
    assert len(_JSON_COUNT_CACHE) == 1
    # Inline JSON content is not a file: counted per instance, never cached.
    inline = '{"item": [1, 2]}'
    assert JSONSource(inline).count_records() == 2
    assert JSONSource(inline).count_records() == 2
    assert len(calls) == 3
    assert len(_JSON_COUNT_CACHE) == 1
    clear_source_caches()


def test_sharded_run_reuses_the_counting_pass(tricky_path, monkeypatch):
    """A dry-run followed by the real run (the `repro migrate --dry-run`
    then `migrate` pattern) scans the source once, not twice."""
    clear_source_caches()
    calls = []
    real = build_xml_record_index

    def counting(path):
        calls.append(path)
        return real(path)

    monkeypatch.setattr("repro.runtime.sharded.build_xml_record_index", counting)
    plan_source = dblp.dataset(scale=3)
    plan = MigrationPlan.learn(plan_source.migration_spec())
    document = plan_source.generate(3)
    path = tricky_path  # reuse the fixture file's path for a fresh DBLP doc
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(hdt_to_xml(document))
    first = shard_execute(plan, path, shards=2, workers=1, chunk_size=4)
    second = shard_execute(plan, path, shards=2, workers=1, chunk_size=4)
    assert len(calls) == 1
    whole = execute_plan(plan, document, MemoryBackend())
    reference = canonical_table_rows(
        plan.schema,
        {t: whole.backend.fetch_rows(t) for t in plan.schema.table_names},
    )
    for report in (first, second):
        assert canonical_table_rows(
            plan.schema,
            {t: report.backend.fetch_rows(t) for t in plan.schema.table_names},
        ) == reference
    clear_source_caches()


# --------------------------------------------------------------------------- #
# Shard auto-tuning
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize(
    "records, cores, chunk_size, expected",
    [
        (10000, 4, 1000, 4),     # core-bound: plenty of records per shard
        (10000, 16, 1000, 5),    # record-bound: 10000 // 2000 = 5
        (100000, 8, 1000, 8),    # large document saturates the cores
        (1999, 8, 1000, 1),      # too small to fill two chunks anywhere
        (4096, 8, 100, 8),       # small chunks: the 512-record floor rules
        (4096, 8, 1000, 2),      # 4096 // 2000 = 2
        (512, 2, 100, 1),        # exactly the floor: one shard
        (1024, 2, 100, 2),
    ],
)
def test_auto_shard_count_pinned_points(records, cores, chunk_size, expected):
    assert auto_shard_count(records, cores=cores, chunk_size=chunk_size) == expected


def test_auto_shard_count_degenerate_inputs():
    assert auto_shard_count(0, cores=8) == 1
    assert auto_shard_count(-5, cores=8) == 1
    assert auto_shard_count(10**6, cores=1) == 1
    assert auto_shard_count(10**6, cores=0) == 1
    assert MIN_AUTO_SHARD_RECORDS == 512  # documented floor


def test_resolve_shard_count():
    assert resolve_shard_count(3, 10**6) == 3
    assert resolve_shard_count("auto", 10000, chunk_size=1000, cores=4) == 4
    assert resolve_shard_count("  AUTO ", 10000, chunk_size=1000, cores=4) == 4
    with pytest.raises(ShardError, match='integer or "auto"'):
        resolve_shard_count("many", 100)


def test_shards_auto_end_to_end():
    plan = MigrationPlan.learn(dblp.dataset(scale=4).migration_spec())
    document = dblp.dataset(scale=4).generate(4)
    whole = execute_plan(plan, document, MemoryBackend())
    reference = canonical_table_rows(
        plan.schema, {t: whole.backend.fetch_rows(t) for t in plan.schema.table_names}
    )
    report = shard_execute(plan, document, shards="auto", workers=1)
    # A small demo document auto-tunes to a single shard on any machine.
    assert report.shards == 1
    assert canonical_table_rows(
        plan.schema, {t: report.backend.fetch_rows(t) for t in plan.schema.table_names}
    ) == reference


# --------------------------------------------------------------------------- #
# CLI: --shards auto
# --------------------------------------------------------------------------- #


def _demo_spec(tmp_path, **extra):
    payload = {"dataset": "dblp", "scale": 4, "cache_dir": str(tmp_path / "cache")}
    payload.update(extra)
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(payload))
    return str(path)


def test_cli_shards_auto(tmp_path, capsys):
    spec = _demo_spec(tmp_path)
    report_path = tmp_path / "report.json"
    assert (
        cli_main(
            ["migrate", "--spec", spec, "--shards", "auto",
             "--report-json", str(report_path)]
        )
        == 0
    )
    assert "loaded" in capsys.readouterr().out
    report = json.loads(report_path.read_text())
    # The demo document is far below the 2-chunks-per-shard floor, so auto
    # resolves to a single shard on any machine — through the sharded path.
    assert report["shards"] == 1
    assert report["transport"] == "local"


def test_cli_spec_shards_auto_key(tmp_path, capsys):
    spec = _demo_spec(tmp_path, shards="auto")
    report_path = tmp_path / "report.json"
    assert (
        cli_main(["migrate", "--spec", spec, "--report-json", str(report_path)]) == 0
    )
    assert json.loads(report_path.read_text())["shards"] == 1
    capsys.readouterr()


def test_cli_rejects_malformed_shards_value(tmp_path, capsys):
    spec = _demo_spec(tmp_path)
    with pytest.raises(SystemExit):
        cli_main(["migrate", "--spec", spec, "--shards", "2x"])
    assert 'expected an integer or "auto"' in capsys.readouterr().err
