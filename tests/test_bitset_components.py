"""Unit tests for the bitset building blocks against their list-based seeds.

Each bitmask component (set cover, Quine–McCluskey, predicate matrix, fast
tuple classification, tag-index derived alphabets) has a list-based seed
counterpart in the repository; these tests pin them together on randomized
and hand-built instances.
"""

import random

import pytest

from repro.dsl import Children, Var
from repro.dsl.ast import TableExtractor
from repro.hdt import build_tree
from repro.synthesis import (
    SynthesisConfig,
    SynthesisContext,
    branch_and_bound_cover,
    branch_and_bound_cover_bits,
    build_predicate_masks,
    classify_tuples,
    classify_tuples_fast,
    construct_predicate_universe,
    distinguishing_pairs_mask,
    greedy_cover,
    greedy_cover_bits,
    ilp_cover,
    ilp_cover_bits,
    minimize,
    minimize_bits,
    minimum_cover,
    minimum_cover_bits,
    prime_implicants,
    prime_implicants_bits,
)
from repro.synthesis.bitset import (
    bits_to_set,
    full_mask,
    iter_bits,
    mask_from_bits,
    mask_from_indices,
    mask_to_bools,
    popcount,
)
from repro.synthesis.set_cover import CoverError


# --------------------------------------------------------------------------- #
# Bitset primitives
# --------------------------------------------------------------------------- #


def test_popcount_and_iter_bits_small():
    assert popcount(0) == 0
    assert popcount(0b1011) == 3
    assert list(iter_bits(0b1011)) == [0, 1, 3]
    assert bits_to_set(0b101) == {0, 2}


def test_iter_bits_large_mask_uses_linear_path():
    """Masks beyond 64 bits take the bytes-based scan; results identical."""
    rnd = random.Random(3)
    positions = sorted(rnd.sample(range(5000), 700))
    mask = mask_from_indices(positions)
    assert list(iter_bits(mask)) == positions
    assert popcount(mask) == len(positions)


def test_mask_round_trips():
    bools = [True, False, True, True, False]
    mask = mask_from_bits(bools)
    assert mask == 0b01101
    assert mask_to_bools(mask, 5) == bools
    assert full_mask(4) == 0b1111
    assert full_mask(0) == 0


# --------------------------------------------------------------------------- #
# Set cover: bitmask vs list-based
# --------------------------------------------------------------------------- #


def test_cover_solvers_randomized_parity():
    rnd = random.Random(42)
    for _ in range(150):
        n_elements = rnd.randrange(1, 12)
        sets = [
            set(rnd.sample(range(n_elements), rnd.randrange(1, n_elements + 1)))
            for _ in range(rnd.randrange(1, 9))
        ]
        universe = set().union(*sets)
        masks = [mask_from_indices(s) for s in sets]
        universe_mask = mask_from_indices(universe)
        assert greedy_cover(sets, universe) == greedy_cover_bits(masks, universe_mask)
        assert branch_and_bound_cover(sets, universe) == branch_and_bound_cover_bits(
            masks, universe_mask
        )
        for strategy in ("auto", "greedy", "branch_and_bound"):
            assert minimum_cover(sets, universe, strategy=strategy) == minimum_cover_bits(
                masks, universe_mask, strategy=strategy
            )
        assert sorted(ilp_cover(sets, universe)) == sorted(
            ilp_cover_bits(masks, universe_mask)
        )


def test_cover_bits_uncoverable_raises():
    with pytest.raises(CoverError):
        minimum_cover_bits([0b001], 0b011)


def test_cover_bits_empty_universe():
    assert minimum_cover_bits([0b1], 0) == []


def test_cover_bits_unknown_strategy():
    with pytest.raises(ValueError):
        minimum_cover_bits([0b1], 0b1, strategy="magic")


# --------------------------------------------------------------------------- #
# Quine–McCluskey: bitmask vs list-based
# --------------------------------------------------------------------------- #


def test_qm_randomized_parity():
    rnd = random.Random(11)
    for _ in range(200):
        num_vars = rnd.randrange(1, 6)
        total = 1 << num_vars
        on_set = sorted(rnd.sample(range(total), rnd.randrange(1, total + 1)))
        rest = [m for m in range(total) if m not in on_set]
        dont_cares = (
            sorted(rnd.sample(rest, rnd.randrange(0, len(rest) + 1))) if rest else []
        )
        assert prime_implicants(num_vars, on_set, dont_cares) == prime_implicants_bits(
            num_vars, on_set, dont_cares
        )
        assert minimize(num_vars, on_set, dont_cares) == minimize_bits(
            num_vars, on_set, dont_cares
        )


def test_qm_bits_edge_cases():
    assert minimize_bits(3, []) == []
    assert minimize_bits(0, [0]) == [tuple()]
    assert prime_implicants_bits(2, []) == []


# --------------------------------------------------------------------------- #
# Predicate matrix vs the seed feature matrix
# --------------------------------------------------------------------------- #


@pytest.fixture
def classification_instance():
    tree = build_tree(
        {
            "rec": [
                {"id": 1, "name": "a", "item": [{"v": 5}, {"v": 6}]},
                {"id": 2, "name": "b", "item": [{"v": 7}]},
            ]
        },
        tag="root",
    )
    extractor = TableExtractor(
        (
            Children(Children(Var(), "rec"), "id"),
            Children(Children(Children(Var(), "rec"), "item"), "v"),
        )
    )
    rows = [(1, 5), (1, 6), (2, 7)]
    return tree, extractor, rows


def test_classify_tuples_fast_matches_seed(classification_instance):
    tree, extractor, rows = classification_instance
    seed_pos, seed_neg = classify_tuples([(tree, rows)], extractor)
    fast_pos, fast_neg = classify_tuples_fast([(tree, rows)], extractor)
    assert seed_pos == fast_pos
    assert seed_neg == fast_neg


def test_classify_tuples_fast_max_rows(classification_instance):
    tree, extractor, rows = classification_instance
    with pytest.raises(MemoryError):
        classify_tuples_fast([(tree, rows)], extractor, max_rows=2)


def test_predicate_masks_match_seed_feature_matrix(classification_instance):
    from repro.synthesis.predicate_learner import _feature_matrix

    tree, extractor, rows = classification_instance
    config = SynthesisConfig.fast()
    positives, negatives = classify_tuples([(tree, rows)], extractor)
    universe = construct_predicate_universe([tree], extractor.columns, config)
    assert universe

    pos_rows, neg_rows = _feature_matrix(universe, positives, negatives)
    context = SynthesisContext()
    masks = build_predicate_masks(
        universe, positives + negatives, len(extractor.columns), context
    )
    for idx in range(len(universe)):
        vector = [row[idx] for row in pos_rows] + [row[idx] for row in neg_rows]
        assert masks[idx] == mask_from_bits(vector), universe[idx]


def test_distinguishing_pairs_mask_matches_enumeration():
    rnd = random.Random(5)
    for _ in range(100):
        num_pos = rnd.randrange(1, 5)
        num_neg = rnd.randrange(1, 5)
        mask = rnd.randrange(1 << (num_pos + num_neg))
        expected = 0
        for p in range(num_pos):
            for n in range(num_neg):
                pos_bit = (mask >> p) & 1
                neg_bit = (mask >> (num_pos + n)) & 1
                if pos_bit != neg_bit:
                    expected |= 1 << (p * num_neg + n)
        assert distinguishing_pairs_mask(mask, num_pos, num_neg) == expected


# --------------------------------------------------------------------------- #
# Tag-index alphabets (satellite: cached per HDT)
# --------------------------------------------------------------------------- #


def test_tag_index_tags_and_positions_match_scan():
    tree = build_tree(
        {
            "rec": [
                {"id": 1, "item": [{"v": 1}, {"v": 2}]},
                {"id": 2, "item": [{"v": 3}]},
            ]
        },
        tag="root",
    )
    scan_tags = []
    seen = set()
    for node in tree.nodes():
        if node.tag not in seen:
            seen.add(node.tag)
            scan_tags.append(node.tag)
    assert tree.tags() == scan_tags
    assert tree.tag_index().tags() == scan_tags
    for tag in scan_tags:
        expected = sorted({n.pos for n in tree.nodes() if n.tag == tag})
        assert tree.positions_for_tag(tag) == expected
    assert tree.positions_for_tag("absent") == []
