"""Tests for the migration runtime: plans, backends, streaming, cache, CLI."""

import json
import os
import sqlite3

import pytest

from repro.datasets import dblp, mondial
from repro.hdt import build_tree, hdt_to_json_string, hdt_to_xml, json_to_hdt, xml_to_hdt
from repro.migration import MigrationEngine, MigrationSpec, TableExampleSpec
from repro.relational import ColumnDef, DatabaseSchema, ForeignKey, TableSchema
from repro.relational.schema import SchemaError
from repro.runtime import (
    MemoryBackend,
    MigrationPlan,
    PlanCache,
    SQLiteBackend,
    canonical_database_rows,
    database_matches_sqlite,
    execute_plan,
    iter_json_chunks,
    iter_tree_chunks,
    iter_xml_chunks,
    load_database,
    spec_fingerprint,
    stream_execute,
)
from repro.runtime.cli import main as cli_main
from repro.synthesis.synthesizer import Synthesizer


# --------------------------------------------------------------------------- #
# Fixtures
# --------------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def dblp_bundle():
    return dblp.dataset(scale=3)


@pytest.fixture(scope="module")
def dblp_plan(dblp_bundle):
    """The DBLP plan, learned once for the whole module."""
    return MigrationPlan.learn(dblp_bundle.migration_spec())


def _library_tree(extra_authors=0):
    authors = [
        {
            "name": "Ada Chen",
            "country": "NZ",
            "book": [{"title": "Harbor", "year": 2001}, {"title": "Meadow", "year": 2007}],
        },
        {
            "name": "Brian Okafor",
            "country": "NG",
            "book": [{"title": "Quartz", "year": 2013}],
        },
    ]
    for index in range(extra_authors):
        authors.append(
            {
                "name": f"Author {index}",
                "country": ["NZ", "NG", "DE"][index % 3],
                "book": [{"title": f"Book {index}", "year": 1990 + index % 20}],
            }
        )
    return build_tree({"author": authors}, tag="library")


def _library_schema() -> DatabaseSchema:
    return DatabaseSchema(
        "library",
        [
            TableSchema(
                "author",
                [
                    ColumnDef("author_id", "text", nullable=False),
                    ColumnDef("name", "text"),
                    ColumnDef("country", "text"),
                ],
                primary_key="author_id",
            ),
            TableSchema(
                "book",
                [
                    ColumnDef("book_id", "text", nullable=False),
                    ColumnDef("author_id", "text"),
                    ColumnDef("title", "text"),
                    ColumnDef("year", "integer"),
                ],
                primary_key="book_id",
                foreign_keys=[ForeignKey("author_id", "author", "author_id")],
            ),
        ],
    )


def _library_spec(tree) -> MigrationSpec:
    return MigrationSpec(
        schema=_library_schema(),
        example_tree=tree,
        table_examples=[
            TableExampleSpec("author", [("a1", "Ada Chen", "NZ"), ("a2", "Brian Okafor", "NG")]),
            TableExampleSpec(
                "book",
                [("b1", "a1", "Harbor", 2001), ("b2", "a1", "Meadow", 2007), ("b3", "a2", "Quartz", 2013)],
            ),
        ],
    )


@pytest.fixture(scope="module")
def library_plan():
    return MigrationPlan.learn(_library_spec(_library_tree()))


# --------------------------------------------------------------------------- #
# Plan serialization and replay
# --------------------------------------------------------------------------- #


def test_plan_json_round_trip(dblp_plan):
    restored = MigrationPlan.loads(dblp_plan.dumps())
    assert restored == dblp_plan


def test_plan_save_load(tmp_path, dblp_plan):
    path = str(tmp_path / "dblp.plan.json")
    dblp_plan.save(path)
    assert MigrationPlan.load(path) == dblp_plan


def test_dblp_saved_plan_replay_is_byte_identical(tmp_path, monkeypatch, dblp_bundle):
    """A reloaded plan reproduces a fresh migrate() run's SQLite bytes —
    without ever invoking the synthesizer."""
    spec = dblp_bundle.migration_spec()
    result = MigrationEngine().migrate(spec, dblp_bundle.generate(3))
    plan_path = str(tmp_path / "plan.json")
    MigrationPlan.from_programs(spec.schema, result.table_programs).save(plan_path)

    def _no_synthesis(self, task):  # pragma: no cover - failure path
        raise AssertionError("synthesizer must not run during plan replay")

    monkeypatch.setattr(Synthesizer, "synthesize", _no_synthesis)
    replay_plan = MigrationPlan.load(plan_path)
    backend = SQLiteBackend()
    execute_plan(replay_plan, dblp_bundle.generate(3), backend)
    fresh_dump = load_database(result.database).dump()
    assert backend.dump() == fresh_dump


def test_mondial_saved_plan_replay_is_byte_identical(tmp_path, monkeypatch):
    """Same byte-identity property on a MONDIAL sub-schema.

    The subset {continent, country, province, city, encompasses} is closed
    under foreign keys; ``stop_after_first_solution`` keeps the one-off
    synthesis cost manageable (byte-identity does not depend on θ-minimality).
    """
    from dataclasses import replace

    from repro.synthesis import SynthesisConfig

    bundle = mondial.dataset(scale=4)
    subset = ["continent", "country", "province", "city", "encompasses"]
    schema = DatabaseSchema("mondial", [t for t in bundle.schema.tables if t.name in subset])
    spec = MigrationSpec(
        schema=schema,
        example_tree=bundle.example_tree,
        table_examples=[e for e in bundle.table_examples if e.table in subset],
    )
    config = replace(SynthesisConfig.for_migration(), stop_after_first_solution=True)
    result = MigrationEngine(config).migrate(spec, bundle.generate(4))
    plan_path = str(tmp_path / "plan.json")
    MigrationPlan.from_programs(schema, result.table_programs).save(plan_path)

    def _no_synthesis(self, task):  # pragma: no cover - failure path
        raise AssertionError("synthesizer must not run during plan replay")

    monkeypatch.setattr(Synthesizer, "synthesize", _no_synthesis)
    replay_plan = MigrationPlan.load(plan_path)
    backend = SQLiteBackend()
    execute_plan(replay_plan, bundle.generate(4), backend)
    assert backend.dump() == load_database(result.database).dump()


def test_restrict_requires_fk_closed_subset(dblp_plan):
    with pytest.raises(SchemaError):
        dblp_plan.restrict(["article"])  # article references journal
    sub = dblp_plan.restrict(["journal", "article"])
    assert sub.schema.table_names == ["journal", "article"]


# --------------------------------------------------------------------------- #
# SQLite backend
# --------------------------------------------------------------------------- #


def test_sqlite_backend_parity_with_memory(library_plan):
    tree = _library_tree(extra_authors=10)
    memory = MemoryBackend()
    execute_plan(library_plan, tree, memory)
    sqlite_backend = SQLiteBackend()
    execute_plan(library_plan, tree, sqlite_backend)
    assert database_matches_sqlite(memory.database, sqlite_backend) == []


def test_sqlite_backend_enforces_foreign_keys(tmp_path):
    schema = _library_schema()
    backend = SQLiteBackend(str(tmp_path / "broken.db"))
    backend.begin(schema)
    backend.insert_rows("author", [("a1", "Ada", "NZ")])
    backend.insert_rows("book", [("b1", "missing-author", "Ghost", 2000)])
    from repro.runtime import SQLiteBackendError

    with pytest.raises(SQLiteBackendError):
        backend.finalize()


def test_sqlite_file_backend_is_self_contained(tmp_path, library_plan):
    path = str(tmp_path / "library.db")
    backend = SQLiteBackend(path)
    execute_plan(library_plan, _library_tree(), backend)
    backend.close()
    assert not os.path.exists(path + "-wal") or os.path.getsize(path + "-wal") == 0
    connection = sqlite3.connect(path)
    assert connection.execute("SELECT COUNT(*) FROM book").fetchone()[0] == 3
    assert connection.execute("PRAGMA foreign_key_check").fetchall() == []


# --------------------------------------------------------------------------- #
# Streaming
# --------------------------------------------------------------------------- #


def test_streaming_matches_whole_tree_row_for_row_at_50k(dblp_bundle, dblp_plan):
    """Acceptance: ≥50k records, bounded chunks, row-for-row whole-tree parity.

    Runs the *full* 9-table DBLP plan, author link tables included.  Those
    tables join on position *values* (3 distinct values), which used to make
    their node-tuple output quadratic in the record count — infeasible at 50k
    records, forcing earlier revisions to ``restrict()`` the plan to its
    linear tables.  The fused-dedup executor collapses value-join groups to
    per-value representatives, so the whole plan now runs in linear time and
    the escape hatch is gone.  Chunk boundedness is asserted on every chunk
    the stream produces.
    """
    chunk_size = 2000
    plan = dblp_plan
    scale = 10000  # 2s articles + 2s inproceedings + s/2 phd + s/2 www = 5s records
    document = dblp_bundle.generate(scale)
    assert len(document.root.children) >= 50000

    seen_chunks = []

    def bounded_chunks():
        for chunk in iter_tree_chunks(document, chunk_size):
            assert chunk.records <= chunk_size
            seen_chunks.append(chunk.records)
            yield chunk

    streamed = stream_execute(plan, bounded_chunks())
    whole = execute_plan(plan, document)
    assert sum(seen_chunks) == len(document.root.children)
    assert streamed.chunks == len(seen_chunks)
    for name in plan.schema.table_names:
        assert (
            streamed.backend.database.table(name).rows
            == whole.backend.database.table(name).rows
        ), f"row mismatch in table {name}"

    truth = dblp.ground_truth_counts(scale)
    summary = streamed.backend.database.summary()
    for name in plan.schema.table_names:
        assert summary[name] == truth[name]


def test_streaming_xml_file_matches_whole_tree(tmp_path, dblp_bundle, dblp_plan):
    document = dblp_bundle.generate(20)
    path = str(tmp_path / "dblp.xml")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(hdt_to_xml(document))
    whole = execute_plan(dblp_plan, xml_to_hdt(hdt_to_xml(document)))
    streamed = stream_execute(dblp_plan, iter_xml_chunks(path, 13))
    assert streamed.chunks > 1
    for name in dblp_plan.schema.table_names:
        assert (
            streamed.backend.database.table(name).rows
            == whole.backend.database.table(name).rows
        )


def test_streaming_json_file_matches_whole_tree(tmp_path, dblp_bundle, dblp_plan):
    document = dblp_bundle.generate(20)
    text = hdt_to_json_string(document)
    path = str(tmp_path / "dblp.json")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    whole = execute_plan(dblp_plan, json_to_hdt(text))
    streamed = stream_execute(dblp_plan, iter_json_chunks(path, 13))
    assert streamed.chunks > 1
    for name in dblp_plan.schema.table_names:
        assert (
            streamed.backend.database.table(name).rows
            == whole.backend.database.table(name).rows
        )


def test_streaming_multiprocessing_fanout_matches_serial(dblp_bundle, dblp_plan):
    plan = dblp_plan  # full plan, link tables included
    document = dblp_bundle.generate(60)
    serial = stream_execute(plan, iter_tree_chunks(document, 25))
    parallel = stream_execute(plan, iter_tree_chunks(document, 25), workers=2)
    for name in plan.schema.table_names:
        assert (
            serial.backend.database.table(name).rows
            == parallel.backend.database.table(name).rows
        )


def test_streaming_reconciles_surrogate_keys_across_chunks(library_plan):
    """The same logical row in different chunks must keep one key, and later
    foreign-key references must be rewritten to it."""
    tree = _library_tree(extra_authors=12)  # repeated countries force aliasing
    whole = execute_plan(library_plan, tree)
    streamed = stream_execute(library_plan, iter_tree_chunks(tree, 1))
    streamed.backend.database.validate()  # no dangling foreign keys
    assert canonical_database_rows(streamed.backend.database) == canonical_database_rows(
        whole.backend.database
    )


def test_whole_tree_execution_repairs_value_join_aliases(library_plan):
    """Data-value joins can collapse logical rows; references must follow."""
    tree = _library_tree(extra_authors=12)
    report = execute_plan(library_plan, tree)
    report.backend.database.validate()
    assert report.per_table_rows["author"] == 14
    assert report.per_table_rows["book"] == 15


def test_chunk_iterators_reject_nonpositive_chunk_size():
    tree = _library_tree()
    with pytest.raises(ValueError):
        next(iter_tree_chunks(tree, 0))
    with pytest.raises(ValueError):
        next(iter_json_chunks([], 0))


def test_iter_tree_chunks_does_not_mutate_source():
    tree = _library_tree(extra_authors=3)
    before = tree.size()
    parents_before = [child.parent for child in tree.root.children]
    list(iter_tree_chunks(tree, 2))
    assert tree.size() == before
    assert [child.parent for child in tree.root.children] == parents_before


def test_iter_xml_chunks_preserves_record_positions(tmp_path):
    xml = "<root><a>1</a><b>x</b><a>2</a><a>3</a></root>"
    path = str(tmp_path / "doc.xml")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(xml)
    chunks = list(iter_xml_chunks(path, 2))
    records = [(node.tag, node.pos, node.data) for chunk in chunks for node in chunk.tree.root.children]
    assert records == [("a", 0, 1), ("b", 0, "x"), ("a", 1, 2), ("a", 2, 3)]


def test_iter_json_chunks_top_level_array():
    chunks = list(iter_json_chunks([{"x": 1}, {"x": 2}, {"x": 3}], 2))
    assert [c.records for c in chunks] == [2, 1]
    first = chunks[0].tree.root.children[0]
    assert first.tag == "item" and first.pos == 0


# --------------------------------------------------------------------------- #
# Plan cache
# --------------------------------------------------------------------------- #


def test_plan_cache_round_trip(tmp_path, library_plan):
    spec = _library_spec(_library_tree())
    cache = PlanCache(str(tmp_path / "cache"))
    assert cache.load(spec) is None
    cache.store(spec, library_plan)
    loaded = cache.load(spec)
    assert loaded is not None
    assert loaded.tables.keys() == library_plan.tables.keys()
    assert loaded.metadata["spec_fingerprint"] == spec_fingerprint(spec)


def test_spec_fingerprint_tracks_learnable_content():
    spec_a = _library_spec(_library_tree())
    spec_b = _library_spec(_library_tree())
    assert spec_fingerprint(spec_a) == spec_fingerprint(spec_b)
    spec_c = _library_spec(_library_tree(extra_authors=1))
    assert spec_fingerprint(spec_a) != spec_fingerprint(spec_c)
    spec_d = _library_spec(_library_tree())
    spec_d.table_examples[0].rows[0] = ("a9", "Ada Chen", "NZ")
    assert spec_fingerprint(spec_a) != spec_fingerprint(spec_d)


def test_spec_fingerprint_distinguishes_nesting():
    """Preorder without depth would collide a child with a following sibling."""
    from repro.hdt import xml_to_hdt

    nested = xml_to_hdt("<r><a><b>1</b></a></r>")
    flat = xml_to_hdt("<r><a/><b>1</b></r>")
    spec_nested = _library_spec(nested)
    spec_flat = _library_spec(flat)
    assert spec_fingerprint(spec_nested) != spec_fingerprint(spec_flat)


def test_plan_cache_treats_corrupt_entry_as_miss(tmp_path, library_plan):
    spec = _library_spec(_library_tree())
    cache = PlanCache(str(tmp_path / "cache"))
    path = cache.store(spec, library_plan)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("not json {")  # truncated/corrupt cache entry
    assert cache.load(spec) is None  # miss, not a crash
    assert not os.path.exists(path)  # corrupt entry evicted


def test_iter_xml_chunks_replicates_root_attributes(tmp_path):
    xml = '<root version="2"><a>1</a><a>2</a><a>3</a></root>'
    path = str(tmp_path / "doc.xml")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(xml)
    chunks = list(iter_xml_chunks(path, 2))
    assert len(chunks) == 2
    for chunk in chunks:
        leaves = [(n.tag, n.data) for n in chunk.tree.root.children if n.tag == "version"]
        assert leaves == [("version", 2)]


def test_cli_failed_run_leaves_no_partial_output(tmp_path, capsys):
    """A mid-load failure must not leave a half-written database behind."""
    spec_path = _write_cli_fixture(tmp_path)
    plan_path = str(tmp_path / "plan.json")
    assert cli_main(["learn", "--spec", spec_path, "--plan-out", plan_path, "--no-cache"]) == 0
    # Corrupt the plan's FK links so every book references a missing author.
    payload = json.loads(open(plan_path).read())
    for table in payload["tables"]:
        for rule in table["foreign_key_rules"]:
            for link in rule["links"]:
                link["extractor"] = {"kind": "parent", "source": link["extractor"]}
    open(plan_path, "w").write(json.dumps(payload))
    output = str(tmp_path / "broken.db")
    assert cli_main(["run", "--spec", spec_path, "--plan", plan_path,
                     "--backend", "sqlite", "--output", output]) == 1
    assert "error:" in capsys.readouterr().err
    assert not os.path.exists(output)
    assert not os.path.exists(output + "-wal")


def test_plan_source_format_round_trips(tmp_path, library_plan):
    library_plan.source_format = "json"
    restored = MigrationPlan.loads(library_plan.dumps())
    assert restored.source_format == "json"
    assert restored.restrict(["author", "book"]).source_format == "json"


def test_plan_cache_learn_or_load_synthesizes_once(tmp_path, monkeypatch):
    spec = _library_spec(_library_tree())
    cache = PlanCache(str(tmp_path / "cache"))
    first = cache.learn_or_load(spec)

    def _no_synthesis(self, task):  # pragma: no cover - failure path
        raise AssertionError("cache hit must not re-synthesize")

    monkeypatch.setattr(Synthesizer, "synthesize", _no_synthesis)
    second = cache.learn_or_load(spec)
    assert second.tables.keys() == first.tables.keys()


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #


def _write_cli_fixture(tmp_path):
    example = {
        "author": [
            {"name": "Ada Chen", "country": "NZ",
             "book": [{"title": "Harbor", "year": 2001}, {"title": "Meadow", "year": 2007}]},
            {"name": "Brian Okafor", "country": "NG",
             "book": [{"title": "Quartz", "year": 2013}]},
        ]
    }
    full = {
        "author": [
            {"name": f"Author {index}", "country": ["NZ", "NG", "DE"][index % 3],
             "book": [{"title": f"Book {index}", "year": 1990 + index % 20}]}
            for index in range(30)
        ]
    }
    from repro.dsl import schema_to_json

    spec = {
        "format": "json",
        "schema": schema_to_json(_library_schema()),
        "example_document": "example.json",
        "examples": {
            "author": [["a1", "Ada Chen", "NZ"], ["a2", "Brian Okafor", "NG"]],
            "book": [
                ["b1", "a1", "Harbor", 2001],
                ["b2", "a1", "Meadow", 2007],
                ["b3", "a2", "Quartz", 2013],
            ],
        },
        "document": "full.json",
        "cache_dir": str(tmp_path / "cache"),
    }
    (tmp_path / "example.json").write_text(json.dumps(example))
    (tmp_path / "full.json").write_text(json.dumps(full))
    (tmp_path / "spec.json").write_text(json.dumps(spec))
    return str(tmp_path / "spec.json")


def test_cli_migrate_sqlite_end_to_end(tmp_path, capsys):
    spec_path = _write_cli_fixture(tmp_path)
    output = str(tmp_path / "library.db")
    assert cli_main(["migrate", "--spec", spec_path, "--backend", "sqlite", "--output", output]) == 0
    captured = capsys.readouterr()
    assert "database written to" in captured.out
    connection = sqlite3.connect(output)
    assert connection.execute("SELECT COUNT(*) FROM author").fetchone()[0] == 30
    assert connection.execute("SELECT COUNT(*) FROM book").fetchone()[0] == 30
    assert connection.execute("PRAGMA foreign_key_check").fetchall() == []


def test_cli_learn_then_run_streaming(tmp_path, capsys):
    spec_path = _write_cli_fixture(tmp_path)
    plan_path = str(tmp_path / "plan.json")
    assert cli_main(["learn", "--spec", spec_path, "--plan-out", plan_path, "--no-cache"]) == 0
    assert os.path.exists(plan_path)
    output = str(tmp_path / "library.db")
    assert (
        cli_main(
            [
                "run",
                "--spec", spec_path,
                "--plan", plan_path,
                "--backend", "sqlite",
                "--output", output,
                "--streaming",
                "--chunk-size", "7",
            ]
        )
        == 0
    )
    captured = capsys.readouterr()
    assert "chunk(s)" in captured.out
    connection = sqlite3.connect(output)
    assert connection.execute("SELECT COUNT(*) FROM book").fetchone()[0] == 30


def test_cli_migrate_uses_cache_on_second_run(tmp_path, capsys, monkeypatch):
    spec_path = _write_cli_fixture(tmp_path)
    assert cli_main(["migrate", "--spec", spec_path]) == 0
    monkeypatch.setattr(
        Synthesizer,
        "synthesize",
        lambda self, task: (_ for _ in ()).throw(AssertionError("must hit cache")),
    )
    assert cli_main(["migrate", "--spec", spec_path]) == 0
    assert "cache hit" in capsys.readouterr().out


def test_cli_run_without_plan_is_an_error(tmp_path, capsys):
    spec_path = _write_cli_fixture(tmp_path)
    assert cli_main(["run", "--spec", spec_path]) == 1
    assert "requires --plan" in capsys.readouterr().err


def test_cli_refuses_to_overwrite_without_force(tmp_path, capsys):
    spec_path = _write_cli_fixture(tmp_path)
    output = str(tmp_path / "library.db")
    assert cli_main(["migrate", "--spec", spec_path, "--backend", "sqlite", "--output", output]) == 0
    assert cli_main(["migrate", "--spec", spec_path, "--backend", "sqlite", "--output", output]) == 1
    assert "already exists" in capsys.readouterr().err
    assert (
        cli_main(
            ["migrate", "--spec", spec_path, "--backend", "sqlite", "--output", output, "--force"]
        )
        == 0
    )


def test_cli_missing_spec_file(capsys):
    assert cli_main(["migrate", "--spec", "/nonexistent/spec.json"]) == 1
    assert "cannot read spec file" in capsys.readouterr().err
