"""Tests for the synthesis building blocks: DFA learner, covers, QM, universe."""

import pytest

from repro.automata import DFA, intersect_all
from repro.dsl import Children, Descendants, NodeVar, Op, PChildren, Var
from repro.hdt import build_tree, xml_to_hdt
from repro.synthesis import (
    ColumnLearningError,
    branch_and_bound_cover,
    construct_dfa,
    construct_predicate_universe,
    extractor_to_word,
    greedy_cover,
    ilp_cover,
    learn_column_extractors,
    minimize,
    minimum_cover,
    prime_implicants,
    valid_node_extractors,
    word_to_extractor,
)
from repro.synthesis.set_cover import CoverError
from repro.synthesis.qm import evaluate_dnf, implicant_covers, minterm_to_bits
from repro.dsl.semantics import eval_column_on_tree


# --------------------------------------------------------------------------- #
# Generic DFA
# --------------------------------------------------------------------------- #


def _simple_dfa():
    return DFA(
        states={"q0", "q1", "q2"},
        alphabet={"a", "b"},
        transitions={("q0", "a"): "q1", ("q1", "b"): "q2", ("q0", "b"): "q0"},
        initial="q0",
        accepting={"q2"},
    )


def test_dfa_accepts():
    dfa = _simple_dfa()
    assert dfa.accepts(["a", "b"])
    assert dfa.accepts(["b", "a", "b"])
    assert not dfa.accepts(["a"])
    assert not dfa.accepts(["a", "a"])


def test_dfa_validate_rejects_bad_transition():
    dfa = _simple_dfa()
    dfa.transitions[("q0", "z")] = "q1"
    with pytest.raises(ValueError):
        dfa.validate()


def test_dfa_prune_removes_dead_states():
    dfa = DFA(
        states={"q0", "q1", "dead"},
        alphabet={"a"},
        transitions={("q0", "a"): "q1", ("q1", "a"): "dead"},
        initial="q0",
        accepting={"q1"},
    )
    pruned = dfa.prune()
    assert "dead" not in pruned.states
    assert pruned.accepts(["a"])


def test_dfa_is_empty():
    empty = DFA(states={"q0"}, alphabet={"a"}, transitions={}, initial="q0", accepting=set())
    assert empty.is_empty()
    assert not _simple_dfa().is_empty()


def test_dfa_intersection_language():
    ends_in_b = _simple_dfa()
    # accepts any word over {a,b} of length exactly 2
    length_two = DFA(
        states={0, 1, 2},
        alphabet={"a", "b"},
        transitions={(0, "a"): 1, (0, "b"): 1, (1, "a"): 2, (1, "b"): 2},
        initial=0,
        accepting={2},
    )
    product = ends_in_b.intersect(length_two)
    assert product.accepts(["a", "b"])
    assert not product.accepts(["b", "a"])
    assert not product.accepts(["b", "a", "b"])


def test_dfa_enumerate_words_shortest_first():
    dfa = _simple_dfa()
    words = dfa.enumerate_words(max_length=4, max_words=10)
    assert words[0] == ("a", "b")
    assert all(len(words[i]) <= len(words[i + 1]) for i in range(len(words) - 1))


def test_intersect_all_requires_input():
    with pytest.raises(ValueError):
        intersect_all([])


# --------------------------------------------------------------------------- #
# Column extractor learning (Figure 9 / Algorithm 2)
# --------------------------------------------------------------------------- #


@pytest.fixture
def catalog_tree():
    return build_tree(
        {
            "item": [
                {"sku": "a1", "price": 10, "tag": [{"label": "red"}]},
                {"sku": "b2", "price": 20, "tag": [{"label": "blue"}]},
            ]
        },
        tag="catalog",
    )


def test_construct_dfa_accepts_consistent_program(catalog_tree):
    dfa = construct_dfa(catalog_tree, ["a1", "b2"])
    word = extractor_to_word(Children(Children(Var(), "item"), "sku"))
    assert dfa.accepts(word)
    word_desc = extractor_to_word(Descendants(Var(), "sku"))
    assert dfa.accepts(word_desc)


def test_construct_dfa_rejects_wrong_column(catalog_tree):
    dfa = construct_dfa(catalog_tree, ["a1", "b2"])
    wrong = extractor_to_word(Descendants(Var(), "price"))
    assert not dfa.accepts(wrong)


def test_learn_column_extractors_cover_values(catalog_tree):
    extractors = learn_column_extractors([(catalog_tree, ["red", "blue"])])
    assert extractors, "expected at least one consistent extractor"
    for extractor in extractors:
        data = [n.data for n in eval_column_on_tree(extractor, catalog_tree)]
        assert "red" in data and "blue" in data
    # sorted simplest-first
    sizes = [e.size() for e in extractors]
    assert sizes == sorted(sizes)


def test_learn_column_extractors_multiple_examples(catalog_tree):
    other = build_tree(
        {"item": [{"sku": "z9", "price": 5, "tag": [{"label": "green"}]}]}, tag="catalog"
    )
    extractors = learn_column_extractors(
        [(catalog_tree, ["a1", "b2"]), (other, ["z9"])]
    )
    for extractor in extractors:
        assert "z9" in [n.data for n in eval_column_on_tree(extractor, other)]


def test_learn_column_extractors_impossible():
    tree = build_tree({"a": [{"b": 1}]}, tag="root")
    with pytest.raises(ColumnLearningError):
        learn_column_extractors([(tree, ["value-not-present"])])


def test_word_extractor_roundtrip():
    extractor = PChildren(Descendants(Var(), "obj"), "text", 0)
    assert word_to_extractor(extractor_to_word(extractor)) == extractor


# --------------------------------------------------------------------------- #
# Set cover (Algorithm 4)
# --------------------------------------------------------------------------- #

COVER_CASES = [
    # (sets, universe, optimal size)
    ([{0, 1}, {1, 2}, {0, 2}], {0, 1, 2}, 2),
    ([{0}, {1}, {2}, {0, 1, 2}], {0, 1, 2}, 1),
    ([{0, 1, 2}, {3}, {0, 3}], {0, 1, 2, 3}, 2),
    ([{0, 1}, {2, 3}, {4}, {0, 2, 4}], {0, 1, 2, 3, 4}, 3),
]


@pytest.mark.parametrize("sets,universe,optimal", COVER_CASES)
@pytest.mark.parametrize("solver", [branch_and_bound_cover, ilp_cover])
def test_exact_cover_solvers_find_optimum(sets, universe, optimal, solver):
    chosen = solver(sets, universe)
    covered = set()
    for idx in chosen:
        covered |= sets[idx]
    assert covered >= universe
    assert len(chosen) == optimal


@pytest.mark.parametrize("sets,universe,optimal", COVER_CASES)
def test_greedy_cover_is_valid(sets, universe, optimal):
    chosen = greedy_cover(sets, universe)
    covered = set()
    for idx in chosen:
        covered |= sets[idx]
    assert covered >= universe


def test_cover_impossible_raises():
    with pytest.raises(CoverError):
        minimum_cover([{0}], {0, 1})


def test_minimum_cover_empty_universe():
    assert minimum_cover([{1}], set()) == []


@pytest.mark.parametrize("strategy", ["auto", "ilp", "branch_and_bound", "greedy"])
def test_minimum_cover_strategies(strategy):
    chosen = minimum_cover([{0, 1}, {1, 2}, {2}], {0, 1, 2}, strategy=strategy)
    covered = set()
    for idx in chosen:
        covered |= [{0, 1}, {1, 2}, {2}][idx]
    assert covered == {0, 1, 2}


def test_minimum_cover_unknown_strategy():
    with pytest.raises(ValueError):
        minimum_cover([{0}], {0}, strategy="magic")


# --------------------------------------------------------------------------- #
# Quine–McCluskey
# --------------------------------------------------------------------------- #


def test_minterm_bits_roundtrip():
    assert minterm_to_bits(5, 3) == (1, 0, 1)


def test_prime_implicants_classic_example():
    # f(a,b) = a'b + ab + ab' = a + b
    primes = prime_implicants(2, [1, 2, 3])
    assert (1, None) in primes and (None, 1) in primes


def test_minimize_simple_or():
    implicants = minimize(2, [1, 2, 3])
    # a + b: two single-literal terms
    assert len(implicants) == 2
    for m in (1, 2, 3):
        assert evaluate_dnf(implicants, minterm_to_bits(m, 2))
    assert not evaluate_dnf(implicants, minterm_to_bits(0, 2))


def test_minimize_with_dont_cares_collapses():
    # ON = {1}, DC = {3} over 2 vars -> minimal term is just "b" (x1)
    implicants = minimize(2, [1], [3])
    assert len(implicants) == 1
    assert sum(1 for lit in implicants[0] if lit is not None) == 1


def test_minimize_tautology_like():
    implicants = minimize(1, [0, 1])
    assert implicants == [(None,)]


def test_minimize_empty_on_set():
    assert minimize(3, []) == []


def test_implicant_covers():
    assert implicant_covers((1, None), (1, 0))
    assert not implicant_covers((1, None), (0, 0))


def test_minimize_paper_example_shape():
    # Three variables, ON-set/OFF-set patterned after Example 5's truth table:
    # the minimal DNF uses fewer literals than the number of ON rows.
    implicants = minimize(3, [0b110, 0b111, 0b100], [0b010, 0b011])
    for m in (0b110, 0b111, 0b100):
        assert evaluate_dnf(implicants, minterm_to_bits(m, 3))
    for m in (0b000, 0b101, 0b001):
        assert not evaluate_dnf(implicants, minterm_to_bits(m, 3))


# --------------------------------------------------------------------------- #
# Predicate universe (Figure 10)
# --------------------------------------------------------------------------- #


def test_valid_node_extractors_never_bottom(catalog_tree):
    skus = eval_column_on_tree(Children(Children(Var(), "item"), "sku"), catalog_tree)
    extractors = valid_node_extractors([skus])
    from repro.dsl.semantics import eval_node_extractor

    assert NodeVar() in extractors
    for extractor in extractors:
        for node in skus:
            assert eval_node_extractor(extractor, node) is not None


def test_predicate_universe_contains_structural_link(catalog_tree):
    columns = (
        Children(Children(Var(), "item"), "sku"),
        Children(Children(Var(), "item"), "price"),
    )
    universe = construct_predicate_universe([catalog_tree], columns)
    from repro.dsl import CompareNodes, Parent

    structural = [
        p
        for p in universe
        if isinstance(p, CompareNodes)
        and isinstance(p.left_extractor, Parent)
        and isinstance(p.right_extractor, Parent)
    ]
    assert structural, "expected parent(n)=parent(n) style predicates in the universe"


def test_predicate_universe_respects_cap(catalog_tree):
    from repro.synthesis import SynthesisConfig

    config = SynthesisConfig(max_predicate_universe=5)
    columns = (Descendants(Var(), "sku"), Descendants(Var(), "price"))
    universe = construct_predicate_universe([catalog_tree], columns, config)
    assert len(universe) <= 5


def test_predicate_universe_no_string_ordering(catalog_tree):
    from repro.dsl import CompareConst

    columns = (Children(Children(Var(), "item"), "sku"),)
    universe = construct_predicate_universe([catalog_tree], columns)
    for predicate in universe:
        if isinstance(predicate, CompareConst) and isinstance(predicate.constant, str):
            assert predicate.op in (Op.EQ, Op.NE)
