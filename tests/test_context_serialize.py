"""Round-trip tests for SynthesisContext serialization (repro.synthesis.serialize).

The contract: rehydrating a serialized context against the same trees
reproduces every cache dictionary *exactly*, and rehydrating against a
structurally identical re-built tree (fresh node uids) re-keys node
references correctly.  Both matter — the former backs the on-disk
ContextStore, the latter is what makes cross-process / cross-session reuse
sound at all.
"""

import json

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.dsl.ast import Op
from repro.dsl.serialize import SerializationError
from repro.hdt import build_tree
from repro.synthesis import (
    ExamplePair,
    SynthesisConfig,
    SynthesisTask,
    Synthesizer,
)
from repro.synthesis.context import SynthesisContext
from repro.synthesis.serialize import (
    config_fingerprint,
    config_from_json,
    config_to_json,
    context_dumps,
    context_loads,
    deserialize_context,
    serialize_context,
)

# --------------------------------------------------------------------------- #
# Configuration round trip
# --------------------------------------------------------------------------- #


def test_config_round_trip_default_and_presets():
    for config in (
        SynthesisConfig(),
        SynthesisConfig.for_migration(),
        SynthesisConfig.fast(),
        SynthesisConfig.fast().seed_variant(),
        SynthesisConfig(constant_ops=frozenset({Op.LE, Op.NE}), max_constants=7),
    ):
        assert config_from_json(config_to_json(config)) == config


def test_config_fingerprint_tracks_bounds():
    base = SynthesisConfig()
    assert config_fingerprint(base) == config_fingerprint(SynthesisConfig())
    assert config_fingerprint(base) != config_fingerprint(
        SynthesisConfig(max_column_programs=7)
    )
    assert config_fingerprint(base) != config_fingerprint(base.seed_variant())


def test_config_from_json_rejects_foreign_payloads():
    with pytest.raises(SerializationError):
        config_from_json({"kind": "program"})


def test_config_from_json_defaults_missing_fields():
    payload = {"kind": "synthesis_config", "max_column_programs": 5}
    config = config_from_json(payload)
    assert config.max_column_programs == 5
    assert config.max_dfa_states == SynthesisConfig().max_dfa_states


# --------------------------------------------------------------------------- #
# Context round trip
# --------------------------------------------------------------------------- #

DOC = {
    "person": [
        {"name": "Ann", "age": 31, "city": "Oslo"},
        {"name": "Bob", "age": 24, "city": "Pune"},
        {"name": "Cid", "age": 31, "city": "Oslo"},
    ]
}


def _learned_context(tree, rows, config=SynthesisConfig.fast()):
    synthesizer = Synthesizer(config)
    task = SynthesisTask(examples=[ExamplePair(tree, [tuple(r) for r in rows])])
    result = synthesizer.synthesize(task)
    assert result.success
    return synthesizer.context


def _assert_contexts_equal(original, restored, old_tree, new_tree):
    """Cache-by-cache equality, tolerating the tree-identity re-keying.

    χi and universe keys embed node-list signatures (uid tuples); a rebuilt
    tree assigns fresh uids, so signatures are remapped by preorder position
    — exactly what (de)serialization does on the wire.
    """
    remap = {id(old_tree): id(new_tree)}
    uid_map = {
        old.uid: new.uid for old, new in zip(old_tree.nodes(), new_tree.nodes())
    }

    def rekey_trees(trees_key):
        return tuple(remap.get(t, t) for t in trees_key)

    def remap_sig(sig):
        return tuple(tuple(uid_map.get(uid, uid) for uid in uids) for uids in sig)

    assert {
        (rekey_trees(tk), rest): v
        for (tk, rest), v in original.column_results.items()
    } == dict(restored.column_results)
    assert {
        (rekey_trees(tk), remap_sig(sig)): v
        for (tk, sig), v in original.chi.items()
    } == dict(restored.chi)
    assert {
        (rekey_trees(tk), tuple(remap_sig(s) for s in sigs)): v
        for (tk, sigs), v in original.universes.items()
    } == dict(restored.universes)


def test_round_trip_same_tree_is_exact():
    tree = build_tree(DOC)
    context = _learned_context(tree, [("Ann", "Oslo"), ("Cid", "Oslo")])
    payload = serialize_context(context)
    restored = deserialize_context(
        json.loads(json.dumps(payload)), [tree]
    )
    _assert_contexts_equal(context, restored, tree, tree)
    original_facts = context.facts(tree)
    restored_facts = restored.facts(tree)
    assert restored_facts.alphabet == original_facts.alphabet
    assert restored_facts.constants == original_facts.constants
    assert restored_facts.value_classes() == original_facts.value_classes()


def test_round_trip_re_keys_against_rebuilt_tree():
    """A structurally identical tree has different uids; positions must map."""
    tree = build_tree(DOC)
    context = _learned_context(tree, [("Ann", 31), ("Bob", 24)])
    clone = build_tree(DOC)
    assert clone.root.uid != tree.root.uid
    restored = context_loads(context_dumps(context), [clone])
    _assert_contexts_equal(context, restored, tree, clone)
    # Value classes must reference the *clone's* nodes.
    value_classes = restored.facts(clone).value_classes()
    clone_uids = {n.uid for n in clone.nodes()}
    for uids in value_classes.values():
        assert uids <= clone_uids
    # And they must still mean the same thing: nodes carrying the value.
    assert value_classes == {
        value: frozenset(n.uid for n in clone.nodes() if n.data == value)
        for value in value_classes
    }
    assert restored.facts(clone).uids_for_value(31) == frozenset(
        n.uid for n in clone.nodes() if n.data == 31
    )


def test_unmatched_fingerprint_drops_entries():
    tree = build_tree(DOC)
    context = _learned_context(tree, [("Ann", "Oslo")])
    other = build_tree({"different": [1, 2, 3]})
    restored = context_loads(context_dumps(context), [other])
    assert restored.column_results == {}
    assert restored.chi == {}
    assert restored.universes == {}


def test_merge_into_existing_context_keeps_existing_entries():
    tree = build_tree(DOC)
    context = _learned_context(tree, [("Ann", "Oslo")])
    payload = serialize_context(context)
    target = SynthesisContext()
    sentinel_key = (
        (id(tree),),
        tuple(tuple(values) for values in [("Ann",)]),
    )
    sentinel = ["existing"]
    target.column_results[sentinel_key] = sentinel
    deserialize_context(payload, [tree], context=target)
    assert target.column_results[sentinel_key] is sentinel
    assert len(target.column_results) >= len(context.column_results)


def test_scalar_shapes_survive_the_trip():
    doc = {"rec": [{"flag": True, "n": 1, "x": 1.0, "s": "1"}]}
    tree = build_tree(doc)
    context = SynthesisContext()
    facts = context.facts(tree)
    _ = facts.alphabet, facts.constants
    facts.uids_for_value(True)  # force the value-class table
    restored = context_loads(context_dumps(context), [tree])
    constants = restored.facts(tree).constants
    # repr-level identity: True stayed bool, 1 stayed int, 1.0 stayed float.
    assert [repr(c) for c in constants] == [repr(c) for c in facts.constants]


def test_rejects_foreign_and_future_payloads():
    tree = build_tree(DOC)
    with pytest.raises(SerializationError):
        deserialize_context({"kind": "program"}, [tree])
    context = _learned_context(tree, [("Ann", "Oslo")])
    payload = serialize_context(context)
    payload["version"] = 999
    with pytest.raises(SerializationError):
        deserialize_context(payload, [tree])


# --------------------------------------------------------------------------- #
# Property: losslessness over random documents and columns
# --------------------------------------------------------------------------- #

scalars = st.one_of(
    st.integers(min_value=-9, max_value=9),
    st.sampled_from(["aa", "bb", "cc", "1", ""]),
    st.booleans(),
)


@st.composite
def random_docs(draw):
    return {
        "item": [
            {
                "k": draw(scalars),
                "v": draw(scalars),
            }
            for _ in range(draw(st.integers(1, 3)))
        ]
    }


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(doc=random_docs())
def test_property_round_trip_is_lossless(doc):
    tree = build_tree(doc)
    values = [n.data for n in tree.root.descendants_with_tag("k")]
    synthesizer = Synthesizer(SynthesisConfig.fast())
    task = SynthesisTask(examples=[ExamplePair(tree, [(v,) for v in values])])
    synthesizer.synthesize(task)
    context = synthesizer.context
    clone = build_tree(doc)
    restored = context_loads(context_dumps(context), [clone])
    _assert_contexts_equal(context, restored, tree, clone)
    if context.facts(tree).value_classes() is not None:
        # Rehydrated facts must equal facts recomputed from scratch on the
        # clone (dict equality conflates True/1 exactly like the live table).
        fresh = SynthesisContext().facts(clone)
        fresh.uids_for_value(0)  # force the lazy table
        assert restored.facts(clone).value_classes() == fresh.value_classes()
