"""Setuptools entry point.

The pyproject.toml [project] table is the canonical metadata; this setup.py
exists so that the package can be installed in environments without the
`wheel` package (legacy `pip install -e . --no-use-pep517`).
"""
from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description="Reproduction of Mitra (VLDB 2018): PBE migration of hierarchical data to relational tables",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy", "scipy"],
)
