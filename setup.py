"""Setuptools entry point.

The pyproject.toml [project] table is the canonical metadata; this setup.py
exists so that the package can be installed in environments without the
`wheel` package (legacy `pip install -e . --no-use-pep517`).
"""
from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description="Reproduction of Mitra (VLDB 2018): PBE migration of hierarchical data to relational tables",
    long_description=(
        "A programming-by-example system that migrates hierarchical documents "
        "(XML, JSON) to relational tables, plus a production migration runtime: "
        "durable JSON plans, a SQLite backend, streaming execution and a CLI."
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy", "scipy"],
    extras_require={
        # Arrow IPC / Parquet output for the columnar backend; without it the
        # backend falls back to a pure-python JSON-columns format (the import
        # is guarded — see src/repro/runtime/backends/columnar.py).
        "columnar": ["pyarrow"],
        # The DuckDB analytics backend (--backend duckdb); the import is
        # guarded the same way — see src/repro/runtime/backends/duckdb.py.
        "duckdb": ["duckdb"],
    },
    entry_points={
        "console_scripts": [
            "repro-migrate = repro.runtime.cli:main",
        ],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.9",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Database",
        "Topic :: Scientific/Engineering",
    ],
)
