"""Whole-database migration: per-table synthesis plus key generation."""

from .engine import (
    MigrationEngine,
    MigrationError,
    MigrationResult,
    MigrationSpec,
    TableExampleSpec,
    TableProgram,
    TableRowBatch,
    consumed_projection,
    generate_table_rows,
    iter_generate_table_rows,
)
from .keys import ForeignKeyRule, LinkRule, key_of, learn_link_rules, path_extractor

__all__ = [
    "MigrationEngine",
    "MigrationError",
    "MigrationResult",
    "MigrationSpec",
    "TableExampleSpec",
    "TableProgram",
    "TableRowBatch",
    "consumed_projection",
    "generate_table_rows",
    "iter_generate_table_rows",
    "ForeignKeyRule",
    "LinkRule",
    "key_of",
    "learn_link_rules",
    "path_extractor",
]
