"""Primary- and foreign-key generation (Section 6, "Handling full-fledged databases").

The paper generates the primary key of a database row from the tree nodes the
row was constructed from, using an injective function ``f(n1, ..., nk)`` that
concatenates the nodes' unique identifiers.  A foreign key referencing table
T' is produced by applying the *same* function to the T' row's defining nodes,
which are recovered through learned ``(node extractor, source column)`` pairs.

This module implements both pieces:

* :func:`key_of` — the injective key function over node tuples;
* :func:`path_extractor` — the canonical node extractor mapping one node to
  another (up to the lowest common ancestor, then down via ``child`` steps),
  used to learn foreign-key links from examples;
* :class:`ForeignKeyRule` — the learned per-column extractor rules and their
  application to full datasets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..dsl.ast import Child, NodeExtractor, NodeVar, Parent
from ..dsl.semantics import NodeTuple, eval_node_extractor
from ..hdt.node import Node


def key_of(nodes: Sequence[Node]) -> str:
    """The injective primary-key function f: concatenation of node identifiers."""
    return "k" + "_".join(str(node.uid) for node in nodes)


def path_extractor(source: Node, target: Node) -> Optional[NodeExtractor]:
    """The canonical node extractor that maps ``source`` to ``target``.

    The extractor climbs from the source up to the lowest common ancestor of
    the two nodes and then descends to the target with ``child(tag, pos)``
    steps.  Returns ``None`` when the nodes live in different trees.
    """
    source_path = source.path_from_root()
    target_path = target.path_from_root()
    if source_path[0] is not target_path[0]:
        return None
    common = 0
    for a, b in zip(source_path, target_path):
        if a is b:
            common += 1
        else:
            break
    extractor: NodeExtractor = NodeVar()
    for _ in range(len(source_path) - common):
        extractor = Parent(extractor)
    for node in target_path[common:]:
        extractor = Child(extractor, node.tag, node.pos)
    return extractor


@dataclass(frozen=True)
class LinkRule:
    """Maps one column of the referencing row to one node of the referenced row."""

    source_column: int
    extractor: NodeExtractor

    def apply(self, row: NodeTuple) -> Optional[Node]:
        if self.source_column >= len(row):
            return None
        return eval_node_extractor(self.extractor, row[self.source_column])


@dataclass
class ForeignKeyRule:
    """The learned rule producing a foreign-key value for each row of a table.

    ``links[j]`` recovers the j-th defining node of the referenced table's row;
    applying :func:`key_of` to the recovered node tuple reproduces exactly the
    referenced row's primary key.
    """

    column: str
    target_table: str
    links: List[LinkRule]

    def foreign_key_for(self, row: NodeTuple) -> Optional[str]:
        """Compute the foreign-key value for one referencing row."""
        recovered: List[Node] = []
        for link in self.links:
            node = link.apply(row)
            if node is None:
                return None
            recovered.append(node)
        return key_of(recovered)


def learn_link_rules(
    pairs: Sequence[Tuple[NodeTuple, NodeTuple]],
) -> Optional[List[LinkRule]]:
    """Learn link rules from example (referencing row, referenced row) node tuples.

    For every column j of the referenced row, the learner searches for a source
    column i of the referencing row and a node extractor χ such that
    ``χ(referencing[i]) == referenced[j]`` holds for *every* example pair.  The
    candidate extractor is the canonical path extractor of the first pair,
    checked against the remaining pairs; among valid candidates the smallest
    extractor wins.

    Returns ``None`` if some column of the referenced rows cannot be linked.
    """
    if not pairs:
        return None
    referenced_arity = len(pairs[0][1])
    referencing_arity = len(pairs[0][0])
    rules: List[LinkRule] = []
    for j in range(referenced_arity):
        best: Optional[LinkRule] = None
        for i in range(referencing_arity):
            candidate = path_extractor(pairs[0][0][i], pairs[0][1][j])
            if candidate is None:
                continue
            if not all(
                eval_node_extractor(candidate, source[i]) is target[j]
                for source, target in pairs
            ):
                continue
            rule = LinkRule(i, candidate)
            if best is None or candidate.size() < best.extractor.size():
                best = rule
        if best is None:
            return None
        rules.append(best)
    return rules
