"""Whole-database migration (Section 6 and the Table 2 experiment).

The synthesis algorithm of Section 5 converts one document into one relational
table.  To migrate a dataset into a complete database, Mitra is invoked once
per target table and a post-processing step generates primary and foreign keys
so that the resulting database satisfies its key constraints.

This module orchestrates that process:

* :class:`TableExampleSpec` — the per-table input-output example.  Example rows
  follow the target schema's column order; primary- and foreign-key cells
  carry *symbolic labels* (e.g. ``"p1"``) that tie referencing rows to
  referenced rows, while data cells carry actual values from the example
  document, exactly like the examples a user would write.
* :class:`MigrationSpec` — the target schema plus one example document shared
  by the per-table examples.
* :class:`MigrationEngine` — synthesizes one program per table (data columns
  only), learns foreign-key link rules from the example labels
  (:mod:`repro.migration.keys`), and finally executes every program on the
  full dataset, generating keys and loading a validated
  :class:`~repro.relational.database.Database`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..dsl.ast import Program
from ..dsl.semantics import NodeTuple
from ..hdt.node import Scalar
from ..hdt.tree import HDT
from ..optimizer.optimize import (
    DATA,
    IGNORED,
    TupleProjection,
    execute_nodes,
    iter_execute_nodes,
)
from ..relational.database import Database
from ..relational.schema import DatabaseSchema, TableSchema
from ..synthesis.config import SynthesisConfig
from ..synthesis.predicate_learner import rows_equal
from ..synthesis.synthesizer import ExamplePair, SynthesisResult, SynthesisTask, Synthesizer
from .keys import ForeignKeyRule, key_of, learn_link_rules


class MigrationError(Exception):
    """Raised when a table's program or key rules cannot be learned."""


#: Zero-duration placeholder for per-table timing when synthesis ran inline.
_NO_RESULT = SynthesisResult(program=None, success=False, synthesis_time=0.0)


@dataclass
class TableRowBatch:
    """Rows produced for one table from one document (or document chunk).

    ``key_aliases`` records surrogate keys that were *not* inserted because an
    earlier row in the same batch had identical content: each dropped key maps
    to the key that was kept.  The streaming runtime uses this to reconcile
    keys across chunks; the one-shot engine ignores it (referencing rows that
    recover a dropped node tuple would have produced the dropped key in either
    path, so behaviour is unchanged).
    """

    table: str
    rows: List[Tuple[Scalar, ...]]
    key_aliases: Dict[str, str] = field(default_factory=dict)


def iter_generate_table_rows(
    schema: TableSchema,
    data_columns: Sequence[str],
    foreign_key_rules: Sequence[ForeignKeyRule],
    node_rows: Iterable[NodeTuple],
    *,
    key_aliases: Optional[Dict[str, str]] = None,
) -> Iterator[Tuple[Scalar, ...]]:
    """Stream a program's node tuples into schema-ordered, deduplicated rows.

    This is the single implementation of the paper's key-generation step
    (Section 6): natural-key tables take every column directly from the
    document (deduplicated on the primary key, or on the whole row when the
    table has no primary key); surrogate-key tables derive the primary key
    from the defining node tuple via :func:`~repro.migration.keys.key_of` and
    foreign keys via the learned :class:`ForeignKeyRule`s.

    ``node_rows`` may be any iterable — in particular the lazy tuple stream
    of :func:`repro.optimizer.optimize.iter_execute_nodes` — and rows are
    yielded as soon as they are decided, so the whole pipeline from document
    to backend runs in fixed memory.  For surrogate-key tables, pass a
    ``key_aliases`` dictionary to collect the keys dropped by content
    deduplication (each maps to the key that was kept); the mapping is
    complete once the generator is exhausted.
    """
    column_names = schema.column_names
    data_indices = {name: index for index, name in enumerate(data_columns)}
    fk_rules = {rule.column: rule for rule in foreign_key_rules}
    seen_keys: set = set()
    if schema.natural_keys:
        seen_rows: set = set()
        pk_index = (
            column_names.index(schema.primary_key)
            if schema.primary_key is not None
            else None
        )
        for node_row in node_rows:
            row = tuple(node_row[data_indices[name]].data for name in column_names)
            if pk_index is not None:
                pk_value = row[pk_index]
                if pk_value in seen_keys:
                    continue
                seen_keys.add(pk_value)
            elif row in seen_rows:
                continue
            else:
                seen_rows.add(row)
            yield row
        return
    seen_content: Dict[Tuple[Scalar, ...], str] = {}
    for node_row in node_rows:
        primary_key = key_of(node_row)
        if schema.primary_key is not None:
            if primary_key in seen_keys:
                continue
            seen_keys.add(primary_key)
        row: List[Scalar] = []
        for name in column_names:
            if name == schema.primary_key:
                row.append(primary_key)
            elif name in fk_rules:
                row.append(fk_rules[name].foreign_key_for(node_row))
            else:
                row.append(node_row[data_indices[name]].data)
        # Distinct node tuples can denote the same logical row when the
        # filter predicate relates columns by data value rather than node
        # identity; collapse them so the surrogate key stays one-per-row.
        content = tuple(
            value for name, value in zip(column_names, row) if name != schema.primary_key
        )
        if content in seen_content:
            if key_aliases is not None and schema.primary_key is not None:
                key_aliases[primary_key] = seen_content[content]
            continue
        seen_content[content] = primary_key
        yield tuple(row)


def generate_table_rows(
    schema: TableSchema,
    data_columns: Sequence[str],
    foreign_key_rules: Sequence[ForeignKeyRule],
    node_rows: Iterable[NodeTuple],
) -> TableRowBatch:
    """Materialized convenience wrapper around :func:`iter_generate_table_rows`.

    Used where a whole batch is needed at once (the multiprocessing chunk
    fan-out pickles batches between processes); the streaming executor
    consumes the generator directly.
    """
    batch = TableRowBatch(table=schema.name, rows=[])
    batch.rows.extend(
        iter_generate_table_rows(
            schema,
            data_columns,
            foreign_key_rules,
            node_rows,
            key_aliases=batch.key_aliases,
        )
    )
    return batch


def consumed_projection(
    schema: TableSchema, data_columns: Sequence[str], arity: int
) -> Optional[TupleProjection]:
    """How :func:`iter_generate_table_rows` consumes a table's node tuples.

    Natural-key tables read only the *data* of the columns named in the
    schema (any extra program columns are never read), so the executor may
    collapse value-join groups to per-value representatives — the fused dedup
    that keeps e.g. the DBLP author link tables linear.  Surrogate-key tables
    consume node *identity* (the primary key hashes every node's uid and the
    dropped-key alias bookkeeping must see every collapsed tuple), so they
    get ``None`` — the exact tuple-level semantics.
    """
    if not schema.natural_keys:
        return None
    used = {
        index
        for index, name in enumerate(data_columns)
        if name in schema.column_names
    }
    return TupleProjection(
        tuple(DATA if index in used else IGNORED for index in range(arity))
    )


@dataclass
class TableExampleSpec:
    """Input-output example for one target table.

    ``rows`` follow the schema's column order.  Cells in the primary-key column
    and in foreign-key columns are symbolic labels; all other cells are data
    values appearing in the example document.
    """

    table: str
    rows: List[Tuple[Scalar, ...]]


@dataclass
class MigrationSpec:
    """A complete migration problem: schema, example document, per-table examples."""

    schema: DatabaseSchema
    example_tree: HDT
    table_examples: List[TableExampleSpec]

    def example_for(self, table: str) -> TableExampleSpec:
        for spec in self.table_examples:
            if spec.table == table:
                return spec
        raise MigrationError(f"no example provided for table {table!r}")


@dataclass
class TableProgram:
    """Everything learned for one target table."""

    schema: TableSchema
    program: Program
    synthesis: SynthesisResult
    data_columns: List[str]
    foreign_key_rules: List[ForeignKeyRule] = field(default_factory=list)
    label_to_nodes: Dict[Scalar, NodeTuple] = field(default_factory=dict)


@dataclass
class MigrationResult:
    """The outcome of a full migration run."""

    database: Database
    table_programs: Dict[str, TableProgram]
    synthesis_time: float
    execution_time: float
    per_table_synthesis_time: Dict[str, float]
    per_table_execution_time: Dict[str, float]
    per_table_rows: Dict[str, int]

    @property
    def total_rows(self) -> int:
        return sum(self.per_table_rows.values())


def _table_data_rows(
    spec: MigrationSpec, table_schema: TableSchema
) -> List[Tuple[Scalar, ...]]:
    """The example rows projected onto the table's data columns."""
    example = spec.example_for(table_schema.name)
    data_columns = table_schema.data_columns()
    if not data_columns:
        raise MigrationError(
            f"table {table_schema.name!r} has no data columns to learn from"
        )
    column_names = table_schema.column_names
    data_indices = [column_names.index(c) for c in data_columns]
    return [tuple(row[i] for i in data_indices) for row in example.rows]


def _table_synthesis_task(
    spec: MigrationSpec, table_schema: TableSchema
) -> SynthesisTask:
    """The per-table synthesis problem: data columns of the example rows."""
    return SynthesisTask(
        examples=[ExamplePair(spec.example_tree, _table_data_rows(spec, table_schema))],
        name=f"table:{table_schema.name}",
    )


#: Per-process state of the synthesis pool: the example tree (unpickled once
#: per worker) and a long-lived synthesizer whose context caches — tree
#: automaton, χi sets, universes, column results — are shared by every table
#: the worker handles, mirroring what the serial engine gets for free.
_WORKER_STATE: Dict[str, object] = {}


def _init_synthesis_worker(
    tree_bytes: bytes, config: SynthesisConfig, context_payload: Optional[dict] = None
) -> None:
    """Build the worker's tree and synthesizer, optionally seeded from a
    persisted context payload (incremental mode): the worker rehydrates the
    parent's :class:`~repro.synthesis.context.SynthesisContext` artifacts
    against its own unpickled tree, so cached column results, χi sets and
    universes are shared even across the process boundary.  Worker-*learned*
    entries are not shipped back (the payloads would dwarf the results);
    serial runs are what enrich the persisted context over time."""
    import pickle

    tree = pickle.loads(tree_bytes)
    context = None
    if context_payload is not None:
        from ..synthesis.serialize import deserialize_context

        context = deserialize_context(context_payload, [tree])
    _WORKER_STATE["tree"] = tree
    _WORKER_STATE["synthesizer"] = Synthesizer(config, context=context)


def _synthesize_table_worker(
    payload: Tuple[str, List[Tuple[Scalar, ...]]]
) -> Tuple[str, SynthesisResult]:
    """Process-pool entry point: synthesize one table's program.

    Runs in a worker process against the worker's copy of the example tree;
    only the (picklable) :class:`SynthesisResult` travels back.  Example-row
    alignment and foreign-key learning stay in the parent, where node
    identities refer to the parent's tree.
    """
    name, data_rows = payload
    tree: HDT = _WORKER_STATE["tree"]  # type: ignore[assignment]
    synthesizer: Synthesizer = _WORKER_STATE["synthesizer"]  # type: ignore[assignment]
    task = SynthesisTask(
        examples=[ExamplePair(tree, data_rows)], name=f"table:{name}"
    )
    return name, synthesizer.synthesize(task)


class MigrationEngine:
    """Synthesize per-table programs and migrate full datasets to a database.

    The default configuration is :meth:`SynthesisConfig.for_migration`, which
    disables constant predicates: the hidden links of normalized database
    schemas are structural, and tiny per-table examples would otherwise make
    constant comparisons look spuriously attractive to the Occam's-razor
    ranking.

    ``jobs`` controls per-table synthesis parallelism: tables are independent
    synthesis problems, so with ``jobs > 1`` they are fanned out over a
    :class:`~concurrent.futures.ProcessPoolExecutor` (``jobs=0`` uses the CPU
    count).  Key-rule learning runs in the parent afterwards — it aligns
    example rows against the parent's tree — and the learned programs are
    identical to a serial run.  When only one table needs synthesis, the
    worker budget is spent *inside* the synthesizer instead: its candidate
    table extractors are evaluated in parallel (see
    :class:`~repro.synthesis.synthesizer.Synthesizer`), again with
    byte-identical results.

    ``context`` optionally seeds the engine's synthesizer with a shared (or
    rehydrated) :class:`~repro.synthesis.context.SynthesisContext`; worker
    processes are seeded from the same caches.  Together with the ``reuse``
    arguments of :meth:`learn` this is the substrate of incremental
    learning — see :func:`repro.runtime.incremental.learn_incremental`.
    """

    def __init__(
        self,
        config: Optional[SynthesisConfig] = None,
        *,
        jobs: int = 1,
        context=None,
    ) -> None:
        if jobs < 0:
            raise ValueError(f"jobs must be >= 0 (got {jobs})")
        self.config = config if config is not None else SynthesisConfig.for_migration()
        self.jobs = jobs
        self.synthesizer = Synthesizer(self.config, context=context)

    # ------------------------------------------------------------ synthesis
    def learn(
        self,
        spec: MigrationSpec,
        *,
        reuse: Optional[Dict[str, object]] = None,
        reuse_keys: Optional[set] = None,
    ) -> Tuple[Dict[str, TableProgram], Dict[str, float]]:
        """Learn a program and key rules for every table of the target schema.

        ``reuse`` maps table names to cached executable artifacts (anything
        with ``program``, ``data_columns`` and ``foreign_key_rules``, e.g. a
        :class:`~repro.runtime.plan.TablePlan`) whose programs are known to be
        re-learnable bit-for-bit — synthesis is skipped for them.  Tables also
        listed in ``reuse_keys`` keep their cached foreign-key rules; the rest
        re-run the (cheap) key-learning step against the example tree, which
        is required whenever a referenced table's program changed.  The
        example-row → node-tuple alignments are always recomputed so that
        fresh tables can learn foreign keys *into* reused ones.
        """
        reuse = reuse or {}
        reuse_keys = reuse_keys or set()
        results = self._synthesis_results(spec, skip=set(reuse))
        programs: Dict[str, TableProgram] = {}
        per_table_time: Dict[str, float] = {}
        for table_schema in spec.schema.topological_order():
            start = time.perf_counter()
            if table_schema.name in reuse:
                programs[table_schema.name] = self._reuse_table(
                    spec,
                    table_schema,
                    reuse[table_schema.name],
                    table_schema.name in reuse_keys,
                    programs,
                )
            else:
                programs[table_schema.name] = self._learn_table(
                    spec, table_schema, programs, results.get(table_schema.name)
                )
            per_table_time[table_schema.name] = (
                time.perf_counter() - start
            ) + results.get(table_schema.name, _NO_RESULT).synthesis_time
        return programs, per_table_time

    def _synthesis_results(
        self, spec: MigrationSpec, skip: Optional[set] = None
    ) -> Dict[str, SynthesisResult]:
        """Phase 1: per-table program synthesis, serial or process-parallel."""
        jobs = self.jobs
        if jobs == 1:
            return {}
        import os
        import pickle
        from concurrent.futures import ProcessPoolExecutor

        tables = [
            table_schema
            for table_schema in spec.schema.topological_order()
            if not skip or table_schema.name not in skip
        ]
        if not tables:
            return {}
        workers = jobs if jobs else os.cpu_count() or 1
        if len(tables) == 1 and self.config.vectorized:
            # A table-level pool is useless for a single table; fan out over
            # its candidate table extractors instead.  The candidate stage is
            # deterministic, so the program is identical to a serial run.
            synthesizer = Synthesizer(
                self.config, context=self.synthesizer.context, jobs=workers
            )
            table_schema = tables[0]
            return {
                table_schema.name: synthesizer.synthesize(
                    _table_synthesis_task(spec, table_schema)
                )
            }
        workers = min(workers, len(tables)) or 1
        payloads = [
            (table_schema.name, _table_data_rows(spec, table_schema))
            for table_schema in tables
        ]
        tree_bytes = pickle.dumps(spec.example_tree)
        context_payload = None
        context = self.synthesizer.context
        if self.config.vectorized and context.trees():
            from ..synthesis.serialize import serialize_context

            context_payload = serialize_context(context)
        results: Dict[str, SynthesisResult] = {}
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_synthesis_worker,
            initargs=(tree_bytes, self.config, context_payload),
        ) as pool:
            for name, result in pool.map(_synthesize_table_worker, payloads):
                results[name] = result
        return results

    def _reuse_table(
        self,
        spec: MigrationSpec,
        table_schema: TableSchema,
        cached,
        keys_reused: bool,
        learned: Dict[str, TableProgram],
    ) -> TableProgram:
        """Rebuild a :class:`TableProgram` from a cached plan entry.

        The program (the expensive artifact) is taken as-is; the example-row
        alignment is recomputed against *this* process's example tree so node
        identities line up for any key learning that still has to run —
        either this table's own (when ``keys_reused`` is false) or that of a
        fresh table referencing this one.
        """
        result = SynthesisResult(
            program=cached.program,
            success=True,
            synthesis_time=0.0,
            message="reused from cached plan",
        )
        table_program = TableProgram(
            schema=table_schema,
            program=cached.program,
            synthesis=result,
            data_columns=list(cached.data_columns),
        )
        if not table_schema.natural_keys:
            example = spec.example_for(table_schema.name)
            column_names = table_schema.column_names
            data_indices = [
                column_names.index(c) for c in table_program.data_columns
            ]
            table_program.label_to_nodes = self._match_example_rows(
                spec, table_schema, example, cached.program, data_indices
            )
            if keys_reused:
                table_program.foreign_key_rules = list(cached.foreign_key_rules)
            else:
                table_program.foreign_key_rules = self._learn_foreign_keys(
                    spec, table_schema, example, table_program, learned
                )
        return table_program

    def _learn_table(
        self,
        spec: MigrationSpec,
        table_schema: TableSchema,
        learned: Dict[str, TableProgram],
        result: Optional[SynthesisResult] = None,
    ) -> TableProgram:
        example = spec.example_for(table_schema.name)
        data_columns = table_schema.data_columns()
        column_names = table_schema.column_names
        data_indices = [column_names.index(c) for c in data_columns]
        if not data_columns:
            raise MigrationError(
                f"table {table_schema.name!r} has no data columns to learn from"
            )

        if result is None:
            task = _table_synthesis_task(spec, table_schema)
            result = self.synthesizer.synthesize(task)
        if not result.success or result.program is None:
            raise MigrationError(
                f"failed to synthesize a program for table {table_schema.name!r}: "
                f"{result.message}"
            )

        table_program = TableProgram(
            schema=table_schema,
            program=result.program,
            synthesis=result,
            data_columns=data_columns,
        )
        if not table_schema.natural_keys:
            table_program.label_to_nodes = self._match_example_rows(
                spec, table_schema, example, result.program, data_indices
            )
            table_program.foreign_key_rules = self._learn_foreign_keys(
                spec, table_schema, example, table_program, learned
            )
        return table_program

    def _match_example_rows(
        self,
        spec: MigrationSpec,
        table_schema: TableSchema,
        example: TableExampleSpec,
        program: Program,
        data_indices: List[int],
    ) -> Dict[Scalar, NodeTuple]:
        """Associate each example row's primary-key label with its node tuple."""
        node_rows = execute_nodes(program, spec.example_tree)
        label_to_nodes: Dict[Scalar, NodeTuple] = {}
        if table_schema.primary_key is None:
            return label_to_nodes
        pk_index = table_schema.column_names.index(table_schema.primary_key)
        used: set = set()
        for row in example.rows:
            expected = tuple(row[i] for i in data_indices)
            label = row[pk_index]
            for position, node_row in enumerate(node_rows):
                if position in used:
                    continue
                produced = tuple(node.data for node in node_row)
                if rows_equal(produced, expected):
                    label_to_nodes[label] = node_row
                    used.add(position)
                    break
        return label_to_nodes

    def _learn_foreign_keys(
        self,
        spec: MigrationSpec,
        table_schema: TableSchema,
        example: TableExampleSpec,
        table_program: TableProgram,
        learned: Dict[str, TableProgram],
    ) -> List[ForeignKeyRule]:
        """Learn one :class:`ForeignKeyRule` per foreign-key column of the table."""
        rules: List[ForeignKeyRule] = []
        column_names = table_schema.column_names
        pk_index = (
            column_names.index(table_schema.primary_key)
            if table_schema.primary_key is not None
            else None
        )
        for fk in table_schema.foreign_keys:
            target_program = learned.get(fk.target_table)
            if target_program is None:
                raise MigrationError(
                    f"table {table_schema.name!r} references {fk.target_table!r}, "
                    "which has not been learned yet (schema is not topologically ordered)"
                )
            fk_index = column_names.index(fk.column)
            pairs: List[Tuple[NodeTuple, NodeTuple]] = []
            for row in example.rows:
                fk_label = row[fk_index]
                if fk_label is None:
                    continue
                if pk_index is None:
                    continue
                own_label = row[pk_index]
                own_nodes = table_program.label_to_nodes.get(own_label)
                target_nodes = target_program.label_to_nodes.get(fk_label)
                if own_nodes is None or target_nodes is None:
                    raise MigrationError(
                        f"could not align example rows for foreign key "
                        f"{table_schema.name}.{fk.column} -> {fk.target_table}"
                    )
                pairs.append((own_nodes, target_nodes))
            links = learn_link_rules(pairs)
            if links is None:
                raise MigrationError(
                    f"failed to learn link rules for foreign key "
                    f"{table_schema.name}.{fk.column} -> {fk.target_table}"
                )
            rules.append(ForeignKeyRule(fk.column, fk.target_table, links))
        return rules

    # ------------------------------------------------------------ execution
    def migrate(
        self,
        spec: MigrationSpec,
        dataset: HDT,
        *,
        validate: bool = True,
    ) -> MigrationResult:
        """Learn programs from the examples and run them on the full dataset."""
        synthesis_start = time.perf_counter()
        programs, per_table_synthesis = self.learn(spec)
        synthesis_time = time.perf_counter() - synthesis_start

        database = Database(spec.schema)
        per_table_execution: Dict[str, float] = {}
        per_table_rows: Dict[str, int] = {}
        execution_start = time.perf_counter()
        for table_schema in spec.schema.topological_order():
            start = time.perf_counter()
            count = self._populate_table(database, programs[table_schema.name], dataset)
            per_table_execution[table_schema.name] = time.perf_counter() - start
            per_table_rows[table_schema.name] = count
        execution_time = time.perf_counter() - execution_start

        if validate:
            database.validate()
        return MigrationResult(
            database=database,
            table_programs=programs,
            synthesis_time=synthesis_time,
            execution_time=execution_time,
            per_table_synthesis_time=per_table_synthesis,
            per_table_execution_time=per_table_execution,
            per_table_rows=per_table_rows,
        )

    def _populate_table(
        self, database: Database, table_program: TableProgram, dataset: HDT
    ) -> int:
        """Run one table's program on the dataset and insert rows with keys.

        The whole pipeline is streamed: node tuples flow out of the fused
        executor straight into key generation and row insertion, one tuple at
        a time.
        """
        projection = consumed_projection(
            table_program.schema,
            table_program.data_columns,
            table_program.program.arity,
        )
        node_rows = iter_execute_nodes(
            table_program.program, dataset, projection=projection
        )
        count = 0
        for row in iter_generate_table_rows(
            table_program.schema,
            table_program.data_columns,
            table_program.foreign_key_rules,
            node_rows,
        ):
            database.insert(table_program.schema.name, row)
            count += 1
        return count
