"""Streaming, cross-product-free execution of synthesized programs.

Programs in the DSL are deliberately written as ``filter(π1 × ... × πk, φ)``,
which is easy to synthesize but expensive to execute naively: the intermediate
table is the full cartesian product of the extracted columns.  The paper
(Section 6, Appendix C) avoids materializing that product by using the filter
predicate to guide table generation; this module implements that idea as a
small query planner plus a *streaming* executor:

1. the predicate is converted to CNF (:mod:`repro.optimizer.cnf`);
2. *single-column* clauses are pushed down and applied while scanning the
   column they mention;
3. *equi-join* clauses (equality between two different columns) are executed
   as hash joins — on node identity when the compared nodes are internal, on
   **canonical data values** when they are leaves (value-equality joins, e.g.
   columns related through a shared constant or position value);
4. any residual clauses are applied to the final tuples.

Execution is a generator pipeline: :func:`iter_execute_nodes` yields node
tuples one at a time from a depth-first walk over the join steps, so no
intermediate tuple list is ever materialized and downstream consumers (the
migration engine's row generation, the runtime's backends) run in fixed
memory.

**Fused dedup.**  Value-equality joins can have output quadratic in the
document size even though the final table is linear: a join on a column with
``d`` distinct data values produces groups of ``n/d`` nodes each, while the
target table consumes only each node's *data* — so every group collapses to
one row per distinct value downstream.  When the caller passes a
:class:`TupleProjection` describing which columns the target table actually
consumes (by ``data``, by node ``identity``, or not at all), the executor
dedups each hash-join group to its representatives *before* the group is
enumerated, which restores linear output for exactly the quadratic case
(e.g. the DBLP author link tables joining on 3 distinct position values).
A column is fused only when nothing later in the pipeline can distinguish
the collapsed nodes: its projection is not ``identity``, no residual clause
mentions it, and every join clause involving it is applied at its own join
step.

Column extraction is memoized so that columns sharing a prefix do not
re-traverse the document, and ``descendants``/``children`` steps answer from
the per-tree :class:`~repro.hdt.tree.TagIndex`.

The public entry points :func:`execute` / :func:`execute_nodes` are drop-in,
semantics-preserving replacements for
:func:`repro.dsl.semantics.run_program`; :func:`iter_execute_nodes` is the
streaming variant.  ``benchmarks/bench_executor.py`` quantifies the speedup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..dsl.ast import (
    Child,
    CompareConst,
    CompareNodes,
    NodeExtractor,
    NodeVar,
    Not,
    Parent,
    Predicate,
    Program,
    True_,
)
from ..dsl.semantics import (
    DataTuple,
    EvaluationError,
    NodeTuple,
    eval_column_on_tree,
    eval_predicate,
)
from ..hdt.node import Node
from ..hdt.tree import HDT
from .cnf import (
    Clause,
    clause_column,
    clauses_to_predicate,
    is_equijoin_clause,
    is_single_column_clause,
    to_cnf_clauses,
)

#: Projection kinds: how the consumer of the node tuples uses one column.
IDENTITY = "identity"  # the node itself matters (surrogate keys, FK links)
DATA = "data"  # only ``node.data`` is consumed
IGNORED = "ignored"  # the column is never read

_KINDS = (IDENTITY, DATA, IGNORED)


@dataclass(frozen=True)
class TupleProjection:
    """What the consumer of an executed program reads from each tuple column.

    ``kinds[i]`` is one of :data:`IDENTITY` (node identity is consumed —
    e.g. surrogate-key generation hashes the node's uid), :data:`DATA` (only
    the node's leaf data value is consumed) or :data:`IGNORED` (the column is
    never read).  Two node tuples that agree on every consumed coordinate are
    interchangeable for the consumer, which is what licenses the executor's
    fused dedup.
    """

    kinds: Tuple[str, ...]

    def __post_init__(self) -> None:
        for kind in self.kinds:
            if kind not in _KINDS:
                raise ValueError(f"unknown projection kind {kind!r}")

    @property
    def arity(self) -> int:
        return len(self.kinds)

    @staticmethod
    def identity(arity: int) -> "TupleProjection":
        """The projection that consumes every column by node identity."""
        return TupleProjection((IDENTITY,) * arity)


@dataclass
class ExecutionPlan:
    """A compiled execution strategy for one program."""

    program: Program
    projection: Optional[TupleProjection] = None
    pushdown: Dict[int, List[Clause]] = field(default_factory=dict)
    joins: List[CompareNodes] = field(default_factory=list)
    residual: List[Clause] = field(default_factory=list)
    fusable: Set[int] = field(default_factory=set)
    stats: Dict[str, int] = field(default_factory=dict)
    """Counters from the most recent execution of this plan: join-step
    classification (``value_join_clauses`` / ``node_join_clauses``), columns
    actually fused (``fused_columns``), tuples enumerated through the pipeline
    (``partial_tuples``) and final rows yielded (``rows_yielded``)."""

    def describe(self) -> str:
        """Human-readable plan summary (used in logs and the ablation report)."""
        parts = [
            f"columns={self.program.arity}",
            f"pushdown_clauses={sum(len(v) for v in self.pushdown.values())}",
            f"hash_joins={len(self.joins)}",
            f"residual_clauses={len(self.residual)}",
            f"fusable_columns={sorted(self.fusable)}",
        ]
        if self.stats:
            parts.append(
                "value_joins={0}, node_joins={1}, fused_columns={2}".format(
                    self.stats.get("value_join_clauses", 0),
                    self.stats.get("node_join_clauses", 0),
                    self.stats.get("fused_columns", 0),
                )
            )
            parts.append(
                "partial_tuples={0}, rows={1}".format(
                    self.stats.get("partial_tuples", 0),
                    self.stats.get("rows_yielded", 0),
                )
            )
        return ", ".join(parts)


def _clause_columns(clause: Clause) -> Optional[Set[int]]:
    """Columns referenced by a clause, or ``None`` when unknown (opaque)."""
    columns: Set[int] = set()
    for literal in clause:
        target = literal.operand if isinstance(literal, Not) else literal
        if isinstance(target, CompareConst):
            columns.add(target.column)
        elif isinstance(target, CompareNodes):
            columns.add(target.left_column)
            columns.add(target.right_column)
        elif isinstance(target, True_):
            continue
        else:
            return None
    return columns


def plan(program: Program, projection: Optional[TupleProjection] = None) -> ExecutionPlan:
    """Compile a program into an execution plan.

    ``projection`` (optional) describes what the consumer reads from each
    tuple column and enables the fused-dedup optimization; omitting it (or
    passing all-:data:`IDENTITY`) preserves the exact tuple-level semantics.
    """
    clauses = to_cnf_clauses(program.predicate)
    execution = ExecutionPlan(program=program, projection=projection)
    for clause in clauses:
        if is_equijoin_clause(clause):
            execution.joins.append(clause[0])  # type: ignore[arg-type]
        elif is_single_column_clause(clause):
            execution.pushdown.setdefault(clause_column(clause), []).append(clause)
        else:
            execution.residual.append(clause)

    if projection is not None:
        # A column is statically fusable when the consumer does not need the
        # node's identity and no residual clause can inspect the node.  The
        # remaining (join-order-dependent) condition — every join clause
        # involving the column is applied at the column's own join step — is
        # checked at execution time.
        blocked: Set[int] = set()
        for clause in execution.residual:
            referenced = _clause_columns(clause)
            if referenced is None:
                blocked.update(range(program.arity))
            else:
                blocked.update(referenced)
        execution.fusable = {
            column
            for column in range(min(program.arity, projection.arity))
            if projection.kinds[column] != IDENTITY and column not in blocked
        }
    return execution


# --------------------------------------------------------------------------- #
# Public entry points
# --------------------------------------------------------------------------- #


def execute(program: Program, tree: HDT) -> List[DataTuple]:
    """Run a program without materializing the full cross product."""
    return [tuple(n.data for n in row) for row in iter_execute_nodes(program, tree)]


def execute_nodes(program: Program, tree: HDT) -> List[NodeTuple]:
    """Like :func:`execute` but return node tuples (used by the migration engine)."""
    return list(iter_execute_nodes(program, tree))


def iter_execute_nodes(
    program: Program,
    tree: HDT,
    *,
    projection: Optional[TupleProjection] = None,
    execution: Optional[ExecutionPlan] = None,
) -> Iterator[NodeTuple]:
    """Stream a program's surviving node tuples without materializing them.

    Tuples are yielded in exactly the order :func:`execute_nodes` would list
    them.  With a ``projection``, hash-join groups whose members are
    indistinguishable to the consumer are collapsed to representatives before
    enumeration (see the module docstring); without one, the tuple stream is
    the exact filtered cross product.  Pass a pre-compiled ``execution`` plan
    to reuse planning work and to read back ``execution.stats`` afterwards.
    """
    if execution is None:
        execution = plan(program, projection)
    elif execution.program is not program:
        raise ValueError("execution plan was compiled for a different program")
    elif projection is not None and execution.projection != projection:
        raise ValueError("projection conflicts with the pre-compiled execution plan")
    return _iter_rows(execution, tree)


# --------------------------------------------------------------------------- #
# Execution internals
# --------------------------------------------------------------------------- #


def _eval_single_column(predicate: Predicate, node: Node, column: int, arity: int) -> bool:
    """Evaluate a single-column clause by placing the node at its column slot."""
    row = tuple(node for _ in range(arity))
    # Every literal in the clause references `column` only, so filling the
    # other slots with the same node is sound: they are never inspected.
    return eval_predicate(predicate, row)


def _compile_node_extractor(extractor: NodeExtractor):
    """Compile a node extractor into a closure (the executor's hot path).

    Equivalent to :func:`repro.dsl.semantics.eval_node_extractor` but without
    the per-call isinstance dispatch: the AST walk happens once at plan time.
    """
    if isinstance(extractor, NodeVar):
        return lambda node: node
    if isinstance(extractor, Parent):
        inner = _compile_node_extractor(extractor.source)

        def _parent(node, _inner=inner):
            target = _inner(node)
            return None if target is None else target.parent

        return _parent
    if isinstance(extractor, Child):
        inner = _compile_node_extractor(extractor.source)

        def _child(node, _inner=inner, _tag=extractor.tag, _pos=extractor.pos):
            target = _inner(node)
            return None if target is None else target.child_with(_tag, _pos)

        return _child
    raise EvaluationError(f"unknown node extractor: {extractor!r}")


def _key_for(extractor_fn, node: Node) -> Optional[Tuple]:
    """Hash key of a node under one side of an equi-join clause.

    Leaf targets key by their raw data value (value-equality joins); internal
    targets key by node identity.  The key equivalence is *exactly* the
    equivalence ``eval_predicate`` decides for an EQ clause:

    * Python's ``==``/``hash`` across ``bool``/``int``/``float`` agree with
      :func:`repro.dsl.semantics._values_equal` (``True == 1 == 1.0``,
      exact ``int``/``float`` comparison, no string/number coercion);
    * NaN — which EQ-compares false against everything, itself included —
      maps to ``None`` (⊥) so it never enters an index;
    * the ``"d"``/``"n"`` tags keep the two key spaces disjoint, so a leaf
      never joins an internal node.

    Because the match is exact, joined tuples need no re-check of their join
    clauses.
    """
    target = extractor_fn(node)
    if target is None:
        return None
    if not target.children:
        data = target.data
        if data != data:  # NaN
            return None
        return ("d", data)
    return ("n", target.uid)


def _signature(node: Node, kind: str):
    """Equivalence key of a node under a projection kind (fused dedup)."""
    if kind == IGNORED:
        return ()
    data = node.data
    # The raw class distinguishes 1 / 1.0 / True so the representative's
    # projected row is byte-identical to what full enumeration + downstream
    # content dedup would have produced first.
    return (data.__class__, data)


def _dedupe_by_signature(nodes: Sequence[Node], kind: str) -> List[Node]:
    """First occurrence per projection signature, preserving document order."""
    seen: Set = set()
    out: List[Node] = []
    for node in nodes:
        signature = _signature(node, kind)
        if signature not in seen:
            seen.add(signature)
            out.append(node)
    return out


class _JoinStep:
    """One join step: bind ``column`` given the already-bound assignment."""

    __slots__ = ("index", "nodes", "_probes", "_single")

    def __init__(
        self,
        column: int,
        joins: List[CompareNodes],
        nodes: Sequence[Node],
        fused: bool,
        kind: str,
        stats: Dict[str, int],
    ) -> None:
        if not joins:
            # Disconnected column: nested-loop extension over the column scan
            # (deduped to representatives when fusable).
            self.index = None
            self.nodes = _dedupe_by_signature(nodes, kind) if fused else list(nodes)
            self._probes = ()
            self._single = True
            return
        # Compile, per clause, the key extractor for the new column's side
        # and the (bound column, key extractor) probe for the partial side.
        build_fns = []
        probes = []
        for join in joins:
            # If the new column is the right operand of the clause, its key
            # comes from the right extractor; otherwise from the left one.
            if join.right_column == column:
                build_fns.append(_compile_node_extractor(join.right_extractor))
                probes.append((join.left_column, _compile_node_extractor(join.left_extractor)))
            else:
                build_fns.append(_compile_node_extractor(join.left_extractor))
                probes.append((join.right_column, _compile_node_extractor(join.right_extractor)))
        self._probes = tuple(probes)
        self._single = len(joins) == 1

        index: Dict[Tuple, List[Node]] = {}
        key_spaces: List[Set[str]] = [set() for _ in joins]
        for node in nodes:
            if self._single:
                key = _key_for(build_fns[0], node)
                if key is None:
                    continue
                key_spaces[0].add(key[0])
            else:
                parts = []
                for position, fn in enumerate(build_fns):
                    part = _key_for(fn, node)
                    if part is None:
                        parts = None
                        break
                    key_spaces[position].add(part[0])
                    parts.append(part)
                if parts is None:
                    continue
                key = tuple(parts)
            index.setdefault(key, []).append(node)
        if fused:
            # Collapse every hash group to its representatives *before* any
            # partial tuple enumerates it — this is the fused dedup.
            index = {key: _dedupe_by_signature(group, kind) for key, group in index.items()}
        self.index = index
        self.nodes = None
        # Classify each clause of this step by the key space it joined on.
        for spaces in key_spaces:
            if "d" in spaces:
                stats["value_join_clauses"] = stats.get("value_join_clauses", 0) + 1
            if "n" in spaces:
                stats["node_join_clauses"] = stats.get("node_join_clauses", 0) + 1

    def candidates(self, assignment: List[Optional[Node]]) -> Sequence[Node]:
        """Nodes that may extend the partial assignment at this column."""
        if self.index is None:
            return self.nodes
        if self._single:
            bound_column, fn = self._probes[0]
            key = _key_for(fn, assignment[bound_column])
            if key is None:
                return ()
            return self.index.get(key, ())
        parts = []
        for bound_column, fn in self._probes:
            key = _key_for(fn, assignment[bound_column])
            if key is None:
                return ()
            parts.append(key)
        return self.index.get(tuple(parts), ())


def _join_order(columns: List[List[Node]], joins: List[CompareNodes]) -> List[int]:
    """Greedy left-deep join ordering.

    Start from the column with the fewest candidate nodes, then repeatedly
    add the column connected to the current set by a join clause;
    disconnected columns are added last via nested-loop extension.
    """
    remaining = set(range(len(columns)))
    order: List[int] = []
    if remaining:
        first = min(remaining, key=lambda i: (len(columns[i]), i))
        order.append(first)
        remaining.remove(first)
    while remaining:
        connected = [
            i
            for i in remaining
            if any(
                (j.left_column in order and j.right_column == i)
                or (j.right_column in order and j.left_column == i)
                for j in joins
            )
        ]
        pool = connected or sorted(remaining)
        nxt = min(pool, key=lambda i: (len(columns[i]), i))
        order.append(nxt)
        remaining.remove(nxt)
    return order


_DONE = object()


def _iter_rows(execution: ExecutionPlan, tree: HDT) -> Iterator[NodeTuple]:
    program = execution.program
    arity = program.arity
    stats = execution.stats
    stats.clear()
    if arity == 0:
        return

    projection = execution.projection
    kinds = (
        projection.kinds
        if projection is not None
        else TupleProjection.identity(arity).kinds
    )

    # ----------------------------------------------------------- column scan
    cache: Dict = {}
    columns: List[List[Node]] = []
    for column_index, extractor in enumerate(program.table.columns):
        nodes = eval_column_on_tree(extractor, tree, cache=cache)
        for clause in execution.pushdown.get(column_index, []):
            predicate = clauses_to_predicate([clause])
            nodes = [
                node
                for node in nodes
                if _eval_single_column(predicate, node, column_index, arity)
            ]
        columns.append(nodes)
    stats["pushdown_clauses"] = sum(len(v) for v in execution.pushdown.values())

    # ------------------------------------------------------------ join order
    order = _join_order(columns, execution.joins)

    # ------------------------------------------------------------ join steps
    def joins_involving(column: int) -> List[CompareNodes]:
        return [
            j
            for j in execution.joins
            if j.left_column == column or j.right_column == column
        ]

    bound: Set[int] = {order[0]}
    steps: List[Optional[_JoinStep]] = [None]  # level 0 is the seed column
    fused_columns = 0
    for column_index in order[1:]:
        joins_here = [
            j
            for j in execution.joins
            if (j.left_column in bound and j.right_column == column_index)
            or (j.right_column in bound and j.left_column == column_index)
        ]
        # Fuse only when *every* clause that can see this column is applied
        # right here; a clause deferred to a later step (or to the residual)
        # could distinguish nodes the dedup would collapse.
        fuse = (
            column_index in execution.fusable
            and len(joins_involving(column_index)) == len(joins_here)
        )
        if fuse:
            fused_columns += 1
        steps.append(
            _JoinStep(
                column_index,
                joins_here,
                columns[column_index],
                fuse,
                kinds[column_index] if column_index < len(kinds) else IDENTITY,
                stats,
            )
        )
        bound.add(column_index)

    seed_column = order[0]
    seed_nodes = columns[seed_column]
    if seed_column in execution.fusable and not joins_involving(seed_column):
        seed_nodes = _dedupe_by_signature(seed_nodes, kinds[seed_column])
        fused_columns += 1
    stats["fused_columns"] = fused_columns

    # --------------------------------------------------------- streamed walk
    # Depth-first over the join steps: one partial assignment exists at a
    # time, and complete tuples are yielded as they are found — the generator
    # never holds an intermediate tuple list.
    # Every join clause is applied at exactly one step (the step of its
    # later-bound column), and the hash-key equivalence is exactly the EQ
    # semantics of ``eval_predicate`` (see :func:`_key_for`), so joined
    # tuples need no re-check — only residual clauses are evaluated here.
    residual_predicate = clauses_to_predicate(execution.residual)
    check_residual = not isinstance(residual_predicate, True_)
    levels = len(order)
    partial_tuples = 0
    rows_yielded = 0

    assignment: List[Optional[Node]] = [None] * arity
    stack: List[Iterator[Node]] = [iter(seed_nodes)]
    try:
        while stack:
            level = len(stack) - 1
            node = next(stack[level], _DONE)
            if node is _DONE:
                stack.pop()
                continue
            assignment[order[level]] = node
            partial_tuples += 1
            if level + 1 < levels:
                candidates = steps[level + 1].candidates(assignment)
                if candidates:
                    stack.append(iter(candidates))
                continue
            row = tuple(assignment)  # type: ignore[arg-type]
            if check_residual and not eval_predicate(residual_predicate, row):
                continue
            rows_yielded += 1
            yield row
    finally:
        stats["partial_tuples"] = partial_tuples
        stats["rows_yielded"] = rows_yielded
