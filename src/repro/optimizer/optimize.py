"""Cross-product-free execution of synthesized programs (Section 6, Appendix C).

Programs in the DSL are deliberately written as ``filter(π1 × ... × πk, φ)``,
which is easy to synthesize but expensive to execute naively: the intermediate
table is the full cartesian product of the extracted columns.  The paper's
optimizer avoids materializing that product by using the filter predicate to
guide table generation.

This module implements the equivalent optimization as a small query planner:

1. the predicate is converted to CNF (:mod:`repro.optimizer.cnf`);
2. *single-column* clauses are pushed down and applied while scanning the
   column they mention;
3. *equi-join* clauses (node-equality between two different columns) are
   executed as hash joins, joining one column at a time into a growing set of
   partial tuples;
4. any residual clauses are applied to the final tuples.

Column extraction is memoized so that columns sharing a prefix (the common
case after synthesis — e.g. both columns start with ``children(s, Person)``)
do not re-traverse the document, mirroring the "memoizing shared computations"
optimization described in Section 1/6 of the paper.

The public entry point :func:`execute` is a drop-in, semantics-preserving
replacement for :func:`repro.dsl.semantics.run_program`; the ablation benchmark
``benchmarks/bench_ablation_optimizer.py`` quantifies the speedup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..dsl.ast import CompareNodes, Not, Predicate, Program, True_
from ..dsl.semantics import (
    DataTuple,
    NodeTuple,
    eval_column_on_tree,
    eval_node_extractor,
    eval_predicate,
)
from ..hdt.node import Node
from ..hdt.tree import HDT
from .cnf import (
    Clause,
    clause_column,
    clauses_to_predicate,
    is_equijoin_clause,
    is_single_column_clause,
    to_cnf_clauses,
)


@dataclass
class ExecutionPlan:
    """A compiled execution strategy for one program."""

    program: Program
    pushdown: Dict[int, List[Clause]] = field(default_factory=dict)
    joins: List[CompareNodes] = field(default_factory=list)
    residual: List[Clause] = field(default_factory=list)

    def describe(self) -> str:
        """Human-readable plan summary (used in logs and the ablation report)."""
        parts = [
            f"columns={self.program.arity}",
            f"pushdown_clauses={sum(len(v) for v in self.pushdown.values())}",
            f"hash_joins={len(self.joins)}",
            f"residual_clauses={len(self.residual)}",
        ]
        return ", ".join(parts)


def plan(program: Program) -> ExecutionPlan:
    """Compile a program into an execution plan."""
    clauses = to_cnf_clauses(program.predicate)
    execution = ExecutionPlan(program=program)
    for clause in clauses:
        if is_equijoin_clause(clause):
            execution.joins.append(clause[0])  # type: ignore[arg-type]
        elif is_single_column_clause(clause):
            execution.pushdown.setdefault(clause_column(clause), []).append(clause)
        else:
            execution.residual.append(clause)
    return execution


def execute(program: Program, tree: HDT) -> List[DataTuple]:
    """Run a program without materializing the full cross product."""
    return [tuple(n.data for n in row) for row in execute_nodes(program, tree)]


def execute_nodes(program: Program, tree: HDT) -> List[NodeTuple]:
    """Like :func:`execute` but return node tuples (used by the migration engine)."""
    execution = plan(program)
    cache: Dict = {}
    arity = program.arity

    # ----------------------------------------------------------- column scan
    columns: List[List[Node]] = []
    for index, extractor in enumerate(program.table.columns):
        nodes = eval_column_on_tree(extractor, tree, cache=cache)
        for clause in execution.pushdown.get(index, []):
            predicate = clauses_to_predicate([clause])
            nodes = [
                node
                for node in nodes
                if _eval_single_column(predicate, node, index, arity)
            ]
        columns.append(nodes)

    # ------------------------------------------------------------ join order
    # Start from the column with the fewest candidate nodes, then repeatedly
    # add the column connected to the current set by a join clause (greedy
    # left-deep join ordering); disconnected columns are added last via
    # nested-loop extension.
    remaining = set(range(arity))
    order: List[int] = []
    if remaining:
        first = min(remaining, key=lambda i: len(columns[i]))
        order.append(first)
        remaining.remove(first)
    while remaining:
        connected = [
            i
            for i in remaining
            if any(
                (j.left_column in order and j.right_column == i)
                or (j.right_column in order and j.left_column == i)
                for j in execution.joins
            )
        ]
        pool = connected or list(remaining)
        nxt = min(pool, key=lambda i: len(columns[i]))
        order.append(nxt)
        remaining.remove(nxt)

    # --------------------------------------------------------- join execution
    partial: List[Dict[int, Node]] = [{order[0]: node} for node in columns[order[0]]]
    bound: Set[int] = {order[0]}
    for column_index in order[1:]:
        joins_here = [
            j
            for j in execution.joins
            if (j.left_column in bound and j.right_column == column_index)
            or (j.right_column in bound and j.left_column == column_index)
        ]
        if joins_here:
            partial = _hash_join(partial, columns[column_index], column_index, joins_here)
        else:
            partial = [
                {**assignment, column_index: node}
                for assignment in partial
                for node in columns[column_index]
            ]
        bound.add(column_index)

    # ------------------------------------------------------------- residual
    residual_predicate = clauses_to_predicate(execution.residual)
    # Join clauses that involve columns joined via other equalities may be
    # subsumed; re-check every join clause on the final tuples to stay safe
    # when a column participates in multiple joins.
    results: List[NodeTuple] = []
    for assignment in partial:
        row = tuple(assignment[i] for i in range(arity))
        if not isinstance(residual_predicate, True_) and not eval_predicate(
            residual_predicate, row
        ):
            continue
        if all(eval_predicate(j, row) for j in execution.joins):
            results.append(row)
    return results


def _eval_single_column(predicate: Predicate, node: Node, column: int, arity: int) -> bool:
    """Evaluate a single-column clause by placing the node at its column slot."""
    row = tuple(node if i == column else node for i in range(arity))
    # Every literal in the clause references `column` only, so filling the
    # other slots with the same node is sound: they are never inspected.
    return eval_predicate(predicate, row)


def _join_key(
    join: CompareNodes, node: Node, *, left_side: bool
) -> Optional[Tuple]:
    """Hash key of a node under one side of an equi-join clause.

    Leaf targets hash by their data value; internal targets hash by node
    identity (matching the node-equality semantics of Figure 7).
    """
    extractor = join.left_extractor if left_side else join.right_extractor
    target = eval_node_extractor(extractor, node)
    if target is None:
        return None
    if target.is_leaf():
        return ("data", _canonical(target.data))
    return ("node", target.uid)


def _canonical(value):
    if isinstance(value, bool):
        return ("b", value)
    if isinstance(value, (int, float)):
        return ("n", float(value))
    return ("s", value)


def _hash_join(
    partial: List[Dict[int, Node]],
    new_nodes: Sequence[Node],
    new_column: int,
    joins: Sequence[CompareNodes],
) -> List[Dict[int, Node]]:
    """Join partial assignments with a new column on the given equality clauses."""
    # Build the hash index over the new column using the composite key of all
    # applicable join clauses.
    def new_node_key(node: Node) -> Optional[Tuple]:
        parts = []
        for join in joins:
            # If the new column is the right operand of the clause, its key
            # comes from the right extractor; otherwise from the left one.
            on_right = join.right_column == new_column
            key = _join_key(join, node, left_side=not on_right)
            if key is None:
                return None
            parts.append(key)
        return tuple(parts)

    index: Dict[Tuple, List[Node]] = {}
    for node in new_nodes:
        key = new_node_key(node)
        if key is None:
            continue
        index.setdefault(key, []).append(node)

    def partial_key(assignment: Dict[int, Node]) -> Optional[Tuple]:
        parts = []
        for join in joins:
            if join.right_column == new_column:
                bound_node = assignment[join.left_column]
                key = _join_key(join, bound_node, left_side=True)
            else:
                bound_node = assignment[join.right_column]
                key = _join_key(join, bound_node, left_side=False)
            if key is None:
                return None
            parts.append(key)
        return tuple(parts)

    joined: List[Dict[int, Node]] = []
    for assignment in partial:
        key = partial_key(assignment)
        if key is None:
            continue
        for node in index.get(key, []):
            extended = dict(assignment)
            extended[new_column] = node
            joined.append(extended)
    return joined
