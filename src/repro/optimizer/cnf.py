"""Conversion of DSL predicates to conjunctive normal form.

Appendix C of the paper optimizes a synthesized program by converting its
filter predicate φ into a CNF formula φ1 ∧ ... ∧ φm and splitting the clauses
into those that can *guide* table generation (equality comparisons between two
columns, which become join conditions) and the residual clauses that are
applied as a post-filter.

This module provides the CNF conversion.  Since synthesized predicates are
small (the paper reports 2.6 atomic predicates on average), the standard
distributive conversion is perfectly adequate; a safety valve caps the blow-up
and falls back to treating the whole formula as a single opaque clause.
"""

from __future__ import annotations

from typing import List, Sequence

from ..dsl.ast import (
    And,
    CompareConst,
    CompareNodes,
    False_,
    Not,
    Or,
    Predicate,
    True_,
    conjoin,
    disjoin,
)

#: A clause is a disjunction of literals; a literal is an atomic predicate or
#: its negation.  We keep clauses as lists of Predicate literals.
Clause = List[Predicate]


def push_negations(predicate: Predicate) -> Predicate:
    """Negation normal form: push ¬ down to the literals (De Morgan)."""
    if isinstance(predicate, Not):
        inner = predicate.operand
        if isinstance(inner, Not):
            return push_negations(inner.operand)
        if isinstance(inner, And):
            return Or(push_negations(Not(inner.left)), push_negations(Not(inner.right)))
        if isinstance(inner, Or):
            return And(push_negations(Not(inner.left)), push_negations(Not(inner.right)))
        if isinstance(inner, True_):
            return False_()
        if isinstance(inner, False_):
            return True_()
        return predicate  # negated literal
    if isinstance(predicate, And):
        return And(push_negations(predicate.left), push_negations(predicate.right))
    if isinstance(predicate, Or):
        return Or(push_negations(predicate.left), push_negations(predicate.right))
    return predicate


def to_cnf_clauses(predicate: Predicate, *, max_clauses: int = 64) -> List[Clause]:
    """Convert a predicate to a list of CNF clauses (each a list of literals).

    ``True_`` converts to the empty clause list; ``False_`` to a single empty
    clause (unsatisfiable).  If the distributive conversion would exceed
    ``max_clauses`` clauses, the original formula is returned as one opaque
    single-literal clause, which keeps the optimizer semantics-preserving.
    """
    nnf = push_negations(predicate)
    clauses = _cnf(nnf)
    if len(clauses) > max_clauses:
        return [[predicate]]
    return clauses


def _cnf(predicate: Predicate) -> List[Clause]:
    if isinstance(predicate, True_):
        return []
    if isinstance(predicate, False_):
        return [[]]
    if isinstance(predicate, And):
        return _cnf(predicate.left) + _cnf(predicate.right)
    if isinstance(predicate, Or):
        left = _cnf(predicate.left)
        right = _cnf(predicate.right)
        if not left or not right:
            return []
        return [l + r for l in left for r in right]
    return [[predicate]]


def clauses_to_predicate(clauses: Sequence[Clause]) -> Predicate:
    """Rebuild a predicate AST from CNF clauses."""
    if not clauses:
        return True_()
    return conjoin(disjoin(clause) for clause in clauses)


def is_equijoin_clause(clause: Clause) -> bool:
    """Is this clause a single node-equality literal linking two *different* columns?

    Such clauses can be executed as hash joins rather than post-filters
    (Appendix C's prefix-sharing optimization plays the same role).
    """
    if len(clause) != 1:
        return False
    literal = clause[0]
    if not isinstance(literal, CompareNodes):
        return False
    from ..dsl.ast import Op

    return literal.op is Op.EQ and literal.left_column != literal.right_column


def is_single_column_clause(clause: Clause) -> bool:
    """Does every literal of the clause refer to a single, common column?

    Such clauses can be pushed down and applied while scanning that column,
    before any join, shrinking the intermediate result.
    """
    columns = set()
    for literal in clause:
        target = literal.operand if isinstance(literal, Not) else literal
        if isinstance(target, CompareConst):
            columns.add(target.column)
        elif isinstance(target, CompareNodes):
            columns.add(target.left_column)
            columns.add(target.right_column)
        else:
            return False
    return len(columns) == 1


def clause_column(clause: Clause) -> int:
    """The single column referenced by a single-column clause."""
    for literal in clause:
        target = literal.operand if isinstance(literal, Not) else literal
        if isinstance(target, CompareConst):
            return target.column
        if isinstance(target, CompareNodes):
            return target.left_column
    raise ValueError("empty clause has no column")
