"""Program optimization: CNF analysis and cross-product-free execution."""

from .cnf import (
    clause_column,
    clauses_to_predicate,
    is_equijoin_clause,
    is_single_column_clause,
    push_negations,
    to_cnf_clauses,
)
from .optimize import (
    ExecutionPlan,
    TupleProjection,
    execute,
    execute_nodes,
    iter_execute_nodes,
    plan,
)

__all__ = [
    "clause_column",
    "clauses_to_predicate",
    "is_equijoin_clause",
    "is_single_column_clause",
    "push_negations",
    "to_cnf_clauses",
    "ExecutionPlan",
    "TupleProjection",
    "execute",
    "execute_nodes",
    "iter_execute_nodes",
    "plan",
]
