"""Command-line interface: ``python -m repro`` / the ``repro-migrate`` script.

Three subcommands cover the learn/run split that makes synthesized programs
durable artifacts:

* ``learn``   — synthesize a :class:`MigrationPlan` from a spec (cached on
  disk keyed by the spec fingerprint) and optionally save it to a file;
* ``run``     — execute an existing plan on a dataset, no synthesis;
* ``migrate`` — learn (or load from cache) and run in one invocation.

Everything is driven by a JSON *spec file*:

.. code-block:: json

    {
      "format": "json",
      "schema": { "kind": "database_schema", "name": "library", "tables": ["..."] },
      "example_document": "example.json",
      "examples": { "author": [["a1", "Ada Chen", "NZ"]] },
      "document": "full.json",
      "backend": "sqlite",
      "output": "library.db"
    }

or, for the built-in synthetic datasets (demo mode):

.. code-block:: json

    { "dataset": "dblp", "scale": 5, "backend": "sqlite", "output": "dblp.db" }

Relative paths inside the spec resolve against the spec file's directory.
Command-line flags (``--backend``, ``--output``, ``--streaming``, ...)
override the corresponding spec keys.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, Dict, List, Optional, Tuple

from ..codegen.sql_gen import generate_sql_dump
from ..dsl.pretty import pretty_program
from ..dsl.serialize import SerializationError, schema_from_json
from ..hdt.json_plugin import json_file_to_hdt
from ..hdt.tree import HDT
from ..hdt.xml_plugin import xml_file_to_hdt
from ..migration.engine import MigrationError, MigrationSpec, TableExampleSpec
from ..relational.database import IntegrityError
from ..relational.schema import SchemaError
from .executor import ExecutionBackend, ExecutionReport, MemoryBackend, execute_plan
from .plan import MigrationPlan
from .plan_cache import DEFAULT_CACHE_DIR, PlanCache
from .sqlite_backend import SQLiteBackend, SQLiteBackendError
from .streaming import (
    DEFAULT_CHUNK_SIZE,
    iter_json_chunks,
    iter_tree_chunks,
    iter_xml_chunks,
    stream_execute,
)


class CLIError(Exception):
    """A user-facing error: printed to stderr, exit code 1."""


# --------------------------------------------------------------------------- #
# Spec loading
# --------------------------------------------------------------------------- #


class Spec:
    """A parsed spec file plus the directory its relative paths resolve in."""

    def __init__(self, payload: Dict[str, Any], base_dir: str) -> None:
        self.payload = payload
        self.base_dir = base_dir
        self._bundle = None
        self.default_format: Optional[str] = None
        """Fallback format when the spec omits one — set from a loaded plan's
        ``source_format`` so ``run --plan`` specs need not repeat it."""

    @staticmethod
    def load(path: str) -> "Spec":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except OSError as error:
            raise CLIError(f"cannot read spec file: {error}")
        except json.JSONDecodeError as error:
            raise CLIError(f"spec file is not valid JSON: {error}")
        if not isinstance(payload, dict):
            raise CLIError("spec file must contain a JSON object")
        return Spec(payload, os.path.dirname(os.path.abspath(path)))

    def resolve(self, path: str) -> str:
        return path if os.path.isabs(path) else os.path.join(self.base_dir, path)

    def get(self, key: str, default: Any = None) -> Any:
        return self.payload.get(key, default)

    def get_int(self, key: str, default: int) -> int:
        value = self.get(key, default)
        try:
            return int(value)
        except (TypeError, ValueError):
            raise CLIError(f'spec key "{key}" must be an integer (got {value!r})')

    # ------------------------------------------------------------- datasets
    @property
    def dataset_bundle(self):
        """The built-in dataset bundle when the spec uses demo mode."""
        if self._bundle is None and self.get("dataset"):
            from .. import datasets

            name = str(self.get("dataset")).lower()
            modules = {
                "dblp": datasets.dblp,
                "imdb": datasets.imdb,
                "mondial": datasets.mondial,
                "yelp": datasets.yelp,
            }
            if name not in modules:
                raise CLIError(
                    f"unknown dataset {name!r} (available: {', '.join(sorted(modules))})"
                )
            self._bundle = modules[name].dataset(scale=self.get_int("scale", 5))
        return self._bundle

    @property
    def format(self) -> str:
        if self.dataset_bundle is not None:
            return self.dataset_bundle.format
        fmt = self.get("format") or self.default_format
        if fmt not in {"xml", "json"}:
            raise CLIError('spec key "format" must be "xml" or "json"')
        return fmt

    # ------------------------------------------------------------ migration
    def migration_spec(self) -> MigrationSpec:
        if self.dataset_bundle is not None:
            return self.dataset_bundle.migration_spec()
        for key in ("schema", "example_document", "examples"):
            if not self.get(key):
                raise CLIError(f'spec is missing required key "{key}"')
        schema = schema_from_json(self.get("schema"))
        example_tree = self._load_document(self.resolve(self.get("example_document")))
        examples = [
            TableExampleSpec(table=name, rows=[tuple(row) for row in rows])
            for name, rows in self.get("examples").items()
        ]
        return MigrationSpec(schema=schema, example_tree=example_tree, table_examples=examples)

    def _load_document(self, path: str) -> HDT:
        if not os.path.exists(path):
            raise CLIError(f"document not found: {path}")
        if self.format == "xml":
            return xml_file_to_hdt(path)
        return json_file_to_hdt(path)

    def full_document(self) -> HDT:
        """The full dataset as a materialized tree (whole-tree mode)."""
        if self.get("document"):
            return self._load_document(self.resolve(self.get("document")))
        if self.dataset_bundle is not None:
            return self.dataset_bundle.generate(self.get_int("scale", 5))
        raise CLIError('spec is missing required key "document"')

    def document_chunks(self, chunk_size: int):
        """The full dataset as a bounded-memory chunk stream."""
        if self.get("document"):
            path = self.resolve(self.get("document"))
            if not os.path.exists(path):
                raise CLIError(f"document not found: {path}")
            if self.format == "xml":
                return iter_xml_chunks(path, chunk_size)
            return iter_json_chunks(path, chunk_size)
        if self.dataset_bundle is not None:
            return iter_tree_chunks(
                self.dataset_bundle.generate(self.get_int("scale", 5)), chunk_size
            )
        raise CLIError('spec is missing required key "document"')


# --------------------------------------------------------------------------- #
# Plan acquisition
# --------------------------------------------------------------------------- #


def _acquire_plan(args, spec: Spec, *, allow_learn: bool) -> Tuple[MigrationPlan, str]:
    """Load or learn the plan; returns (plan, provenance-description)."""
    if getattr(args, "plan", None):
        try:
            return MigrationPlan.load(args.plan), f"loaded from {args.plan}"
        except OSError as error:
            raise CLIError(f"cannot read plan file: {error}")
        except (json.JSONDecodeError, KeyError, TypeError, SerializationError, SchemaError) as error:
            raise CLIError(f"plan file {args.plan} is not a valid migration plan: {error}")
    if not allow_learn:
        raise CLIError("run requires --plan (use `migrate` to learn and run at once)")
    migration_spec = spec.migration_spec()
    jobs = getattr(args, "jobs", None)
    if jobs is None:
        jobs = spec.get_int("jobs", 1)
    if jobs < 0:
        raise CLIError(f"--jobs must be >= 0 (got {jobs})")
    cache_dir = args.cache_dir or spec.get("cache_dir", DEFAULT_CACHE_DIR)
    if args.incremental or spec.get("incremental"):
        return _learn_incrementally(args, spec, migration_spec, jobs, cache_dir)
    if args.no_cache:
        plan = MigrationPlan.learn(migration_spec, jobs=jobs)
        plan.source_format = spec.format
        return plan, "synthesized (cache disabled)"
    cache = PlanCache(cache_dir)
    cached = cache.load(migration_spec)
    if cached is not None:
        return cached, f"cache hit ({cache.path_for(cached.metadata.get('spec_fingerprint', '?'))})"
    plan = MigrationPlan.learn(migration_spec, jobs=jobs)
    plan.source_format = spec.format
    path = cache.store(migration_spec, plan)
    return plan, f"synthesized and cached ({path})"


def _learn_incrementally(
    args, spec: Spec, migration_spec, jobs: int, cache_dir: str
) -> Tuple[MigrationPlan, str]:
    """The ``--incremental`` path: diff against the context store and reuse.

    The context store replaces the all-or-nothing plan cache here — an exact
    re-learn reuses every table (zero synthesis), an edited spec reuses the
    unaffected ones.  The per-table reuse report is printed line by line so
    the cache hits are visible.
    """
    from .context_store import ContextStore
    from .incremental import learn_incremental

    directory = (
        getattr(args, "context_cache", None)
        or spec.get("context_cache")
        or os.path.join(cache_dir, "context")
    )
    store = ContextStore(directory)
    plan, report = learn_incremental(migration_spec, store, jobs=jobs)
    plan.source_format = spec.format
    print(report.describe())
    synthesized = len(report.tables_synthesized)
    if synthesized == 0:
        provenance = "incremental (everything reused)"
    else:
        provenance = (
            f"incremental ({synthesized}/{report.tables_total} tables synthesized)"
        )
    return plan, f"{provenance}, store: {directory}"


def _make_backend(args, spec: Spec) -> Tuple[ExecutionBackend, Optional[str]]:
    backend_name = args.backend or spec.get("backend", "memory")
    if backend_name == "memory":
        return MemoryBackend(), None
    if backend_name == "sqlite":
        output = args.output or spec.get("output")
        if output is None:
            raise CLIError('the sqlite backend needs an output path ("--output" or spec "output")')
        output = spec.resolve(output)
        if os.path.exists(output):
            if not args.force:
                raise CLIError(f"output {output} already exists (use --force to overwrite)")
            os.remove(output)
        return SQLiteBackend(output), output
    raise CLIError(f"unknown backend {backend_name!r} (available: memory, sqlite)")


def _execute(args, spec: Spec, plan: MigrationPlan) -> Tuple[ExecutionReport, Optional[str]]:
    if plan.source_format and not spec.get("format") and not spec.get("dataset"):
        spec.default_format = plan.source_format
    streaming = args.streaming or bool(spec.get("streaming"))
    if not streaming and (args.chunk_size is not None or args.workers is not None):
        raise CLIError("--chunk-size and --workers only apply with --streaming")
    backend, output = _make_backend(args, spec)
    try:
        if streaming:
            chunk_size = (
                args.chunk_size
                if args.chunk_size is not None
                else spec.get_int("chunk_size", DEFAULT_CHUNK_SIZE)
            )
            if chunk_size <= 0:
                raise CLIError(f"--chunk-size must be positive (got {chunk_size})")
            workers = args.workers if args.workers is not None else spec.get_int("workers", 0)
            report = stream_execute(
                plan, spec.document_chunks(chunk_size), backend, workers=workers
            )
        else:
            report = execute_plan(plan, spec.full_document(), backend)
    except Exception:
        # Never leave a partial output database behind: close the connection
        # (releasing -wal/-shm siblings) and remove the incomplete file.
        if isinstance(backend, SQLiteBackend):
            backend.close()
            if output and os.path.exists(output):
                os.remove(output)
        raise
    if isinstance(backend, SQLiteBackend):
        sql_dump = args.sql_dump or spec.get("sql_dump")
        if sql_dump:
            with open(spec.resolve(sql_dump), "w", encoding="utf-8") as handle:
                handle.write(backend.dump())
        backend.close()
    elif isinstance(backend, MemoryBackend):
        sql_dump = args.sql_dump or spec.get("sql_dump")
        if sql_dump and backend.database is not None:
            with open(spec.resolve(sql_dump), "w", encoding="utf-8") as handle:
                handle.write(generate_sql_dump(backend.database))
    return report, output


def _print_report(report: ExecutionReport, output: Optional[str]) -> None:
    for table, count in report.per_table_rows.items():
        print(f"  {table:28} {count:>10}")
    chunk_note = f" over {report.chunks} chunk(s)" if report.chunks > 1 else ""
    print(
        f"loaded {report.total_rows} rows in {report.execution_time:.2f}s{chunk_note}"
    )
    if output:
        print(f"database written to {output}")


# --------------------------------------------------------------------------- #
# Subcommands
# --------------------------------------------------------------------------- #


def _cmd_learn(args) -> int:
    spec = Spec.load(args.spec)
    start = time.perf_counter()
    plan, provenance = _acquire_plan(args, spec, allow_learn=True)
    elapsed = time.perf_counter() - start
    print(f"plan: {provenance} in {elapsed:.2f}s")
    for table_schema in plan.execution_order():
        table_plan = plan.table_plan(table_schema.name)
        print(f"  {table_schema.name}: {pretty_program(table_plan.program)}")
    if args.plan_out:
        plan.save(args.plan_out)
        print(f"plan saved to {args.plan_out}")
    return 0


def _cmd_run(args) -> int:
    spec = Spec.load(args.spec)
    plan, provenance = _acquire_plan(args, spec, allow_learn=False)
    print(f"plan: {provenance}")
    report, output = _execute(args, spec, plan)
    _print_report(report, output)
    return 0


def _cmd_migrate(args) -> int:
    spec = Spec.load(args.spec)
    start = time.perf_counter()
    plan, provenance = _acquire_plan(args, spec, allow_learn=True)
    print(f"plan: {provenance} in {time.perf_counter() - start:.2f}s")
    report, output = _execute(args, spec, plan)
    _print_report(report, output)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Learn-once/run-many migration of hierarchical data to "
        "relational tables (Mitra, VLDB 2018). A JSON spec file names the "
        "target schema, an example document and per-table example rows; "
        "`learn` synthesizes a durable migration plan from them, `run` "
        "executes a plan against full datasets, `migrate` does both.",
        epilog="Spec-file format, incremental learning and recipes: docs/cli.md",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--spec", required=True, help="path to the JSON spec file")
        sub.add_argument("--plan", help="path to an existing plan JSON (skips synthesis)")
        sub.add_argument("--no-cache", action="store_true", help="bypass the plan cache")
        sub.add_argument("--cache-dir", help="plan cache directory (default: .repro-cache)")
        sub.add_argument(
            "--jobs",
            type=int,
            help="parallel per-table synthesis processes (0 = CPU count, default 1)",
        )
        sub.add_argument(
            "--incremental",
            action="store_true",
            help="reuse persisted synthesis state across spec edits: diff the "
            "spec against the context store and re-synthesize only the "
            "affected tables",
        )
        sub.add_argument(
            "--context-cache",
            help="context store directory for --incremental "
            "(default: <cache-dir>/context)",
        )

    def add_execution(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--backend", choices=["memory", "sqlite"], help="storage backend")
        sub.add_argument("--output", help="output database path (sqlite backend)")
        sub.add_argument("--force", action="store_true", help="overwrite an existing output file")
        sub.add_argument("--sql-dump", help="also write a SQL dump to this path")
        sub.add_argument(
            "--streaming", action="store_true", help="chunked bounded-memory execution"
        )
        sub.add_argument("--chunk-size", type=int, help="records per chunk (streaming)")
        sub.add_argument(
            "--workers", type=int, help="multiprocessing fan-out across chunks (streaming)"
        )

    learn = subparsers.add_parser(
        "learn",
        help="synthesize and save a migration plan "
        "(--incremental reuses state across spec edits)",
    )
    add_common(learn)
    learn.add_argument("--plan-out", help="write the learned plan to this file")
    learn.set_defaults(handler=_cmd_learn)

    run = subparsers.add_parser("run", help="execute an existing plan (no synthesis)")
    add_common(run)
    add_execution(run)
    run.set_defaults(handler=_cmd_run)

    migrate = subparsers.add_parser("migrate", help="learn (or load cached) and run")
    add_common(migrate)
    add_execution(migrate)
    migrate.set_defaults(handler=_cmd_migrate)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except (
        CLIError,
        MigrationError,
        IntegrityError,
        SQLiteBackendError,
        SerializationError,
        SchemaError,
    ) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
