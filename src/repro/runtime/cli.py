"""Command-line interface: ``python -m repro`` / the ``repro-migrate`` script.

Six subcommands cover the learn/run split that makes synthesized programs
durable artifacts, plus the operational surface around it:

* ``learn``   — synthesize a :class:`MigrationPlan` from a spec (cached on
  disk keyed by the spec fingerprint) and optionally save it to a file;
* ``run``     — execute an existing plan on a dataset, no synthesis;
* ``migrate`` — learn (or load from cache) and run in one invocation;
* ``verify``  — re-check a finished target: row counts, primary-key and
  foreign-key integrity (``docs/service.md``);
* ``serve``   — the migration service daemon: an HTTP/JSON job API with
  resumable, dry-runnable, verifiable jobs (``docs/service.md``);
* ``worker``  — a remote shard executor: sharded runs fan out to worker
  processes over TCP/Unix sockets with ``--remote-workers``
  (``docs/distributed.md``).

``run`` and ``migrate`` also take ``--dry-run`` (count rows, write nothing),
``--report-json`` (machine-readable execution report), and — for sharded
execution — ``--checkpoint-dir``/``--resume`` to restart an interrupted run
at the first unfinished shard.

Everything is driven by a JSON *spec file*:

.. code-block:: json

    {
      "format": "json",
      "schema": { "kind": "database_schema", "name": "library", "tables": ["..."] },
      "example_document": "example.json",
      "examples": { "author": [["a1", "Ada Chen", "NZ"]] },
      "document": "full.json",
      "backend": "sqlite",
      "output": "library.db"
    }

or, for the built-in synthetic datasets (demo mode):

.. code-block:: json

    { "dataset": "dblp", "scale": 5, "backend": "sqlite", "output": "dblp.db" }

Relative paths inside the spec resolve against the spec file's directory.
Command-line flags (``--backend``, ``--output``, ``--streaming``, ...)
override the corresponding spec keys.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import time
from typing import Any, Dict, List, Optional, Tuple

from ..codegen.sql_gen import generate_sql_dump
from ..dsl.pretty import pretty_program
from ..dsl.serialize import SerializationError, schema_from_json
from ..hdt.json_plugin import json_file_to_hdt
from ..hdt.tree import HDT
from ..hdt.xml_plugin import xml_file_to_hdt
from ..migration.engine import MigrationError, MigrationSpec, TableExampleSpec
from ..relational.database import IntegrityError
from ..relational.schema import SchemaError
from .backends import (
    BACKEND_NAMES,
    OUTPUT_KIND,
    ColumnarBackend,
    ColumnarBackendError,
    DuckDBBackend,
    DuckDBBackendError,
    ExecutionBackend,
    MemoryBackend,
    SQLiteBackend,
    SQLiteBackendError,
    create_backend,
)
from .backends.columnar import FILE_FORMATS
from .backends.null import NullBackend
from .executor import ExecutionReport, execute_plan
from .faults import FaultError, resolve_plan
from .plan import MigrationPlan
from .plan_cache import DEFAULT_CACHE_DIR, PlanCache
from .service.checkpoint import ShardCheckpoint
from .sharded import ShardDegradedError, ShardError, TreeSource, shard_execute
from .sharded import shard_source as make_shard_source
from .supervisor import RetryPolicy
from .transport import SocketTransport, TransportError
from .verify import (
    VerificationError,
    read_target_indexes,
    read_target_rows,
    verify_rows,
)
from .streaming import (
    DEFAULT_CHUNK_SIZE,
    iter_json_chunks,
    iter_tree_chunks,
    iter_xml_chunks,
    stream_execute,
)


class CLIError(Exception):
    """A user-facing error: printed to stderr, exit code 1."""


# --------------------------------------------------------------------------- #
# Spec loading
# --------------------------------------------------------------------------- #


class Spec:
    """A parsed spec file plus the directory its relative paths resolve in."""

    def __init__(self, payload: Dict[str, Any], base_dir: str) -> None:
        self.payload = payload
        self.base_dir = base_dir
        self._bundle = None
        self.default_format: Optional[str] = None
        """Fallback format when the spec omits one — set from a loaded plan's
        ``source_format`` so ``run --plan`` specs need not repeat it."""

    @staticmethod
    def load(path: str) -> "Spec":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except OSError as error:
            raise CLIError(f"cannot read spec file: {error}")
        except json.JSONDecodeError as error:
            raise CLIError(f"spec file is not valid JSON: {error}")
        if not isinstance(payload, dict):
            raise CLIError("spec file must contain a JSON object")
        return Spec(payload, os.path.dirname(os.path.abspath(path)))

    def resolve(self, path: str) -> str:
        return path if os.path.isabs(path) else os.path.join(self.base_dir, path)

    def get(self, key: str, default: Any = None) -> Any:
        return self.payload.get(key, default)

    def get_int(self, key: str, default: int) -> int:
        value = self.get(key, default)
        try:
            return int(value)
        except (TypeError, ValueError):
            raise CLIError(f'spec key "{key}" must be an integer (got {value!r})')

    # ------------------------------------------------------------- datasets
    @property
    def dataset_bundle(self):
        """The built-in dataset bundle when the spec uses demo mode."""
        if self._bundle is None and self.get("dataset"):
            from .. import datasets

            name = str(self.get("dataset")).lower()
            modules = {
                "dblp": datasets.dblp,
                "imdb": datasets.imdb,
                "mondial": datasets.mondial,
                "yelp": datasets.yelp,
            }
            if name not in modules:
                raise CLIError(
                    f"unknown dataset {name!r} (available: {', '.join(sorted(modules))})"
                )
            self._bundle = modules[name].dataset(scale=self.get_int("scale", 5))
        return self._bundle

    @property
    def format(self) -> str:
        if self.dataset_bundle is not None:
            return self.dataset_bundle.format
        fmt = self.get("format") or self.default_format
        if fmt not in {"xml", "json"}:
            raise CLIError('spec key "format" must be "xml" or "json"')
        return fmt

    # ------------------------------------------------------------ migration
    def migration_spec(self) -> MigrationSpec:
        if self.dataset_bundle is not None:
            return self.dataset_bundle.migration_spec()
        for key in ("schema", "example_document", "examples"):
            if not self.get(key):
                raise CLIError(f'spec is missing required key "{key}"')
        schema = schema_from_json(self.get("schema"))
        example_tree = self._load_document(self.resolve(self.get("example_document")))
        examples = [
            TableExampleSpec(table=name, rows=[tuple(row) for row in rows])
            for name, rows in self.get("examples").items()
        ]
        return MigrationSpec(schema=schema, example_tree=example_tree, table_examples=examples)

    def _document_path(self, allow_directory: bool = False) -> str:
        path = self.resolve(self.get("document"))
        if not os.path.exists(path):
            raise CLIError(f"document not found: {path}")
        if not allow_directory and os.path.isdir(path):
            raise CLIError(
                f"document {path} is a directory — directories execute "
                f"shard-by-shard (use --shards)"
            )
        return path

    def _load_document(self, path: str) -> HDT:
        if not os.path.exists(path):
            raise CLIError(f"document not found: {path}")
        if os.path.isdir(path):
            raise CLIError(f"document {path} is a directory, expected a file")
        if self.format == "xml":
            return xml_file_to_hdt(path)
        return json_file_to_hdt(path)

    def full_document(self) -> HDT:
        """The full dataset as a materialized tree (whole-tree mode)."""
        if self.get("document"):
            return self._load_document(self._document_path())
        if self.dataset_bundle is not None:
            return self.dataset_bundle.generate(self.get_int("scale", 5))
        raise CLIError('spec is missing required key "document"')

    def document_chunks(self, chunk_size: int):
        """The full dataset as a bounded-memory chunk stream."""
        if self.get("document"):
            path = self._document_path()
            if self.format == "xml":
                return iter_xml_chunks(path, chunk_size)
            return iter_json_chunks(path, chunk_size)
        if self.dataset_bundle is not None:
            return iter_tree_chunks(
                self.dataset_bundle.generate(self.get_int("scale", 5)), chunk_size
            )
        raise CLIError('spec is missing required key "document"')

    def sharded_source(self):
        """The full dataset as a :class:`~repro.runtime.sharded.ShardSource`.

        A document path may name a single XML/JSON file *or a directory* of
        documents (sharded execution is the one mode that accepts
        directories); demo-mode datasets shard their materialized tree.
        """
        if self.get("document"):
            path = self._document_path(allow_directory=True)
            try:
                fmt: Optional[str] = self.format
            except CLIError:
                fmt = None  # let shard_source infer from file extensions
            try:
                return make_shard_source(path, fmt)
            except ShardError as error:
                raise CLIError(str(error))
        if self.dataset_bundle is not None:
            return TreeSource(self.dataset_bundle.generate(self.get_int("scale", 5)))
        raise CLIError('spec is missing required key "document"')


# --------------------------------------------------------------------------- #
# Plan acquisition
# --------------------------------------------------------------------------- #


def _acquire_plan(args, spec: Spec, *, allow_learn: bool) -> Tuple[MigrationPlan, str]:
    """Load or learn the plan; returns (plan, provenance-description)."""
    if getattr(args, "plan", None):
        try:
            return MigrationPlan.load(args.plan), f"loaded from {args.plan}"
        except OSError as error:
            raise CLIError(f"cannot read plan file: {error}")
        except (json.JSONDecodeError, KeyError, TypeError, SerializationError, SchemaError) as error:
            raise CLIError(f"plan file {args.plan} is not a valid migration plan: {error}")
    if not allow_learn:
        raise CLIError("run requires --plan (use `migrate` to learn and run at once)")
    migration_spec = spec.migration_spec()
    jobs = getattr(args, "jobs", None)
    if jobs is None:
        jobs = spec.get_int("jobs", 1)
    if jobs < 0:
        raise CLIError(f"--jobs must be >= 0 (got {jobs})")
    cache_dir = args.cache_dir or spec.get("cache_dir", DEFAULT_CACHE_DIR)
    if args.incremental or spec.get("incremental"):
        return _learn_incrementally(args, spec, migration_spec, jobs, cache_dir)
    if args.no_cache:
        plan = _learn_plan(args, migration_spec, jobs)
        plan.source_format = spec.format
        return plan, "synthesized (cache disabled)"
    cache = PlanCache(cache_dir)
    cached = cache.load(migration_spec)
    if cached is not None:
        return cached, f"cache hit ({cache.path_for(cached.metadata.get('spec_fingerprint', '?'))})"
    plan = _learn_plan(args, migration_spec, jobs)
    plan.source_format = spec.format
    path = cache.store(migration_spec, plan)
    return plan, f"synthesized and cached ({path})"


def _learn_plan(args, migration_spec, jobs: int) -> MigrationPlan:
    """Synthesize a fresh plan; ``--verbose`` prints per-table diagnostics.

    The diagnostics come from :class:`~repro.synthesis.synthesizer.SynthesisStats`
    — universe size per candidate ψ, per-phase wall-clock (universe /
    bitmatrix / cover) and candidate-cache hit rates — and are printed before
    the plan summary so slow tables are attributable to a phase.
    """
    if not getattr(args, "verbose", False):
        return MigrationPlan.learn(migration_spec, jobs=jobs)
    from ..migration.engine import MigrationEngine

    engine = MigrationEngine(jobs=jobs)
    programs, _ = engine.learn(migration_spec)
    for name in sorted(programs):
        stats = programs[name].synthesis.stats
        if stats is None:
            continue
        print(f"synthesis diagnostics for {name}:")
        for line in stats.describe().splitlines():
            print(f"  {line}")
    return MigrationPlan.from_programs(migration_spec.schema, programs)


def _learn_incrementally(
    args, spec: Spec, migration_spec, jobs: int, cache_dir: str
) -> Tuple[MigrationPlan, str]:
    """The ``--incremental`` path: diff against the context store and reuse.

    The context store replaces the all-or-nothing plan cache here — an exact
    re-learn reuses every table (zero synthesis), an edited spec reuses the
    unaffected ones.  The per-table reuse report is printed line by line so
    the cache hits are visible.
    """
    from .context_store import ContextStore
    from .incremental import learn_incremental

    directory = (
        getattr(args, "context_cache", None)
        or spec.get("context_cache")
        or os.path.join(cache_dir, "context")
    )
    store = ContextStore(directory)
    plan, report = learn_incremental(migration_spec, store, jobs=jobs)
    plan.source_format = spec.format
    print(report.describe())
    synthesized = len(report.tables_synthesized)
    if synthesized == 0:
        provenance = "incremental (everything reused)"
    else:
        provenance = (
            f"incremental ({synthesized}/{report.tables_total} tables synthesized)"
        )
    return plan, f"{provenance}, store: {directory}"


def _shards_value(value: str):
    """``--shards`` / spec ``"shards"``: a positive integer or ``"auto"``."""
    text = str(value).strip()
    if text.lower() == "auto":
        return "auto"
    try:
        return int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f'expected an integer or "auto" (got {value!r})'
        ) from None


def _execution_mode(args, spec: Spec) -> Tuple[str, Any]:
    """Resolve (and validate) the execution mode: how the document is walked.

    Returns ``("whole-tree" | "streaming" | "sharded", shards)`` where
    ``shards`` is an integer or ``"auto"`` (sized from the record count,
    core count and chunk size at execution time).  The three modes are
    mutually exclusive; conflicting flag combinations are usage errors,
    never silently reinterpreted.  CLI flags override spec keys.
    """
    if args.streaming and args.no_stream:
        raise CLIError("--streaming conflicts with --no-stream: pick one")
    if args.shards is not None:
        if args.shards != "auto" and args.shards < 1:
            raise CLIError(f'--shards must be >= 1 or "auto" (got {args.shards})')
        if args.no_stream:
            raise CLIError(
                "--shards executes the document in chunks by construction; "
                "it conflicts with --no-stream"
            )
        if args.streaming:
            raise CLIError(
                "--streaming and --shards are different execution modes: pick one"
            )
        mode: Tuple[str, Any] = ("sharded", args.shards)
    elif args.streaming:
        mode = ("streaming", 0)
    elif args.no_stream:
        mode = ("whole-tree", 0)
    else:
        raw_spec_shards = spec.get("shards")
        spec_shards = (
            "auto"
            if isinstance(raw_spec_shards, str) and raw_spec_shards.strip().lower() == "auto"
            else spec.get_int("shards", 0)
        )
        spec_streaming = bool(spec.get("streaming"))
        if spec_shards and spec_streaming:
            raise CLIError(
                'spec keys "streaming" and "shards" conflict: keep one '
                "(or override with --streaming / --shards / --no-stream)"
            )
        if spec_shards != "auto" and spec_shards < 0:
            raise CLIError(f'spec key "shards" must be >= 1 (got {spec_shards})')
        if spec_shards:
            mode = ("sharded", spec_shards)
        elif spec_streaming:
            mode = ("streaming", 0)
        else:
            mode = ("whole-tree", 0)
    if mode[0] == "whole-tree" and (args.chunk_size is not None or args.workers is not None):
        raise CLIError("--chunk-size and --workers only apply with --streaming or --shards")
    if mode[0] != "sharded":
        for flag, value in (
            ("--shard-timeout", getattr(args, "shard_timeout", None)),
            ("--shard-retries", getattr(args, "shard_retries", None)),
            ("--inject-faults", getattr(args, "inject_faults", None)),
            ("--remote-workers", getattr(args, "remote_workers", None)),
        ):
            if value is not None:
                raise CLIError(f"{flag} only applies to sharded execution (add --shards N)")
    if getattr(args, "remote_workers", None) is not None and args.workers is not None:
        raise CLIError(
            "--remote-workers replaces the local worker pool; "
            "it conflicts with --workers"
        )
    return mode


def _prepare_output(output: str, kind: str, force: bool) -> None:
    """Enforce the overwrite policy for a backend's output artifact.

    ``--force`` removes the previous artifact entirely (file or directory
    contents), so a rerun can never leave stale tables from an earlier run
    next to the new output.
    """
    if not os.path.exists(output):
        return
    if kind == "file":
        if os.path.isdir(output):
            raise CLIError(f"output {output} is a directory, expected a file path")
        if not force:
            raise CLIError(f"output {output} already exists (use --force to overwrite)")
        os.remove(output)
        return
    if not os.path.isdir(output):
        raise CLIError(f"output {output} exists and is not a directory")
    if os.listdir(output):
        if not force:
            raise CLIError(
                f"output directory {output} is not empty (use --force to overwrite)"
            )
        shutil.rmtree(output)


def _make_backend(args, spec: Spec) -> Tuple[ExecutionBackend, Optional[str], bool]:
    """Build the storage backend; returns ``(backend, output, owns_output)``.

    ``owns_output`` is true when the output artifact does not exist once the
    overwrite policy has run (we are about to create it, or ``--force`` just
    removed its predecessor) — the failure cleanup may delete the whole
    artifact only in that case, never a pre-existing user directory.

    ``--dry-run`` short-circuits everything: the plan executes into the
    counting :class:`NullBackend`, so spec ``backend``/``output`` keys are
    ignored and the conflicting *flags* are usage errors.
    """
    if getattr(args, "dry_run", False):
        conflicting = [
            flag
            for flag, value in (
                ("--backend", args.backend),
                ("--output", args.output),
                ("--sql-dump", args.sql_dump),
            )
            if value
        ]
        if conflicting:
            raise CLIError(
                f"--dry-run writes nothing — it conflicts with "
                f"{', '.join(conflicting)}"
            )
        return NullBackend(), None, False
    backend_name = args.backend or spec.get("backend", "memory")
    if backend_name not in BACKEND_NAMES:
        raise CLIError(
            f"unknown backend {backend_name!r} (available: {', '.join(BACKEND_NAMES)})"
        )
    file_format = getattr(args, "columnar_format", None) or spec.get("columnar_format")
    if file_format and backend_name != "columnar":
        raise CLIError(
            f"--columnar-format only applies to the columnar backend "
            f"(got --backend {backend_name})"
        )
    output = args.output or spec.get("output")
    output_kind = OUTPUT_KIND[backend_name]
    if output_kind is None and output is not None:
        raise CLIError(
            "the memory backend produces no output artifact — drop "
            '--output / spec "output", or pick --backend sqlite/columnar/duckdb'
        )
    if output_kind is not None and output is None:
        noun = "database path" if output_kind == "file" else "directory"
        raise CLIError(
            f'the {backend_name} backend needs an output {noun} '
            f'("--output" or spec "output")'
        )
    options = {"file_format": file_format} if file_format else {}
    owns_output = False
    if output is not None:
        output = spec.resolve(output)
        _prepare_output(output, output_kind, args.force)
        owns_output = not os.path.exists(output)
    try:
        return create_backend(backend_name, output, **options), output, owns_output
    except (ValueError, ColumnarBackendError, DuckDBBackendError) as error:
        raise CLIError(str(error))


def _execute(args, spec: Spec, plan: MigrationPlan) -> Tuple[ExecutionReport, Optional[str]]:
    if plan.source_format and not spec.get("format") and not spec.get("dataset"):
        spec.default_format = plan.source_format
    mode, shards = _execution_mode(args, spec)
    dry_run = bool(getattr(args, "dry_run", False))
    checkpoint_dir = getattr(args, "checkpoint_dir", None) or spec.get("checkpoint_dir")
    resume = bool(getattr(args, "resume", False))
    if resume and not checkpoint_dir:
        raise CLIError(
            "--resume needs --checkpoint-dir (the directory the interrupted "
            "run checkpointed into)"
        )
    if checkpoint_dir and mode != "sharded":
        raise CLIError(
            "--checkpoint-dir/--resume only apply to sharded execution "
            "(add --shards N)"
        )
    if resume:
        # The interrupted run may have left a partial target; the reduce
        # always restarts from the checkpointed spills, so overwrite it.
        args.force = True
    backend, output, owns_output = _make_backend(args, spec)
    sql_dump = None if dry_run else (args.sql_dump or spec.get("sql_dump"))
    if sql_dump and isinstance(backend, (ColumnarBackend, DuckDBBackend)):
        raise CLIError(
            "--sql-dump only applies to the memory and sqlite backends "
            f"(got --backend {'columnar' if isinstance(backend, ColumnarBackend) else 'duckdb'})"
        )
    chunk_size = (
        args.chunk_size
        if args.chunk_size is not None
        else spec.get_int("chunk_size", DEFAULT_CHUNK_SIZE)
    )
    if mode != "whole-tree" and chunk_size <= 0:
        raise CLIError(f"--chunk-size must be positive (got {chunk_size})")
    try:
        if mode == "sharded":
            if args.workers is not None:
                workers: Optional[int] = args.workers
            elif spec.get("workers") is not None:
                workers = spec.get_int("workers", 0)
            else:
                workers = None  # default: one process per shard, up to CPU count
            checkpoint = (
                ShardCheckpoint(spec.resolve(str(checkpoint_dir)))
                if checkpoint_dir
                else None
            )
            shard_retries = getattr(args, "shard_retries", None)
            if shard_retries is None:
                shard_retries = spec.get("shard_retries")
            if shard_retries is not None:
                shard_retries = int(shard_retries)
                if shard_retries < 0:
                    raise CLIError(f"--shard-retries must be >= 0 (got {shard_retries})")
            shard_timeout = getattr(args, "shard_timeout", None)
            if shard_timeout is None:
                shard_timeout = spec.get("shard_timeout")
            if shard_timeout is not None:
                shard_timeout = float(shard_timeout)
                if shard_timeout <= 0:
                    raise CLIError(f"--shard-timeout must be positive (got {shard_timeout})")
            try:
                fault_plan = resolve_plan(getattr(args, "inject_faults", None))
            except FaultError as error:
                raise CLIError(f"--inject-faults: {error}")
            remote_workers = getattr(args, "remote_workers", None)
            if remote_workers is None:
                remote_workers = spec.get("remote_workers")
            transport = None
            if remote_workers:
                if isinstance(remote_workers, str):
                    addresses = [
                        piece.strip()
                        for piece in remote_workers.split(",")
                        if piece.strip()
                    ]
                else:
                    addresses = [str(piece) for piece in remote_workers]
                if not addresses:
                    raise CLIError("--remote-workers needs at least one address")
                transport = SocketTransport(addresses)
            try:
                report = shard_execute(
                    plan,
                    spec.sharded_source(),
                    backend,
                    shards=shards,
                    chunk_size=chunk_size,
                    workers=workers,
                    checkpoint=checkpoint,
                    resume=resume,
                    retry_policy=(
                        RetryPolicy(max_attempts=shard_retries + 1)
                        if shard_retries is not None
                        else None
                    ),
                    shard_timeout=shard_timeout,
                    faults=fault_plan,
                    transport=transport,
                )
            finally:
                if transport is not None:
                    transport.close()
        elif mode == "streaming":
            workers = args.workers if args.workers is not None else spec.get_int("workers", 0)
            report = stream_execute(
                plan, spec.document_chunks(chunk_size), backend, workers=workers
            )
        else:
            report = execute_plan(plan, spec.full_document(), backend)
    except Exception:
        # Never leave a partial output behind: close the connection
        # (releasing -wal/-shm siblings) and remove the incomplete file, or
        # drop the half-filled columnar output so a retry is not blocked.
        # A directory we did not create is preserved — only the files this
        # run would have written inside it are removed.
        if isinstance(backend, (SQLiteBackend, DuckDBBackend)):
            backend.close()
            if output and os.path.exists(output):
                os.remove(output)
            if output and os.path.exists(output + ".wal"):
                os.remove(output + ".wal")  # duckdb write-ahead log sibling
        elif isinstance(backend, ColumnarBackend) and output:
            backend.close()  # abort: seal/remove this run's partial files
            if owns_output:
                shutil.rmtree(output, ignore_errors=True)
            elif os.path.isdir(output):
                for name in backend.output_filenames():
                    try:
                        os.remove(os.path.join(output, name))
                    except OSError:
                        pass
        raise
    report.dry_run = dry_run
    if isinstance(backend, SQLiteBackend):
        if sql_dump:
            with open(spec.resolve(sql_dump), "w", encoding="utf-8") as handle:
                handle.write(backend.dump())
        backend.close()
    elif isinstance(backend, DuckDBBackend):
        backend.close()
    elif isinstance(backend, MemoryBackend):
        if sql_dump and backend.database is not None:
            with open(spec.resolve(sql_dump), "w", encoding="utf-8") as handle:
                handle.write(generate_sql_dump(backend.database))
    return report, output


def _print_report(report: ExecutionReport, output: Optional[str]) -> None:
    for table, count in report.per_table_rows.items():
        print(f"  {table:28} {count:>10}")
    chunk_note = f" over {report.chunks} chunk(s)" if report.chunks > 1 else ""
    shard_note = f" in {report.shards} shard(s)" if report.shards > 1 else ""
    resume_note = (
        f" ({report.shards_resumed} resumed from checkpoint, "
        f"{report.shards_executed} executed)"
        if report.shards_resumed
        else ""
    )
    retry_note = (
        f" ({report.shards_retried} shard attempt(s) retried)"
        if report.shards_retried
        else ""
    )
    transport_note = (
        f" via {report.transport} transport" if report.transport != "local" else ""
    )
    verb = "would load" if report.dry_run else "loaded"
    print(
        f"{verb} {report.total_rows} rows in {report.execution_time:.2f}s"
        f"{chunk_note}{shard_note}{transport_note}{resume_note}{retry_note}"
    )
    if report.dry_run:
        print("dry run: no rows were written")
    elif output:
        print(f"database written to {output}")


def _write_report_json(path: str, spec: Spec, report: ExecutionReport, output: Optional[str]) -> None:
    """Write the machine-readable execution report (``--report-json``).

    The payload is exactly :meth:`ExecutionReport.to_json` — the same schema
    the service returns from ``GET /jobs/<id>/report`` — plus the resolved
    output path.
    """
    payload = report.to_json()
    payload["output"] = output
    resolved = spec.resolve(path)
    with open(resolved, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"report written to {resolved}")


# --------------------------------------------------------------------------- #
# Subcommands
# --------------------------------------------------------------------------- #


def _cmd_learn(args) -> int:
    spec = Spec.load(args.spec)
    start = time.perf_counter()
    plan, provenance = _acquire_plan(args, spec, allow_learn=True)
    elapsed = time.perf_counter() - start
    print(f"plan: {provenance} in {elapsed:.2f}s")
    for table_schema in plan.execution_order():
        table_plan = plan.table_plan(table_schema.name)
        print(f"  {table_schema.name}: {pretty_program(table_plan.program)}")
    if args.plan_out:
        plan.save(args.plan_out)
        print(f"plan saved to {args.plan_out}")
    return 0


def _handle_degraded(args, spec: Spec, error: ShardDegradedError) -> int:
    """Report a degraded sharded run (docs/robustness.md#degradation-contract).

    Exit code 1, but with the full story: which shards failed permanently
    and why, the partial report in ``--report-json`` (its ``shard_failures``
    list populated), and — when a checkpoint holds the completed shards —
    the exact resume hint.
    """
    print(f"error: {error}", file=sys.stderr)
    for failure in error.failures:
        print(f"  {failure.describe()}", file=sys.stderr)
    if args.report_json:
        _write_report_json(args.report_json, spec, error.report, None)
    if error.resumable:
        print(
            "completed shards are checkpointed; re-run with --resume to "
            "re-execute only the failed shard(s)",
            file=sys.stderr,
        )
    return 1


def _cmd_run(args) -> int:
    spec = Spec.load(args.spec)
    _execution_mode(args, spec)  # usage errors before any plan work
    plan, provenance = _acquire_plan(args, spec, allow_learn=False)
    print(f"plan: {provenance}")
    try:
        report, output = _execute(args, spec, plan)
    except ShardDegradedError as error:
        return _handle_degraded(args, spec, error)
    _print_report(report, output)
    if args.report_json:
        _write_report_json(args.report_json, spec, report, output)
    return 0


def _cmd_migrate(args) -> int:
    spec = Spec.load(args.spec)
    _execution_mode(args, spec)  # usage errors before paying for synthesis
    start = time.perf_counter()
    plan, provenance = _acquire_plan(args, spec, allow_learn=True)
    print(f"plan: {provenance} in {time.perf_counter() - start:.2f}s")
    try:
        report, output = _execute(args, spec, plan)
    except ShardDegradedError as error:
        return _handle_degraded(args, spec, error)
    _print_report(report, output)
    if args.report_json:
        _write_report_json(args.report_json, spec, report, output)
    return 0


def _cmd_verify(args) -> int:
    """``repro verify``: re-derive invariants against a finished target.

    Expected row counts come from ``--expect-report`` (a ``--report-json``
    file or the service's job report) when given, and are otherwise
    re-derived by executing the plan into the counting backend — the same
    pass ``--dry-run`` uses.  Exit code 0 = every table passed.
    """
    spec = Spec.load(args.spec)
    plan, provenance = _acquire_plan(args, spec, allow_learn=True)
    print(f"plan: {provenance}")
    backend_name = args.backend or spec.get("backend")
    if not backend_name:
        raise CLIError('verify needs --backend (or a spec "backend" key)')
    output = args.output or spec.get("output")
    if output is not None:
        output = spec.resolve(output)
    if args.expect_report:
        path = spec.resolve(args.expect_report)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except OSError as error:
            raise CLIError(f"cannot read expected report: {error}")
        except json.JSONDecodeError as error:
            raise CLIError(f"expected report is not valid JSON: {error}")
        counts = payload.get("per_table_rows") if isinstance(payload, dict) else None
        if not isinstance(counts, dict):
            raise CLIError(
                f'{path} is not an execution report (no "per_table_rows") — '
                f"pass a --report-json file or a service job report"
            )
        expected = {str(table): int(count) for table, count in counts.items()}
    else:
        counting = NullBackend()
        execute_plan(plan, spec.full_document(), counting)
        expected = dict(counting.counts)
    rows = read_target_rows(backend_name, output, plan.schema)
    # SQL targets also prove their secondary FK indexes exist; backends
    # without SQL indexes (columnar) return None and skip the check.
    index_names = read_target_indexes(backend_name, output)
    report = verify_rows(plan.schema, rows, expected, index_names=index_names)
    print(report.describe())
    if args.report_json:
        resolved = spec.resolve(args.report_json)
        payload = report.to_json()
        payload["backend"] = backend_name
        payload["output"] = output
        with open(resolved, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"report written to {resolved}")
    return 0 if report.passed else 1


def _cmd_worker(args) -> int:
    """``repro worker``: serve shard requests for remote drivers.

    Binds a TCP or Unix socket, prints ``worker listening on <address>``
    (the line drivers and process supervisors wait for), and executes
    shards until interrupted.  The wire protocol carries pickled plans and
    rows — listen only on loopback, a Unix socket, or a trusted network
    (docs/distributed.md#security-model).
    """
    from .worker import run_worker

    return run_worker(
        args.listen,
        expect_fingerprint=args.expect_fingerprint,
    )


def _cmd_serve(args) -> int:
    """``repro serve``: run the migration-service daemon until shutdown."""
    from .service.server import serve

    if args.max_workers < 1:
        raise CLIError(f"--max-workers must be >= 1 (got {args.max_workers})")
    if not 0 <= args.port <= 65535:
        raise CLIError(f"--port must be 0-65535 (got {args.port})")
    try:
        serve(
            args.state_dir,
            args.port,
            args.host,
            max_workers=args.max_workers,
            quiet=args.quiet,
        )
    except OSError as error:
        raise CLIError(f"cannot bind {args.host}:{args.port}: {error}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Learn-once/run-many migration of hierarchical data to "
        "relational tables (Mitra, VLDB 2018). A JSON spec file names the "
        "target schema, an example document and per-table example rows; "
        "`learn` synthesizes a durable migration plan from them, `run` "
        "executes a plan against full datasets, `migrate` does both.",
        epilog="Spec-file format, incremental learning and recipes: docs/cli.md",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--spec", required=True, help="path to the JSON spec file")
        sub.add_argument("--plan", help="path to an existing plan JSON (skips synthesis)")
        sub.add_argument("--no-cache", action="store_true", help="bypass the plan cache")
        sub.add_argument("--cache-dir", help="plan cache directory (default: .repro-cache)")
        sub.add_argument(
            "--jobs",
            type=int,
            help="parallel per-table synthesis processes (0 = CPU count, default 1)",
        )
        sub.add_argument(
            "--incremental",
            action="store_true",
            help="reuse persisted synthesis state across spec edits: diff the "
            "spec against the context store and re-synthesize only the "
            "affected tables",
        )
        sub.add_argument(
            "--context-cache",
            help="context store directory for --incremental "
            "(default: <cache-dir>/context)",
        )

    def add_execution(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--backend", choices=list(BACKEND_NAMES), help="storage backend"
        )
        sub.add_argument(
            "--output",
            help="output path: database file (sqlite) or directory (columnar)",
        )
        sub.add_argument("--force", action="store_true", help="overwrite an existing output")
        sub.add_argument(
            "--sql-dump", help="also write a SQL dump to this path (memory/sqlite)"
        )
        sub.add_argument(
            "--columnar-format",
            choices=list(FILE_FORMATS),
            help="columnar file format (default: arrow with pyarrow, else json)",
        )
        sub.add_argument(
            "--streaming", action="store_true", help="chunked bounded-memory execution"
        )
        sub.add_argument(
            "--no-stream",
            action="store_true",
            help="force whole-tree execution (overrides spec streaming/shards keys)",
        )
        sub.add_argument(
            "--shards",
            type=_shards_value,
            help="sharded execution: split the document into N contiguous "
            "record shards, execute them in worker processes and merge with "
            "cross-shard key reconciliation (docs/backends.md); 'auto' sizes "
            "the partition from records x cores x chunk size "
            "(docs/distributed.md)",
        )
        sub.add_argument(
            "--chunk-size", type=int, help="records per chunk (streaming/sharded)"
        )
        sub.add_argument(
            "--workers",
            type=int,
            help="worker processes (streaming: chunk fan-out; sharded: shard "
            "pool, default one per shard up to the CPU count)",
        )
        sub.add_argument(
            "--dry-run",
            action="store_true",
            help="execute the plan into a counting backend: print per-table "
            "row counts, write nothing",
        )
        sub.add_argument(
            "--checkpoint-dir",
            help="sharded only: persist per-shard spills and a resume "
            "manifest in this directory (docs/service.md)",
        )
        sub.add_argument(
            "--resume",
            action="store_true",
            help="resume an interrupted sharded run from --checkpoint-dir: "
            "shards whose spill file validates are not re-executed",
        )
        sub.add_argument(
            "--shard-retries",
            type=int,
            help="sharded only: retries per shard after its first attempt "
            "before the run degrades (default 2; docs/robustness.md)",
        )
        sub.add_argument(
            "--shard-timeout",
            type=float,
            help="sharded only: seconds before a running shard attempt is "
            "cancelled and re-dispatched (forces per-shard processes)",
        )
        sub.add_argument(
            "--inject-faults",
            metavar="SPEC",
            help="sharded only: deterministic fault injection for chaos "
            "testing, e.g. kill:shard=2:attempt=1,delay:shard=0:ms=500 "
            "(also via REPRO_FAULTS; docs/robustness.md)",
        )
        sub.add_argument(
            "--remote-workers",
            metavar="ADDRS",
            help="sharded only: run the map stage on remote `repro worker` "
            "processes instead of local ones — a comma-separated list of "
            "HOST:PORT or unix socket addresses (docs/distributed.md)",
        )
        sub.add_argument(
            "--report-json",
            help="write the execution report as JSON to this path (same "
            "schema as the service's job reports)",
        )

    learn = subparsers.add_parser(
        "learn",
        help="synthesize and save a migration plan "
        "(--incremental reuses state across spec edits)",
    )
    add_common(learn)
    learn.add_argument("--plan-out", help="write the learned plan to this file")
    learn.add_argument(
        "--verbose",
        action="store_true",
        help="print per-table synthesis diagnostics: universe size per "
        "candidate, phase timings and candidate-cache hit rates",
    )
    learn.set_defaults(handler=_cmd_learn)

    run = subparsers.add_parser("run", help="execute an existing plan (no synthesis)")
    add_common(run)
    add_execution(run)
    run.set_defaults(handler=_cmd_run)

    migrate = subparsers.add_parser("migrate", help="learn (or load cached) and run")
    add_common(migrate)
    add_execution(migrate)
    migrate.set_defaults(handler=_cmd_migrate)

    verify = subparsers.add_parser(
        "verify",
        help="re-check a finished target: row counts and PK/FK integrity "
        "(exit 0 = pass)",
    )
    add_common(verify)
    verify.add_argument(
        "--backend",
        choices=[name for name in BACKEND_NAMES if name != "memory"],
        help="backend that produced the target (memory leaves no artifact)",
    )
    verify.add_argument(
        "--output", help="the target to verify: database file or directory"
    )
    verify.add_argument(
        "--expect-report",
        help="expected row counts from a --report-json file (default: "
        "re-derive them with a dry-run counting pass)",
    )
    verify.add_argument(
        "--report-json", help="write the verification report as JSON to this path"
    )
    verify.set_defaults(handler=_cmd_verify)

    serve = subparsers.add_parser(
        "serve",
        help="run the migration service: an HTTP/JSON job daemon with "
        "resumable, dry-runnable, verifiable jobs",
    )
    serve.add_argument(
        "--state-dir",
        required=True,
        help="durable daemon state: job records, plan cache, checkpoints, outputs",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="port to bind (default: pick a free port and print it)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="address to bind (default: loopback)"
    )
    serve.add_argument(
        "--max-workers",
        type=int,
        default=2,
        help="concurrent jobs (each job may fan out into shard processes)",
    )
    serve.add_argument(
        "--quiet", action="store_true", help="suppress per-request access logs"
    )
    serve.set_defaults(handler=_cmd_serve)

    worker = subparsers.add_parser(
        "worker",
        help="run a remote shard worker: executes shards shipped over a "
        "socket transport and streams validated spill frames back "
        "(docs/distributed.md)",
    )
    worker.add_argument(
        "--listen",
        default="127.0.0.1:0",
        help="address to serve on: HOST:PORT (port 0 picks a free port, "
        "printed on startup) or a unix socket path (default: 127.0.0.1:0)",
    )
    worker.add_argument(
        "--expect-fingerprint",
        metavar="FP",
        help="pin the worker to one plan content fingerprint: any other "
        "plan is rejected at handshake",
    )
    worker.set_defaults(handler=_cmd_worker)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except (
        CLIError,
        MigrationError,
        IntegrityError,
        SQLiteBackendError,
        ColumnarBackendError,
        DuckDBBackendError,
        ShardError,
        FaultError,
        TransportError,
        SerializationError,
        SchemaError,
        VerificationError,
    ) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
