"""Sharded multi-process plan execution: partition → map → streaming reduce.

:func:`~repro.runtime.streaming.stream_execute` bounds memory but executes
chunks one at a time (its worker mode parallelizes chunk *execution*, yet
every chunk's full row batches travel back to the parent, which performs all
deduplication itself).  This module scales the run path across processes
with a map/reduce shape instead:

1. **Partition** — the document's records (the root's direct children, the
   same unit the streaming layer chunks on) are split into ``shards``
   *contiguous* ranges (:func:`partition_records`).  Contiguity is what
   keeps output deterministic: shard-major order equals document order.
2. **Map** — each shard executes in its own worker process: the shard's
   records stream through the per-table fused pipeline
   (:func:`~repro.runtime.executor.stream_table_rows`) into a *shard-local*
   :class:`~repro.runtime.executor.ChunkMerger`, so intra-shard duplicates
   are dropped and intra-shard surrogate keys reconciled before anything
   leaves the worker.  Deduplicated rows spill to a per-shard file in
   bounded batches; only a small manifest returns through the pool.
3. **Reduce** — the parent replays the spill files *in shard order* through
   a cross-shard ``ChunkMerger`` straight into the backend.  Because each
   spilled batch is bounded and rows stream from disk into
   ``backend.insert_rows``, no shard's full row set is ever materialized in
   the parent; the parent's merge work is proportional to the already
   deduplicated shard output, not to the raw document.

The result is identical (canonical form — surrogate keys are process-local,
see :func:`~repro.runtime.executor.canonical_table_rows`) to whole-tree and
serial streamed execution, for the same record-local program class the
streaming layer documents.

Every spill file carries a begin header and an end manifest (shard index,
plan fingerprint, per-table row counts).  A worker crash, a truncated file,
or a spill produced by a different plan surfaces as :class:`ShardError` at
reduce time — never as silently missing rows.

Shardable inputs are wrapped as :class:`ShardSource`\\ s: an in-memory
:class:`~repro.hdt.tree.HDT`, an XML or JSON document on disk, or a
directory of documents (:func:`shard_source` picks the right one).

The map stage is *supervised* (:class:`~repro.runtime.supervisor.
ShardSupervisor`): each shard runs as isolated per-attempt processes with
retries, per-shard timeouts, and — when a shard exhausts its attempts —
graceful degradation into :class:`ShardDegradedError` instead of a mid-run
abort.  Failures can be induced deterministically with a
:class:`~repro.runtime.faults.FaultPlan` (``faults=`` / ``REPRO_FAULTS``).
See docs/robustness.md.

*Where* the map stage runs is pluggable (:class:`~repro.runtime.transport.
ShardTransport`, docs/distributed.md): the default
:class:`~repro.runtime.transport.LocalTransport` keeps the single-machine
process pool above, while a :class:`~repro.runtime.transport.
SocketTransport` ships shards to remote ``repro worker`` processes and
streams their validated spill frames back — the reduce stage cannot tell
the difference.  ``shards="auto"`` sizes the partition from the record
count, core count, and chunk size (:func:`auto_shard_count`), and XML
sources index record byte offsets during the counting pass
(:func:`~repro.hdt.xml_plugin.build_xml_record_index`) so every shard —
local or remote — seeks straight to its range instead of re-parsing the
whole document.
"""

from __future__ import annotations

import os
import pickle
import shutil
import tempfile
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..hdt.tree import HDT
from ..hdt.xml_plugin import XMLRecordIndex, build_xml_record_index
from .backends.base import ExecutionBackend, Row
from .backends.memory import MemoryBackend
from .executor import (
    ChunkMerger,
    ExecutionReport,
    compile_plan_executions,
    stream_table_rows,
)
from .faults import FaultContext, FaultPlan, activation as fault_activation, resolve_plan
from .plan import MigrationPlan
from .streaming import (
    DEFAULT_CHUNK_SIZE,
    Chunk,
    count_json_records,
    count_xml_records,
    iter_indexed_xml_chunks,
    iter_json_chunks,
    iter_tree_chunks,
    iter_xml_chunks,
)
from .supervisor import RetryPolicy, ShardFailure, ShardSupervisor
from .transport import LocalTransport, ShardMapJob, ShardTransport

#: Rows per spilled batch — bounds both worker buffering and parent replay.
SPILL_BATCH_ROWS = 4096

_SPILL_MAGIC = "repro-shard-spill/1"


class ShardError(Exception):
    """Sharded execution failed: bad partitioning, corrupt or partial spills."""


class ShardDegradedError(ShardError):
    """Some shards failed permanently; the rest completed (and, with a
    checkpoint, are preserved for ``resume``).  The degradation contract
    (docs/robustness.md#degradation-contract): the backend is never touched
    — no partial target is ever written — and ``failures`` /``report`` carry
    the structured :class:`~repro.runtime.supervisor.ShardFailure` list and
    the partial :class:`~repro.runtime.executor.ExecutionReport`."""

    def __init__(
        self,
        failures: List[ShardFailure],
        report: ExecutionReport,
        *,
        resumable: bool = False,
    ) -> None:
        self.failures = failures
        self.report = report
        self.resumable = resumable
        summary = "; ".join(failure.describe() for failure in failures)
        message = (
            f"{len(failures)} of {report.shards} shard(s) failed permanently "
            f"({summary})"
        )
        if resumable:
            message += "; completed shards are checkpointed — fix the cause and resume"
        super().__init__(message)


# --------------------------------------------------------------------------- #
# Partitioning
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class ShardSpec:
    """One shard's contiguous record window ``[start, stop)``."""

    index: int
    start: int
    stop: int

    @property
    def records(self) -> int:
        return self.stop - self.start


def partition_records(total: int, shards: int) -> List[ShardSpec]:
    """Split ``total`` records into ``shards`` contiguous, balanced ranges.

    Always returns exactly ``shards`` specs; when there are fewer records
    than shards the trailing specs are empty (a worker with an empty range
    produces an empty — but still validated — spill).

    >>> [(s.start, s.stop) for s in partition_records(10, 3)]
    [(0, 4), (4, 7), (7, 10)]
    """
    if shards < 1:
        raise ShardError(f"shards must be >= 1 (got {shards})")
    if total < 0:
        raise ShardError(f"record count must be >= 0 (got {total})")
    base, remainder = divmod(total, shards)
    specs: List[ShardSpec] = []
    start = 0
    for index in range(shards):
        size = base + (1 if index < remainder else 0)
        specs.append(ShardSpec(index=index, start=start, stop=start + size))
        start += size
    return specs


#: Records a shard must amortize before fan-out pays for itself: below
#: roughly this many records per shard, process/transport overhead dominates
#: (BENCH_PR5: fan-out only pays past 1 core *and* a non-trivial range).
MIN_AUTO_SHARD_RECORDS = 512


def auto_shard_count(
    records: int,
    cores: Optional[int] = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> int:
    """Pick a shard count from the workload: records × cores × chunk size.

    The heuristic (docs/distributed.md#shard-count-auto-tuning): one shard
    per core, but never so many that a shard holds fewer than two chunks'
    worth of records (or :data:`MIN_AUTO_SHARD_RECORDS`, whichever is
    larger) — a shard that cannot fill two chunks spends its time on
    process/transport overhead, not parsing.  Single-core machines and
    empty documents get one shard: fan-out cannot pay there at all.
    """
    if cores is None:
        cores = os.cpu_count() or 1
    if cores <= 1 or records <= 0:
        return 1
    per_shard = max(2 * chunk_size, MIN_AUTO_SHARD_RECORDS)
    return max(1, min(cores, records // per_shard))


def resolve_shard_count(
    shards: Union[int, str],
    records: int,
    *,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    cores: Optional[int] = None,
) -> int:
    """Resolve a ``shards`` argument: an integer, or ``"auto"`` for
    :func:`auto_shard_count` (the ``--shards auto`` CLI path)."""
    if isinstance(shards, str):
        if shards.strip().lower() != "auto":
            raise ShardError(f'shards must be an integer or "auto" (got {shards!r})')
        return auto_shard_count(records, cores=cores, chunk_size=chunk_size)
    return int(shards)


# --------------------------------------------------------------------------- #
# Shardable sources
# --------------------------------------------------------------------------- #


#: ``(abspath, size, mtime_ns) -> XMLRecordIndex`` / record count.  The
#: counting pass used to re-scan the source once per ``shard_execute`` call —
#: resume and dry-run paid it twice.  Keyed by a content fingerprint of the
#: file's identity+stat, so an edited file re-counts and an unchanged one
#: never does.  Bounded: oldest entries evicted past the cap.
_XML_INDEX_CACHE: Dict[Tuple[str, int, int], XMLRecordIndex] = {}
_JSON_COUNT_CACHE: Dict[Tuple[str, int, int], int] = {}
_SOURCE_CACHE_MAX = 64


def _source_cache_key(path: str) -> Optional[Tuple[str, int, int]]:
    """A file's cache identity, or ``None`` for anything unstat-able
    (missing files, inline JSON content strings)."""
    try:
        stat = os.stat(path)
    except (OSError, ValueError):
        return None
    return (os.path.abspath(path), stat.st_size, stat.st_mtime_ns)


def _cache_put(cache: Dict, key, value) -> None:
    if len(cache) >= _SOURCE_CACHE_MAX:
        cache.pop(next(iter(cache)))
    cache[key] = value


def clear_source_caches() -> None:
    """Drop the cached XML indexes and JSON counts (tests, memory pressure)."""
    _XML_INDEX_CACHE.clear()
    _JSON_COUNT_CACHE.clear()


class ShardSource:
    """A document (or document set) that can be read by record range.

    ``count_records()`` runs once in the parent to drive
    :func:`partition_records`; ``iter_chunks(start, stop, chunk_size)`` runs
    in each worker and must yield the records with document sequence numbers
    in ``[start, stop)`` — with the same tags/positions they would have in a
    whole-document parse, so shard boundaries are invisible to programs.
    """

    def count_records(self) -> int:
        raise NotImplementedError

    def iter_chunks(self, start: int, stop: int, chunk_size: int) -> Iterator[Chunk]:
        raise NotImplementedError


class TreeSource(ShardSource):
    """Shard an already-materialized :class:`HDT` (tests, benchmarks, demo mode)."""

    def __init__(self, tree: HDT) -> None:
        self.tree = tree

    def count_records(self) -> int:
        return len(self.tree.root.children)

    def iter_chunks(self, start: int, stop: int, chunk_size: int) -> Iterator[Chunk]:
        return iter_tree_chunks(self.tree, chunk_size, record_range=(start, stop))


class XMLSource(ShardSource):
    """Shard an XML file.

    The counting pass builds a byte-offset record index
    (:func:`~repro.hdt.xml_plugin.build_xml_record_index`) — cached by the
    file's identity+stat and carried to workers inside the pickled source —
    so each shard *seeks* to its record range and parses O(range) bytes,
    instead of re-parsing the whole document per shard.  Documents the
    index cannot serve (namespaced, or unparseable by expat) fall back to
    the full incremental reparse with identical output.
    """

    def __init__(self, path: str, *, coerce_numbers: bool = True) -> None:
        self.path = path
        self.coerce_numbers = coerce_numbers
        self._index: Optional[XMLRecordIndex] = None
        self._index_failed = False
        self._count: Optional[int] = None

    def record_index(self) -> Optional[XMLRecordIndex]:
        if self._index is not None or self._index_failed:
            return self._index
        key = _source_cache_key(self.path)
        if key is not None and key in _XML_INDEX_CACHE:
            self._index = _XML_INDEX_CACHE[key]
            return self._index
        try:
            index = build_xml_record_index(self.path)
        except Exception:  # noqa: BLE001 - expat/OS failures fall back below,
            # so malformed documents keep ElementTree's error surface.
            self._index_failed = True
            return None
        self._index = index
        if key is not None:
            _cache_put(_XML_INDEX_CACHE, key, index)
        return index

    def count_records(self) -> int:
        if self._count is None:
            index = self.record_index()
            self._count = (
                index.record_count if index is not None else count_xml_records(self.path)
            )
        return self._count

    def iter_chunks(self, start: int, stop: int, chunk_size: int) -> Iterator[Chunk]:
        index = self.record_index()
        if index is not None and index.seekable:
            return iter_indexed_xml_chunks(
                self.path,
                index,
                chunk_size,
                coerce_numbers=self.coerce_numbers,
                record_range=(start, stop),
            )
        return iter_xml_chunks(
            self.path,
            chunk_size,
            coerce_numbers=self.coerce_numbers,
            record_range=(start, stop),
        )


class JSONSource(ShardSource):
    """Shard a JSON document (path or already-decoded value).

    File-backed counts are cached by the file's identity+stat (the stdlib
    has no incremental JSON parser, so the count is a full decode — worth
    paying exactly once per file version); inline content and decoded
    values memoize on the instance only.
    """

    def __init__(self, source: Union[str, list, dict]) -> None:
        self.source = source
        self._count: Optional[int] = None

    def _cache_key(self) -> Optional[Tuple[str, int, int]]:
        if not isinstance(self.source, str):
            return None
        stripped = self.source.lstrip()
        if stripped.startswith("{") or stripped.startswith("["):
            return None  # inline JSON content, not a path
        return _source_cache_key(self.source)

    def count_records(self) -> int:
        if self._count is not None:
            return self._count
        key = self._cache_key()
        if key is not None and key in _JSON_COUNT_CACHE:
            self._count = _JSON_COUNT_CACHE[key]
            return self._count
        self._count = count_json_records(self.source)
        if key is not None:
            _cache_put(_JSON_COUNT_CACHE, key, self._count)
        return self._count

    def iter_chunks(self, start: int, stop: int, chunk_size: int) -> Iterator[Chunk]:
        return iter_json_chunks(self.source, chunk_size, record_range=(start, stop))


class DocumentSetSource(ShardSource):
    """Shard a *directory* of documents: their records, concatenated.

    Files contribute records in the given (sorted) order; a shard is a
    contiguous window of that concatenation, so one shard may span a file
    boundary and a large file may be split across shards.  Records keep
    their per-document tags and positions (each file is parsed as its own
    document), and records of different files never share a chunk.
    """

    def __init__(self, paths: Sequence[str], fmt: str) -> None:
        if fmt not in ("xml", "json"):
            raise ShardError(f'document format must be "xml" or "json" (got {fmt!r})')
        if not paths:
            raise ShardError("document set is empty")
        self.paths = list(paths)
        self.fmt = fmt
        self._counts: Optional[List[int]] = None

    def _sources(self) -> List[ShardSource]:
        if self.fmt == "xml":
            return [XMLSource(path) for path in self.paths]
        return [JSONSource(path) for path in self.paths]

    def count_records(self) -> int:
        if self._counts is None:
            # Cached (and carried through pickling to the workers) so the
            # per-file counting pass runs once, in the parent.
            self._counts = [source.count_records() for source in self._sources()]
        return sum(self._counts)

    def iter_chunks(self, start: int, stop: int, chunk_size: int) -> Iterator[Chunk]:
        self.count_records()
        assert self._counts is not None
        offset = 0
        for source, count in zip(self._sources(), self._counts):
            file_start, file_stop = max(start - offset, 0), min(stop - offset, count)
            if file_start < file_stop:
                yield from source.iter_chunks(file_start, file_stop, chunk_size)
            offset += count
            if offset >= stop:
                break


def shard_source(
    source: Union[ShardSource, HDT, str], fmt: Optional[str] = None
) -> ShardSource:
    """Wrap a tree, a document path, or a directory as a :class:`ShardSource`.

    For paths, ``fmt`` (``"xml"``/``"json"``) decides the parser; when
    omitted it is inferred from the file extension.  A directory shards the
    concatenation of its ``.xml``/``.json`` files in sorted name order.
    """
    if isinstance(source, ShardSource):
        return source
    if isinstance(source, HDT):
        return TreeSource(source)
    if not isinstance(source, str):
        raise ShardError(f"cannot shard {type(source).__name__} objects")
    if os.path.isdir(source):
        by_format = {
            kind: sorted(
                name for name in os.listdir(source) if name.endswith("." + kind)
            )
            for kind in ("xml", "json")
        }
        if fmt is None:
            present = [kind for kind, names in by_format.items() if names]
            if len(present) > 1:
                raise ShardError(
                    f"directory {source} mixes .xml and .json documents; "
                    f'pass fmt="xml" or fmt="json" to pick one set'
                )
            fmt = present[0] if present else None
        names = by_format.get(fmt or "", [])
        if not names:
            raise ShardError(f"no shardable documents in directory {source}")
        return DocumentSetSource([os.path.join(source, n) for n in names], fmt)
    resolved = fmt or ("xml" if source.endswith(".xml") else "json" if source.endswith(".json") else None)
    if resolved == "xml":
        return XMLSource(source)
    if resolved == "json":
        return JSONSource(source)
    raise ShardError(
        f'cannot infer document format of {source!r}; pass fmt="xml" or fmt="json"'
    )


# --------------------------------------------------------------------------- #
# The spill protocol (worker → reducer)
# --------------------------------------------------------------------------- #


def _spill_path(directory: str, index: int) -> str:
    return os.path.join(directory, f"shard-{index:05d}.spill")


class SpillWriter:
    """Append a shard's deduplicated row batches to its spill file.

    Wire format: a pickle stream of messages — ``("begin", header)`` once,
    any number of ``("rows", table, rows)`` batches (each at most
    ``batch_rows`` rows, in worker processing order), and ``("end",
    manifest)`` exactly once.  The end manifest repeats the per-table row
    counts, which is what lets the reducer distinguish "shard finished with
    few rows" from "worker died mid-write".
    """

    def __init__(
        self,
        path: str,
        shard_index: int,
        plan_fingerprint: str,
        *,
        batch_rows: int = SPILL_BATCH_ROWS,
        faults: Optional[FaultContext] = None,
    ) -> None:
        self.path = path
        self.shard_index = shard_index
        self.plan_fingerprint = plan_fingerprint
        self.batch_rows = max(1, batch_rows)
        self.per_table_rows: Dict[str, int] = {}
        self.batches = 0
        self._faults = faults
        self._handle = open(path, "wb")
        self._dump(
            (
                "begin",
                {
                    "magic": _SPILL_MAGIC,
                    "shard": shard_index,
                    "plan_fingerprint": plan_fingerprint,
                },
            )
        )

    def _dump(self, message) -> None:
        pickle.dump(message, self._handle, protocol=pickle.HIGHEST_PROTOCOL)

    def _spill_batch(self, table: str, batch: List[Row]) -> None:
        if self._faults is not None:
            self._faults.spill_write(self._handle)
        self._dump(("rows", table, batch))
        self.batches += 1

    def write_rows(self, table: str, rows) -> int:
        """Spill a row stream in bounded batches; returns the rows written."""
        written = 0
        batch: List[Row] = []
        for row in rows:
            batch.append(row)
            if len(batch) >= self.batch_rows:
                self._spill_batch(table, batch)
                written += len(batch)
                batch = []
        if batch:
            self._spill_batch(table, batch)
            written += len(batch)
        self.per_table_rows[table] = self.per_table_rows.get(table, 0) + written
        return written

    def finish(self, *, chunks: int, records: int) -> Dict[str, object]:
        manifest: Dict[str, object] = {
            "shard": self.shard_index,
            "chunks": chunks,
            "records": records,
            "batches": self.batches,
            "per_table_rows": dict(self.per_table_rows),
        }
        self._dump(("end", manifest))
        self._handle.flush()
        self._handle.close()
        return manifest


def iter_spill(
    path: str,
    *,
    plan_fingerprint: str,
    shard_index: int,
    manifest_out: Optional[Dict[str, object]] = None,
) -> Iterator[Tuple[str, List[Row]]]:
    """Replay a spill file's row batches, validating the framing as it goes.

    Raises :class:`ShardError` — naming the shard and what is wrong — on a
    missing file, a foreign or mismatched header, a truncated stream (no end
    manifest), or per-table row counts that do not match the manifest.
    Validation is interleaved with replay, so a truncation is detected even
    though batches stream to the caller before the end marker is read.

    Pass a dict as ``manifest_out`` to receive the validated end manifest
    (shard index, chunk/record/row counts) once the stream completes.
    """
    where = f"shard {shard_index} spill {path}"
    try:
        handle = open(path, "rb")
    except OSError as error:
        raise ShardError(f"{where} is missing: {error}") from error
    counts: Dict[str, int] = {}
    batches = 0
    with handle:
        try:
            kind, header = pickle.load(handle)
        except (EOFError, pickle.UnpicklingError, ValueError, TypeError) as error:
            raise ShardError(f"{where} has no readable header: {error}") from error
        if kind != "begin" or header.get("magic") != _SPILL_MAGIC:
            raise ShardError(f"{where} is not a shard spill file")
        if header.get("shard") != shard_index:
            raise ShardError(
                f"{where} belongs to shard {header.get('shard')}, expected {shard_index}"
            )
        if header.get("plan_fingerprint") != plan_fingerprint:
            raise ShardError(
                f"{where} was produced by a different plan "
                f"({header.get('plan_fingerprint')} != {plan_fingerprint})"
            )
        while True:
            try:
                message = pickle.load(handle)
            except EOFError as error:
                raise ShardError(
                    f"{where} is truncated: stream ended before the end-of-shard "
                    f"manifest (worker died mid-write?)"
                ) from error
            except pickle.UnpicklingError as error:
                raise ShardError(f"{where} is corrupt: {error}") from error
            if message[0] == "rows":
                _, table, rows = message
                counts[table] = counts.get(table, 0) + len(rows)
                batches += 1
                yield table, rows
                continue
            if message[0] == "end":
                manifest = message[1]
                declared = {
                    table: count
                    for table, count in (manifest.get("per_table_rows") or {}).items()
                    if count
                }
                if declared != counts or manifest.get("batches") != batches:
                    raise ShardError(
                        f"{where} row counts do not match its manifest "
                        f"(replayed {counts}, manifest {manifest.get('per_table_rows')})"
                    )
                if manifest_out is not None:
                    manifest_out.update(manifest)
                return
            raise ShardError(f"{where} contains unknown message {message[0]!r}")


def validate_spill(
    path: str, *, plan_fingerprint: str, shard_index: int
) -> Dict[str, object]:
    """Fully replay a spill file for validation only; returns its end manifest.

    This is the checkpoint/resume primitive: a spill that replays cleanly end
    to end (header, every batch, counts matching the end manifest) proves its
    shard completed, whoever wrote it and however the writing process died
    afterwards.  Raises :class:`ShardError` exactly as :func:`iter_spill`
    would.
    """
    manifest: Dict[str, object] = {}
    for _table, _rows in iter_spill(
        path,
        plan_fingerprint=plan_fingerprint,
        shard_index=shard_index,
        manifest_out=manifest,
    ):
        pass
    return manifest


# --------------------------------------------------------------------------- #
# The map stage (runs in workers)
# --------------------------------------------------------------------------- #


def _surrogate_key_columns(schema) -> Dict[str, List[int]]:
    """Per table: the column indices that carry *generated* surrogate keys.

    That is the table's own primary key (unless natural-keyed) plus every
    foreign-key column whose target table is surrogate-keyed — the same
    column set :class:`ChunkMerger` rewrites through its alias table.
    """
    tables = {t.name: t for t in schema.tables}
    columns: Dict[str, List[int]] = {}
    for table in schema.tables:
        names = table.column_names
        indices = set()
        if not table.natural_keys and table.primary_key is not None:
            indices.add(names.index(table.primary_key))
        for fk in table.foreign_keys:
            if not tables[fk.target_table].natural_keys:
                indices.add(names.index(fk.column))
        if indices:
            columns[table.name] = sorted(indices)
    return columns


def _namespace_keys(rows, prefix: str, indices: List[int]):
    """Prefix a shard's generated keys so they are globally unique.

    Surrogate keys concatenate node uids (``key_of``), and uids come from a
    process-wide counter — forked workers start from the same counter value,
    so two shards can mint the *same* key for *different* rows.  Keys are
    opaque and process-arbitrary by design (parity is canonical, see
    ``canonical_table_rows``), and at spill time every foreign-key reference
    still points within its own shard, so prefixing the shard index onto
    each generated key (and each reference to one) restores uniqueness
    without touching the reconciliation mechanics.
    """
    for row in rows:
        values = list(row)
        for index in indices:
            value = values[index]
            if value is not None:
                values[index] = prefix + value
        yield tuple(values)


def execute_shard(
    plan: MigrationPlan,
    source: ShardSource,
    spec: ShardSpec,
    *,
    chunk_size: int,
    spill_path: str,
    plan_fingerprint: Optional[str] = None,
    executions=None,
    faults: Optional[FaultPlan] = None,
    attempt: int = 1,
    in_process: bool = False,
) -> Dict[str, object]:
    """Execute one shard's record window and spill its deduplicated rows.

    The shard runs exactly like serial :func:`~repro.runtime.streaming.
    stream_execute` over its chunks — per-table fused pipelines through a
    shard-local :class:`ChunkMerger` — except rows land in the spill file
    instead of a backend.  Returns the end manifest.

    ``faults``/``attempt``/``in_process`` wire the fault-injection harness
    into this attempt (worker-start and spill-write sites); a ``None`` plan
    costs a single ``is None`` check per site.
    """
    if executions is None:
        executions = compile_plan_executions(plan)
    if plan_fingerprint is None:
        plan_fingerprint = plan.content_fingerprint()
    context = (
        FaultContext(faults, shard=spec.index, attempt=attempt, in_process=in_process)
        if faults
        else None
    )
    if context is not None:
        context.worker_start()
    merger = ChunkMerger(plan.schema)
    order = plan.execution_order()
    key_columns = _surrogate_key_columns(plan.schema)
    key_prefix = f"s{spec.index}:"
    writer = SpillWriter(spill_path, spec.index, plan_fingerprint, faults=context)
    chunks = 0
    records = 0
    for chunk in source.iter_chunks(spec.start, spec.stop, chunk_size):
        for table_schema in order:
            table_plan = plan.table_plan(table_schema.name)
            key_aliases: Dict[str, str] = {}
            rows = stream_table_rows(
                table_schema,
                table_plan,
                chunk.tree,
                merger,
                key_aliases,
                execution=executions[table_schema.name],
            )
            indices = key_columns.get(table_schema.name)
            if indices:
                rows = _namespace_keys(rows, key_prefix, indices)
            writer.write_rows(table_schema.name, rows)
            merger.absorb_aliases(table_schema.name, key_aliases)
        chunks += 1
        records += chunk.records
    return writer.finish(chunks=chunks, records=records)


def _attempt_shard(payload: Dict[str, object], attempt: int) -> Dict[str, object]:
    """One supervised shard attempt (the :class:`ShardSupervisor` worker).

    Module-level and payload-driven so subprocess mode can pickle it under
    any start method.  Compiled executions ride along only on the in-process
    path (compiled programs hold closures, which do not pickle); a worker
    process compiles the plan itself, once per attempt.  ``execute_shard``
    is resolved late through the module so tests can monkeypatch it.
    """
    return execute_shard(
        payload["plan"],
        payload["source"],
        payload["spec"],
        chunk_size=payload["chunk_size"],
        spill_path=payload["spill_path"],
        plan_fingerprint=payload["fingerprint"],
        executions=payload.get("executions"),
        faults=payload.get("faults"),
        attempt=attempt,
        in_process=bool(payload.get("in_process")),
    )


# --------------------------------------------------------------------------- #
# The reduce stage + driver
# --------------------------------------------------------------------------- #


def shard_execute(
    plan: MigrationPlan,
    source: Union[ShardSource, HDT, str],
    backend: Optional[ExecutionBackend] = None,
    *,
    shards: Union[int, str] = 2,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    workers: Optional[int] = None,
    spill_dir: Optional[str] = None,
    checkpoint=None,
    resume: bool = False,
    progress: Optional[Callable[[int, int], None]] = None,
    retry_policy: Optional[RetryPolicy] = None,
    shard_timeout: Optional[float] = None,
    faults: Union[FaultPlan, str, None] = None,
    transport: Optional[ShardTransport] = None,
) -> ExecutionReport:
    """Execute a plan over record shards in parallel processes.

    ``shards`` is an integer or ``"auto"``, which sizes the partition from
    the record count, the core count, and ``chunk_size``
    (:func:`auto_shard_count`).  ``workers`` caps concurrent shard processes
    (default: one per shard, bounded by the CPU count; ``0``/``1`` executes
    the shards in-process, still through the full spill/reduce protocol —
    useful for tests and for machines where fork is expensive).
    ``spill_dir`` keeps the per-shard spill files in a caller-managed
    directory; by default a temporary directory is used and removed when
    execution finishes.

    ``transport`` chooses *where* the map stage runs
    (docs/distributed.md): the default
    :class:`~repro.runtime.transport.LocalTransport` is the process pool
    described above; a :class:`~repro.runtime.transport.SocketTransport`
    ships shards to remote ``repro worker`` processes and streams their
    validated spill frames back.  Every transport satisfies the same
    contract — a spill file per shard that replays cleanly under this
    plan's fingerprint — so the reduce stage (and the output) is identical.
    A caller-provided transport is *not* closed here.

    The map stage is supervised (docs/robustness.md): a shard attempt that
    dies, times out (``shard_timeout`` seconds — forces process isolation),
    or raises a transient error is re-dispatched under ``retry_policy``
    (default :class:`~repro.runtime.supervisor.RetryPolicy`: 3 attempts,
    exponential backoff with deterministic jitter).  A shard that exhausts
    its attempts degrades the run: every other shard still completes (and
    checkpoints), no backend write happens, and :class:`ShardDegradedError`
    carries the structured failure list plus the partial report.  ``faults``
    (a :class:`~repro.runtime.faults.FaultPlan`, a spec string, or the
    ``REPRO_FAULTS`` environment variable) injects deterministic failures
    for testing; unset, the hooks cost nothing.

    ``checkpoint`` makes the run *resumable*: pass a
    :class:`~repro.runtime.service.checkpoint.ShardCheckpoint` (or anything
    with its ``directory`` / ``begin`` / ``mark_complete`` / ``finish``
    surface) and spill files persist in the checkpoint directory, with a
    manifest updated as each shard completes.  With ``resume=True``, shards
    whose checkpointed spill replays cleanly end to end are *not*
    re-executed — the reducer consumes the existing spill.  A fingerprint,
    shard-count or chunk-size mismatch against the stored manifest raises
    :class:`ShardError` under ``resume`` (and starts fresh otherwise).  On
    success the checkpoint is cleared.  ``resume`` without a checkpoint is
    an error; ``checkpoint`` and ``spill_dir`` are mutually exclusive.

    ``progress`` is called as ``progress(completed_shards, total_shards)``
    once after checkpoint recovery and again as each shard's map completes;
    an exception raised from the callback aborts the run (checkpointed
    spills survive for a later resume) — this is the cancellation hook the
    migration service uses.

    Examples
    --------
    >>> from repro.datasets import dblp
    >>> from repro.runtime import MigrationPlan, shard_execute
    >>> bundle = dblp.dataset(scale=2)
    >>> plan = MigrationPlan.learn(bundle.migration_spec())
    >>> report = shard_execute(plan, bundle.generate(2), shards=2, workers=1)
    >>> report.total_rows, report.shards
    (30, 2)
    """
    resolved = shard_source(source)
    if chunk_size <= 0:
        raise ShardError(f"chunk_size must be positive (got {chunk_size})")
    if resume and checkpoint is None:
        raise ShardError("resume=True needs a checkpoint")
    if checkpoint is not None and spill_dir is not None:
        raise ShardError("checkpoint and spill_dir are mutually exclusive")
    if shard_timeout is not None and shard_timeout <= 0:
        raise ShardError(f"shard_timeout must be positive (got {shard_timeout})")
    fault_plan = resolve_plan(faults)
    policy = retry_policy if retry_policy is not None else RetryPolicy()
    backend = backend if backend is not None else MemoryBackend()
    start = time.perf_counter()
    total_records = resolved.count_records()
    shard_count = resolve_shard_count(shards, total_records, chunk_size=chunk_size)
    specs = partition_records(total_records, shard_count)
    fingerprint = plan.content_fingerprint()
    completed: Dict[int, Dict[str, object]] = {}
    if checkpoint is not None:
        own_spill_dir = False
        directory = checkpoint.directory
        completed = checkpoint.begin(
            plan_fingerprint=fingerprint,
            shards=len(specs),
            chunk_size=chunk_size,
            records=total_records,
            resume=resume,
        )
    else:
        own_spill_dir = spill_dir is None
        directory = spill_dir if spill_dir is not None else tempfile.mkdtemp(prefix="repro-shards-")
    os.makedirs(directory, exist_ok=True)
    pending = [spec for spec in specs if spec.index not in completed]
    if workers is None:
        workers = min(len(specs), os.cpu_count() or 1)
    report = ExecutionReport(backend=backend, chunks=0, shards=len(specs))
    report.shards_resumed = len(completed)
    report.shards_executed = len(pending)
    report.per_table_rows = {t.name: 0 for t in plan.schema.tables}
    manifests: Dict[int, Dict[str, object]] = dict(completed)

    def _shard_done(index: int, manifest: Dict[str, object]) -> None:
        manifests[index] = manifest
        if checkpoint is not None:
            checkpoint.mark_complete(index, manifest)
        if progress is not None:
            progress(len(manifests), len(specs))

    map_transport = transport if transport is not None else LocalTransport()
    report.transport = map_transport.name
    job = ShardMapJob(
        plan=plan,
        fingerprint=fingerprint,
        source=resolved,
        specs=pending,
        chunk_size=chunk_size,
        spill_paths={spec.index: _spill_path(directory, spec.index) for spec in specs},
        scratch_dir=directory,
        policy=policy,
        workers=workers,
        shard_timeout=shard_timeout,
        faults=fault_plan,
        on_complete=_shard_done,
    )
    try:
        if progress is not None:
            progress(len(manifests), len(specs))
        # Map: fill the spill files under transport-specific supervision.
        # ``_shard_done`` runs in this process the moment each shard
        # finishes, so the checkpoint manifest — and the caller's progress —
        # never wait on stragglers.  The ambient fault activation covers the
        # reduce stage's backend-insert hook (the map stage carries the plan
        # explicitly).
        with fault_activation(fault_plan):
            outcome = map_transport.run_map(job)
            report.shards_retried = outcome.retries
            report.chunks = sum(int(m["chunks"]) for m in manifests.values())
            if outcome.failures:
                # Degrade, never partially write: completed shards are already
                # checkpointed, the backend was never opened.
                report.shards_failed = len(outcome.failures)
                report.shard_failures = [f.to_json() for f in outcome.failures]
                raise ShardDegradedError(
                    sorted(outcome.failures, key=lambda f: f.shard),
                    report,
                    resumable=checkpoint is not None,
                )
            # Reduce: replay spills in shard order through the cross-shard
            # merger, streaming batch by batch into the backend.
            backend.begin(plan.schema)
            try:
                merger = ChunkMerger(plan.schema)
                for spec in specs:
                    replay = iter_spill(
                        _spill_path(directory, spec.index),
                        plan_fingerprint=fingerprint,
                        shard_index=spec.index,
                    )
                    for table, rows in replay:
                        report.per_table_rows[table] += backend.insert_rows(
                            table, merger.iter_merge(table, rows)
                        )
                backend.finalize()
            except BaseException:
                # A reduce-stage failure aborts the backend: close() before
                # finalize() lets it release resources and scrub partial
                # output (the streaming columnar backend removes its
                # half-written batch files and never leaves a manifest
                # pointing at unreadable data).  close() is idempotent, so
                # callers that also clean up are unaffected.
                try:
                    backend.close()
                except Exception:
                    pass
                raise
    finally:
        if own_spill_dir:
            shutil.rmtree(directory, ignore_errors=True)
    if checkpoint is not None:
        checkpoint.finish()
    report.execution_time = time.perf_counter() - start
    return report
