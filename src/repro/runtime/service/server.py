"""The HTTP face of the migration service: a stdlib JSON API.

``repro serve`` boots a :class:`MigrationService` — a
:class:`http.server.ThreadingHTTPServer` wrapping one
:class:`~repro.runtime.service.runner.JobRunner` — and serves a small local
API (plain stdlib, no framework, no new dependencies):

========  ========================  ==========================================
method    path                      effect
========  ========================  ==========================================
GET       /health                   liveness + job-state counts
GET       /jobs                     list job summaries
POST      /jobs                     submit ``{"kind": ..., "params": {...}}``
GET       /jobs/<id>                full job record (state, progress, error,
                                    error_detail — the daemon-side traceback)
GET       /jobs/<id>/report         the finished job's report (409 until done)
POST      /jobs/<id>/cancel         cooperative cancel at the next shard
POST      /jobs/<id>/resume         re-enqueue interrupted/failed/cancelled
POST      /shutdown                 drain and stop the daemon
========  ========================  ==========================================

Everything is JSON both ways; errors are ``{"error": "..."}`` with a
meaningful status code.  The server binds loopback by default — it is a
local orchestration daemon, not a public endpoint.

Recovery is part of boot, not an extra step: the runner marks jobs that were
``running`` when the previous daemon died as ``interrupted`` *before* the
socket accepts work, so a client polling across a restart never observes a
stale ``running`` state.

Failures are debuggable in place: a failed job's record carries
``error_detail`` (the full traceback), and a *degraded* sharded run — some
shards exhausted their retries — keeps its partial execution report, so
``GET /jobs/<id>/report`` exposes the structured ``shard_failures`` list
even though the job state is ``failed``.  See docs/robustness.md.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple

from .jobs import JOB_KINDS, Job, JobError
from .runner import JobRunner


class MigrationService(ThreadingHTTPServer):
    """The daemon: an HTTP server that owns a :class:`JobRunner`.

    Construction recovers persisted job state (``running`` → ``interrupted``,
    ``queued`` jobs re-enqueued) and binds the socket; call
    :meth:`serve_forever` to start answering.
    """

    daemon_threads = True

    def __init__(
        self,
        state_dir: str,
        address: Tuple[str, int] = ("127.0.0.1", 0),
        *,
        max_workers: int = 2,
        quiet: bool = False,
    ) -> None:
        self.runner = JobRunner(state_dir, max_workers=max_workers)
        self.recovered: List[Job] = self.runner.start()
        self.quiet = quiet
        super().__init__(address, _Handler)

    @property
    def port(self) -> int:
        return self.server_address[1]

    def request_shutdown(self) -> None:
        """Stop accepting requests and release the runner, asynchronously.

        ``shutdown`` blocks until the ``serve_forever`` loop exits, so it
        must not run on the handler thread that is still writing the
        response — hand it to a helper thread.
        """
        self.runner.close(wait=False)
        threading.Thread(target=self.shutdown, daemon=True).start()


class _Handler(BaseHTTPRequestHandler):
    server: MigrationService

    # Keep-alive with explicit Content-Length on every response.
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------- plumbing
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.server.quiet:
            BaseHTTPRequestHandler.log_message(self, format, *args)

    def _send(self, status: int, payload: Dict[str, object]) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._send(status, {"error": message})

    def _read_json(self) -> Optional[Dict[str, object]]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            self._error(400, "request body is not valid JSON")
            return None
        if not isinstance(payload, dict):
            self._error(400, "request body must be a JSON object")
            return None
        return payload

    def _job_or_404(self, job_id: str) -> Optional[Job]:
        try:
            return self.server.runner.store.get(job_id)
        except JobError as error:
            self._error(404, str(error))
            return None

    # --------------------------------------------------------------- routes
    def do_GET(self) -> None:  # noqa: N802 — http.server API
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if parts == ["health"]:
            jobs = self.server.runner.store.list()
            states: Dict[str, int] = {}
            for job in jobs:
                states[job.state] = states.get(job.state, 0) + 1
            self._send(
                200,
                {
                    "status": "ok",
                    "state_dir": self.server.runner.state_dir,
                    "jobs": states,
                },
            )
        elif parts == ["jobs"]:
            self._send(
                200,
                {"jobs": [job.summary() for job in self.server.runner.store.list()]},
            )
        elif len(parts) == 2 and parts[0] == "jobs":
            job = self._job_or_404(parts[1])
            if job is not None:
                self._send(200, job.to_json())
        elif len(parts) == 3 and parts[:1] == ["jobs"] and parts[2] == "report":
            job = self._job_or_404(parts[1])
            if job is None:
                return
            if job.report is None:
                self._error(
                    409, f"job {job.id} is {job.state}; no report available yet"
                )
            else:
                self._send(200, job.report)
        else:
            self._error(404, f"no such endpoint: GET {self.path}")

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if parts == ["shutdown"]:
            self._send(200, {"status": "shutting down"})
            self.server.request_shutdown()
        elif parts == ["jobs"]:
            payload = self._read_json()
            if payload is None:
                return
            kind = payload.get("kind")
            params = payload.get("params", {})
            if kind not in JOB_KINDS:
                self._error(
                    400,
                    f"job kind must be one of {', '.join(JOB_KINDS)} "
                    f"(got {kind!r})",
                )
                return
            if not isinstance(params, dict):
                self._error(400, '"params" must be a JSON object')
                return
            job = self.server.runner.submit(str(kind), params)
            self._send(201, job.to_json())
        elif len(parts) == 3 and parts[0] == "jobs" and parts[2] in ("cancel", "resume"):
            try:
                if parts[2] == "cancel":
                    job = self.server.runner.cancel(parts[1])
                else:
                    job = self.server.runner.resume(parts[1])
            except JobError as error:
                status = 404 if "unknown job" in str(error) else 409
                self._error(status, str(error))
                return
            self._send(200, job.to_json())
        else:
            self._error(404, f"no such endpoint: POST {self.path}")


def serve(
    state_dir: str,
    port: int = 0,
    host: str = "127.0.0.1",
    *,
    max_workers: int = 2,
    quiet: bool = False,
) -> MigrationService:
    """Boot the daemon and serve until ``/shutdown`` or SIGINT.

    Prints the bound address (``port=0`` picks a free port) and the jobs
    recovered from a previous daemon's state, then blocks in
    ``serve_forever``.  Returns the (stopped) service, mostly for tests.
    """
    service = MigrationService(
        state_dir, (host, port), max_workers=max_workers, quiet=quiet
    )
    print(
        f"repro service listening on http://{host}:{service.port} "
        f"(state: {service.runner.state_dir})",
        flush=True,
    )
    for job in service.recovered:
        print(f"recovered {job.id}: running -> interrupted (resumable)", flush=True)
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        service.runner.close(wait=False)
    finally:
        service.server_close()
    return service


__all__ = ["MigrationService", "serve"]
