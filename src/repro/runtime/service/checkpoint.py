"""Checkpoint manifests: resume a sharded run at the first unfinished shard.

A sharded execution's natural checkpoint unit is the per-shard spill file —
framed, fingerprint-validated, self-describing (see
:mod:`repro.runtime.sharded`).  :class:`ShardCheckpoint` manages a directory
holding those spills plus a small ``checkpoint.json`` manifest:

.. code-block:: json

    {
      "kind": "repro_shard_checkpoint",
      "plan_fingerprint": "1f6a…",
      "shards": 8,
      "chunk_size": 1000,
      "records": 40000,
      "completed": { "0": { "shard": 0, "chunks": 5, "records": 5000,
                            "batches": 12, "per_table_rows": { "…": 123 } } }
    }

The manifest records the run *parameters* (so a resume against a different
plan, shard count, chunk size or document silently producing garbage is
impossible — it raises instead) and, incrementally, the end manifest of each
completed shard.  Completion truth, however, is the spill file itself: at
:meth:`ShardCheckpoint.begin` every present spill is fully replayed through
the validated framing (:func:`~repro.runtime.sharded.validate_spill`), so a
shard counts as done even if the driver was killed between writing the spill
and updating ``checkpoint.json`` — and a partially-written spill from a
killed worker fails validation and is re-executed.

Both the daemon's job runner and the one-shot CLI (``repro run --resume``)
use this class; :func:`~repro.runtime.sharded.shard_execute` only sees its
``directory`` / ``begin`` / ``mark_complete`` / ``finish`` surface.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional

from ..sharded import ShardError, _spill_path, validate_spill

CHECKPOINT_MANIFEST_NAME = "checkpoint.json"

_CHECKPOINT_KIND = "repro_shard_checkpoint"

#: The run parameters a resume must reproduce exactly.
_PARAM_KEYS = ("plan_fingerprint", "shards", "chunk_size", "records")


class ShardCheckpoint:
    """A directory of shard spills plus the manifest that makes them resumable.

    One instance belongs to one job (one ``shard_execute`` call at a time);
    the directory is created lazily at :meth:`begin`.
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory
        self._state: Optional[Dict[str, object]] = None

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.directory, CHECKPOINT_MANIFEST_NAME)

    # -------------------------------------------------------------- queries
    def load(self) -> Optional[Dict[str, object]]:
        """The stored manifest, or ``None`` when absent or unreadable.

        A corrupt manifest is treated as "no checkpoint" (the spills it
        described are unusable without its parameters), never as an error.
        """
        try:
            with open(self.manifest_path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(payload, dict) or payload.get("kind") != _CHECKPOINT_KIND:
            return None
        return payload

    def completed_indices(self) -> Dict[int, Dict[str, object]]:
        """Completed shards recorded so far (manifest only, no revalidation)."""
        stored = self._state if self._state is not None else self.load()
        if stored is None:
            return {}
        completed = stored.get("completed") or {}
        return {int(index): manifest for index, manifest in completed.items()}  # type: ignore[union-attr]

    # ------------------------------------------------------------ lifecycle
    def begin(
        self,
        *,
        plan_fingerprint: str,
        shards: int,
        chunk_size: int,
        records: int,
        resume: bool,
    ) -> Dict[int, Dict[str, object]]:
        """Open the checkpoint for one run; returns the completed shards.

        Fresh runs (``resume=False``, or no usable manifest) clear any
        leftover spills and start an empty manifest.  Resumed runs validate
        the stored parameters against this run's (mismatch raises
        :class:`~repro.runtime.sharded.ShardError` — resuming under changed
        parameters would interleave incompatible spills), then replay every
        present spill end to end: the valid ones are returned as
        ``{shard_index: end_manifest}`` and skipped by the map stage, the
        invalid ones (truncated by a killed worker) are deleted and re-run.
        """
        os.makedirs(self.directory, exist_ok=True)
        params: Dict[str, object] = {
            "plan_fingerprint": plan_fingerprint,
            "shards": shards,
            "chunk_size": chunk_size,
            "records": records,
        }
        stored = self.load() if resume else None
        if resume and stored is not None:
            mismatched = [
                key for key in _PARAM_KEYS if stored.get(key) != params[key]
            ]
            if mismatched:
                raise ShardError(
                    f"checkpoint {self.manifest_path} was written by a run with "
                    f"different {', '.join(mismatched)} "
                    f"(stored {[stored.get(k) for k in mismatched]}, this run "
                    f"{[params[k] for k in mismatched]}); re-run without "
                    f"--resume to start fresh"
                )
        if stored is None:
            self._clear_spills()
            self._state = {"kind": _CHECKPOINT_KIND, **params, "completed": {}}
            self._write()
            return {}
        completed: Dict[int, Dict[str, object]] = {}
        for index in range(shards):
            path = _spill_path(self.directory, index)
            if not os.path.exists(path):
                continue
            try:
                completed[index] = validate_spill(
                    path, plan_fingerprint=plan_fingerprint, shard_index=index
                )
            except ShardError:
                # A worker died mid-write: the spill is partial. Remove it so
                # the map stage re-executes the shard from scratch.
                try:
                    os.remove(path)
                except OSError:
                    pass
        self._state = {
            "kind": _CHECKPOINT_KIND,
            **params,
            "completed": {str(i): m for i, m in sorted(completed.items())},
        }
        self._write()
        return completed

    def mark_complete(self, index: int, manifest: Dict[str, object]) -> None:
        """Record one shard's end manifest; atomically rewrites the file."""
        assert self._state is not None, "begin() was not called"
        self._state["completed"][str(index)] = manifest  # type: ignore[index]
        self._write()

    def finish(self) -> None:
        """The run completed: drop the spills and the manifest.

        The directory itself is left in place (it is caller-owned — the
        service keeps one per job).
        """
        self._clear_spills()
        try:
            os.remove(self.manifest_path)
        except OSError:
            pass
        self._state = None

    # ------------------------------------------------------------ internals
    def _clear_spills(self) -> None:
        if not os.path.isdir(self.directory):
            return
        for name in os.listdir(self.directory):
            if name.startswith("shard-") and name.endswith(".spill"):
                try:
                    os.remove(os.path.join(self.directory, name))
                except OSError:
                    pass

    def _write(self) -> None:
        temporary = f"{self.manifest_path}.tmp.{os.getpid()}"
        with open(temporary, "w", encoding="utf-8") as handle:
            json.dump(self._state, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(temporary, self.manifest_path)
