"""Durable job records: the state the daemon can lose and still recover.

Every job the service accepts is persisted as one JSON file under
``<state-dir>/jobs/<id>.json`` — parameters, state, timestamps, progress,
error, and (once finished) the full report.  Writes are atomic
(write-then-rename), so a killed daemon never leaves a truncated record.

The state machine::

    queued ──► running ──► succeeded
                  │  │
                  │  └────► failed
                  ▼
            interrupted            (daemon died while the job ran)

    queued/running ──► cancelled   (explicit cancel)
    interrupted/failed/cancelled ──► queued   (explicit resume)

``interrupted`` is assigned at *recovery*: when a restarted daemon loads a
job that was ``running`` when the previous process died, the job cannot
still be running — its checkpoint directory, however, survives, so a
resume re-enqueues it and the sharded executor skips every shard whose
spill file validates (:mod:`repro.runtime.service.checkpoint`).
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

JOB_STATES = (
    "queued",
    "running",
    "succeeded",
    "failed",
    "cancelled",
    "interrupted",
)

#: States a job can never leave except through an explicit resume.
TERMINAL_STATES = frozenset({"succeeded", "failed", "cancelled", "interrupted"})

#: Job kinds the runner knows how to execute.
JOB_KINDS = ("learn", "run", "migrate", "verify")


class JobError(Exception):
    """A user-facing job-store error (unknown job, invalid transition, ...)."""


@dataclass
class Job:
    """One unit of service work: parameters in, state + report out."""

    id: str
    kind: str
    params: Dict[str, object]
    state: str = "queued"
    created_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    error: Optional[str] = None
    error_detail: Optional[str] = None
    """Full daemon-side traceback of a failure (``error`` is the one-liner);
    persisted and returned by ``GET /jobs/<id>`` for debuggability."""

    report: Optional[Dict[str, object]] = None
    progress: Dict[str, object] = field(default_factory=dict)
    provenance: Optional[str] = None
    """Where the plan came from (warm memo, cache hit, synthesized, ...)."""

    resumes: int = 0
    """How many times this job has been re-enqueued after an interruption."""

    def to_json(self) -> Dict[str, object]:
        return {
            "kind": "repro_service_job",
            "id": self.id,
            "job_kind": self.kind,
            "params": self.params,
            "state": self.state,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "error_detail": self.error_detail,
            "report": self.report,
            "progress": self.progress,
            "provenance": self.provenance,
            "resumes": self.resumes,
        }

    @staticmethod
    def from_json(payload: Dict[str, object]) -> "Job":
        if payload.get("kind") != "repro_service_job":
            raise JobError("payload is not a serialized service job")
        return Job(
            id=str(payload["id"]),
            kind=str(payload["job_kind"]),
            params=dict(payload.get("params") or {}),  # type: ignore[arg-type]
            state=str(payload.get("state", "queued")),
            created_at=float(payload.get("created_at") or 0.0),  # type: ignore[arg-type]
            started_at=payload.get("started_at"),  # type: ignore[arg-type]
            finished_at=payload.get("finished_at"),  # type: ignore[arg-type]
            error=payload.get("error"),  # type: ignore[arg-type]
            error_detail=payload.get("error_detail"),  # type: ignore[arg-type]
            report=payload.get("report"),  # type: ignore[arg-type]
            progress=dict(payload.get("progress") or {}),  # type: ignore[arg-type]
            provenance=payload.get("provenance"),  # type: ignore[arg-type]
            resumes=int(payload.get("resumes") or 0),  # type: ignore[arg-type]
        )

    def summary(self) -> Dict[str, object]:
        """The compact listing entry (``GET /jobs``)."""
        return {
            "id": self.id,
            "job_kind": self.kind,
            "state": self.state,
            "created_at": self.created_at,
            "progress": self.progress,
            "error": self.error,
        }


class JobStore:
    """The ``jobs/`` directory of a service state dir, with atomic writes.

    Thread-safe: the runner's worker threads and the HTTP handler threads
    share one store.  Each job is its own file, so two jobs never contend on
    a write, and a crashed daemon recovers by listing the directory.
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self._load_all()

    # ------------------------------------------------------------- creation
    def create(self, kind: str, params: Dict[str, object]) -> Job:
        if kind not in JOB_KINDS:
            raise JobError(
                f"unknown job kind {kind!r} (available: {', '.join(JOB_KINDS)})"
            )
        with self._lock:
            number = 1 + max(
                (int(job_id.split("-")[-1]) for job_id in self._jobs), default=0
            )
            job = Job(
                id=f"job-{number:06d}",
                kind=kind,
                params=params,
                created_at=time.time(),
            )
            self._jobs[job.id] = job
            self._write(job)
        return job

    # -------------------------------------------------------------- queries
    def get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise JobError(f"unknown job {job_id!r}")
        return job

    def list(self) -> List[Job]:
        with self._lock:
            return sorted(self._jobs.values(), key=lambda job: job.id)

    # -------------------------------------------------------------- updates
    def save(self, job: Job) -> None:
        with self._lock:
            self._jobs[job.id] = job
            self._write(job)

    def recover(self) -> List[Job]:
        """Mark jobs that were ``running`` when the daemon died as interrupted.

        Called once at daemon startup, *before* the runner accepts work: a
        loaded job in state ``running`` cannot actually be running (this is
        a fresh process), so its true state is "interrupted with a surviving
        checkpoint".  Returns the jobs transitioned.
        """
        interrupted: List[Job] = []
        with self._lock:
            for job in self._jobs.values():
                if job.state == "running":
                    job.state = "interrupted"
                    job.error = "daemon exited while the job was running"
                    self._write(job)
                    interrupted.append(job)
        return interrupted

    # ------------------------------------------------------------ internals
    def _path(self, job_id: str) -> str:
        return os.path.join(self.directory, f"{job_id}.json")

    def _write(self, job: Job) -> None:
        path = self._path(job.id)
        temporary = f"{path}.tmp.{os.getpid()}"
        with open(temporary, "w", encoding="utf-8") as handle:
            json.dump(job.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(temporary, path)

    def _load_all(self) -> None:
        for name in sorted(os.listdir(self.directory)):
            if not name.endswith(".json") or ".tmp." in name:
                continue
            path = os.path.join(self.directory, name)
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    job = Job.from_json(json.load(handle))
            except (OSError, json.JSONDecodeError, JobError, KeyError, ValueError):
                # A truncated or foreign file must not wedge the daemon.
                continue
            self._jobs[job.id] = job
