"""The job runner: executes service jobs on a bounded worker pool.

One :class:`JobRunner` lives inside the daemon process and owns everything a
single CLI invocation would have had to rebuild from scratch:

* a warm :class:`~repro.runtime.plan_cache.PlanCache` *and* an in-memory plan
  memo — the second ``migrate`` job for the same spec costs a dictionary
  lookup, not a disk read, and never a synthesis;
* a warm :class:`~repro.runtime.context_store.ContextStore` for
  ``"incremental": true`` jobs, so edited specs re-synthesize only the
  affected tables;
* a :class:`~concurrent.futures.ThreadPoolExecutor` capping concurrent jobs
  (the *shard* parallelism inside one job still uses processes via
  :func:`~repro.runtime.sharded.shard_execute`);
* one checkpoint directory per job (``<state-dir>/checkpoints/<job-id>``),
  which is what makes an interrupted job resumable after a daemon restart.

Cancellation is cooperative: the HTTP handler sets the job's
:class:`threading.Event`, and the progress callback the runner threads into
``shard_execute`` raises :class:`JobCancelled` at the next shard boundary —
exactly the granularity the checkpoint records, so a cancelled job resumes
as cleanly as an interrupted one.
"""

from __future__ import annotations

import os
import shutil
import threading
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Tuple

from ..backends import OUTPUT_KIND, create_backend
from ..backends.base import ExecutionBackend
from ..backends.null import NullBackend
from ..executor import ExecutionReport, execute_plan
from ..plan import MigrationPlan
from ..plan_cache import PlanCache, spec_fingerprint
from ..sharded import ShardDegradedError, shard_execute
from ..streaming import DEFAULT_CHUNK_SIZE, stream_execute
from ..supervisor import RetryPolicy
from ..verify import read_target_indexes, read_target_rows, verify_rows
from .checkpoint import ShardCheckpoint
from .jobs import TERMINAL_STATES, Job, JobError, JobStore

#: Job states :meth:`JobRunner.resume` accepts.
RESUMABLE_STATES = frozenset({"interrupted", "failed", "cancelled"})


class JobCancelled(Exception):
    """Raised inside a worker thread when the job's cancel event is set."""


class JobRunner:
    """Execute service jobs against one state directory.

    Parameters
    ----------
    state_dir:
        Root of the daemon's durable state: ``jobs/`` (records),
        ``plan-cache/``, ``context/``, ``checkpoints/<job-id>/`` and
        ``outputs/``.
    max_workers:
        Concurrent jobs (default 2).  Each job may itself fan out into
        shard worker processes.
    """

    def __init__(self, state_dir: str, *, max_workers: int = 2) -> None:
        self.state_dir = os.path.abspath(state_dir)
        os.makedirs(self.state_dir, exist_ok=True)
        self.store = JobStore(os.path.join(self.state_dir, "jobs"))
        self.plan_cache = PlanCache(os.path.join(self.state_dir, "plan-cache"))
        self.context_dir = os.path.join(self.state_dir, "context")
        self._plans: Dict[str, MigrationPlan] = {}
        self._cancel_events: Dict[str, threading.Event] = {}
        self._lock = threading.Lock()
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, max_workers), thread_name_prefix="repro-job"
        )

    # ------------------------------------------------------------- lifecycle
    def start(self) -> List[Job]:
        """Recover persisted state and re-enqueue submitted-but-unstarted jobs.

        Jobs that were ``running`` when the previous daemon died become
        ``interrupted`` (an explicit resume re-enqueues them with their
        checkpoint); jobs that were still ``queued`` lost nothing and go
        straight back on the pool.  Returns the interrupted jobs.
        """
        interrupted = self.store.recover()
        for job in self.store.list():
            if job.state == "queued":
                self._enqueue(job)
        return interrupted

    def close(self, wait: bool = True) -> None:
        with self._lock:
            for event in self._cancel_events.values():
                event.set()
        self._executor.shutdown(wait=wait)

    # ------------------------------------------------------------ job intake
    def submit(self, kind: str, params: Dict[str, object]) -> Job:
        job = self.store.create(kind, params)
        self._enqueue(job)
        return job

    def cancel(self, job_id: str) -> Job:
        job = self.store.get(job_id)
        if job.state in TERMINAL_STATES:
            raise JobError(f"job {job_id} is already {job.state}; nothing to cancel")
        with self._lock:
            event = self._cancel_events.get(job_id)
        if event is not None:
            event.set()
        return self.store.get(job_id)

    def resume(self, job_id: str) -> Job:
        """Re-enqueue an interrupted/failed/cancelled job.

        The job keeps its checkpoint directory, so the sharded map stage
        skips every shard whose spill file validates.
        """
        job = self.store.get(job_id)
        if job.state not in RESUMABLE_STATES:
            raise JobError(
                f"job {job_id} is {job.state}; only "
                f"{', '.join(sorted(RESUMABLE_STATES))} jobs can be resumed"
            )
        job.state = "queued"
        job.error = None
        job.error_detail = None
        job.report = None
        job.finished_at = None
        job.resumes += 1
        self.store.save(job)
        self._enqueue(job)
        return job

    def _enqueue(self, job: Job) -> None:
        event = threading.Event()
        with self._lock:
            self._cancel_events[job.id] = event
        self._executor.submit(self._run_job, job.id, event)

    # ---------------------------------------------------------- job dispatch
    def _run_job(self, job_id: str, cancel_event: threading.Event) -> None:
        job = self.store.get(job_id)
        if job.state != "queued":  # raced with a cancel or a duplicate enqueue
            return
        if cancel_event.is_set():
            job.state = "cancelled"
            job.error = "cancelled before starting"
            job.finished_at = time.time()
            self.store.save(job)
            return
        job.state = "running"
        job.started_at = time.time()
        self.store.save(job)
        try:
            if job.kind == "learn":
                report = self._run_learn(job)
            elif job.kind in ("run", "migrate"):
                report = self._run_migration(job, cancel_event)
            elif job.kind == "verify":
                report = self._run_verify(job)
            else:
                raise JobError(f"unknown job kind {job.kind!r}")
        except JobCancelled:
            job.state = "cancelled"
            job.error = "cancelled"
        except ShardDegradedError as error:
            # A degraded sharded run is a failure, but a *structured* one:
            # the partial report (with its shard_failures list) is kept so
            # GET /jobs/<id>/report shows exactly which shards died and why,
            # and the checkpoint still holds every completed shard.
            job.state = "failed"
            job.error = f"{type(error).__name__}: {error}"
            job.error_detail = "\n".join(
                failure.traceback or failure.describe() for failure in error.failures
            ) or traceback.format_exc()
            job.report = error.report.to_json()
        except Exception as error:  # noqa: BLE001 — any failure ends the job
            job.state = "failed"
            job.error = f"{type(error).__name__}: {error}"
            job.error_detail = traceback.format_exc()
        else:
            job.state = "succeeded"
            job.report = report
        job.finished_at = time.time()
        self.store.save(job)
        with self._lock:
            self._cancel_events.pop(job_id, None)

    # ----------------------------------------------------------------- specs
    def _build_spec(self, job: Job):
        # Imported lazily: repro.runtime.cli imports this package for the
        # `serve` subcommand, so a module-level import would be circular.
        from ..cli import Spec

        params = job.params
        if params.get("spec_path"):
            return Spec.load(str(params["spec_path"]))
        payload = params.get("spec")
        if not isinstance(payload, dict):
            raise JobError(
                'job params need an inline "spec" object or a "spec_path"'
            )
        base_dir = str(params.get("base_dir") or self.state_dir)
        return Spec(dict(payload), base_dir)

    def _acquire_plan(
        self, job: Job, spec, *, allow_learn: bool
    ) -> Tuple[MigrationPlan, str]:
        """Plan for a job: explicit file > warm memo > disk cache > synthesis."""
        plan_path = job.params.get("plan")
        if plan_path:
            path = spec.resolve(str(plan_path))
            return MigrationPlan.load(path), f"loaded from {path}"
        migration_spec = spec.migration_spec()
        fingerprint = spec_fingerprint(migration_spec)
        with self._lock:
            memoized = self._plans.get(fingerprint)
        if memoized is not None:
            return memoized, "warm (daemon memory)"
        cached = self.plan_cache.load(migration_spec)
        if cached is not None:
            with self._lock:
                self._plans[fingerprint] = cached
            return cached, "cache hit (daemon plan cache)"
        if not allow_learn:
            raise JobError(
                'run jobs need a "plan" param or a previously learned spec '
                "(submit a learn or migrate job first)"
            )
        jobs = int(job.params.get("jobs") or 1)
        if job.params.get("incremental"):
            from ..context_store import ContextStore
            from ..incremental import learn_incremental

            store = ContextStore(self.context_dir)
            plan, report = learn_incremental(migration_spec, store, jobs=jobs)
            synthesized = len(report.tables_synthesized)
            provenance = (
                f"incremental ({synthesized}/{report.tables_total} tables "
                f"synthesized)"
            )
        else:
            plan = MigrationPlan.learn(migration_spec, jobs=jobs)
            provenance = "synthesized"
        plan.source_format = spec.format
        self.plan_cache.store(migration_spec, plan)
        with self._lock:
            self._plans[fingerprint] = plan
        return plan, provenance

    # ---------------------------------------------------------------- learn
    def _run_learn(self, job: Job) -> Dict[str, object]:
        spec = self._build_spec(job)
        plan, provenance = self._acquire_plan(job, spec, allow_learn=True)
        job.provenance = provenance
        plans_dir = os.path.join(self.state_dir, "plans")
        os.makedirs(plans_dir, exist_ok=True)
        plan_path = os.path.join(plans_dir, f"{job.id}.plan.json")
        plan.save(plan_path)
        return {
            "kind": "repro_learn_report",
            "plan_fingerprint": plan.content_fingerprint(),
            "tables": [t.name for t in plan.execution_order()],
            "plan_path": plan_path,
            "provenance": provenance,
        }

    # -------------------------------------------------------------- run/migrate
    def _run_migration(
        self, job: Job, cancel_event: threading.Event
    ) -> Dict[str, object]:
        spec = self._build_spec(job)
        plan, provenance = self._acquire_plan(
            job, spec, allow_learn=(job.kind == "migrate")
        )
        job.provenance = provenance
        self.store.save(job)
        if plan.source_format and not spec.get("format") and not spec.get("dataset"):
            spec.default_format = plan.source_format
        params = job.params
        dry_run = bool(params.get("dry_run"))
        backend, output = self._make_backend(job, spec, dry_run=dry_run)
        delay = float(params.get("shard_delay") or 0.0)

        def progress(done: int, total: int) -> None:
            if cancel_event.is_set():
                raise JobCancelled()
            job.progress = {"shards_done": done, "shards_total": total}
            self.store.save(job)
            if delay:
                time.sleep(delay)

        try:
            report = self._execute(job, spec, plan, backend, progress)
        except Exception:
            self._discard_output(backend, output)
            raise
        report.dry_run = dry_run
        if hasattr(backend, "close"):
            backend.close()
        payload = report.to_json()
        payload["output"] = output
        payload["provenance"] = provenance
        return payload

    def _execute(
        self, job: Job, spec, plan: MigrationPlan, backend: ExecutionBackend, progress
    ) -> ExecutionReport:
        params = job.params
        chunk_size = int(params.get("chunk_size") or spec.get_int("chunk_size", DEFAULT_CHUNK_SIZE))
        workers = params.get("workers", spec.get("workers"))
        workers = None if workers is None else int(workers)
        if params.get("streaming"):
            return stream_execute(
                plan, spec.document_chunks(chunk_size), backend, workers=workers or 0
            )
        if params.get("whole_tree"):
            return execute_plan(plan, spec.full_document(), backend)
        raw_shards = params.get("shards") or spec.get("shards") or 4
        if isinstance(raw_shards, str) and raw_shards.strip().lower() == "auto":
            shards: object = "auto"
        else:
            shards = int(raw_shards)
        checkpoint = ShardCheckpoint(
            os.path.join(self.state_dir, "checkpoints", job.id)
        )
        shard_timeout = params.get("shard_timeout")
        shard_retries = params.get("shard_retries")
        retry_policy = (
            RetryPolicy(max_attempts=max(1, int(shard_retries) + 1))
            if shard_retries is not None
            else None
        )
        remote_workers = params.get("remote_workers") or spec.get("remote_workers")
        transport = None
        if remote_workers:
            from ..transport import SocketTransport

            if isinstance(remote_workers, str):
                addresses = [
                    piece.strip() for piece in remote_workers.split(",") if piece.strip()
                ]
            else:
                addresses = [str(piece) for piece in remote_workers]
            transport = SocketTransport(addresses)
        try:
            return shard_execute(
                plan,
                spec.sharded_source(),
                backend,
                shards=shards,
                chunk_size=chunk_size,
                workers=workers,
                checkpoint=checkpoint,
                resume=job.resumes > 0,
                progress=progress,
                retry_policy=retry_policy,
                shard_timeout=None if shard_timeout is None else float(shard_timeout),
                faults=params.get("inject_faults"),
                transport=transport,
            )
        finally:
            if transport is not None:
                transport.close()

    def _make_backend(
        self, job: Job, spec, *, dry_run: bool
    ) -> Tuple[ExecutionBackend, Optional[str]]:
        if dry_run:
            return NullBackend(), None
        from ..backends import BACKEND_NAMES

        backend_name = str(job.params.get("backend") or spec.get("backend") or "sqlite")
        if backend_name not in BACKEND_NAMES:
            raise JobError(
                f"unknown backend {backend_name!r} "
                f"(available: {', '.join(BACKEND_NAMES)})"
            )
        kind = OUTPUT_KIND[backend_name]
        explicit = job.params.get("output") or spec.get("output")
        if kind is None:
            output = None
        elif explicit:
            output = spec.resolve(str(explicit))
            if os.path.exists(output) and not job.params.get("force") and job.resumes == 0:
                raise JobError(
                    f"output {output} already exists (pass \"force\": true)"
                )
        else:
            outputs = os.path.join(self.state_dir, "outputs")
            os.makedirs(outputs, exist_ok=True)
            output = os.path.join(outputs, job.id + (".db" if kind == "file" else ""))
        if output is not None and os.path.exists(output):
            # A resumed job's earlier reduce may have left a partial target;
            # the reduce always restarts from the spills, so clear it.
            self._remove_output(output)
        options = {}
        if job.params.get("columnar_format"):
            options["file_format"] = job.params["columnar_format"]
        return create_backend(backend_name, output, **options), output

    @staticmethod
    def _remove_output(output: str) -> None:
        if os.path.isdir(output):
            shutil.rmtree(output, ignore_errors=True)
        elif os.path.exists(output):
            os.remove(output)

    def _discard_output(self, backend: ExecutionBackend, output: Optional[str]) -> None:
        """Never leave a partial target behind a failed or cancelled job."""
        try:
            if hasattr(backend, "close"):
                backend.close()
        except Exception:  # noqa: BLE001 — cleanup must not mask the cause
            pass
        if output is not None:
            self._remove_output(output)

    # --------------------------------------------------------------- verify
    def _run_verify(self, job: Job) -> Dict[str, object]:
        params = dict(job.params)
        expected: Optional[Dict[str, int]] = None
        if params.get("job"):
            source = self.store.get(str(params["job"]))
            if source.state != "succeeded" or source.report is None:
                raise JobError(
                    f"job {source.id} is {source.state}; verify needs a "
                    f"succeeded run/migrate job"
                )
            params.setdefault("backend", source.report.get("backend"))
            params.setdefault("output", source.report.get("output"))
            for key in ("spec", "spec_path", "base_dir", "plan"):
                if key in source.params:
                    params.setdefault(key, source.params[key])
            counts = source.report.get("per_table_rows")
            if isinstance(counts, dict):
                expected = {str(t): int(n) for t, n in counts.items()}
        if isinstance(params.get("expect"), dict):
            expected = {str(t): int(n) for t, n in params["expect"].items()}
        verify_job = Job(id=job.id, kind="verify", params=params)
        spec = self._build_spec(verify_job)
        plan, provenance = self._acquire_plan(verify_job, spec, allow_learn=True)
        job.provenance = provenance
        if expected is None:
            # Re-derive the expected counts with the dry-run counting pass.
            counting = NullBackend()
            execute_plan(plan, spec.full_document(), counting)
            expected = dict(counting.counts)
        backend_name = str(params.get("backend") or spec.get("backend") or "")
        output = params.get("output") or spec.get("output")
        if output is not None:
            output = spec.resolve(str(output))
        if not backend_name:
            raise JobError('verify needs a "backend" (and its "output" target)')
        rows = read_target_rows(backend_name, output, plan.schema)
        # SQL targets also prove their secondary FK indexes exist; backends
        # without SQL indexes return None and skip the check.
        index_names = read_target_indexes(backend_name, output)
        report = verify_rows(plan.schema, rows, expected, index_names=index_names)
        if not report.passed:
            # A failed verification is a *finding*, not a crashed job — the
            # job succeeds and the report carries the verdict — but surface
            # the verdict in the job record's error field for listings.
            job.error = "verification failed"
        payload = report.to_json()
        payload["backend"] = backend_name
        payload["output"] = output
        return payload


__all__ = ["JobCancelled", "JobRunner", "RESUMABLE_STATES"]
