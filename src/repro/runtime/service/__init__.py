"""The migration service: a resident daemon with operations-grade jobs.

``repro serve --port N --state-dir D`` runs a long-lived process that keeps
one warm :class:`~repro.runtime.plan_cache.PlanCache` +
:class:`~repro.runtime.context_store.ContextStore` across jobs and executes
learn/run/migrate/verify jobs concurrently on a bounded worker pool, over a
local HTTP/JSON API (stdlib ``http.server`` — no new dependencies).

The package splits along the job lifecycle:

* :mod:`~repro.runtime.service.checkpoint` — :class:`ShardCheckpoint`, the
  per-job manifest of completed shard spill files.  A spill that replays
  cleanly (fingerprint-validated framing, counts matching its end manifest)
  proves its shard finished, however the writer died — so a killed job or a
  killed daemon resumes at the first unfinished shard;
* :mod:`~repro.runtime.service.jobs` — :class:`Job` / :class:`JobStore`:
  durable job records under ``<state-dir>/jobs/``, recovered at daemon
  restart (jobs that were ``running`` when the process died surface as
  ``interrupted`` and can be resumed);
* :mod:`~repro.runtime.service.runner` — :class:`JobRunner`: the bounded
  thread pool that executes jobs through the same code paths as the CLI
  (sharded map/reduce, streaming, whole-tree; dry runs; verification),
  with cooperative cancellation between shards;
* :mod:`~repro.runtime.service.server` — :class:`MigrationService` +
  :func:`serve`: the HTTP surface (submit, poll, report, cancel, resume,
  health, shutdown).

The API surface, job lifecycle, checkpoint format and verify semantics are
documented in ``docs/service.md``.
"""

from .checkpoint import CHECKPOINT_MANIFEST_NAME, ShardCheckpoint
from .jobs import JOB_STATES, TERMINAL_STATES, Job, JobStore
from .runner import JobCancelled, JobRunner
from .server import MigrationService, serve

__all__ = [
    "CHECKPOINT_MANIFEST_NAME",
    "ShardCheckpoint",
    "JOB_STATES",
    "TERMINAL_STATES",
    "Job",
    "JobStore",
    "JobCancelled",
    "JobRunner",
    "MigrationService",
    "serve",
]
