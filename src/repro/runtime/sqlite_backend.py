"""Backward-compatibility shim — the SQLite backend moved.

The backend seam was extracted into :mod:`repro.runtime.backends` (one module
per backend plus a name registry); the SQLite implementation now lives in
:mod:`repro.runtime.backends.sqlite`.  This module re-exports the public
names so existing imports keep working, but emits a
:class:`DeprecationWarning` on import — switch to
``repro.runtime.backends`` (or ``repro.runtime.backends.sqlite``).
"""

import warnings

from .backends.sqlite import (  # noqa: F401
    SQLiteBackend,
    SQLiteBackendError,
    database_matches_sqlite,
    load_database,
)

warnings.warn(
    "repro.runtime.sqlite_backend is deprecated; import from "
    "repro.runtime.backends (or repro.runtime.backends.sqlite) instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = [
    "SQLiteBackend",
    "SQLiteBackendError",
    "database_matches_sqlite",
    "load_database",
]
