"""On-disk plan cache keyed by a fingerprint of the migration spec.

Synthesis is the expensive step of the pipeline — seconds to minutes per
table — while plan execution is linear in the data.  The cache makes the
"learn once" economics real for repeated CLI invocations: a
:class:`~repro.migration.engine.MigrationSpec` is fingerprinted over its
target schema, example document and example tables, and the learned
:class:`~repro.runtime.plan.MigrationPlan` is stored as JSON under that
fingerprint.  Any change to the spec (schema, example document content or
example rows) changes the fingerprint and forces a fresh synthesis; the full
dataset never participates in the fingerprint, so one plan serves any number
of documents with the learned shape.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Iterator, Optional

from ..dsl.serialize import schema_to_json
from ..hdt.tree import HDT
from ..migration.engine import MigrationSpec
from .plan import MigrationPlan

DEFAULT_CACHE_DIR = ".repro-cache"


def tree_fingerprint_items(tree: HDT) -> Iterator[str]:
    """A canonical line-per-node rendering of a tree (preorder, identity-free).

    Thin delegate kept for backwards compatibility — the canonical
    implementation lives on :meth:`repro.hdt.tree.HDT.fingerprint_items` so
    the synthesis layer can address trees without importing the runtime.
    """
    return tree.fingerprint_items()


def spec_fingerprint(spec: MigrationSpec) -> str:
    """A stable hex digest identifying a migration spec's *learnable content*."""
    digest = hashlib.sha256()
    digest.update(
        json.dumps(schema_to_json(spec.schema), sort_keys=True).encode("utf-8")
    )
    for item in tree_fingerprint_items(spec.example_tree):
        digest.update(item.encode("utf-8"))
        digest.update(b"\n")
    for example in spec.table_examples:
        digest.update(example.table.encode("utf-8"))
        digest.update(repr(example.rows).encode("utf-8"))
    return digest.hexdigest()


class PlanCache:
    """A directory of ``<fingerprint>.plan.json`` files.

    Examples
    --------
    >>> import tempfile
    >>> from repro.datasets import dblp
    >>> spec = dblp.dataset(scale=2).migration_spec()
    >>> cache = PlanCache(tempfile.mkdtemp())
    >>> plan = cache.learn_or_load(spec)       # cold: synthesizes and stores
    >>> cache.load(spec) is not None           # warm: served from disk
    True
    """

    def __init__(self, directory: str = DEFAULT_CACHE_DIR) -> None:
        self.directory = directory

    def path_for(self, fingerprint: str) -> str:
        return os.path.join(self.directory, f"{fingerprint}.plan.json")

    def load(self, spec: MigrationSpec) -> Optional[MigrationPlan]:
        """The cached plan for this spec, or ``None`` on a miss.

        A corrupt or unreadable cache file is treated as a miss (and removed)
        rather than an error: the cache must never be able to wedge the
        pipeline — the worst case is one redundant synthesis run.
        """
        path = self.path_for(spec_fingerprint(spec))
        if not os.path.exists(path):
            return None
        try:
            return MigrationPlan.load(path)
        except Exception:
            try:
                os.remove(path)
            except OSError:
                pass
            return None

    def store(self, spec: MigrationSpec, plan: MigrationPlan) -> str:
        """Persist a plan under the spec's fingerprint; returns the file path."""
        fingerprint = spec_fingerprint(spec)
        os.makedirs(self.directory, exist_ok=True)
        path = self.path_for(fingerprint)
        plan.metadata.setdefault("spec_fingerprint", fingerprint)
        # Write-then-rename so an interrupted store never leaves a truncated
        # cache entry behind.
        temporary = f"{path}.tmp.{os.getpid()}"
        plan.save(temporary)
        os.replace(temporary, path)
        return path

    def learn_or_load(
        self, spec: MigrationSpec, engine=None, *, context_store=None
    ) -> MigrationPlan:
        """Return the cached plan, or synthesize, cache and return a fresh one.

        With a :class:`~repro.runtime.context_store.ContextStore`, the miss
        path learns *incrementally* — a near-miss (edited spec over the same
        example document) re-synthesizes only the affected tables and the
        result is cached under the new fingerprint as usual.
        """
        cached = self.load(spec)
        if cached is not None:
            return cached
        plan = MigrationPlan.learn(spec, engine, context_store=context_store)
        self.store(spec, plan)
        return plan
