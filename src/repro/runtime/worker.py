"""The ``repro worker`` daemon: a remote shard executor.

A :class:`ShardWorker` listens on a TCP or Unix-domain socket and serves
shard requests from a :class:`~repro.runtime.transport.SocketTransport`
driver.  The conversation per connection (docs/distributed.md#wire-protocol):

1. ``("hello", {magic, fingerprint})`` — the driver announces the protocol
   version and the *content fingerprint* of the plan it is about to run.
   The worker answers ``("ready", {magic, have_plan})``; if it has never
   seen that fingerprint the driver ships the plan in a ``("plan", plan)``
   frame, and the worker **recomputes the fingerprint from the received
   plan** — a mismatch (stale, tampered, or version-skewed plan) is
   answered with ``("reject", {reason})`` and the connection closed, which
   the driver treats as permanently condemning this worker
   (docs/distributed.md#handshake-and-fingerprint-rules).
2. ``("shard", {spec, source, chunk_size, faults, attempt, policy})`` —
   the worker runs :func:`~repro.runtime.sharded.execute_shard` over the
   shard's record window into a *local temporary spill file* (full fused
   map-stage reuse: per-shard dedup, namespaced surrogate keys, framed
   fingerprint-stamped spill), then streams the finished file back as a
   ``("spill", {size, crc32, records})`` announcement followed by
   ``("data", bytes)`` frames and a ``("done", {})`` terminator.  Failures
   travel back as ``("error", {type, error, retryable, traceback})``,
   classified with the driver's own shipped
   :class:`~repro.runtime.supervisor.RetryPolicy` so both sides agree on
   what is worth retrying.

The worker holds no reducer state and writes nothing outside its scratch
directory: every completed shard is fully accounted for by the spill bytes
it streams back, which the driver re-validates end to end before trusting
them.  Plans and their compiled executions are cached per fingerprint, so a
fleet of shards under one plan compiles once per worker.

Wire-path fault injection (``stall`` / ``corrupt_frame`` / ``drop_conn``
rules, docs/distributed.md#fault-injection) hooks into the streaming loop
via :meth:`FaultContext.wire_frame`; a ``kill`` rule in a remote worker
terminates the whole daemon with ``os._exit`` — remote workers *are* the
worker process.

Security model: frames carry pickles, so bind only to loopback, a Unix
socket, or a fully trusted network (docs/distributed.md#security-model).
"""

from __future__ import annotations

import os
import shutil
import socket
import tempfile
import threading
import traceback
import zlib
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from .faults import FaultContext, FaultPlan
from .supervisor import RetryPolicy
from .transport import (
    SPILL_FRAME_BYTES,
    WIRE_MAGIC,
    ConnectionLost,
    FrameError,
    TransportError,
    encode_frame,
    format_address,
    parse_address,
    recv_frame,
    send_frame,
)

__all__ = ["ShardWorker", "run_worker"]

#: Plans (and their compiled executions) cached per worker, LRU-evicted.
MAX_CACHED_PLANS = 8


class ShardWorker:
    """A socket server executing shards for remote drivers.

    ``address`` is ``host:port`` (``port`` 0 picks a free port) or a Unix
    socket path / ``unix:path``.  ``expect_fingerprint`` pins the worker to
    one plan: any other fingerprint is rejected at handshake — useful for
    fleets that must never run an unvetted plan.
    """

    def __init__(
        self,
        address: str = "127.0.0.1:0",
        *,
        expect_fingerprint: Optional[str] = None,
    ) -> None:
        self._family, self._target = parse_address(address)
        self.expect_fingerprint = expect_fingerprint
        self._server: Optional[socket.socket] = None
        self._scratch: Optional[str] = None
        self._threads: list = []
        self._lock = threading.Lock()
        self._plans: "OrderedDict[str, Tuple[Any, Any]]" = OrderedDict()
        self._stopping = threading.Event()
        self.address: Optional[str] = None
        self.shards_served = 0

    # ------------------------------------------------------------ lifecycle

    def start(self) -> str:
        """Bind, start the accept loop in a daemon thread, return the bound
        address (with the kernel-assigned port resolved)."""
        if self._server is not None:
            raise RuntimeError("worker already started")
        if self._family == "unix":
            server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            server.bind(self._target)
            self.address = format_address("unix", self._target)
        else:
            server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            server.bind(self._target)
            host, port = server.getsockname()[:2]
            self.address = format_address("tcp", (host, port))
        server.listen(16)
        self._server = server
        self._scratch = tempfile.mkdtemp(prefix="repro-worker-")
        acceptor = threading.Thread(target=self._accept_loop, daemon=True)
        acceptor.start()
        self._threads.append(acceptor)
        return self.address

    def stop(self) -> None:
        self._stopping.set()
        if self._server is not None:
            try:
                self._server.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
            self._server = None
        if self._family == "unix" and os.path.exists(self._target):
            try:
                os.remove(self._target)
            except OSError:  # pragma: no cover
                pass
        if self._scratch and os.path.isdir(self._scratch):
            shutil.rmtree(self._scratch, ignore_errors=True)
            self._scratch = None

    def __enter__(self) -> "ShardWorker":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------ serving

    def _accept_loop(self) -> None:
        server = self._server
        while server is not None and not self._stopping.is_set():
            try:
                conn, _peer = server.accept()
            except OSError:
                return  # listener closed: shutting down
            handler = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            handler.start()
            self._threads.append(handler)

    def _serve_connection(self, conn: socket.socket) -> None:
        fingerprint: Optional[str] = None
        try:
            while not self._stopping.is_set():
                try:
                    kind, body = recv_frame(conn, what="request")
                except ConnectionLost:
                    return  # driver went away between shards: normal
                if kind == "hello":
                    fingerprint = self._handshake(conn, body)
                    if fingerprint is None:
                        return  # rejected; connection is done
                elif kind == "shard":
                    if fingerprint is None:
                        send_frame(
                            conn,
                            ("error", {
                                "type": "HandshakeError",
                                "error": "shard request before handshake",
                                "retryable": False,
                            }),
                        )
                        return
                    self._serve_shard(conn, fingerprint, body)
                else:
                    raise FrameError(f"unexpected {kind!r} request frame")
        except (TransportError, OSError):
            return  # connection-level trouble: drop it, driver re-dispatches
        finally:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass

    def _handshake(self, conn: socket.socket, body: Dict[str, Any]) -> Optional[str]:
        """Returns the agreed fingerprint, or ``None`` after a reject."""
        if body.get("magic") != WIRE_MAGIC:
            send_frame(
                conn,
                ("reject", {"reason": f"protocol mismatch (worker speaks {WIRE_MAGIC})"}),
            )
            return None
        fingerprint = str(body.get("fingerprint") or "")
        if self.expect_fingerprint and fingerprint != self.expect_fingerprint:
            send_frame(
                conn,
                ("reject", {
                    "reason": (
                        f"worker is pinned to plan "
                        f"{self.expect_fingerprint[:12]}…, not {fingerprint[:12]}…"
                    )
                }),
            )
            return None
        with self._lock:
            have_plan = fingerprint in self._plans
            if have_plan:
                self._plans.move_to_end(fingerprint)
        send_frame(conn, ("ready", {"magic": WIRE_MAGIC, "have_plan": have_plan}))
        if have_plan:
            return fingerprint
        kind, plan = recv_frame(conn, what="plan")
        if kind != "plan":
            raise FrameError(f"expected a plan frame after ready, got {kind!r}")
        # The fingerprint is recomputed from the *received* bytes: the driver
        # does not get to assert what a plan hashes to, it has to be true.
        actual = plan.content_fingerprint()
        if actual != fingerprint:
            send_frame(
                conn,
                ("reject", {
                    "reason": (
                        f"plan fingerprint mismatch: announced "
                        f"{fingerprint[:12]}…, received plan hashes to {actual[:12]}…"
                    )
                }),
            )
            return None
        from .executor import compile_plan_executions

        executions = compile_plan_executions(plan)
        with self._lock:
            self._plans[fingerprint] = (plan, executions)
            self._plans.move_to_end(fingerprint)
            while len(self._plans) > MAX_CACHED_PLANS:
                self._plans.popitem(last=False)
        send_frame(conn, ("ready", {"magic": WIRE_MAGIC, "have_plan": True}))
        return fingerprint

    def _serve_shard(
        self, conn: socket.socket, fingerprint: str, body: Dict[str, Any]
    ) -> None:
        from .sharded import ShardSpec, execute_shard

        with self._lock:
            plan, executions = self._plans[fingerprint]
        index, start, stop = body["spec"]
        spec = ShardSpec(index=index, start=start, stop=stop)
        attempt = int(body.get("attempt") or 1)
        policy = body.get("policy")
        if not isinstance(policy, RetryPolicy):
            policy = RetryPolicy()
        faults = FaultPlan.parse(body["faults"]) if body.get("faults") else None
        scratch = self._scratch or tempfile.gettempdir()
        spill_path = os.path.join(
            scratch, f"shard-{index:05d}-a{attempt}-{threading.get_ident()}.spill"
        )
        try:
            execute_shard(
                plan,
                body["source"],
                spec,
                chunk_size=int(body["chunk_size"]),
                spill_path=spill_path,
                plan_fingerprint=fingerprint,
                executions=executions,
                faults=faults,
                attempt=attempt,
                in_process=False,
            )
        except Exception as error:  # noqa: BLE001 - reported, not swallowed
            if os.path.exists(spill_path):
                os.remove(spill_path)
            send_frame(
                conn,
                ("error", {
                    "type": type(error).__name__,
                    "error": str(error),
                    "retryable": policy.is_retryable(error),
                    "traceback": traceback.format_exc(),
                }),
            )
            return
        context = (
            FaultContext(faults, shard=index, attempt=attempt, in_process=False)
            if faults
            else None
        )
        try:
            self._stream_spill(conn, spill_path, context)
            self.shards_served += 1
        finally:
            if os.path.exists(spill_path):
                os.remove(spill_path)

    def _stream_spill(
        self,
        conn: socket.socket,
        spill_path: str,
        context: Optional[FaultContext],
    ) -> None:
        size = os.path.getsize(spill_path)
        crc = 0
        with open(spill_path, "rb") as handle:
            while True:
                piece = handle.read(1 << 20)
                if not piece:
                    break
                crc = zlib.crc32(piece, crc)
        send_frame(conn, ("spill", {"size": size, "crc32": crc & 0xFFFFFFFF}))
        frame_index = 0
        with open(spill_path, "rb") as handle:
            while True:
                piece = handle.read(SPILL_FRAME_BYTES)
                if not piece:
                    break
                frame = encode_frame(("data", piece))
                action = context.wire_frame(frame_index) if context else None
                if action == "corrupt":
                    # Flip the last payload byte *after* the CRC was stamped:
                    # the driver's checksum catches it and re-dispatches.
                    mutated = bytearray(frame)
                    mutated[-1] ^= 0xFF
                    frame = bytes(mutated)
                elif action == "drop":
                    # The cable-cut case: half a frame, then a dead socket.
                    conn.sendall(frame[: max(1, len(frame) // 2)])
                    conn.close()
                    raise ConnectionLost("injected drop_conn severed the stream")
                conn.sendall(frame)
                frame_index += 1
        send_frame(conn, ("done", {}))


def run_worker(
    address: str,
    *,
    expect_fingerprint: Optional[str] = None,
    announce=print,
) -> int:
    """CLI entry: serve shards until interrupted.  Returns an exit code."""
    worker = ShardWorker(address, expect_fingerprint=expect_fingerprint)
    bound = worker.start()
    announce(f"worker listening on {bound}")
    try:
        while True:
            worker._stopping.wait(3600)
            if worker._stopping.is_set():  # pragma: no cover - stop() path
                break
    except KeyboardInterrupt:
        pass
    finally:
        worker.stop()
    return 0
