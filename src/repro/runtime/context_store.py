"""Content-addressed on-disk store for incremental synthesis state.

Sits next to the spec-hash plan cache and persists the two artifacts the
plan cache cannot express:

* **contexts** — serialized :class:`~repro.synthesis.context.SynthesisContext`
  caches (:mod:`repro.synthesis.serialize`), addressed by the content
  fingerprints of their example trees plus the configuration fingerprint.
  A later learn over the *same document* rehydrates per-tree facts, learned
  column-extractor lists, χi sets and predicate universes even when the
  target schema changed — exactly the caches that survive a spec edit.
* **spec snapshots** — the (schema, example rows, learned plan) of every
  completed learn, addressed by the spec fingerprint and bucketed by the
  example tree's fingerprint.  These are what the diff layer
  (:mod:`repro.runtime.spec_diff`) compares an edited spec against to decide
  which cached table programs are still valid.

Like the plan cache, the store is failure-oblivious: corrupt or unreadable
entries read as misses (and are removed), writes go through a
write-then-rename so interrupted runs never leave truncated files, and the
worst possible outcome of any store problem is one redundant synthesis.

Example — the interactive schema-design loop this store enables::

    from repro.runtime import ContextStore, learn_incremental

    store = ContextStore(".repro-cache/context")
    plan, report = learn_incremental(spec, store)          # cold: full learn
    # ... user adds one table to the spec ...
    plan, report = learn_incremental(edited, store)        # warm: 1 table
    assert report.tables_synthesized == ["new_table"]
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..dsl.serialize import (
    scalar_from_json,
    scalar_to_json,
    schema_from_json,
    schema_to_json,
)
from ..hdt.tree import HDT
from ..migration.engine import MigrationSpec
from ..relational.schema import DatabaseSchema
from ..synthesis.config import SynthesisConfig
from ..synthesis.context import SynthesisContext
from ..synthesis.serialize import (
    config_fingerprint,
    deserialize_context,
    serialize_context,
)
from .plan import MigrationPlan
from .plan_cache import DEFAULT_CACHE_DIR, spec_fingerprint
from .spec_diff import SpecDiff, diff_specs

DEFAULT_CONTEXT_DIR = os.path.join(DEFAULT_CACHE_DIR, "context")

SNAPSHOT_FORMAT_VERSION = 1


@dataclass
class SpecSnapshot:
    """One completed learn: the spec's learnable content plus its plan."""

    fingerprint: str
    tree_fingerprint: str
    config_fingerprint: str
    schema: DatabaseSchema
    examples: Dict[str, List[tuple]]
    plan: MigrationPlan
    path: str = ""


def _atomic_write(path: str, text: str) -> None:
    os.makedirs(os.path.dirname(path), exist_ok=True)
    temporary = f"{path}.tmp.{os.getpid()}"
    with open(temporary, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.write("\n")
    os.replace(temporary, path)


class ContextStore:
    """A directory of context payloads and spec snapshots.

    Layout::

        <dir>/contexts/<context key>.ctx.json
        <dir>/specs/<tree fp prefix>/<spec fp>.spec.json
    """

    def __init__(self, directory: str = DEFAULT_CONTEXT_DIR) -> None:
        self.directory = directory

    # ------------------------------------------------------------- contexts
    def context_key(self, trees: Sequence[HDT], config: SynthesisConfig) -> str:
        """The content address of a context: its trees plus the search bounds."""
        digest = hashlib.sha256()
        for fingerprint in sorted(t.content_fingerprint() for t in trees):
            digest.update(fingerprint.encode("utf-8"))
        digest.update(config_fingerprint(config).encode("utf-8"))
        return digest.hexdigest()

    def context_path(self, key: str) -> str:
        return os.path.join(self.directory, "contexts", f"{key}.ctx.json")

    def load_context(
        self, trees: Sequence[HDT], config: SynthesisConfig
    ) -> Optional[SynthesisContext]:
        """The stored context for these trees and bounds, or ``None`` on a miss."""
        path = self.context_path(self.context_key(trees, config))
        if not os.path.exists(path):
            return None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            return deserialize_context(payload, trees)
        except Exception:
            try:
                os.remove(path)
            except OSError:
                pass
            return None

    def store_context(self, context: SynthesisContext) -> Optional[str]:
        """Persist a context under its content address; returns the file path.

        A context that has seen no trees, or is not bound to a configuration,
        has nothing worth addressing — ``None`` is returned and nothing is
        written.
        """
        trees = context.trees()
        config = context.config
        if not trees or config is None:
            return None
        path = self.context_path(self.context_key(trees, config))
        _atomic_write(path, json.dumps(serialize_context(context), sort_keys=True))
        return path

    # ------------------------------------------------------------ snapshots
    def _specs_dir(self, tree_fingerprint: str) -> str:
        return os.path.join(self.directory, "specs", tree_fingerprint[:16])

    def snapshot_path(self, spec: MigrationSpec, config: SynthesisConfig) -> str:
        """Snapshots are keyed by (spec, config): learned programs depend on
        the search bounds, so the same spec learned under two configurations
        must produce two snapshots."""
        tree_fp = spec.example_tree.content_fingerprint()
        return os.path.join(
            self._specs_dir(tree_fp),
            f"{spec_fingerprint(spec)}.{config_fingerprint(config)[:16]}.spec.json",
        )

    def record_spec(
        self, spec: MigrationSpec, plan: MigrationPlan, config: SynthesisConfig
    ) -> str:
        """Snapshot a completed learn for future diffing; returns the path."""
        payload = {
            "kind": "spec_snapshot",
            "version": SNAPSHOT_FORMAT_VERSION,
            "spec_fingerprint": spec_fingerprint(spec),
            "tree_fingerprint": spec.example_tree.content_fingerprint(),
            "config_fingerprint": config_fingerprint(config),
            "schema": schema_to_json(spec.schema),
            "examples": {
                example.table: [
                    [scalar_to_json(value) for value in row] for row in example.rows
                ]
                for example in spec.table_examples
            },
            "plan": plan.to_json(),
        }
        path = self.snapshot_path(spec, config)
        _atomic_write(path, json.dumps(payload, sort_keys=True))
        return path

    def snapshots_for(self, tree: HDT, config: SynthesisConfig) -> List[SpecSnapshot]:
        """Snapshots sharing the tree's fingerprint *and* the configuration,
        most recent first.  Programs learned under different search bounds
        are never candidates for reuse (the diff layer's byte-identity
        argument — "same task, same config → same program" — would not
        hold), so config mismatches are filtered here; snapshots without a
        recorded config (older format) are skipped the same way."""
        directory = self._specs_dir(tree.content_fingerprint())
        if not os.path.isdir(directory):
            return []
        tree_fp = tree.content_fingerprint()
        config_fp = config_fingerprint(config)
        snapshots: List[SpecSnapshot] = []
        entries = sorted(
            (entry for entry in os.listdir(directory) if entry.endswith(".spec.json")),
            key=lambda entry: os.path.getmtime(os.path.join(directory, entry)),
            reverse=True,
        )
        for entry in entries:
            path = os.path.join(directory, entry)
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    payload = json.load(handle)
                if payload.get("kind") != "spec_snapshot":
                    raise ValueError("not a spec snapshot")
                if payload.get("tree_fingerprint") != tree_fp:
                    continue  # 16-char prefix collision: different document
                if payload.get("config_fingerprint") != config_fp:
                    continue  # learned under different search bounds
                snapshots.append(
                    SpecSnapshot(
                        fingerprint=payload["spec_fingerprint"],
                        tree_fingerprint=payload["tree_fingerprint"],
                        config_fingerprint=payload["config_fingerprint"],
                        schema=schema_from_json(payload["schema"]),
                        examples={
                            table: [
                                tuple(scalar_from_json(value) for value in row)
                                for row in rows
                            ]
                            for table, rows in payload["examples"].items()
                        },
                        plan=MigrationPlan.from_json(payload["plan"]),
                        path=path,
                    )
                )
            except Exception:
                try:
                    os.remove(path)
                except OSError:
                    pass
        return snapshots

    def best_base(
        self, spec: MigrationSpec, config: SynthesisConfig
    ) -> Optional[Tuple[SpecSnapshot, SpecDiff]]:
        """The snapshot that maximizes reuse for this spec, with its diff.

        Only snapshots learned under the same configuration participate.
        Ties break toward the most recent snapshot; a base from which nothing
        is reusable is no base at all (``None``).
        """
        best: Optional[Tuple[SpecSnapshot, SpecDiff]] = None
        best_score = 0
        for snapshot in self.snapshots_for(spec.example_tree, config):
            diff = diff_specs(snapshot.schema, snapshot.examples, spec)
            score = 2 * diff.reusable_programs + sum(
                1 for change in diff.tables.values() if change.reuse_keys
            )
            if score > best_score:
                best, best_score = (snapshot, diff), score
        return best
