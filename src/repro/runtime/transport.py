"""The shard transport seam: how map work reaches workers, local or remote.

The sharded runtime (``sharded.py``) was designed transport-pluggable from
the start: a shard attempt is fully described by ``(plan content-fingerprint,
shard spec, source locator)`` and fully *accounted for* by its validated
spill file — a framed, fingerprint-stamped stream the reducer replays with
interleaved validation (:func:`~repro.runtime.sharded.iter_spill`).  This
module cashes that seam in.  A :class:`ShardTransport` runs the supervised
map stage for a :class:`ShardMapJob`; the reduce stage never changes,
because every transport's contract is the same: *materialize each shard's
validated spill file at the agreed path, or fail loudly*.

Two implementations ship:

* :class:`LocalTransport` — the existing single-machine path (per-attempt
  worker processes or the in-process serial mode), refactored behind the
  seam.  This is the default and is byte-for-byte the behaviour
  ``shard_execute`` always had.
* :class:`SocketTransport` — remote workers.  Shard requests travel to
  ``repro worker`` processes (:mod:`repro.runtime.worker`) as
  length-prefixed, CRC-checked frames over TCP or Unix-domain sockets
  (stdlib only), and the worker streams the finished shard's spill frames
  back.  The client re-materializes them as a local spill file and replays
  it through :func:`~repro.runtime.sharded.validate_spill` before the shard
  counts as done — a half-delivered or corrupted result is *never* trusted
  (docs/distributed.md#wire-protocol).

Transport failures are first-class error classes so the
:class:`~repro.runtime.supervisor.RetryPolicy` can tell a dead connection
from a poisoned worker (docs/distributed.md#retry-and-redispatch):

* :class:`ConnectionLost` / :class:`FrameError` — retryable; the shard is
  re-dispatched (to a surviving worker, for :class:`SocketTransport`).
* :class:`HandshakeError` — the worker rejected the plan (fingerprint or
  protocol mismatch); that *endpoint* is condemned permanently, and the
  shard moves on to a surviving worker.
* :class:`WorkerUnavailable` — no live workers remain; permanent, so the
  run degrades immediately instead of burning retries.

Security model: frames carry pickled objects (plans, shard sources, row
batches), exactly like the local multiprocessing path — so a worker must
only ever listen on a loopback interface, a Unix socket, or a network you
trust end to end (docs/distributed.md#security-model).
"""

from __future__ import annotations

import os
import pickle
import socket
import struct
import threading
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .faults import FaultPlan
from .plan import MigrationPlan
from .supervisor import RetryPolicy, ShardSupervisor, SupervisionOutcome

__all__ = [
    "WIRE_MAGIC",
    "TransportError",
    "ConnectionLost",
    "FrameError",
    "HandshakeError",
    "WorkerUnavailable",
    "RemoteShardError",
    "ShardMapJob",
    "ShardTransport",
    "LocalTransport",
    "SocketTransport",
    "encode_frame",
    "send_frame",
    "recv_frame",
    "parse_address",
    "format_address",
    "connect_address",
]

#: Protocol identifier exchanged in the handshake; bump on incompatible change.
WIRE_MAGIC = "repro-shard-wire/1"

#: ``(payload length, payload crc32)`` — the prefix of every frame.
FRAME_HEADER = struct.Struct(">II")

#: Upper bound on a single frame's payload; a larger declared length means a
#: corrupt or foreign stream, not a legitimate message.
MAX_FRAME_BYTES = 512 * 1024 * 1024

#: Bytes of spill data per ``("data", ...)`` frame when streaming a finished
#: shard back from a remote worker.
SPILL_FRAME_BYTES = 256 * 1024


class TransportError(Exception):
    """A shard-transport failure.  The base class (and its connection/frame
    subclasses) is classified *retryable* by :class:`RetryPolicy`; the
    handshake/availability subclasses below are permanent."""


class ConnectionLost(TransportError):
    """The peer closed, reset, or timed out mid-conversation (retryable)."""


class FrameError(TransportError):
    """A frame failed its checksum, length, or decode (retryable — the
    re-dispatched attempt re-streams the shard from scratch)."""


class HandshakeError(TransportError):
    """The worker rejected the handshake — wrong protocol magic or a plan
    whose content fingerprint does not match what the driver announced.
    Permanent for that *endpoint*: it is condemned and never used again."""


class WorkerUnavailable(TransportError):
    """No live worker endpoint remains to run a shard (permanent: retrying
    cannot help, so the run degrades immediately)."""


class RemoteShardError(Exception):
    """A shard attempt failed *on* the worker; the error crossed the wire as
    a structured report.  ``remote_type`` preserves the original exception
    type name and ``retryable_hint`` the worker's own classification (made
    with the driver's shipped :class:`RetryPolicy`), which the supervisor
    honours verbatim."""

    def __init__(self, message: str, *, remote_type: str, retryable: bool) -> None:
        super().__init__(message)
        self.remote_type = remote_type
        self.retryable_hint = retryable


# --------------------------------------------------------------------------- #
# Framing: length-prefixed, CRC-checked pickle messages
# --------------------------------------------------------------------------- #


def encode_frame(message: Any) -> bytes:
    """One wire frame: ``>II`` (length, crc32) header + pickled payload."""
    data = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    return FRAME_HEADER.pack(len(data), zlib.crc32(data) & 0xFFFFFFFF) + data


def send_frame(sock: socket.socket, message: Any) -> None:
    try:
        sock.sendall(encode_frame(message))
    except OSError as error:
        raise ConnectionLost(f"connection lost while sending: {error}") from error


def _recv_exact(sock: socket.socket, size: int, what: str) -> bytes:
    chunks: List[bytes] = []
    remaining = size
    while remaining:
        try:
            piece = sock.recv(min(remaining, 1 << 20))
        except OSError as error:
            raise ConnectionLost(
                f"connection lost while reading {what}: {error}"
            ) from error
        if not piece:
            raise ConnectionLost(
                f"connection closed mid-{what} "
                f"({size - remaining} of {size} bytes arrived)"
            )
        chunks.append(piece)
        remaining -= len(piece)
    return b"".join(chunks)


def recv_frame(sock: socket.socket, *, what: str = "frame") -> Any:
    """Read one frame, enforcing the length bound and the CRC *before* the
    payload is unpickled — a corrupted frame raises :class:`FrameError`, a
    cut connection :class:`ConnectionLost`; neither is ever silently
    truncated into a short result."""
    header = _recv_exact(sock, FRAME_HEADER.size, f"{what} header")
    length, crc = FRAME_HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameError(
            f"{what} declares {length} bytes (limit {MAX_FRAME_BYTES}); "
            f"corrupt or foreign stream"
        )
    data = _recv_exact(sock, length, f"{what} payload")
    if zlib.crc32(data) & 0xFFFFFFFF != crc:
        raise FrameError(f"{what} failed its CRC check (corrupt frame)")
    try:
        return pickle.loads(data)
    except Exception as error:  # noqa: BLE001 - any decode failure is a frame error
        raise FrameError(f"{what} payload does not decode: {error}") from error


# --------------------------------------------------------------------------- #
# Addresses: "host:port" (TCP) or a path / "unix:path" (Unix-domain)
# --------------------------------------------------------------------------- #


def parse_address(text: str) -> Tuple[str, Any]:
    """``("tcp", (host, port))`` or ``("unix", path)``.

    Anything with a path separator (or the explicit ``unix:`` prefix) is a
    Unix-domain socket; otherwise ``host:port``.
    """
    text = text.strip()
    if not text:
        raise TransportError("empty worker address")
    if text.startswith("unix:"):
        return ("unix", text[len("unix:"):])
    if os.sep in text or text.startswith("."):
        return ("unix", text)
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise TransportError(
            f"worker address {text!r} is neither HOST:PORT nor a unix socket path"
        )
    try:
        return ("tcp", (host, int(port)))
    except ValueError:
        raise TransportError(f"worker address {text!r} has a non-numeric port") from None


def format_address(family: str, target: Any) -> str:
    if family == "unix":
        return f"unix:{target}"
    host, port = target
    return f"{host}:{port}"


def connect_address(address: str, timeout: Optional[float]) -> socket.socket:
    family, target = parse_address(address)
    if family == "unix":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    else:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.settimeout(timeout)
    try:
        sock.connect(target)
    except OSError:
        sock.close()
        raise
    return sock


# --------------------------------------------------------------------------- #
# The map job a transport runs
# --------------------------------------------------------------------------- #


@dataclass
class ShardMapJob:
    """Everything a transport needs to run one supervised map stage.

    ``specs`` are the *pending* shards (resumed shards never reach the
    transport), ``spill_paths`` the agreed local destination per shard
    index — whatever the transport does, a validated spill file must exist
    there for every successful shard, because the reducer replays exactly
    those paths.
    """

    plan: MigrationPlan
    fingerprint: str
    source: Any
    specs: Sequence[Any]
    chunk_size: int
    spill_paths: Dict[int, str]
    scratch_dir: str
    policy: RetryPolicy
    workers: int
    shard_timeout: Optional[float] = None
    faults: Optional[FaultPlan] = None
    on_complete: Optional[Callable[[int, Any], None]] = None


class ShardTransport:
    """How shard attempts reach execution.  ``run_map`` must return a
    :class:`~repro.runtime.supervisor.SupervisionOutcome` whose successful
    shards each left a spill file at ``job.spill_paths[shard]`` that
    replays cleanly under the job's plan fingerprint."""

    name = "abstract"

    def run_map(self, job: ShardMapJob) -> SupervisionOutcome:
        raise NotImplementedError

    def close(self) -> None:
        """Release transport resources (connections).  Idempotent."""

    def __enter__(self) -> "ShardTransport":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class LocalTransport(ShardTransport):
    """Single-machine execution: the supervisor path ``shard_execute``
    always had, now behind the transport seam.

    ``workers > 1`` (or a ``shard_timeout``, which needs killable attempts)
    runs each attempt as an isolated worker process; otherwise shards run
    serially in-process, sharing one compiled-execution set.
    """

    name = "local"

    def run_map(self, job: ShardMapJob) -> SupervisionOutcome:
        # Imported late: sharded.py imports this module for the seam types.
        from .executor import compile_plan_executions
        from .sharded import _attempt_shard

        pending = list(job.specs)
        # Process isolation is what makes timeouts enforceable and worker
        # death survivable; the serial path keeps 1-worker runs cheap.
        use_processes = bool(pending) and (
            job.workers > 1 or job.shard_timeout is not None
        )
        shared_executions = None
        if pending and not use_processes:
            shared_executions = compile_plan_executions(job.plan)
        tasks: List[Tuple[int, Dict[str, Any]]] = []
        for spec in pending:
            payload: Dict[str, Any] = {
                "plan": job.plan,
                "source": job.source,
                "spec": spec,
                "chunk_size": job.chunk_size,
                "spill_path": job.spill_paths[spec.index],
                "fingerprint": job.fingerprint,
                "faults": job.faults,
                "in_process": not use_processes,
            }
            if shared_executions is not None:
                payload["executions"] = shared_executions
            tasks.append((spec.index, payload))
        supervisor = ShardSupervisor(
            _attempt_shard,
            policy=job.policy,
            concurrency=max(1, min(job.workers, len(pending)) if pending else 1),
            timeout=job.shard_timeout if use_processes else None,
            scratch_dir=job.scratch_dir,
            on_complete=job.on_complete,
            in_process=not use_processes,
        )
        return supervisor.run(tasks)


# --------------------------------------------------------------------------- #
# Remote workers over sockets
# --------------------------------------------------------------------------- #


@dataclass
class _Endpoint:
    """One remote worker: its address, an optional live connection (one
    in-flight shard at a time), and whether it has been condemned."""

    address: str
    sock: Optional[socket.socket] = None
    fingerprint: Optional[str] = None
    busy: bool = False
    dead: bool = False
    dead_reason: str = ""
    lock: threading.Lock = field(default_factory=threading.Lock)

    def drop_connection(self) -> None:
        if self.sock is not None:
            try:
                self.sock.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
            self.sock = None
            self.fingerprint = None


class SocketTransport(ShardTransport):
    """Ship shards to ``repro worker`` processes over TCP/Unix sockets.

    Each endpoint runs one shard at a time over a persistent connection;
    the supervisor's threads (one per endpoint) block on the socket
    conversation while the worker process does the CPU work.  A connection
    or frame failure re-dispatches the shard under the retry policy — to a
    *surviving* worker when the failed endpoint cannot be reconnected.  A
    handshake rejection (plan fingerprint mismatch) condemns the endpoint
    permanently on the spot (docs/distributed.md#handshake-and-fingerprint-rules).

    ``timeout`` bounds every socket read/write (defaults to the job's
    ``shard_timeout`` when unset); ``connect_timeout`` bounds dialing.
    """

    name = "socket"

    def __init__(
        self,
        addresses: Sequence[str],
        *,
        timeout: Optional[float] = None,
        connect_timeout: float = 10.0,
    ) -> None:
        if not addresses:
            raise TransportError("SocketTransport needs at least one worker address")
        for address in addresses:
            parse_address(address)  # fail fast on malformed addresses
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self._endpoints = [_Endpoint(address=address) for address in addresses]
        self._cond = threading.Condition()
        self._rotation = 0

    # ------------------------------------------------------------ endpoints

    @property
    def endpoints(self) -> List[_Endpoint]:
        return list(self._endpoints)

    def live_endpoints(self) -> List[str]:
        with self._cond:
            return [e.address for e in self._endpoints if not e.dead]

    def _acquire(self) -> Optional[_Endpoint]:
        with self._cond:
            while True:
                live = [e for e in self._endpoints if not e.dead]
                if not live:
                    return None
                idle = [e for e in live if not e.busy]
                if idle:
                    # Rotate so shards spread across workers instead of
                    # piling onto the first idle endpoint.
                    self._rotation += 1
                    chosen = idle[self._rotation % len(idle)]
                    chosen.busy = True
                    return chosen
                self._cond.wait(timeout=0.05)

    def _release(self, endpoint: _Endpoint) -> None:
        with self._cond:
            endpoint.busy = False
            self._cond.notify_all()

    def _condemn(self, endpoint: _Endpoint, reason: str) -> None:
        with self._cond:
            endpoint.dead = True
            endpoint.dead_reason = reason
            endpoint.busy = False
            endpoint.drop_connection()
            self._cond.notify_all()

    def close(self) -> None:
        with self._cond:
            for endpoint in self._endpoints:
                endpoint.drop_connection()
            self._cond.notify_all()

    # ------------------------------------------------------------ map stage

    def run_map(self, job: ShardMapJob) -> SupervisionOutcome:
        if not job.specs:
            return SupervisionOutcome()
        effective_timeout = self.timeout if self.timeout is not None else job.shard_timeout
        supervisor = ShardSupervisor(
            lambda task, attempt: self._run_shard(job, task, attempt, effective_timeout),
            policy=job.policy,
            concurrency=max(1, min(len(self._endpoints), len(job.specs))),
            on_complete=job.on_complete,
            use_threads=True,
        )
        return supervisor.run([(spec.index, spec) for spec in job.specs])

    def _run_shard(
        self,
        job: ShardMapJob,
        spec: Any,
        attempt: int,
        timeout: Optional[float],
    ) -> Dict[str, Any]:
        last_error: Optional[BaseException] = None
        while True:
            endpoint = self._acquire()
            if endpoint is None:
                condemned = "; ".join(
                    f"{e.address}: {e.dead_reason}" for e in self._endpoints if e.dead
                )
                detail = f" ({condemned})" if condemned else ""
                if last_error is not None:
                    detail = f"{detail} [last error: {last_error}]"
                raise WorkerUnavailable(
                    f"no live remote workers left for shard {spec.index}{detail}"
                )
            try:
                self._ensure_ready(endpoint, job, timeout)
            except (TransportError, OSError) as error:
                # Connect/handshake failures poison the *endpoint*, not the
                # shard: condemn it and move straight to a surviving worker.
                self._condemn(endpoint, f"connect/handshake failed: {error}")
                last_error = error
                continue
            try:
                manifest = self._converse(endpoint, job, spec, attempt)
            except TransportError:
                # Mid-conversation failure: drop the connection but keep the
                # endpoint — reconnecting decides whether the worker is gone
                # (refused -> condemned on the next acquire of it).
                with self._cond:
                    endpoint.drop_connection()
                self._release(endpoint)
                raise
            except BaseException:
                self._release(endpoint)
                raise
            else:
                self._release(endpoint)
                return manifest

    def _ensure_ready(
        self, endpoint: _Endpoint, job: ShardMapJob, timeout: Optional[float]
    ) -> None:
        """Connect and handshake; ship the plan if the worker lacks it."""
        if endpoint.sock is not None and endpoint.fingerprint == job.fingerprint:
            return
        endpoint.drop_connection()
        sock = connect_address(endpoint.address, self.connect_timeout)
        sock.settimeout(timeout)
        try:
            send_frame(sock, ("hello", {"magic": WIRE_MAGIC, "fingerprint": job.fingerprint}))
            kind, info = recv_frame(sock, what="handshake")
            if kind == "reject":
                raise HandshakeError(
                    f"worker {endpoint.address} rejected plan "
                    f"{job.fingerprint[:12]}…: {info.get('reason')}"
                )
            if kind != "ready" or info.get("magic") != WIRE_MAGIC:
                raise HandshakeError(
                    f"worker {endpoint.address} spoke an unexpected protocol "
                    f"(got {kind!r}/{info!r}, want ready/{WIRE_MAGIC})"
                )
            if not info.get("have_plan"):
                send_frame(sock, ("plan", job.plan))
                kind, info = recv_frame(sock, what="plan ack")
                if kind == "reject":
                    raise HandshakeError(
                        f"worker {endpoint.address} rejected plan "
                        f"{job.fingerprint[:12]}…: {info.get('reason')}"
                    )
                if kind != "ready":
                    raise HandshakeError(
                        f"worker {endpoint.address} answered the plan with {kind!r}"
                    )
        except BaseException:
            sock.close()
            raise
        endpoint.sock = sock
        endpoint.fingerprint = job.fingerprint

    def _converse(
        self, endpoint: _Endpoint, job: ShardMapJob, spec: Any, attempt: int
    ) -> Dict[str, Any]:
        """One shard round-trip: request out, spill frames back, validate."""
        from .sharded import validate_spill

        sock = endpoint.sock
        assert sock is not None
        send_frame(
            sock,
            (
                "shard",
                {
                    "spec": (spec.index, spec.start, spec.stop),
                    "source": job.source,
                    "chunk_size": job.chunk_size,
                    "faults": job.faults.to_spec() if job.faults else None,
                    "attempt": attempt,
                    "policy": job.policy,
                },
            ),
        )
        kind, info = recv_frame(sock, what="spill announcement")
        if kind == "error":
            raise RemoteShardError(
                f"shard {spec.index} failed on worker {endpoint.address}: "
                f"{info.get('error')}",
                remote_type=str(info.get("type", "Exception")),
                retryable=bool(info.get("retryable", False)),
            )
        if kind != "spill":
            raise FrameError(
                f"worker {endpoint.address} answered shard {spec.index} "
                f"with {kind!r}, expected a spill announcement"
            )
        expected_size = int(info["size"])
        expected_crc = int(info["crc32"])
        spill_path = job.spill_paths[spec.index]
        temp_path = f"{spill_path}.rx-{attempt}"
        received = 0
        crc = 0
        try:
            with open(temp_path, "wb") as handle:
                while True:
                    kind, body = recv_frame(sock, what="spill frame")
                    if kind == "data":
                        handle.write(body)
                        crc = zlib.crc32(body, crc)
                        received += len(body)
                        continue
                    if kind == "done":
                        break
                    if kind == "error":
                        raise RemoteShardError(
                            f"shard {spec.index} failed mid-stream on worker "
                            f"{endpoint.address}: {body.get('error')}",
                            remote_type=str(body.get("type", "Exception")),
                            retryable=bool(body.get("retryable", False)),
                        )
                    raise FrameError(
                        f"unexpected {kind!r} frame inside shard "
                        f"{spec.index}'s spill stream"
                    )
            if received != expected_size or (crc & 0xFFFFFFFF) != expected_crc:
                raise FrameError(
                    f"shard {spec.index} spill stream from {endpoint.address} "
                    f"does not match its announcement "
                    f"({received}/{expected_size} bytes, crc mismatch: "
                    f"{(crc & 0xFFFFFFFF) != expected_crc})"
                )
            os.replace(temp_path, spill_path)
        finally:
            if os.path.exists(temp_path):
                os.remove(temp_path)
        # The transport-level CRCs guard the wire; this full replay holds the
        # *content* to the same ShardError contract as a locally-written spill.
        return validate_spill(
            spill_path, plan_fingerprint=job.fingerprint, shard_index=spec.index
        )
