"""The migration runtime: durable plans, storage backends, streaming, CLI.

The research pipeline (synthesize → execute in memory) pays the synthesis
cost on every invocation.  This package turns the synthesized artifact into a
durable, re-executable *plan* and provides the production execution paths the
ROADMAP's north star asks for:

* :mod:`repro.runtime.plan` — the :class:`MigrationPlan` artifact
  (JSON-serializable schema + per-table programs + key rules);
* :mod:`repro.runtime.plan_cache` — on-disk caching keyed by a spec
  fingerprint, so synthesis runs once per distinct spec;
* :mod:`repro.runtime.context_store` — content-addressed persistence of
  synthesis caches and spec snapshots, the substrate of incremental
  learning;
* :mod:`repro.runtime.spec_diff` — the diff layer deciding, per table of an
  edited spec, whether the cached program and key rules are still valid;
* :mod:`repro.runtime.incremental` — :func:`learn_incremental`: re-synthesize
  only the tables a spec edit affected, byte-identical to a cold learn;
* :mod:`repro.runtime.executor` — backend-pluggable whole-tree execution;
* :mod:`repro.runtime.backends` — the :class:`ExecutionBackend` protocol and
  the shipped memory / SQLite / columnar (Arrow IPC, Parquet, JSON-columns)
  backends, plus the name registry (see ``docs/backends.md``);
* :mod:`repro.runtime.streaming` — chunked, bounded-memory execution with
  cross-chunk key reconciliation and optional multiprocessing fan-out;
* :mod:`repro.runtime.sharded` — multi-process map/reduce execution:
  contiguous record shards, per-shard dedup in workers, a streaming
  cross-shard reducer, validated spill files;
* :mod:`repro.runtime.supervisor` — fault-tolerant shard supervision:
  per-attempt process isolation, a :class:`RetryPolicy` with error
  classification and deterministic backoff, per-shard timeouts, and
  graceful degradation into structured :class:`ShardFailure` records
  (see ``docs/robustness.md``);
* :mod:`repro.runtime.faults` — deterministic fault injection
  (:class:`FaultPlan`, ``--inject-faults`` / ``REPRO_FAULTS``) exercising
  every retry/timeout/degradation path with real induced failures;
* :mod:`repro.runtime.transport` — the :class:`ShardTransport` seam that
  decides *where* map-stage shards run: :class:`LocalTransport` (the
  in-process / subprocess pool) and :class:`SocketTransport` (length-prefixed
  CRC-checked frames over TCP or Unix sockets to remote workers, see
  ``docs/distributed.md``);
* :mod:`repro.runtime.worker` — the ``repro worker`` process: a standalone
  shard-map server that executes shards against its local copy of the
  source and streams validated spill frames back;
* :mod:`repro.runtime.verify` — post-run verification: row-count and
  PK/FK-integrity invariants re-derived against the produced target;
* :mod:`repro.runtime.service` — the ``repro serve`` daemon: an HTTP/JSON
  job API with warm plan caches, per-job shard checkpoints and
  resume-after-crash semantics (see ``docs/service.md``);
* :mod:`repro.runtime.cli` — ``python -m repro learn|run|migrate|verify|serve``
  (``--incremental``, ``--jobs``, ``--streaming``, ``--shards``,
  ``--backend``, ``--dry-run``, ``--resume``, ...).

The full architecture is documented in ``docs/runtime.md``.

Example — learn once, run many, then evolve the schema incrementally:

>>> from repro.datasets import dblp
>>> from repro.runtime import ContextStore, execute_plan, learn_incremental
>>> bundle = dblp.dataset(scale=2)
>>> store = ContextStore("/tmp/repro-ctx-doc")
>>> plan, report = learn_incremental(bundle.migration_spec(), store)
>>> report.tables_total
9
>>> execute_plan(plan, bundle.generate(2)).total_rows
30
"""

from .backends import (
    ColumnarBackend,
    ColumnarBackendError,
    DuckDBBackend,
    DuckDBBackendError,
    ExecutionBackend,
    MemoryBackend,
    SQLiteBackend,
    SQLiteBackendError,
    available_backends,
    create_backend,
    database_matches_sqlite,
    load_database,
)
from .executor import (
    ChunkMerger,
    ExecutionReport,
    canonical_database_rows,
    canonical_table_rows,
    execute_plan,
    stream_table_rows,
)
from .context_store import ContextStore, SpecSnapshot
from .incremental import IncrementalReport, learn_incremental
from .plan import MigrationPlan, TablePlan
from .plan_cache import PlanCache, spec_fingerprint
from .backends.null import NullBackend
from .faults import FaultError, FaultPlan, FaultRule
from .sharded import (
    ShardDegradedError,
    ShardError,
    ShardSpec,
    auto_shard_count,
    clear_source_caches,
    partition_records,
    resolve_shard_count,
    shard_execute,
    shard_source,
    validate_spill,
)
from .supervisor import RetryPolicy, ShardFailure, ShardSupervisor
from .transport import (
    ConnectionLost,
    FrameError,
    HandshakeError,
    LocalTransport,
    ShardTransport,
    SocketTransport,
    TransportError,
    WorkerUnavailable,
    parse_address,
)
from .worker import ShardWorker, run_worker
from .verify import (
    TableCheck,
    VerificationError,
    VerificationReport,
    read_target_rows,
    verify_backend,
    verify_rows,
)
from .spec_diff import SpecDiff, TableChange, diff_specs, reusable_plans
from .streaming import (
    Chunk,
    clone_subtree,
    count_json_records,
    count_xml_records,
    execute_plan_on_chunk,
    iter_json_chunks,
    iter_tree_chunks,
    iter_xml_chunks,
    stream_execute,
)

__all__ = [
    "ExecutionBackend",
    "ExecutionReport",
    "MemoryBackend",
    "ColumnarBackend",
    "ColumnarBackendError",
    "DuckDBBackend",
    "DuckDBBackendError",
    "available_backends",
    "create_backend",
    "NullBackend",
    "FaultError",
    "FaultPlan",
    "FaultRule",
    "RetryPolicy",
    "ShardFailure",
    "ShardSupervisor",
    "ShardDegradedError",
    "ShardError",
    "ShardSpec",
    "auto_shard_count",
    "clear_source_caches",
    "partition_records",
    "resolve_shard_count",
    "shard_execute",
    "shard_source",
    "validate_spill",
    "ShardTransport",
    "LocalTransport",
    "SocketTransport",
    "TransportError",
    "ConnectionLost",
    "FrameError",
    "HandshakeError",
    "WorkerUnavailable",
    "parse_address",
    "ShardWorker",
    "run_worker",
    "TableCheck",
    "VerificationError",
    "VerificationReport",
    "read_target_rows",
    "verify_backend",
    "verify_rows",
    "count_json_records",
    "count_xml_records",
    "canonical_database_rows",
    "canonical_table_rows",
    "execute_plan",
    "stream_table_rows",
    "MigrationPlan",
    "TablePlan",
    "PlanCache",
    "spec_fingerprint",
    "ContextStore",
    "SpecSnapshot",
    "IncrementalReport",
    "learn_incremental",
    "SpecDiff",
    "TableChange",
    "diff_specs",
    "reusable_plans",
    "SQLiteBackend",
    "SQLiteBackendError",
    "database_matches_sqlite",
    "load_database",
    "Chunk",
    "ChunkMerger",
    "clone_subtree",
    "execute_plan_on_chunk",
    "iter_json_chunks",
    "iter_tree_chunks",
    "iter_xml_chunks",
    "stream_execute",
]
