"""The migration runtime: durable plans, storage backends, streaming, CLI.

The research pipeline (synthesize → execute in memory) pays the synthesis
cost on every invocation.  This package turns the synthesized artifact into a
durable, re-executable *plan* and provides the production execution paths the
ROADMAP's north star asks for:

* :mod:`repro.runtime.plan` — the :class:`MigrationPlan` artifact
  (JSON-serializable schema + per-table programs + key rules);
* :mod:`repro.runtime.plan_cache` — on-disk caching keyed by a spec
  fingerprint, so synthesis runs once per distinct spec;
* :mod:`repro.runtime.executor` — backend-pluggable whole-tree execution;
* :mod:`repro.runtime.sqlite_backend` — loading straight into SQLite with
  native key enforcement;
* :mod:`repro.runtime.streaming` — chunked, bounded-memory execution with
  cross-chunk key reconciliation and optional multiprocessing fan-out;
* :mod:`repro.runtime.cli` — ``python -m repro learn|run|migrate``.
"""

from .executor import (
    ChunkMerger,
    ExecutionBackend,
    ExecutionReport,
    MemoryBackend,
    canonical_database_rows,
    canonical_table_rows,
    execute_plan,
    stream_table_rows,
)
from .plan import MigrationPlan, TablePlan
from .plan_cache import PlanCache, spec_fingerprint
from .sqlite_backend import (
    SQLiteBackend,
    SQLiteBackendError,
    database_matches_sqlite,
    load_database,
)
from .streaming import (
    Chunk,
    clone_subtree,
    execute_plan_on_chunk,
    iter_json_chunks,
    iter_tree_chunks,
    iter_xml_chunks,
    stream_execute,
)

__all__ = [
    "ExecutionBackend",
    "ExecutionReport",
    "MemoryBackend",
    "canonical_database_rows",
    "canonical_table_rows",
    "execute_plan",
    "stream_table_rows",
    "MigrationPlan",
    "TablePlan",
    "PlanCache",
    "spec_fingerprint",
    "SQLiteBackend",
    "SQLiteBackendError",
    "database_matches_sqlite",
    "load_database",
    "Chunk",
    "ChunkMerger",
    "clone_subtree",
    "execute_plan_on_chunk",
    "iter_json_chunks",
    "iter_tree_chunks",
    "iter_xml_chunks",
    "stream_execute",
]
