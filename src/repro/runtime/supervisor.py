"""Fault-tolerant shard supervision: retries, timeouts, graceful degradation.

The sharded map stage used to hand every shard to one ``multiprocessing``
pool and die with it: a crashed worker poisoned the pool, one hung shard
stalled the run forever, and a transient I/O error was as fatal as a plan
bug.  :class:`ShardSupervisor` replaces that with per-shard *attempts*:

* every shard runs as its own attempt, retried under a :class:`RetryPolicy`
  (bounded attempts, exponential backoff with deterministic jitter, and a
  retryable/permanent error classification — see
  docs/robustness.md#error-classification);
* in subprocess mode each attempt is an isolated ``multiprocessing.Process``
  whose death (``os._exit``, OOM-kill, segfault) costs only that attempt —
  there is no shared pool to break;
* a wall-clock ``timeout`` per attempt lets the supervisor terminate a hung
  shard and re-dispatch it;
* a shard that exhausts its attempts becomes a structured
  :class:`ShardFailure` instead of an exception — remaining shards keep
  running, and the caller decides how to degrade
  (docs/robustness.md#degradation-contract).

Results cross the process boundary as small JSON sidecar files (one per
attempt) rather than pipes: a worker that dies mid-write leaves either no
file or a torn temp file, both of which the parent reads as "crashed" —
there is no half-delivered result state.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import random
import sqlite3
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "RetryPolicy",
    "ShardFailure",
    "ShardTimeout",
    "WorkerCrash",
    "SupervisionOutcome",
    "ShardSupervisor",
]


class ShardTimeout(Exception):
    """An attempt exceeded the supervisor's per-shard timeout and was killed."""


class WorkerCrash(Exception):
    """A worker process died without reporting a result (exit, signal, OOM)."""


#: Error type *names* that always mean "the worker died, not the work".
#: Matched by name so classification works on exceptions reconstructed from
#: a child process report, where only the type name survives the boundary.
_CRASH_TYPE_NAMES = frozenset(
    {
        "WorkerCrash",
        "WorkerKilled",
        "ShardTimeout",
        "BrokenProcessPool",
        "BrokenExecutor",
    }
)

#: Transport error type names that mean "the wire failed, not the work":
#: a reset/ timed-out connection or a frame that failed its checksum.  The
#: shard is intact somewhere — re-dispatching it (to a surviving worker,
#: for socket transports) is always sound.  Handshake rejections and
#: worker exhaustion (``HandshakeError``, ``WorkerUnavailable``) are
#: deliberately *not* here: retrying them cannot help
#: (docs/distributed.md#retry-and-redispatch).
_TRANSPORT_RETRYABLE_NAMES = frozenset(
    {
        "TransportError",
        "ConnectionLost",
        "FrameError",
    }
)


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry a shard, how long to wait, and what counts
    as retryable.  Frozen and picklable: the policy ships to worker
    processes so a child can classify its own failure before reporting it.

    ``delay_for`` is deterministic — jitter comes from a ``random.Random``
    seeded with ``(seed, shard, attempt)`` — so two runs of the same plan
    retry on an identical schedule (a property the fault-injection tests
    rely on).
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 5.0
    backoff: float = 2.0
    jitter: float = 0.25
    seed: int = 0

    def is_retryable(self, error: BaseException) -> bool:
        """Classify ``error``: transient (worth re-dispatching) or permanent.

        Retryable: worker death in any form (:class:`WorkerCrash`,
        ``WorkerKilled``, :class:`ShardTimeout`, ``BrokenProcessPool``),
        ``sqlite3.OperationalError`` for locked/busy databases, and
        ``OSError`` (spill I/O).  Everything else — ``ShardError``
        fingerprint/parameter mismatches, plan bugs, injected permanent
        faults — is permanent.  The ``__cause__`` chain is walked so a
        wrapped transient error (e.g. a backend error *from* a locked
        database) stays retryable.
        """
        seen = 0
        current: Optional[BaseException] = error
        while current is not None and seen < 8:
            if self._is_retryable_single(current):
                return True
            current = current.__cause__
            seen += 1
        return False

    @staticmethod
    def _is_retryable_single(error: BaseException) -> bool:
        # An error that crossed a transport carries the *worker's own*
        # classification (made with this same shipped policy); honour it
        # verbatim so both sides of the wire agree.
        hint = getattr(error, "retryable_hint", None)
        if hint is not None:
            return bool(hint)
        name = type(error).__name__
        if name in _CRASH_TYPE_NAMES or name in _TRANSPORT_RETRYABLE_NAMES:
            return True
        if isinstance(error, sqlite3.OperationalError):
            message = str(error).lower()
            return "locked" in message or "busy" in message
        if isinstance(error, OSError):
            return True
        return False

    def delay_for(self, shard: int, attempt: int) -> float:
        """Backoff before re-dispatching ``shard`` after failed ``attempt``."""
        raw = min(self.max_delay, self.base_delay * (self.backoff ** max(0, attempt - 1)))
        rng = random.Random((self.seed + 1) * 1_000_003 + shard * 10_007 + attempt)
        return raw * (1.0 + self.jitter * rng.random())


@dataclass
class ShardFailure:
    """One shard's permanent failure, after its attempts were exhausted
    (or its error was classified permanent on the spot)."""

    shard: int
    attempts: int
    error_type: str
    error: str
    retryable: bool
    traceback: str = ""

    def describe(self) -> str:
        return (
            f"shard {self.shard}: {self.error_type} after "
            f"{self.attempts} attempt(s): {self.error}"
        )

    def to_json(self) -> Dict[str, Any]:
        return {
            "shard": self.shard,
            "attempts": self.attempts,
            "error_type": self.error_type,
            "error": self.error,
            "retryable": self.retryable,
            "traceback": self.traceback,
        }

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "ShardFailure":
        return cls(
            shard=int(payload["shard"]),
            attempts=int(payload["attempts"]),
            error_type=str(payload["error_type"]),
            error=str(payload["error"]),
            retryable=bool(payload["retryable"]),
            traceback=str(payload.get("traceback", "")),
        )


def _failure_type(error: BaseException) -> str:
    """The type name recorded in a :class:`ShardFailure`.  An error that
    crossed a transport keeps its *original* type name (``remote_type``)
    so a failure report reads the same whether the shard failed here or
    on a remote worker."""
    return str(getattr(error, "remote_type", type(error).__name__))


@dataclass
class SupervisionOutcome:
    """What a supervised map stage produced: per-shard results, permanent
    failures, and how many attempts were retried along the way."""

    results: Dict[int, Any] = field(default_factory=dict)
    failures: List[ShardFailure] = field(default_factory=list)
    retries: int = 0


def _write_result(path: str, payload: Dict[str, Any]) -> None:
    temp = path + ".tmp"
    with open(temp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp, path)


def _child_entry(
    worker: Callable[[Any, int], Any],
    payload: Any,
    attempt: int,
    result_path: str,
    policy: RetryPolicy,
) -> None:
    """Attempt entry point inside the worker process: run, then report
    through the result sidecar.  An injected ``kill`` fault calls
    ``os._exit`` inside ``worker`` — no file is written and the parent
    classifies the attempt as a crash."""
    try:
        result = worker(payload, attempt)
    except BaseException as error:  # noqa: BLE001 - everything must be reported
        _write_result(
            result_path,
            {
                "ok": False,
                "type": type(error).__name__,
                "error": str(error),
                "traceback": traceback.format_exc(),
                "retryable": policy.is_retryable(error),
            },
        )
        return
    _write_result(result_path, {"ok": True, "result": result})


@dataclass
class _Attempt:
    shard: int
    payload: Any
    attempt: int
    process: "multiprocessing.process.BaseProcess"
    result_path: str
    deadline: Optional[float]


class ShardSupervisor:
    """Run ``worker(payload, attempt)`` for every ``(shard, payload)`` task,
    retrying per :class:`RetryPolicy` and collecting permanent failures.

    Two execution modes share one retry/classification contract:

    * ``in_process=False`` — each attempt is its own daemonic
      ``multiprocessing.Process`` writing a JSON result sidecar into
      ``scratch_dir``; the parent multiplexes process sentinels with
      ``multiprocessing.connection.wait``, enforces ``timeout`` per
      attempt, and schedules backoff without blocking other shards.
      ``worker`` and payloads must be picklable.
    * ``in_process=True`` — attempts run serially in the calling process
      (the ``workers <= 1`` path, where process isolation buys nothing and
      ``timeout`` cannot be enforced).
    * ``use_threads=True`` — attempts run on a thread pool.  For workers
      that *wait* rather than compute: a socket transport's attempt is a
      wire conversation blocked on a remote process, so threads give real
      concurrency without pickling anything.  ``timeout`` is rejected here
      (threads cannot be killed; socket transports bound their reads with
      socket timeouts instead).

    ``on_complete(shard, result)`` fires in the *calling* process as each
    shard finishes — the checkpoint/progress hook.  If it raises, the
    supervisor terminates outstanding attempts and propagates (preserving
    the abort semantics callers rely on)."""

    def __init__(
        self,
        worker: Callable[[Any, int], Any],
        *,
        policy: Optional[RetryPolicy] = None,
        concurrency: int = 1,
        timeout: Optional[float] = None,
        scratch_dir: Optional[str] = None,
        on_complete: Optional[Callable[[int, Any], None]] = None,
        in_process: bool = False,
        use_threads: bool = False,
    ) -> None:
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive")
        if in_process and use_threads:
            raise ValueError("in_process and use_threads are mutually exclusive")
        if (in_process or use_threads) and timeout is not None:
            raise ValueError("timeout requires process isolation (in_process=False)")
        if not in_process and not use_threads and scratch_dir is None:
            raise ValueError("subprocess mode needs a scratch_dir for result files")
        self.worker = worker
        self.policy = policy if policy is not None else RetryPolicy()
        self.concurrency = max(1, concurrency)
        self.timeout = timeout
        self.scratch_dir = scratch_dir
        self.on_complete = on_complete
        self.in_process = in_process
        self.use_threads = use_threads

    def run(self, tasks: Sequence[Tuple[int, Any]]) -> SupervisionOutcome:
        if self.in_process:
            return self._run_in_process(tasks)
        if self.use_threads:
            return self._run_threads(tasks)
        return self._run_processes(tasks)

    # ------------------------------------------------------------------ #
    # In-process mode
    # ------------------------------------------------------------------ #

    def _run_in_process(self, tasks: Sequence[Tuple[int, Any]]) -> SupervisionOutcome:
        outcome = SupervisionOutcome()
        for shard, payload in tasks:
            attempt = 1
            while True:
                try:
                    result = self.worker(payload, attempt)
                except Exception as error:  # noqa: BLE001 - classified below
                    retryable = self.policy.is_retryable(error)
                    if retryable and attempt < self.policy.max_attempts:
                        outcome.retries += 1
                        time.sleep(self.policy.delay_for(shard, attempt))
                        attempt += 1
                        continue
                    outcome.failures.append(
                        ShardFailure(
                            shard=shard,
                            attempts=attempt,
                            error_type=_failure_type(error),
                            error=str(error),
                            retryable=retryable,
                            traceback=traceback.format_exc(),
                        )
                    )
                    break
                outcome.results[shard] = result
                if self.on_complete is not None:
                    self.on_complete(shard, result)
                break
        return outcome

    # ------------------------------------------------------------------ #
    # Thread mode (transport conversations)
    # ------------------------------------------------------------------ #

    def _run_threads(self, tasks: Sequence[Tuple[int, Any]]) -> SupervisionOutcome:
        from concurrent import futures as cf

        outcome = SupervisionOutcome()
        # Same (eligible time, shard, payload, attempt) queue discipline as
        # subprocess mode: backoff delays eligibility, never the whole stage.
        runnable: List[Tuple[float, int, Any, int]] = [
            (0.0, shard, payload, 1) for shard, payload in tasks
        ]
        active: Dict[Any, Tuple[int, Any, int]] = {}
        executor = cf.ThreadPoolExecutor(
            max_workers=self.concurrency, thread_name_prefix="repro-shard"
        )
        try:
            while runnable or active:
                now = time.monotonic()
                runnable.sort(key=lambda entry: entry[0])
                while runnable and len(active) < self.concurrency and runnable[0][0] <= now:
                    _, shard, payload, attempt = runnable.pop(0)
                    future = executor.submit(self.worker, payload, attempt)
                    active[future] = (shard, payload, attempt)
                if not active:
                    time.sleep(max(0.0, runnable[0][0] - time.monotonic()))
                    continue
                wait_for: Optional[float] = None
                if runnable:
                    wait_for = max(0.0, runnable[0][0] - time.monotonic())
                done, _pending = cf.wait(
                    list(active), timeout=wait_for, return_when=cf.FIRST_COMPLETED
                )
                for future in done:
                    shard, payload, attempt = active.pop(future)
                    error = future.exception()
                    if error is None:
                        result = future.result()
                        outcome.results[shard] = result
                        if self.on_complete is not None:
                            self.on_complete(shard, result)
                        continue
                    retryable = self.policy.is_retryable(error)
                    if retryable and attempt < self.policy.max_attempts:
                        outcome.retries += 1
                        eligible = time.monotonic() + self.policy.delay_for(shard, attempt)
                        runnable.append((eligible, shard, payload, attempt + 1))
                        continue
                    outcome.failures.append(
                        ShardFailure(
                            shard=shard,
                            attempts=attempt,
                            error_type=_failure_type(error),
                            error=str(error),
                            retryable=retryable,
                            traceback="".join(
                                traceback.format_exception(
                                    type(error), error, error.__traceback__
                                )
                            ),
                        )
                    )
        finally:
            executor.shutdown(wait=False, cancel_futures=True)
        return outcome

    # ------------------------------------------------------------------ #
    # Subprocess mode
    # ------------------------------------------------------------------ #

    def _result_path(self, shard: int, attempt: int) -> str:
        assert self.scratch_dir is not None
        return os.path.join(self.scratch_dir, f"attempt-{shard:05d}-{attempt}.json")

    def _launch(self, shard: int, payload: Any, attempt: int) -> _Attempt:
        result_path = self._result_path(shard, attempt)
        if os.path.exists(result_path):
            os.remove(result_path)
        process = multiprocessing.get_context().Process(
            target=_child_entry,
            args=(self.worker, payload, attempt, result_path, self.policy),
            daemon=True,
            name=f"repro-shard-{shard}-a{attempt}",
        )
        process.start()
        deadline = time.monotonic() + self.timeout if self.timeout is not None else None
        return _Attempt(shard, payload, attempt, process, result_path, deadline)

    @staticmethod
    def _kill(attempt: _Attempt) -> None:
        if attempt.process.is_alive():
            attempt.process.terminate()
            attempt.process.join(1.0)
            if attempt.process.is_alive():
                attempt.process.kill()
                attempt.process.join()

    def _run_processes(self, tasks: Sequence[Tuple[int, Any]]) -> SupervisionOutcome:
        outcome = SupervisionOutcome()
        # (eligible time, shard, payload, attempt) — retries re-enter with a
        # backoff-delayed eligibility instead of blocking the whole stage.
        runnable: List[Tuple[float, int, Any, int]] = [
            (0.0, shard, payload, 1) for shard, payload in tasks
        ]
        active: Dict[object, _Attempt] = {}
        try:
            while runnable or active:
                now = time.monotonic()
                runnable.sort(key=lambda entry: entry[0])
                while runnable and len(active) < self.concurrency and runnable[0][0] <= now:
                    _, shard, payload, attempt = runnable.pop(0)
                    state = self._launch(shard, payload, attempt)
                    active[state.process.sentinel] = state

                wakeups = [state.deadline for state in active.values() if state.deadline is not None]
                if runnable and len(active) < self.concurrency:
                    wakeups.append(runnable[0][0])
                wait_for: Optional[float] = None
                if wakeups:
                    wait_for = max(0.0, min(wakeups) - time.monotonic())

                if active:
                    ready = mp_connection.wait(list(active.keys()), timeout=wait_for)
                elif wait_for is not None:
                    time.sleep(wait_for)
                    continue
                else:
                    ready = []

                now = time.monotonic()
                finished = [active.pop(sentinel) for sentinel in ready]
                for sentinel, state in list(active.items()):
                    if state.deadline is not None and now >= state.deadline:
                        self._kill(state)
                        del active[sentinel]
                        self._settle(state, outcome, runnable, timed_out=True)
                for state in finished:
                    self._settle(state, outcome, runnable, timed_out=False)
        finally:
            for state in active.values():
                self._kill(state)
                if os.path.exists(state.result_path):
                    os.remove(state.result_path)
        return outcome

    def _settle(
        self,
        state: _Attempt,
        outcome: SupervisionOutcome,
        runnable: List[Tuple[float, int, Any, int]],
        *,
        timed_out: bool,
    ) -> None:
        state.process.join()
        report: Optional[Dict[str, Any]] = None
        if not timed_out and os.path.exists(state.result_path):
            try:
                with open(state.result_path, "r", encoding="utf-8") as handle:
                    report = json.load(handle)
            except (OSError, ValueError):
                report = None
        if os.path.exists(state.result_path):
            os.remove(state.result_path)

        if report is not None and report.get("ok"):
            outcome.results[state.shard] = report["result"]
            if self.on_complete is not None:
                self.on_complete(state.shard, report["result"])
            return

        if timed_out:
            error_type = ShardTimeout.__name__
            message = (
                f"shard {state.shard} attempt {state.attempt} exceeded "
                f"{self.timeout}s and was cancelled"
            )
            error_traceback = ""
            retryable = True
        elif report is not None:
            error_type = str(report.get("type", "Exception"))
            message = str(report.get("error", ""))
            error_traceback = str(report.get("traceback", ""))
            retryable = bool(report.get("retryable", False))
        else:
            error_type = WorkerCrash.__name__
            message = (
                f"worker for shard {state.shard} exited "
                f"(code {state.process.exitcode}) before reporting a result"
            )
            error_traceback = ""
            retryable = True

        if retryable and state.attempt < self.policy.max_attempts:
            outcome.retries += 1
            eligible = time.monotonic() + self.policy.delay_for(state.shard, state.attempt)
            runnable.append((eligible, state.shard, state.payload, state.attempt + 1))
            return
        outcome.failures.append(
            ShardFailure(
                shard=state.shard,
                attempts=state.attempt,
                error_type=error_type,
                error=message,
                retryable=retryable,
                traceback=error_traceback,
            )
        )
