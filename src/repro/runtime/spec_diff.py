"""The spec-diff layer: what changed between two migration specs?

Schemas evolve one table or column at a time, but the plan cache is
all-or-nothing: any edit changes the spec fingerprint and forces a full
re-synthesis.  This module compares an edited spec against a cached one and
computes, per table, exactly how much of the cached plan is still valid:

* **program reuse** — a table's synthesized program depends only on the
  example tree and the table's *data rows* (the example rows projected onto
  its data columns).  If those are unchanged, the cold synthesis would
  reproduce the cached program bit for bit, so the program is reused.
* **key reuse** — a table's foreign-key rules additionally depend on its full
  example rows (the symbolic key labels) and on the ``label → node tuple``
  alignments of every table it references.  They are reused only when the
  table *and all its FK targets* are unchanged (modulo renaming); otherwise
  the cheap key-learning step reruns while the expensive program synthesis is
  still skipped.

Renames are detected structurally: a table that disappeared under its old
name is matched to a new table with identical columns, keys and example rows
(foreign-key targets compared through the rename map, so renaming a *target*
does not invalidate its referrers).  The same reasoning powers the
"key rules changed" case — adding or dropping a foreign key changes a
table's data columns only if the FK column was previously a data column, so
program reuse is decided by data-row equality, never by schema syntax.

Because every reuse decision mirrors an invariant of the learner ("same
task → same program"), an incremental learn assembled from this diff is
**byte-identical** to a cold learn of the edited spec — the property enforced
by ``tests/test_incremental.py`` and ``benchmarks/bench_incremental.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..hdt.node import Scalar
from ..migration.engine import MigrationSpec
from ..migration.keys import ForeignKeyRule
from ..relational.schema import DatabaseSchema, TableSchema
from .plan import MigrationPlan, TablePlan

Row = Tuple[Scalar, ...]

#: Table statuses, from most to least reusable.
UNCHANGED = "unchanged"
RENAMED = "renamed"
CHANGED = "changed"
ADDED = "added"


@dataclass
class TableChange:
    """The diff verdict for one table of the *edited* spec."""

    table: str
    status: str
    source: Optional[str] = None
    """The cached table this one maps to (``None`` for added tables)."""

    reuse_program: bool = False
    """The cached program would be re-learned identically — skip synthesis."""

    reuse_keys: bool = False
    """The cached foreign-key rules are still valid — skip key learning too."""


@dataclass
class SpecDiff:
    """A complete comparison of an edited spec against a cached one."""

    tables: Dict[str, TableChange]
    """Verdict per table of the edited spec, keyed by (new) table name."""

    removed: List[str] = field(default_factory=list)
    """Cached tables with no counterpart in the edited spec."""

    # ------------------------------------------------------------- queries
    def names_with_status(self, status: str) -> List[str]:
        return [name for name, c in self.tables.items() if c.status == status]

    @property
    def added(self) -> List[str]:
        return self.names_with_status(ADDED)

    @property
    def changed(self) -> List[str]:
        return self.names_with_status(CHANGED)

    @property
    def unchanged(self) -> List[str]:
        return self.names_with_status(UNCHANGED)

    @property
    def renamed(self) -> Dict[str, str]:
        """``new name → old name`` for every detected rename."""
        return {
            name: change.source
            for name, change in self.tables.items()
            if change.status == RENAMED and change.source is not None
        }

    @property
    def reusable_programs(self) -> int:
        return sum(1 for c in self.tables.values() if c.reuse_program)

    def identical(self) -> bool:
        """True when nothing needs re-learning (every table fully reused)."""
        return not self.removed and all(
            c.status == UNCHANGED and c.reuse_keys for c in self.tables.values()
        )

    def summary(self) -> str:
        """One-line human summary for CLI cache-hit reporting."""
        total = len(self.tables)
        parts = [f"{self.reusable_programs}/{total} programs reused"]
        if self.renamed:
            parts.append(f"{len(self.renamed)} renamed")
        if self.added:
            parts.append(f"{len(self.added)} added")
        if self.changed:
            parts.append(f"{len(self.changed)} changed")
        if self.removed:
            parts.append(f"{len(self.removed)} removed")
        return ", ".join(parts)


# --------------------------------------------------------------------------- #
# Normalization helpers
# --------------------------------------------------------------------------- #


def _rows_key(rows: Sequence[Row]) -> str:
    """Exact (repr-level) row-list identity — ``True`` and ``1`` stay distinct,
    matching how :func:`~repro.runtime.plan_cache.spec_fingerprint` hashes rows."""
    return repr([tuple(row) for row in rows])


def _data_rows_key(table: TableSchema, rows: Sequence[Row]) -> Optional[str]:
    """The rows projected onto the table's data columns — the synthesis task."""
    names = table.column_names
    try:
        indices = [names.index(c) for c in table.data_columns()]
    except ValueError:  # pragma: no cover - schema validation prevents this
        return None
    return repr([tuple(row[i] for i in indices) for row in rows])


def _columns_shape(table: TableSchema) -> Tuple:
    """Column layout including names (renaming a column is a change)."""
    return tuple((c.name, c.dtype, c.nullable) for c in table.columns)


def _keys_shape(table: TableSchema, rename: Dict[str, str]) -> Tuple:
    """Key structure with FK targets mapped through ``old → new`` renames."""
    return (
        table.primary_key,
        table.natural_keys,
        tuple(
            (fk.column, rename.get(fk.target_table, fk.target_table), fk.target_column)
            for fk in table.foreign_keys
        ),
    )


def _match_shape(table: TableSchema) -> Tuple:
    """Rename-candidate signature: everything except the name and FK targets."""
    return (
        _columns_shape(table),
        table.primary_key,
        table.natural_keys,
        tuple((fk.column, fk.target_column) for fk in table.foreign_keys),
    )


# --------------------------------------------------------------------------- #
# The diff
# --------------------------------------------------------------------------- #


def diff_specs(
    old_schema: DatabaseSchema,
    old_examples: Dict[str, List[Row]],
    new_spec: MigrationSpec,
) -> SpecDiff:
    """Compare an edited spec against a cached (schema, example-rows) snapshot.

    The example *tree* is assumed identical — the caller
    (:class:`~repro.runtime.context_store.ContextStore`) only pairs specs with
    the same example-tree fingerprint.
    """
    new_schema = new_spec.schema
    new_examples = {
        example.table: example.rows for example in new_spec.table_examples
    }
    old_tables = {t.name: t for t in old_schema.tables}
    new_tables = {t.name: t for t in new_schema.tables}

    # Pass 1: pair tables — same name first, then structural rename matching
    # among the leftovers (unique signature + example-row matches only).
    source_of: Dict[str, str] = {
        name: name for name in new_tables if name in old_tables
    }
    spare_old = [name for name in old_tables if name not in new_tables]
    spare_new = [name for name in new_tables if name not in old_tables]
    for new_name in spare_new:
        new_table = new_tables[new_name]
        rows = new_examples.get(new_name, [])
        candidates = [
            old_name
            for old_name in spare_old
            if _match_shape(old_tables[old_name]) == _match_shape(new_table)
            and _rows_key(old_examples.get(old_name, [])) == _rows_key(rows)
        ]
        if len(candidates) == 1:
            source_of[new_name] = candidates[0]
            spare_old.remove(candidates[0])

    rename = {old: new for new, old in source_of.items()}

    # Pass 2: classify each paired table with FK targets mapped through the
    # complete rename map (a renamed *target* must not dirty its referrers).
    changes: Dict[str, TableChange] = {}
    for new_name, new_table in new_tables.items():
        old_name = source_of.get(new_name)
        if old_name is None:
            changes[new_name] = TableChange(table=new_name, status=ADDED)
            continue
        old_table = old_tables[old_name]
        old_rows = old_examples.get(old_name, [])
        new_rows = new_examples.get(new_name, [])
        equivalent = (
            _columns_shape(old_table) == _columns_shape(new_table)
            and _keys_shape(old_table, rename) == _keys_shape(new_table, {})
            and _rows_key(old_rows) == _rows_key(new_rows)
        )
        if equivalent:
            status = UNCHANGED if old_name == new_name else RENAMED
            changes[new_name] = TableChange(
                table=new_name, status=status, source=old_name, reuse_program=True
            )
        else:
            reuse_program = _data_rows_key(old_table, old_rows) == _data_rows_key(
                new_table, new_rows
            )
            changes[new_name] = TableChange(
                table=new_name,
                status=CHANGED,
                source=old_name,
                reuse_program=reuse_program,
            )

    # Pass 3: key reuse — the table and every FK target must be equivalent.
    stable = {
        name for name, c in changes.items() if c.status in (UNCHANGED, RENAMED)
    }
    for new_name in stable:
        targets = {fk.target_table for fk in new_tables[new_name].foreign_keys}
        changes[new_name].reuse_keys = targets.issubset(stable)

    removed = sorted(set(old_tables) - set(source_of.values()))
    return SpecDiff(tables=changes, removed=removed)


def reusable_plans(
    diff: SpecDiff, old_plan: MigrationPlan, new_schema: DatabaseSchema
) -> Tuple[Dict[str, TablePlan], Set[str]]:
    """Turn a diff into the ``reuse`` arguments of :meth:`MigrationEngine.learn`.

    Returns ``(reuse, reuse_keys)``: per reusable table a :class:`TablePlan`
    carrying the cached program (renamed tables get their foreign-key rules'
    ``target_table`` rewritten through the rename map), and the subset of
    table names whose key rules are reused verbatim — the engine re-learns
    keys for the rest.
    """
    rename = {old: new for new, old in diff.renamed.items()}
    reuse: Dict[str, TablePlan] = {}
    reuse_keys: Set[str] = set()
    for name, change in diff.tables.items():
        if not change.reuse_program or change.source is None:
            continue
        cached = old_plan.tables.get(change.source)
        if cached is None:
            continue
        rules: List[ForeignKeyRule] = []
        if change.reuse_keys:
            rules = [
                ForeignKeyRule(
                    column=rule.column,
                    target_table=rename.get(rule.target_table, rule.target_table),
                    links=list(rule.links),
                )
                for rule in cached.foreign_key_rules
            ]
            reuse_keys.add(name)
        reuse[name] = TablePlan(
            table=name,
            program=cached.program,
            data_columns=new_schema.table(name).data_columns(),
            foreign_key_rules=rules,
        )
    return reuse, reuse_keys
