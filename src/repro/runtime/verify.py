"""Post-run verification: re-derive invariants against a finished target.

A migration that "finished" is not the same as a migration that is *right*.
``repro verify`` (CLI) and the service's verify jobs close that gap: they
read the produced target back through the backends' read-side hooks and
check, per table,

* **row counts** — the target holds exactly the rows the plan produces for
  the source document.  The expected counts are *re-derived* by executing
  the plan against the document into a
  :class:`~repro.runtime.backends.null.NullBackend` (the same counting pass
  ``--dry-run`` uses — full pipeline, no writes), or taken from a recorded
  :meth:`~repro.runtime.executor.ExecutionReport.to_json` file when one is
  supplied;
* **primary-key integrity** — the primary-key column is non-null and
  unique;
* **foreign-key integrity** — every non-null foreign-key value resolves to
  an existing key of its target table *in the target itself* (so a
  deliberately corrupted or truncated artifact is detected even when its
  counts happen to match);
* **index presence** (SQL targets) — the secondary FK indexes the DDL
  generator emits (:func:`repro.codegen.sql_gen.expected_index_names`)
  actually exist in the finished database, so a "ready to serve" target is
  not silently missing its join indexes.

Verification never writes: the SQLite and DuckDB hooks open the database
read-only, the columnar hook reads files, the memory backend is checked in
process.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..codegen.sql_gen import expected_index_names
from ..relational.schema import DatabaseSchema
from .backends.base import ExecutionBackend, Row
from .supervisor import RetryPolicy

#: Target reads retry briefly on transient errors (a SQLite target still
#: being written holds the lock only for moments at a time).
_READ_RETRY_POLICY = RetryPolicy(max_attempts=4, base_delay=0.1, max_delay=1.0)


class VerificationError(Exception):
    """The target could not be read at all (missing file, bad manifest...)."""


@dataclass
class TableCheck:
    """The verification outcome for one table."""

    table: str
    rows: int
    expected_rows: Optional[int] = None
    problems: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.problems

    def to_json(self) -> Dict[str, object]:
        return {
            "rows": self.rows,
            "expected_rows": self.expected_rows,
            "passed": self.passed,
            "problems": list(self.problems),
        }


@dataclass
class VerificationReport:
    """Per-table pass/fail plus the overall verdict."""

    tables: List[TableCheck]

    @property
    def passed(self) -> bool:
        return all(check.passed for check in self.tables)

    def to_json(self) -> Dict[str, object]:
        return {
            "kind": "repro_verification_report",
            "passed": self.passed,
            "tables": {check.table: check.to_json() for check in self.tables},
        }

    def describe(self) -> str:
        lines = []
        for check in self.tables:
            if check.passed:
                expected = (
                    f" (expected {check.expected_rows})"
                    if check.expected_rows is not None
                    else ""
                )
                lines.append(f"  {check.table:28} ok: {check.rows} rows{expected}")
            else:
                lines.append(f"  {check.table:28} FAIL:")
                lines.extend(f"    - {problem}" for problem in check.problems)
        verdict = "PASS" if self.passed else "FAIL"
        failed = sum(1 for check in self.tables if not check.passed)
        suffix = "" if self.passed else f" ({failed} table(s) failed)"
        lines.append(f"verification: {verdict}{suffix}")
        return "\n".join(lines)


def verify_rows(
    schema: DatabaseSchema,
    rows_by_table: Dict[str, Sequence[Row]],
    expected_counts: Optional[Dict[str, int]] = None,
    *,
    index_names: Optional[Sequence[str]] = None,
) -> VerificationReport:
    """Check row-count, primary-key and foreign-key invariants.

    ``rows_by_table`` maps table names to the target's rows; a schema table
    absent from the mapping fails with "missing from the target".
    ``expected_counts`` (when given) adds the row-count comparison.
    Natural-key tables are checked like surrogate-key ones — their keys are
    source data, but uniqueness and resolvability must hold all the same.

    ``index_names`` (when given — SQL targets; see
    :func:`read_target_indexes`) adds the index-presence check: every
    secondary FK index the DDL generator emits for the schema must appear
    in the list, and a missing one fails its table.
    """
    key_values: Dict[str, Dict[str, set]] = {}
    checks: List[TableCheck] = []
    by_name = {t.name: t for t in schema.tables}
    # First pass: collect every referenced (table, column) value set so FK
    # checks can resolve regardless of declaration order.
    referenced: Dict[str, set] = set()  # type: ignore[assignment]
    referenced = {
        (fk.target_table, fk.target_column)
        for table in schema.tables
        for fk in table.foreign_keys
    }
    for table_name, column in referenced:
        rows = rows_by_table.get(table_name)
        if rows is None:
            continue
        index = by_name[table_name].column_names.index(column)
        key_values.setdefault(table_name, {})[column] = {
            row[index] for row in rows if row[index] is not None
        }
    for table in schema.tables:
        rows = rows_by_table.get(table.name)
        if rows is None:
            checks.append(
                TableCheck(
                    table=table.name,
                    rows=0,
                    expected_rows=(expected_counts or {}).get(table.name),
                    problems=["table is missing from the target"],
                )
            )
            continue
        check = TableCheck(table=table.name, rows=len(rows))
        if expected_counts is not None and table.name in expected_counts:
            check.expected_rows = expected_counts[table.name]
            if check.expected_rows != len(rows):
                check.problems.append(
                    f"row count mismatch: target has {len(rows)} rows, "
                    f"expected {check.expected_rows}"
                )
        names = table.column_names
        if table.primary_key is not None:
            pk_index = names.index(table.primary_key)
            seen: set = set()
            nulls = duplicates = 0
            for row in rows:
                value = row[pk_index]
                if value is None:
                    nulls += 1
                elif value in seen:
                    duplicates += 1
                else:
                    seen.add(value)
            if nulls:
                check.problems.append(
                    f"primary key {table.primary_key!r} is NULL in {nulls} row(s)"
                )
            if duplicates:
                check.problems.append(
                    f"primary key {table.primary_key!r} has {duplicates} duplicate(s)"
                )
        for fk in table.foreign_keys:
            fk_index = names.index(fk.column)
            targets = key_values.get(fk.target_table, {}).get(fk.target_column)
            if targets is None:
                check.problems.append(
                    f"foreign key {fk.column!r} cannot be checked: target table "
                    f"{fk.target_table!r} is missing from the target"
                )
                continue
            dangling = sum(
                1
                for row in rows
                if row[fk_index] is not None and row[fk_index] not in targets
            )
            if dangling:
                check.problems.append(
                    f"foreign key {fk.column!r} -> {fk.target_table}."
                    f"{fk.target_column} dangles in {dangling} row(s)"
                )
        checks.append(check)
    if index_names is not None:
        present = set(index_names)
        expected = expected_index_names(schema)
        by_table = {check.table: check for check in checks}
        for table_name, names in expected.items():
            for name in names:
                if name not in present:
                    by_table[table_name].problems.append(
                        f"secondary index {name!r} is missing from the target"
                    )
    return VerificationReport(tables=checks)


def read_target_rows(
    backend_name: str,
    output: Optional[str],
    schema: DatabaseSchema,
    *,
    retry_policy: Optional[RetryPolicy] = None,
) -> Dict[str, List[Row]]:
    """Read a finished target back through its backend's read-side hook.

    ``backend_name`` is the registry name (``sqlite`` / ``columnar`` /
    ``duckdb``);
    ``output`` is the artifact path.  The memory backend has no durable
    artifact — verify it in process with :func:`verify_backend`.

    Transient read errors (a locked SQLite target, per
    :meth:`RetryPolicy.is_retryable` — which follows ``__cause__`` chains,
    so wrapped lock errors count) are retried with backoff before giving up.
    """
    policy = retry_policy if retry_policy is not None else _READ_RETRY_POLICY
    attempt = 1
    while True:
        try:
            return _read_target_rows_once(backend_name, output, schema)
        except VerificationError:
            raise
        except Exception as error:  # noqa: BLE001 - classified right below
            if policy.is_retryable(error) and attempt < policy.max_attempts:
                time.sleep(policy.delay_for(0, attempt))
                attempt += 1
                continue
            raise


def _read_target_rows_once(
    backend_name: str, output: Optional[str], schema: DatabaseSchema
) -> Dict[str, List[Row]]:
    if backend_name == "sqlite":
        if output is None:
            raise VerificationError("verifying a sqlite target needs its file path")
        from .backends.sqlite import read_table_rows

        return read_table_rows(output, schema)
    if backend_name == "duckdb":
        if output is None:
            raise VerificationError("verifying a duckdb target needs its file path")
        from .backends.duckdb import read_table_rows

        return read_table_rows(output, schema)
    if backend_name == "columnar":
        if output is None:
            raise VerificationError("verifying a columnar target needs its directory")
        from .backends.columnar import read_table_rows

        return read_table_rows(output, schema)
    if backend_name == "memory":
        raise VerificationError(
            "the memory backend leaves no on-disk target; verify it in process "
            "(verify_backend) or re-run with --backend sqlite/columnar"
        )
    raise VerificationError(f"unknown backend {backend_name!r}")


def read_target_indexes(
    backend_name: str, output: Optional[str]
) -> Optional[List[str]]:
    """The index names present in a finished SQL target, read-only.

    Returns ``None`` for backends without SQL indexes (memory, columnar) —
    the caller skips the index-presence check; for ``sqlite``/``duckdb``
    targets it returns the user-created index names, ready to pass to
    :func:`verify_rows` as ``index_names``.
    """
    if backend_name == "sqlite":
        if output is None:
            raise VerificationError("verifying a sqlite target needs its file path")
        from .backends.sqlite import read_index_names

        return read_index_names(output)
    if backend_name == "duckdb":
        if output is None:
            raise VerificationError("verifying a duckdb target needs its file path")
        from .backends.duckdb import read_index_names

        return read_index_names(output)
    return None


def verify_backend(
    backend: ExecutionBackend,
    schema: DatabaseSchema,
    expected_counts: Optional[Dict[str, int]] = None,
) -> VerificationReport:
    """Verify a finalized in-process backend through ``fetch_rows``."""
    rows = {table.name: backend.fetch_rows(table.name) for table in schema.tables}
    return verify_rows(schema, rows, expected_counts)
