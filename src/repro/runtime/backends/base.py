"""The :class:`ExecutionBackend` protocol — where migrated rows land.

The runtime separates *what to compute* (a :class:`~repro.runtime.plan.
MigrationPlan`) from *where the rows go*.  Every execution path — whole-tree
(:func:`~repro.runtime.executor.execute_plan`), streamed
(:func:`~repro.runtime.streaming.stream_execute`) and sharded
(:func:`~repro.runtime.sharded.shard_execute`) — drives its output through
this protocol, so a backend written once works under all three modes.

Four backends ship with the reproduction (see
:func:`~repro.runtime.backends.create_backend`):

* :class:`~repro.runtime.backends.memory.MemoryBackend` — the in-memory
  constraint-checked research database;
* :class:`~repro.runtime.backends.sqlite.SQLiteBackend` — a real SQLite
  file with native deferred key enforcement;
* :class:`~repro.runtime.backends.columnar.ColumnarBackend` — column-major
  batches, streamed as Arrow IPC / Parquet when ``pyarrow`` is available and
  as a pure-python JSON-columns format otherwise;
* :class:`~repro.runtime.backends.duckdb.DuckDBBackend` — the analytics
  tier: a DuckDB database file, immediately queryable (optional ``duckdb``
  dependency).

The full contract (lifecycle, ordering guarantees, failure semantics) is
documented in ``docs/backends.md``.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from ...hdt.node import Scalar
from ...relational.schema import DatabaseSchema

Row = Tuple[Scalar, ...]


class ExecutionBackend:
    """Where migrated rows are stored.

    Lifecycle: ``begin(schema)`` once, ``insert_rows(table, rows)`` any number
    of times (tables arrive in foreign-key dependency order; row batches for
    one table arrive in document order), ``finalize()`` once.  Backends may
    buffer; only after ``finalize`` must all rows be durable and
    constraint-checked.  ``close()`` releases external resources (files,
    connections) and is safe to call more than once.

    :meth:`fetch_rows` is the uniform read-back used by parity checks and
    benchmarks — every shipped backend can return a table's rows in insertion
    order after ``finalize``.
    """

    def begin(self, schema: DatabaseSchema) -> None:
        raise NotImplementedError

    def insert_rows(self, table: str, rows: Iterable[Row]) -> int:
        raise NotImplementedError

    def finalize(self) -> None:
        raise NotImplementedError

    def fetch_rows(self, table: str) -> List[Row]:
        """All rows of a table in insertion order (valid after ``finalize``)."""
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        """Release external resources; the default backend holds none."""
