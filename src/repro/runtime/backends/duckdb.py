"""DuckDB execution backend: migrate straight into an analytics database.

Where the SQLite backend is the durable OLTP-ish default, this backend is
the *analytics tier*: the migrated database lands in a single DuckDB file
that columnar/OLAP consumers can query immediately, and that doubles as an
independent SQL-side parity oracle for the migration itself (run the same
aggregate in DuckDB and against the memory backend; the answers must
match).

``duckdb`` is an optional dependency, guarded exactly like ``pyarrow`` in
:mod:`.columnar`: the backend is always *registered* (so ``--backend
duckdb`` is always a recognized name), but constructing it without the
library raises a :class:`DuckDBBackendError` explaining the
``pip install repro[duckdb]`` extra.

Design notes:

* DDL comes from :func:`repro.codegen.sql_gen.create_schema_statements`
  with ``dialect="duckdb"`` — DuckDB's ``INTEGER`` is 32-bit and ``REAL``
  is float4, so the dialect widens them to ``BIGINT``/``DOUBLE`` to keep
  python ints and floats exact.
* Rows load through batched ``executemany`` inside one transaction; the
  secondary FK indexes (:func:`~repro.codegen.sql_gen.create_index_statements`)
  are built at :meth:`finalize`, after the bulk load commits.
* With ``pyarrow`` installed, sealed Arrow record batches ingest
  zero-copy: :meth:`insert_arrow` registers the Arrow object with DuckDB
  and issues a single ``INSERT INTO ... SELECT``, never converting through
  python tuples.
* The module-level :func:`read_table_rows` / :func:`read_index_names`
  hooks mirror the SQLite ones: read-only connections, missing tables
  omitted (the verifier reports them), anything else raised as
  :class:`DuckDBBackendError`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ...codegen.sql_gen import (
    create_index_statements,
    create_schema_statements,
    quote_identifier,
)
from ...relational.schema import DatabaseSchema
from ..faults import fire_backend_insert
from .base import ExecutionBackend, Row

try:  # pragma: no cover - exercised only when duckdb is installed
    import duckdb as _duckdb

    HAVE_DUCKDB = True
except ImportError:  # pragma: no cover - the tier-1 environment
    _duckdb = None
    HAVE_DUCKDB = False

try:
    import pyarrow as _pa  # noqa: F401

    _HAVE_PYARROW = True
except ImportError:
    _pa = None
    _HAVE_PYARROW = False


class DuckDBBackendError(Exception):
    """Raised when loading into DuckDB fails or the dependency is absent."""


def _require_duckdb() -> None:
    if not HAVE_DUCKDB:
        raise DuckDBBackendError(
            "the duckdb backend needs the 'duckdb' package "
            "(pip install repro[duckdb])"
        )


class DuckDBBackend(ExecutionBackend):
    """Execute a migration plan directly into a DuckDB database file.

    Parameters
    ----------
    path:
        Filesystem path of the database file, or ``":memory:"`` (the
        default) for a transient in-memory database.
    batch_size:
        Number of rows per ``executemany`` call.
    apply_indexes:
        When true (default), :meth:`finalize` builds the secondary indexes
        on foreign-key columns after the bulk load commits.
    """

    def __init__(
        self,
        path: str = ":memory:",
        *,
        batch_size: int = 4096,
        apply_indexes: bool = True,
    ) -> None:
        _require_duckdb()
        self.path = path
        self.batch_size = max(1, batch_size)
        self.apply_indexes = apply_indexes
        self.connection = None
        self._insert_sql: Dict[str, str] = {}
        self._schema: Optional[DatabaseSchema] = None

    # ------------------------------------------------------------ lifecycle
    def begin(self, schema: DatabaseSchema) -> None:
        self._schema = schema
        try:
            self.connection = _duckdb.connect(self.path)
        except Exception as error:
            raise DuckDBBackendError(
                f"cannot open duckdb database {self.path!r}: {error}"
            ) from error
        try:
            for statement in create_schema_statements(schema, dialect="duckdb"):
                self.connection.execute(statement)
            self.connection.execute("BEGIN TRANSACTION")
        except Exception as error:
            raise DuckDBBackendError(f"failed to create schema: {error}") from error
        for table in schema.tables:
            placeholders = ", ".join("?" for _ in table.columns)
            columns = ", ".join(quote_identifier(c) for c in table.column_names)
            self._insert_sql[table.name] = (
                f"INSERT INTO {quote_identifier(table.name)} ({columns}) "
                f"VALUES ({placeholders})"
            )

    def insert_rows(self, table: str, rows: Iterable[Row]) -> int:
        if self.connection is None:
            raise DuckDBBackendError("begin() was not called")
        sql = self._insert_sql.get(table)
        if sql is None:
            raise DuckDBBackendError(f"unknown table {table!r}")
        inserted = 0
        batch: List[Row] = []
        try:
            for row in rows:
                batch.append(tuple(row))
                if len(batch) >= self.batch_size:
                    fire_backend_insert(1)
                    self.connection.executemany(sql, batch)
                    inserted += len(batch)
                    batch.clear()
            if batch:
                fire_backend_insert(1)
                self.connection.executemany(sql, batch)
                inserted += len(batch)
        except DuckDBBackendError:
            raise
        except Exception as error:
            raise DuckDBBackendError(f"insert into {table!r} failed: {error}") from error
        return inserted

    def insert_arrow(self, table: str, arrow_table) -> int:
        """Ingest a pyarrow Table/RecordBatch zero-copy via DuckDB's Arrow scan.

        The Arrow object is registered with the connection and inserted with
        one ``INSERT INTO ... SELECT`` — DuckDB reads the Arrow buffers
        directly, so no python-tuple round trip happens.  Requires pyarrow.
        """
        if self.connection is None:
            raise DuckDBBackendError("begin() was not called")
        if not _HAVE_PYARROW:
            raise DuckDBBackendError(
                "insert_arrow needs the 'pyarrow' package (pip install repro[columnar])"
            )
        if table not in self._insert_sql:
            raise DuckDBBackendError(f"unknown table {table!r}")
        if isinstance(arrow_table, _pa.RecordBatch):
            arrow_table = _pa.Table.from_batches([arrow_table])
        view = f"_repro_arrow_{table}"
        try:
            self.connection.register(view, arrow_table)
            self.connection.execute(
                f"INSERT INTO {quote_identifier(table)} "
                f"SELECT * FROM {quote_identifier(view)}"
            )
            self.connection.unregister(view)
        except Exception as error:
            raise DuckDBBackendError(
                f"arrow insert into {table!r} failed: {error}"
            ) from error
        return int(arrow_table.num_rows)

    def finalize(self) -> None:
        if self.connection is None:
            raise DuckDBBackendError("begin() was not called")
        try:
            self.connection.execute("COMMIT")
        except Exception as error:
            raise DuckDBBackendError(f"commit failed: {error}") from error
        if self.apply_indexes and self._schema is not None:
            try:
                for statement in create_index_statements(self._schema):
                    self.connection.execute(statement)
            except Exception as error:
                raise DuckDBBackendError(
                    f"failed to build secondary indexes: {error}"
                ) from error

    def close(self) -> None:
        if self.connection is not None:
            self.connection.close()
            self.connection = None

    # -------------------------------------------------------------- queries
    def fetch_rows(self, table: str) -> List[Row]:
        """All rows of a table in insertion (rowid) order."""
        if self.connection is None or self._schema is None:
            raise DuckDBBackendError("begin() was not called")
        table_schema = self._schema.table(table)
        columns = ", ".join(quote_identifier(c) for c in table_schema.column_names)
        cursor = self.connection.execute(
            f"SELECT {columns} FROM {quote_identifier(table)} ORDER BY rowid"
        )
        return [tuple(row) for row in cursor.fetchall()]

    def row_count(self, table: str) -> int:
        if self.connection is None:
            raise DuckDBBackendError("begin() was not called")
        cursor = self.connection.execute(
            f"SELECT COUNT(*) FROM {quote_identifier(table)}"
        )
        return int(cursor.fetchone()[0])


# --------------------------------------------------------------------------- #
# Read-side verification hooks
# --------------------------------------------------------------------------- #


def read_table_rows(path: str, schema: DatabaseSchema) -> Dict[str, List[Row]]:
    """Read a finished DuckDB target back for verification, read-only.

    Mirrors the SQLite hook: tables missing from the file are omitted from
    the result (the verifier reports them as failures); a missing or
    unopenable database raises :class:`DuckDBBackendError`.
    """
    _require_duckdb()
    import os

    if path != ":memory:" and not os.path.exists(path):
        raise DuckDBBackendError(f"duckdb target not found: {path}")
    try:
        connection = _duckdb.connect(path, read_only=True)
    except Exception as error:
        raise DuckDBBackendError(
            f"cannot open duckdb target {path}: {error}"
        ) from error
    rows: Dict[str, List[Row]] = {}
    try:
        for table_schema in schema.tables:
            columns = ", ".join(
                quote_identifier(c) for c in table_schema.column_names
            )
            try:
                cursor = connection.execute(
                    f"SELECT {columns} FROM {quote_identifier(table_schema.name)} "
                    f"ORDER BY rowid"
                )
                rows[table_schema.name] = [tuple(row) for row in cursor.fetchall()]
            except Exception as error:
                message = str(error).lower()
                if "does not exist" in message or "not found" in message:
                    continue  # genuinely absent: the verifier reports it
                raise DuckDBBackendError(
                    f"cannot read table {table_schema.name!r} of {path}: {error}"
                ) from error
    finally:
        connection.close()
    return rows


def read_index_names(path: str) -> List[str]:
    """Names of the user-created indexes in a finished DuckDB target."""
    _require_duckdb()
    import os

    if path != ":memory:" and not os.path.exists(path):
        raise DuckDBBackendError(f"duckdb target not found: {path}")
    try:
        connection = _duckdb.connect(path, read_only=True)
    except Exception as error:
        raise DuckDBBackendError(
            f"cannot open duckdb target {path}: {error}"
        ) from error
    try:
        cursor = connection.execute(
            "SELECT index_name FROM duckdb_indexes() ORDER BY index_name"
        )
        return [str(row[0]) for row in cursor.fetchall()]
    except Exception as error:
        raise DuckDBBackendError(
            f"cannot read index list of {path}: {error}"
        ) from error
    finally:
        connection.close()
