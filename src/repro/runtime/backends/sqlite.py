"""SQLite execution backend: migrate straight into a real database file.

The in-memory :class:`~repro.relational.database.Database` is the research
substrate; this backend is the production path.  It reuses the DDL generator
of :mod:`repro.codegen.sql_gen` (so the SQL surface is identical to the dump
path), loads rows with ``executemany`` in batches inside one transaction, and
lets SQLite enforce the primary- and foreign-key constraints natively:

* ``PRAGMA foreign_keys = ON`` + ``PRAGMA defer_foreign_keys = ON`` — every
  foreign key is checked, but only at commit, so insert order within a
  transaction does not matter;
* ``PRAGMA journal_mode = WAL`` and ``PRAGMA synchronous = NORMAL`` for
  file-backed databases — the standard write-heavy loading configuration
  (a full checkpoint runs at :meth:`finalize`, so the finished ``.db`` file is
  self-contained);
* batched ``executemany`` inserts, which avoid per-row statement overhead;
* ``PRAGMA busy_timeout`` plus a per-batch retry loop (each batch runs
  inside a savepoint, rolled back and retried with backoff when the
  database is locked/busy) — so a concurrent reader, e.g. ``repro verify``
  against a live migration, no longer fails the run with
  ``database is locked``.  See docs/robustness.md#error-classification.

:func:`database_matches_sqlite` is the parity check between the two backends:
it compares every table of an in-memory database with the corresponding
SQLite table row-for-row (in insertion order).
"""

from __future__ import annotations

import os
import sqlite3
import time
from typing import Dict, Iterable, List, Optional

from ...codegen.sql_gen import (
    create_index_statements,
    create_schema_statements,
    quote_identifier,
)
from ...hdt.node import Scalar
from ...relational.database import Database
from ...relational.schema import DatabaseSchema
from ..faults import fire_backend_insert
from ..supervisor import RetryPolicy
from .base import ExecutionBackend, Row

#: How long SQLite itself blocks on a locked database before erroring —
#: the first line of defense; the batch retry loop is the second.
DEFAULT_BUSY_TIMEOUT_MS = 10_000

#: Retry schedule for locked/busy batches (attempts beyond SQLite's own
#: busy wait; anything non-transient fails the batch immediately).
_INSERT_RETRY_POLICY = RetryPolicy(max_attempts=4, base_delay=0.05, max_delay=1.0)


class SQLiteBackendError(Exception):
    """Raised when loading into SQLite fails or violates a constraint."""


class SQLiteBackend(ExecutionBackend):
    """Execute a migration plan directly into a ``sqlite3`` database.

    Parameters
    ----------
    path:
        Filesystem path of the database, or ``":memory:"`` (the default) for
        a transient in-memory database.
    batch_size:
        Number of rows per ``executemany`` call.
    enforce_foreign_keys:
        When true (default), foreign keys are enforced by SQLite and a
        violation surfaces as :class:`SQLiteBackendError` at :meth:`finalize`.
    busy_timeout_ms:
        How long SQLite blocks on a locked database before raising
        (``PRAGMA busy_timeout``); locked/busy batches are additionally
        retried under ``retry_policy``.
    retry_policy:
        Retry schedule for locked/busy insert batches (defaults to 4
        attempts with short exponential backoff).
    apply_indexes:
        When true (default), :meth:`finalize` builds the secondary indexes
        on foreign-key columns (``create_index_statements``) after the bulk
        load commits — load bare tables fast, index once.
    """

    def __init__(
        self,
        path: str = ":memory:",
        *,
        batch_size: int = 1000,
        enforce_foreign_keys: bool = True,
        busy_timeout_ms: int = DEFAULT_BUSY_TIMEOUT_MS,
        retry_policy: Optional[RetryPolicy] = None,
        apply_indexes: bool = True,
    ) -> None:
        self.path = path
        self.batch_size = max(1, batch_size)
        self.enforce_foreign_keys = enforce_foreign_keys
        self.busy_timeout_ms = max(0, int(busy_timeout_ms))
        self.retry_policy = retry_policy if retry_policy is not None else _INSERT_RETRY_POLICY
        self.apply_indexes = apply_indexes
        self.connection: Optional[sqlite3.Connection] = None
        self._insert_sql: Dict[str, str] = {}
        self._schema: Optional[DatabaseSchema] = None

    # ------------------------------------------------------------ lifecycle
    def begin(self, schema: DatabaseSchema) -> None:
        self._schema = schema
        # isolation_level=None puts the sqlite3 driver in manual-transaction
        # mode: nothing auto-commits behind our back, so the single explicit
        # transaction opened below (and its defer_foreign_keys setting, which
        # SQLite resets at every commit) stays open until finalize().
        self.connection = sqlite3.connect(self.path, isolation_level=None)
        cursor = self.connection.cursor()
        cursor.execute(f"PRAGMA busy_timeout = {self.busy_timeout_ms}")
        if self.path != ":memory:":
            cursor.execute("PRAGMA journal_mode = WAL")
            cursor.execute("PRAGMA synchronous = NORMAL")
        if self.enforce_foreign_keys:
            cursor.execute("PRAGMA foreign_keys = ON")
        try:
            for statement in create_schema_statements(schema):
                cursor.execute(statement)
        except sqlite3.Error as error:
            raise SQLiteBackendError(f"failed to create schema: {error}") from error
        cursor.execute("BEGIN")
        if self.enforce_foreign_keys:
            # Check foreign keys at commit time: tables load in dependency
            # order, but deferral also tolerates self-references and keeps
            # batch boundaries free of ordering constraints.
            cursor.execute("PRAGMA defer_foreign_keys = ON")
        for table in schema.tables:
            placeholders = ", ".join("?" for _ in table.columns)
            columns = ", ".join(quote_identifier(c) for c in table.column_names)
            self._insert_sql[table.name] = (
                f"INSERT INTO {quote_identifier(table.name)} ({columns}) "
                f"VALUES ({placeholders})"
            )

    def insert_rows(self, table: str, rows: Iterable[Row]) -> int:
        if self.connection is None:
            raise SQLiteBackendError("begin() was not called")
        sql = self._insert_sql.get(table)
        if sql is None:
            raise SQLiteBackendError(f"unknown table {table!r}")
        cursor = self.connection.cursor()
        inserted = 0
        batch: List[Row] = []
        try:
            for row in rows:
                batch.append(tuple(row))
                if len(batch) >= self.batch_size:
                    self._insert_batch(cursor, sql, batch, table)
                    inserted += len(batch)
                    batch.clear()
            if batch:
                self._insert_batch(cursor, sql, batch, table)
                inserted += len(batch)
        except SQLiteBackendError:
            raise
        except sqlite3.Error as error:
            raise SQLiteBackendError(f"insert into {table!r} failed: {error}") from error
        return inserted

    def _insert_batch(
        self, cursor: sqlite3.Cursor, sql: str, batch: List[Row], table: str
    ) -> None:
        """Insert one batch inside a savepoint, retrying locked/busy errors.

        The savepoint makes a retry idempotent: a batch that failed partway
        through is rolled back before being re-executed, so no retry can
        double-insert rows.  Only transient errors (locked/busy, per
        :meth:`RetryPolicy.is_retryable`) are retried; anything else
        propagates immediately.
        """
        policy = self.retry_policy
        attempt = 1
        while True:
            try:
                fire_backend_insert(attempt)
                cursor.execute("SAVEPOINT repro_insert_batch")
                cursor.executemany(sql, batch)
                cursor.execute("RELEASE SAVEPOINT repro_insert_batch")
                return
            except sqlite3.OperationalError as error:
                try:
                    cursor.execute("ROLLBACK TO SAVEPOINT repro_insert_batch")
                    cursor.execute("RELEASE SAVEPOINT repro_insert_batch")
                except sqlite3.Error:
                    pass  # the savepoint may not exist (error before BEGIN-ing it)
                if policy.is_retryable(error) and attempt < policy.max_attempts:
                    time.sleep(policy.delay_for(0, attempt))
                    attempt += 1
                    continue
                raise SQLiteBackendError(
                    f"insert into {table!r} failed after {attempt} attempt(s): {error}"
                ) from error

    def finalize(self) -> None:
        if self.connection is None:
            raise SQLiteBackendError("begin() was not called")
        try:
            self.connection.commit()
        except sqlite3.Error as error:
            raise SQLiteBackendError(f"commit failed: {error}") from error
        if self.apply_indexes and self._schema is not None:
            # Post-commit the driver is in autocommit mode (isolation_level
            # is None), so each CREATE INDEX commits as it completes.
            try:
                for statement in create_index_statements(self._schema):
                    self.connection.execute(statement)
            except sqlite3.Error as error:
                raise SQLiteBackendError(
                    f"failed to build secondary indexes: {error}"
                ) from error
        if self.path != ":memory:":
            # Fold the write-ahead log back into the main file so the
            # finished .db is self-contained and byte-stable.
            self.connection.execute("PRAGMA wal_checkpoint(TRUNCATE)")

    def close(self) -> None:
        if self.connection is not None:
            self.connection.close()
            self.connection = None

    # -------------------------------------------------------------- queries
    def fetch_rows(self, table: str) -> List[Row]:
        """All rows of a table in insertion (rowid) order."""
        if self.connection is None or self._schema is None:
            raise SQLiteBackendError("begin() was not called")
        table_schema = self._schema.table(table)
        columns = ", ".join(quote_identifier(c) for c in table_schema.column_names)
        cursor = self.connection.execute(
            f"SELECT {columns} FROM {quote_identifier(table)} ORDER BY rowid"
        )
        return [tuple(row) for row in cursor.fetchall()]

    def row_count(self, table: str) -> int:
        if self.connection is None:
            raise SQLiteBackendError("begin() was not called")
        cursor = self.connection.execute(
            f"SELECT COUNT(*) FROM {quote_identifier(table)}"
        )
        return int(cursor.fetchone()[0])

    def dump(self) -> str:
        """Deterministic SQL dump of the whole database (``iterdump``)."""
        if self.connection is None:
            raise SQLiteBackendError("begin() was not called")
        return "\n".join(self.connection.iterdump()) + "\n"


# --------------------------------------------------------------------------- #
# Read-side verification hook
# --------------------------------------------------------------------------- #


def read_table_rows(path: str, schema: DatabaseSchema) -> Dict[str, List[Row]]:
    """Read a finished SQLite target back for verification, read-only.

    Opens the database in read-only mode (``mode=ro`` — verification must
    never be able to modify the artifact it checks) and returns each
    schema table's rows in insertion (rowid) order.  Tables missing from
    the file are *omitted* from the result — the verifier reports them as
    failures; a missing or unopenable database raises
    :class:`SQLiteBackendError`.

    Only "no such table/column" is folded into that omission.  Any other
    ``OperationalError`` — notably ``database is locked`` while a migration
    is mid-write — re-raises as :class:`SQLiteBackendError` (wrapping the
    original, so the verifier's retry loop can classify it as transient)
    instead of masquerading as a missing table and failing verification
    with a bogus diff.
    """
    if not os.path.exists(path):
        raise SQLiteBackendError(f"sqlite target not found: {path}")
    try:
        connection = sqlite3.connect(f"file:{path}?mode=ro", uri=True)
    except sqlite3.Error as error:
        raise SQLiteBackendError(f"cannot open sqlite target {path}: {error}") from error
    rows: Dict[str, List[Row]] = {}
    try:
        connection.execute(f"PRAGMA busy_timeout = {DEFAULT_BUSY_TIMEOUT_MS}")
        for table_schema in schema.tables:
            columns = ", ".join(quote_identifier(c) for c in table_schema.column_names)
            try:
                cursor = connection.execute(
                    f"SELECT {columns} FROM {quote_identifier(table_schema.name)} "
                    f"ORDER BY rowid"
                )
                rows[table_schema.name] = [tuple(row) for row in cursor.fetchall()]
            except sqlite3.OperationalError as error:
                message = str(error).lower()
                if "no such table" in message or "no such column" in message:
                    continue  # genuinely absent: the verifier reports it
                raise SQLiteBackendError(
                    f"cannot read table {table_schema.name!r} of {path}: {error}"
                ) from error
    finally:
        connection.close()
    return rows


def read_index_names(path: str) -> List[str]:
    """Names of the user-created indexes in a finished SQLite target.

    Read-only, like :func:`read_table_rows`.  Auto-indexes SQLite creates
    for PRIMARY KEY/UNIQUE constraints (``sqlite_autoindex_*``) are
    excluded; the verifier compares the result against
    ``expected_index_names(schema)``.
    """
    if not os.path.exists(path):
        raise SQLiteBackendError(f"sqlite target not found: {path}")
    try:
        connection = sqlite3.connect(f"file:{path}?mode=ro", uri=True)
    except sqlite3.Error as error:
        raise SQLiteBackendError(f"cannot open sqlite target {path}: {error}") from error
    try:
        connection.execute(f"PRAGMA busy_timeout = {DEFAULT_BUSY_TIMEOUT_MS}")
        cursor = connection.execute(
            "SELECT name FROM sqlite_master WHERE type = 'index' "
            "AND name NOT LIKE 'sqlite_autoindex_%' ORDER BY name"
        )
        return [str(row[0]) for row in cursor.fetchall()]
    except sqlite3.Error as error:
        raise SQLiteBackendError(
            f"cannot read index list of {path}: {error}"
        ) from error
    finally:
        connection.close()


# --------------------------------------------------------------------------- #
# Parity with the in-memory backend
# --------------------------------------------------------------------------- #


def _normalize(value: Scalar) -> Scalar:
    # SQLite stores booleans as integers; fold Python bools the same way so
    # the comparison is storage-level, not type-level.
    if isinstance(value, bool):
        return int(value)
    return value


def database_matches_sqlite(database: Database, backend: SQLiteBackend) -> List[str]:
    """Compare an in-memory database against a loaded SQLite backend.

    Returns a list of human-readable mismatch messages (empty = parity).
    Rows are compared in insertion order after normalizing booleans to the
    integers SQLite stores.
    """
    mismatches: List[str] = []
    for table_schema in database.schema.tables:
        expected = [
            tuple(_normalize(v) for v in row)
            for row in database.table(table_schema.name).rows
        ]
        actual = [
            tuple(_normalize(v) for v in row) for row in backend.fetch_rows(table_schema.name)
        ]
        if len(expected) != len(actual):
            mismatches.append(
                f"{table_schema.name}: {len(expected)} rows in memory, "
                f"{len(actual)} in SQLite"
            )
            continue
        for index, (left, right) in enumerate(zip(expected, actual)):
            if left != right:
                mismatches.append(
                    f"{table_schema.name} row {index}: memory={left!r} sqlite={right!r}"
                )
                break
    return mismatches


def load_database(database: Database, path: str = ":memory:") -> SQLiteBackend:
    """Load an already-populated in-memory database into SQLite.

    Convenience used by the CLI's dump path and by tests; returns the backend
    with an open connection.
    """
    backend = SQLiteBackend(path)
    backend.begin(database.schema)
    for table_schema in database.schema.topological_order():
        backend.insert_rows(table_schema.name, database.table(table_schema.name).rows)
    backend.finalize()
    return backend
