"""Columnar execution backend: column-major batches, Arrow IPC / Parquet files.

Analytical consumers (DuckDB, pandas, Spark, a data lake) want columns, not
SQL inserts.  This backend accumulates each table's rows as **column-major
batches** (one python list per column, sealed every ``batch_size`` rows) and,
when given an output directory, lands them as:

* **Arrow IPC** (``<table>.arrow``) or **Parquet** (``<table>.parquet``)
  when ``pyarrow`` is importable — install with ``pip install repro[columnar]``;
* a **pure-python JSON-columns** format (``<table>.columns.json``) otherwise,
  so the backend (and the tier-1 test suite) never depends on ``pyarrow``.

File-backed runs **stream**: each sealed batch is appended to its table's
file writer the moment it fills (``spill=True``, the default), so no table's
full column set ever lives in memory — a sharded run's reducer output flows
straight from ``insert_rows`` into the batch writers.  ``spill=False`` keeps
the legacy materialize-at-finalize shape (all batches in memory, written in
one pass through the *same* writers, so the bytes on disk are identical —
only the peak memory differs).  Repeated text columns are
**dictionary-encoded** (``dictionary="auto"``): a batch's text column whose
distinct count is at most half its length is stored as a distinct-value list
plus integer codes.

Either way a ``manifest.json`` records the format, per-table files, row
counts and column names; :func:`load_table_rows` reads any of the three
formats back into row tuples.  In-memory runs (no directory) remain fully
readable through :meth:`ColumnarBackend.fetch_rows`, which is what the
parity checks and benchmarks use; file-backed runs answer :meth:`fetch_rows`
from the finished files after :meth:`finalize`.

If a file-backed run aborts (``close()`` before ``finalize()``), the backend
closes its writers and removes every partial file it created — a degraded
sharded run never leaves a manifest pointing at unreadable files.

Column types follow the relational schema (``text`` / ``integer`` / ``real``);
primary- and foreign-key columns arrive already reconciled by the execution
pipeline (the backend performs no constraint checking of its own — pair it
with the memory or SQLite backend when validation is the point).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Union

from ...relational.schema import DatabaseSchema, TableSchema
from .base import ExecutionBackend, Row

try:  # pragma: no cover - exercised only where pyarrow is installed
    import pyarrow as _pa
except ImportError:  # pragma: no cover - the tier-1 environment
    _pa = None

HAVE_PYARROW = _pa is not None

#: File formats the backend can land; ``arrow`` and ``parquet`` need pyarrow.
FILE_FORMATS = ("arrow", "parquet", "json")

#: Valid ``dictionary=`` settings: encode always, never, or when a batch's
#: text column repeats enough to pay for itself.
DICTIONARY_MODES = ("auto", True, False)

MANIFEST_NAME = "manifest.json"


class ColumnarBackendError(Exception):
    """Raised when columnar landing fails (bad format, unwritable files, ...)."""


@dataclass
class ColumnBatch:
    """One sealed column-major batch: ``columns[i][j]`` = column i of row j."""

    columns: List[list]

    @property
    def num_rows(self) -> int:
        return len(self.columns[0]) if self.columns else 0

    def rows(self) -> Iterable[Row]:
        return zip(*self.columns) if self.columns else iter(())


class _TableBuffer:
    """Accumulates one table's rows column-wise, sealing full batches.

    With an ``on_seal`` sink, sealed batches stream out immediately and are
    **not** retained — the spill path; without one they accumulate in
    ``batches`` — the in-memory / materialize path.
    """

    def __init__(self, column_names: List[str], batch_size: int, on_seal=None) -> None:
        self.column_names = column_names
        self.batch_size = batch_size
        self.on_seal = on_seal
        self.batches: List[ColumnBatch] = []
        self._open: List[list] = [[] for _ in column_names]
        self.total_rows = 0

    def append(self, row: Row) -> None:
        if len(row) != len(self._open):
            raise ColumnarBackendError(
                f"row arity {len(row)} != {len(self._open)} columns"
            )
        for column, value in zip(self._open, row):
            column.append(value)
        self.total_rows += 1
        if len(self._open[0]) >= self.batch_size:
            self.seal()

    def seal(self) -> None:
        if self._open and self._open[0]:
            batch = ColumnBatch(self._open)
            self._open = [[] for _ in self.column_names]
            if self.on_seal is not None:
                self.on_seal(batch)
            else:
                self.batches.append(batch)


# --------------------------------------------------------------------------- #
# Dictionary encoding
# --------------------------------------------------------------------------- #


def _should_dict_encode(cells: list, mode) -> bool:
    """Encode a text-column batch as dictionary+codes under this mode?

    ``auto`` pays for itself when at most half the cells are distinct (a
    single-distinct-value column always encodes); ``True`` forces encoding;
    ``False`` never encodes.
    """
    if mode is False or not cells:
        return False
    if mode is True:
        return True
    return len(set(cells)) <= max(1, len(cells) // 2)


def _dict_encode_column(cells: list) -> Dict[str, list]:
    """One column as ``{"d": distinct values, "c": codes}`` (first-seen order)."""
    values: list = []
    codes: List[int] = []
    index: dict = {}
    for value in cells:
        code = index.get(value)
        if code is None:
            code = len(values)
            index[value] = code
            values.append(value)
        codes.append(code)
    return {"d": values, "c": codes}


def _decode_json_column(entry: Union[list, dict]) -> list:
    """A JSON-columns column entry back to a plain value list."""
    if isinstance(entry, dict):
        values = entry["d"]
        return [values[code] for code in entry["c"]]
    return entry


# --------------------------------------------------------------------------- #
# Streaming file writers — one per table; both the spill path and the
# materialize-at-finalize path feed batches through these, so the bytes on
# disk are identical regardless of when the batches are written.
# --------------------------------------------------------------------------- #


class _JsonColumnsWriter:
    """Incremental JSON-columns writer: batches append as they seal."""

    def __init__(self, path: str, table_schema: TableSchema, dictionary) -> None:
        self.path = path
        self.rows_written = 0
        self._dictionary = dictionary
        self._text = [column.dtype == "text" for column in table_schema.columns]
        self._first = True
        self._handle = open(path, "w", encoding="utf-8")
        names = json.dumps(list(table_schema.column_names))
        self._handle.write(
            '{"kind": "repro_json_columns", "columns": ' + names + ', "batches": ['
        )

    def write_batch(self, batch: ColumnBatch) -> None:
        encoded = []
        for is_text, cells in zip(self._text, batch.columns):
            if is_text and _should_dict_encode(cells, self._dictionary):
                encoded.append(_dict_encode_column(cells))
            else:
                encoded.append(cells)
        if not self._first:
            self._handle.write(", ")
        self._first = False
        json.dump(encoded, self._handle)
        self.rows_written += batch.num_rows

    def close(self) -> None:
        self._handle.write('], "rows": %d}\n' % self.rows_written)
        self._handle.close()

    def abort(self) -> None:
        try:
            self._handle.close()
        except Exception:
            pass


class _ArrowIpcWriter:  # pragma: no cover - needs pyarrow
    """Arrow IPC file writer; text columns dictionary-encoded with deltas.

    Each batch's dictionary prefix-extends the previous one (a growing
    value→code map per column), so the stream is written with
    ``emit_dictionary_deltas`` and every record batch shares one coherent
    dictionary per field.
    """

    def __init__(
        self, path: str, table: str, table_schema: TableSchema, batch_size: int, dictionary
    ) -> None:
        assert _pa is not None
        self.path = path
        self.table = table
        self.rows_written = 0
        self._encode = dictionary is not False
        type_map = {"text": _pa.string(), "integer": _pa.int64(), "real": _pa.float64()}
        fields = []
        for column in table_schema.columns:
            dtype = type_map[column.dtype]
            if self._encode and column.dtype == "text":
                dtype = _pa.dictionary(_pa.int32(), _pa.string())
            fields.append(_pa.field(column.name, dtype, nullable=True))
        self._schema = _pa.schema(fields)
        self._plain_types = [type_map[c.dtype] for c in table_schema.columns]
        self._is_text = [c.dtype == "text" for c in table_schema.columns]
        self._dict_values: Dict[int, list] = {}
        self._dict_index: Dict[int, dict] = {}
        self._sink = _pa.OSFile(path, "wb")
        options = _pa.ipc.IpcWriteOptions(emit_dictionary_deltas=True)
        self._writer = _pa.ipc.new_file(self._sink, self._schema, options=options)

    def _array(self, index: int, cells: list):
        if self._encode and self._is_text[index]:
            values = self._dict_values.setdefault(index, [])
            codes_for = self._dict_index.setdefault(index, {})
            codes: List[Optional[int]] = []
            for value in cells:
                if value is None:
                    codes.append(None)
                    continue
                code = codes_for.get(value)
                if code is None:
                    code = len(values)
                    codes_for[value] = code
                    values.append(value)
                codes.append(code)
            return _pa.DictionaryArray.from_arrays(
                _pa.array(codes, type=_pa.int32()),
                _pa.array(values, type=_pa.string()),
            )
        try:
            return _pa.array(cells, type=self._plain_types[index])
        except (_pa.ArrowInvalid, _pa.ArrowTypeError) as error:
            name = self._schema.field(index).name
            raise ColumnarBackendError(
                f"column {self.table}.{name} does not fit declared type "
                f"{self._plain_types[index]}: {error}"
            ) from error

    def write_batch(self, batch: ColumnBatch) -> None:
        arrays = [self._array(i, cells) for i, cells in enumerate(batch.columns)]
        self._writer.write_batch(
            _pa.RecordBatch.from_arrays(arrays, schema=self._schema)
        )
        self.rows_written += batch.num_rows

    def close(self) -> None:
        self._writer.close()
        self._sink.close()

    def abort(self) -> None:
        for closer in (self._writer.close, self._sink.close):
            try:
                closer()
            except Exception:
                pass


class _ParquetWriter:  # pragma: no cover - needs pyarrow
    """Parquet writer: one row group per sealed batch, native dictionary pages."""

    def __init__(
        self, path: str, table: str, table_schema: TableSchema, dictionary
    ) -> None:
        assert _pa is not None
        import pyarrow.parquet as pq

        self.path = path
        self.table = table
        self.rows_written = 0
        type_map = {"text": _pa.string(), "integer": _pa.int64(), "real": _pa.float64()}
        self._schema = _pa.schema(
            _pa.field(c.name, type_map[c.dtype], nullable=True)
            for c in table_schema.columns
        )
        self._types = [type_map[c.dtype] for c in table_schema.columns]
        text_columns = [c.name for c in table_schema.columns if c.dtype == "text"]
        use_dictionary = text_columns if dictionary is not False else False
        self._writer = pq.ParquetWriter(path, self._schema, use_dictionary=use_dictionary)

    def write_batch(self, batch: ColumnBatch) -> None:
        arrays = []
        for index, cells in enumerate(batch.columns):
            try:
                arrays.append(_pa.array(cells, type=self._types[index]))
            except (_pa.ArrowInvalid, _pa.ArrowTypeError) as error:
                name = self._schema.field(index).name
                raise ColumnarBackendError(
                    f"column {self.table}.{name} does not fit declared type "
                    f"{self._types[index]}: {error}"
                ) from error
        self._writer.write_table(_pa.Table.from_arrays(arrays, schema=self._schema))
        self.rows_written += batch.num_rows

    def close(self) -> None:
        self._writer.close()

    def abort(self) -> None:
        try:
            self._writer.close()
        except Exception:
            pass


class ColumnarBackend(ExecutionBackend):
    """Land migrated rows as column-major batches (and optionally files).

    Parameters
    ----------
    directory:
        Output directory for the per-table files and the manifest.  ``None``
        (the default) keeps the batches in memory only — useful for parity
        checks and for handing batches to an in-process consumer.
    batch_size:
        Rows per sealed :class:`ColumnBatch` (and per Arrow record batch).
    file_format:
        ``"arrow"``, ``"parquet"``, ``"json"``, or ``None`` to pick
        ``"arrow"`` when pyarrow is importable and ``"json"`` otherwise.
        Asking for an Arrow-family format without pyarrow raises
        :class:`ColumnarBackendError` immediately (not at :meth:`finalize`).
    spill:
        File-backed runs only.  ``True`` (default) streams each sealed batch
        to its file writer immediately — peak memory is one open batch per
        table.  ``False`` materializes all batches in memory and writes them
        at :meth:`finalize` through the same writers (identical bytes).
    dictionary:
        ``"auto"`` (default) dictionary-encodes a text-column batch when at
        most half its cells are distinct; ``True`` always, ``False`` never.
    """

    def __init__(
        self,
        directory: Optional[str] = None,
        *,
        batch_size: int = 8192,
        file_format: Optional[str] = None,
        spill: bool = True,
        dictionary="auto",
    ) -> None:
        if file_format is not None and file_format not in FILE_FORMATS:
            raise ColumnarBackendError(
                f"unknown file format {file_format!r} (available: {', '.join(FILE_FORMATS)})"
            )
        if file_format in ("arrow", "parquet") and not HAVE_PYARROW:
            raise ColumnarBackendError(
                f"file format {file_format!r} needs pyarrow "
                f"(pip install repro[columnar]); use file_format='json' for "
                f"the pure-python fallback"
            )
        if dictionary not in DICTIONARY_MODES:
            raise ColumnarBackendError(
                f"dictionary must be one of {DICTIONARY_MODES!r}, got {dictionary!r}"
            )
        self.directory = directory
        self.batch_size = max(1, batch_size)
        self.file_format = file_format or ("arrow" if HAVE_PYARROW else "json")
        self.spill = bool(spill)
        self.dictionary = dictionary
        self.schema: Optional[DatabaseSchema] = None
        self._buffers: Dict[str, _TableBuffer] = {}
        self._writers: Dict[str, object] = {}
        self._written_paths: List[str] = []
        self._streaming = False
        self._finalized = False

    # ------------------------------------------------------------ lifecycle
    def begin(self, schema: DatabaseSchema) -> None:
        self.schema = schema
        self._finalized = False
        self._writers = {}
        self._written_paths = []
        self._streaming = self.directory is not None and self.spill
        if self.directory is not None:
            os.makedirs(self.directory, exist_ok=True)
        self._buffers = {}
        for table in schema.tables:
            on_seal = None
            if self._streaming:
                writer = self._make_writer(table.name)
                self._writers[table.name] = writer
                on_seal = writer.write_batch
            self._buffers[table.name] = _TableBuffer(
                list(table.column_names), self.batch_size, on_seal=on_seal
            )

    def _make_writer(self, table: str):
        assert self.schema is not None and self.directory is not None
        path = os.path.join(self.directory, self._table_filename(table))
        table_schema = self.schema.table(table)
        try:
            if self.file_format == "json":
                writer = _JsonColumnsWriter(path, table_schema, self.dictionary)
            elif self.file_format == "parquet":  # pragma: no cover - needs pyarrow
                writer = _ParquetWriter(path, table, table_schema, self.dictionary)
            else:  # pragma: no cover - needs pyarrow
                writer = _ArrowIpcWriter(
                    path, table, table_schema, self.batch_size, self.dictionary
                )
        except ColumnarBackendError:
            raise
        except Exception as error:
            raise ColumnarBackendError(f"cannot open writer for {path}: {error}") from error
        self._written_paths.append(path)
        return writer

    def insert_rows(self, table: str, rows: Iterable[Row]) -> int:
        buffer = self._buffers.get(table)
        if buffer is None:
            raise ColumnarBackendError(f"unknown table {table!r} (begin() not called?)")
        before = buffer.total_rows
        for row in rows:
            buffer.append(tuple(row))
        return buffer.total_rows - before

    def finalize(self) -> None:
        if self.schema is None:
            raise ColumnarBackendError("begin() was not called")
        for buffer in self._buffers.values():
            buffer.seal()
        if self.directory is not None:
            if not self._streaming:
                # Materialize mode: replay the retained batches through the
                # same writers the spill path uses — identical file bytes.
                for table_schema in self.schema.tables:
                    writer = self._make_writer(table_schema.name)
                    self._writers[table_schema.name] = writer
                    for batch in self._buffers[table_schema.name].batches:
                        writer.write_batch(batch)
            self._close_writers()
            self._write_manifest()
        self._finalized = True

    def _close_writers(self) -> None:
        for table, writer in self._writers.items():
            try:
                writer.close()
            except ColumnarBackendError:
                raise
            except Exception as error:
                raise ColumnarBackendError(
                    f"closing writer for table {table!r} failed: {error}"
                ) from error
        self._writers = {}

    def _write_manifest(self) -> None:
        assert self.schema is not None and self.directory is not None
        manifest: Dict[str, object] = {
            "kind": "repro_columnar_output",
            "format": self.file_format,
            "database": self.schema.name,
            "tables": {},
        }
        for table_schema in self.schema.tables:
            buffer = self._buffers[table_schema.name]
            manifest["tables"][table_schema.name] = {
                "file": self._table_filename(table_schema.name),
                "rows": buffer.total_rows,
                "columns": list(buffer.column_names),
            }
        manifest_path = os.path.join(self.directory, MANIFEST_NAME)
        self._written_paths.append(manifest_path)
        with open(manifest_path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")

    def close(self) -> None:
        """Release resources; called before ``finalize``, this is an abort.

        An aborted file-backed run closes its writers and removes every file
        *this run* created (partial table files, and the manifest if one was
        written), so a degraded run never leaves a manifest pointing at
        unreadable files — ``read_table_rows`` on the directory raises a
        clean "cannot read manifest" error instead.  Idempotent.
        """
        if self.schema is not None and not self._finalized and self._written_paths:
            for writer in self._writers.values():
                writer.abort()
            self._writers = {}
            for path in self._written_paths:
                try:
                    os.remove(path)
                except OSError:
                    pass
            self._written_paths = []
        self._writers = {}

    # -------------------------------------------------------------- queries
    def batches(self, table: str) -> List[ColumnBatch]:
        """The sealed column batches of a table (complete after finalize).

        In-memory and ``spill=False`` runs only: a spilling run streams its
        batches to disk as they seal — read them back with
        :func:`load_table_rows`.
        """
        if self._streaming:
            raise ColumnarBackendError(
                "batches are streamed to disk when spill=True; "
                "use load_table_rows(directory, table)"
            )
        return list(self._buffers[table].batches)

    def fetch_rows(self, table: str) -> List[Row]:
        buffer = self._buffers[table]
        if self._streaming:
            if not self._finalized:
                raise ColumnarBackendError(
                    "rows are spilled to disk when spill=True; "
                    "fetch_rows is available after finalize()"
                )
            assert self.directory is not None
            return load_table_rows(self.directory, table)
        rows: List[Row] = []
        for batch in buffer.batches:
            rows.extend(batch.rows())
        if not self._finalized:  # include the open batch mid-execution
            rows.extend(zip(*buffer._open) if buffer._open and buffer._open[0] else ())
        return rows

    def row_count(self, table: str) -> int:
        return self._buffers[table].total_rows

    # --------------------------------------------------------------- output
    def output_filenames(self) -> List[str]:
        """The file names this backend writes into its output directory.

        Lets a caller clean up exactly this run's artifacts (and nothing
        else) after a failure inside a directory it does not own.
        """
        names = [MANIFEST_NAME]
        if self.schema is not None:
            names.extend(self._table_filename(t.name) for t in self.schema.tables)
        return names

    def _table_filename(self, table: str) -> str:
        suffix = {"arrow": ".arrow", "parquet": ".parquet", "json": ".columns.json"}
        return table + suffix[self.file_format]


def read_table_rows(directory: str, schema: DatabaseSchema) -> Dict[str, List[Row]]:
    """Read a finished columnar target back for verification.

    The read-side hook mirroring :func:`repro.runtime.backends.sqlite.
    read_table_rows`: every schema table present in the output manifest is
    loaded via :func:`load_table_rows`; tables absent from the manifest are
    omitted (the verifier reports them as failures).  A missing or corrupt
    manifest raises :class:`ColumnarBackendError`.
    """
    manifest_path = os.path.join(directory, MANIFEST_NAME)
    try:
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise ColumnarBackendError(f"cannot read {manifest_path}: {error}") from error
    present = manifest.get("tables", {})
    return {
        table.name: load_table_rows(directory, table.name)
        for table in schema.tables
        if table.name in present
    }


def load_table_rows(directory: str, table: str) -> List[Row]:
    """Read one table of a columnar output directory back as row tuples.

    Dispatches on the manifest's recorded format; reading Arrow or Parquet
    output needs pyarrow (the JSON fallback needs nothing).  JSON columns
    may be dictionary-encoded (``{"d": values, "c": codes}``); both the
    encoded and the plain layout decode to the same rows.
    """
    manifest_path = os.path.join(directory, MANIFEST_NAME)
    try:
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise ColumnarBackendError(f"cannot read {manifest_path}: {error}") from error
    entry = manifest.get("tables", {}).get(table)
    if entry is None:
        raise ColumnarBackendError(f"table {table!r} not in {manifest_path}")
    path = os.path.join(directory, entry["file"])
    fmt = manifest.get("format")
    if fmt == "json":
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        rows: List[Row] = []
        for encoded in payload["batches"]:
            columns = [_decode_json_column(entry) for entry in encoded]
            rows.extend(zip(*columns) if columns else ())
        return rows
    if fmt in ("arrow", "parquet"):  # pragma: no cover - needs pyarrow
        if not HAVE_PYARROW:
            raise ColumnarBackendError(
                f"reading {fmt} output needs pyarrow (pip install repro[columnar])"
            )
        if fmt == "parquet":
            import pyarrow.parquet as pq

            arrow_table = pq.read_table(path)
        else:
            with _pa.memory_map(path, "r") as source:
                arrow_table = _pa.ipc.open_file(source).read_all()
        columns = [column.to_pylist() for column in arrow_table.columns]
        return [tuple(row) for row in zip(*columns)] if columns else []
    raise ColumnarBackendError(f"unknown columnar format {fmt!r} in manifest")
