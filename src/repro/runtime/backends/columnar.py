"""Columnar execution backend: column-major batches, Arrow IPC / Parquet files.

Analytical consumers (DuckDB, pandas, Spark, a data lake) want columns, not
SQL inserts.  This backend accumulates each table's rows as **column-major
batches** (one python list per column, sealed every ``batch_size`` rows) and,
when given an output directory, lands them as:

* **Arrow IPC** (``<table>.arrow``) or **Parquet** (``<table>.parquet``)
  when ``pyarrow`` is importable — install with ``pip install repro[columnar]``;
* a **pure-python JSON-columns** format (``<table>.columns.json``) otherwise,
  so the backend (and the tier-1 test suite) never depends on ``pyarrow``.

Either way a ``manifest.json`` records the format, per-table files, row
counts and column names; :func:`load_table_rows` reads any of the three
formats back into row tuples.  The in-memory batches always remain readable
through :meth:`ColumnarBackend.fetch_rows`, which is what the parity checks
and benchmarks use.

Column types follow the relational schema (``text`` / ``integer`` / ``real``);
primary- and foreign-key columns arrive already reconciled by the execution
pipeline (the backend performs no constraint checking of its own — pair it
with the memory or SQLite backend when validation is the point).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ...relational.schema import DatabaseSchema
from .base import ExecutionBackend, Row

try:  # pragma: no cover - exercised only where pyarrow is installed
    import pyarrow as _pa
except ImportError:  # pragma: no cover - the tier-1 environment
    _pa = None

HAVE_PYARROW = _pa is not None

#: File formats the backend can land; ``arrow`` and ``parquet`` need pyarrow.
FILE_FORMATS = ("arrow", "parquet", "json")

MANIFEST_NAME = "manifest.json"


class ColumnarBackendError(Exception):
    """Raised when columnar landing fails (bad format, unwritable files, ...)."""


@dataclass
class ColumnBatch:
    """One sealed column-major batch: ``columns[i][j]`` = column i of row j."""

    columns: List[list]

    @property
    def num_rows(self) -> int:
        return len(self.columns[0]) if self.columns else 0

    def rows(self) -> Iterable[Row]:
        return zip(*self.columns) if self.columns else iter(())


class _TableBuffer:
    """Accumulates one table's rows column-wise, sealing full batches."""

    def __init__(self, column_names: List[str], batch_size: int) -> None:
        self.column_names = column_names
        self.batch_size = batch_size
        self.batches: List[ColumnBatch] = []
        self._open: List[list] = [[] for _ in column_names]
        self.total_rows = 0

    def append(self, row: Row) -> None:
        if len(row) != len(self._open):
            raise ColumnarBackendError(
                f"row arity {len(row)} != {len(self._open)} columns"
            )
        for column, value in zip(self._open, row):
            column.append(value)
        self.total_rows += 1
        if len(self._open[0]) >= self.batch_size:
            self.seal()

    def seal(self) -> None:
        if self._open and self._open[0]:
            self.batches.append(ColumnBatch(self._open))
            self._open = [[] for _ in self.column_names]


class ColumnarBackend(ExecutionBackend):
    """Land migrated rows as column-major batches (and optionally files).

    Parameters
    ----------
    directory:
        Output directory for the per-table files and the manifest.  ``None``
        (the default) keeps the batches in memory only — useful for parity
        checks and for handing batches to an in-process consumer.
    batch_size:
        Rows per sealed :class:`ColumnBatch` (and per Arrow record batch).
    file_format:
        ``"arrow"``, ``"parquet"``, ``"json"``, or ``None`` to pick
        ``"arrow"`` when pyarrow is importable and ``"json"`` otherwise.
        Asking for an Arrow-family format without pyarrow raises
        :class:`ColumnarBackendError` immediately (not at :meth:`finalize`).
    """

    def __init__(
        self,
        directory: Optional[str] = None,
        *,
        batch_size: int = 8192,
        file_format: Optional[str] = None,
    ) -> None:
        if file_format is not None and file_format not in FILE_FORMATS:
            raise ColumnarBackendError(
                f"unknown file format {file_format!r} (available: {', '.join(FILE_FORMATS)})"
            )
        if file_format in ("arrow", "parquet") and not HAVE_PYARROW:
            raise ColumnarBackendError(
                f"file format {file_format!r} needs pyarrow "
                f"(pip install repro[columnar]); use file_format='json' for "
                f"the pure-python fallback"
            )
        self.directory = directory
        self.batch_size = max(1, batch_size)
        self.file_format = file_format or ("arrow" if HAVE_PYARROW else "json")
        self.schema: Optional[DatabaseSchema] = None
        self._buffers: Dict[str, _TableBuffer] = {}
        self._finalized = False

    # ------------------------------------------------------------ lifecycle
    def begin(self, schema: DatabaseSchema) -> None:
        self.schema = schema
        self._finalized = False
        self._buffers = {
            table.name: _TableBuffer(list(table.column_names), self.batch_size)
            for table in schema.tables
        }
        if self.directory is not None:
            os.makedirs(self.directory, exist_ok=True)

    def insert_rows(self, table: str, rows: Iterable[Row]) -> int:
        buffer = self._buffers.get(table)
        if buffer is None:
            raise ColumnarBackendError(f"unknown table {table!r} (begin() not called?)")
        before = buffer.total_rows
        for row in rows:
            buffer.append(tuple(row))
        return buffer.total_rows - before

    def finalize(self) -> None:
        if self.schema is None:
            raise ColumnarBackendError("begin() was not called")
        for buffer in self._buffers.values():
            buffer.seal()
        self._finalized = True
        if self.directory is not None:
            self._write_files()

    # -------------------------------------------------------------- queries
    def batches(self, table: str) -> List[ColumnBatch]:
        """The sealed column batches of a table (complete after finalize)."""
        return list(self._buffers[table].batches)

    def fetch_rows(self, table: str) -> List[Row]:
        buffer = self._buffers[table]
        rows: List[Row] = []
        for batch in buffer.batches:
            rows.extend(batch.rows())
        if not self._finalized:  # include the open batch mid-execution
            rows.extend(zip(*buffer._open) if buffer._open and buffer._open[0] else ())
        return rows

    def row_count(self, table: str) -> int:
        return self._buffers[table].total_rows

    # --------------------------------------------------------------- output
    def output_filenames(self) -> List[str]:
        """The file names this backend writes into its output directory.

        Lets a caller clean up exactly this run's artifacts (and nothing
        else) after a failure inside a directory it does not own.
        """
        names = [MANIFEST_NAME]
        if self.schema is not None:
            names.extend(self._table_filename(t.name) for t in self.schema.tables)
        return names

    def _table_filename(self, table: str) -> str:
        suffix = {"arrow": ".arrow", "parquet": ".parquet", "json": ".columns.json"}
        return table + suffix[self.file_format]

    def _write_files(self) -> None:
        assert self.schema is not None and self.directory is not None
        manifest: Dict[str, object] = {
            "kind": "repro_columnar_output",
            "format": self.file_format,
            "database": self.schema.name,
            "tables": {},
        }
        for table_schema in self.schema.tables:
            buffer = self._buffers[table_schema.name]
            filename = self._table_filename(table_schema.name)
            path = os.path.join(self.directory, filename)
            try:
                if self.file_format == "json":
                    _write_json_columns(path, buffer)
                else:
                    self._write_arrow_family(path, table_schema.name, buffer)
            except ColumnarBackendError:
                raise
            except Exception as error:
                raise ColumnarBackendError(
                    f"writing {path} failed: {error}"
                ) from error
            manifest["tables"][table_schema.name] = {
                "file": filename,
                "rows": buffer.total_rows,
                "columns": list(buffer.column_names),
            }
        manifest_path = os.path.join(self.directory, MANIFEST_NAME)
        with open(manifest_path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")

    def _arrow_table(self, table: str, buffer: _TableBuffer):  # pragma: no cover
        """One ``pyarrow.Table`` from all sealed batches, schema-typed."""
        assert _pa is not None and self.schema is not None
        type_map = {"text": _pa.string(), "integer": _pa.int64(), "real": _pa.float64()}
        fields = [
            _pa.field(column.name, type_map[column.dtype], nullable=True)
            for column in self.schema.table(table).columns
        ]
        arrays = []
        for index, field_ in enumerate(fields):
            cells: list = []
            for batch in buffer.batches:
                cells.extend(batch.columns[index])
            try:
                arrays.append(_pa.array(cells, type=field_.type))
            except (_pa.ArrowInvalid, _pa.ArrowTypeError) as error:
                raise ColumnarBackendError(
                    f"column {table}.{field_.name} does not fit declared type "
                    f"{field_.type}: {error}"
                ) from error
        return _pa.Table.from_arrays(arrays, schema=_pa.schema(fields))

    def _write_arrow_family(self, path, table, buffer):  # pragma: no cover
        arrow_table = self._arrow_table(table, buffer)
        if self.file_format == "parquet":
            import pyarrow.parquet as pq

            pq.write_table(arrow_table, path)
        else:
            with _pa.OSFile(path, "wb") as sink:
                with _pa.ipc.new_file(sink, arrow_table.schema) as writer:
                    writer.write_table(arrow_table, max_chunksize=self.batch_size)


def _write_json_columns(path: str, buffer: _TableBuffer) -> None:
    payload = {
        "kind": "repro_json_columns",
        "columns": list(buffer.column_names),
        "rows": buffer.total_rows,
        "batches": [batch.columns for batch in buffer.batches],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
        handle.write("\n")


def read_table_rows(directory: str, schema: DatabaseSchema) -> Dict[str, List[Row]]:
    """Read a finished columnar target back for verification.

    The read-side hook mirroring :func:`repro.runtime.backends.sqlite.
    read_table_rows`: every schema table present in the output manifest is
    loaded via :func:`load_table_rows`; tables absent from the manifest are
    omitted (the verifier reports them as failures).  A missing or corrupt
    manifest raises :class:`ColumnarBackendError`.
    """
    manifest_path = os.path.join(directory, MANIFEST_NAME)
    try:
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise ColumnarBackendError(f"cannot read {manifest_path}: {error}") from error
    present = manifest.get("tables", {})
    return {
        table.name: load_table_rows(directory, table.name)
        for table in schema.tables
        if table.name in present
    }


def load_table_rows(directory: str, table: str) -> List[Row]:
    """Read one table of a columnar output directory back as row tuples.

    Dispatches on the manifest's recorded format; reading Arrow or Parquet
    output needs pyarrow (the JSON fallback needs nothing).
    """
    manifest_path = os.path.join(directory, MANIFEST_NAME)
    try:
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise ColumnarBackendError(f"cannot read {manifest_path}: {error}") from error
    entry = manifest.get("tables", {}).get(table)
    if entry is None:
        raise ColumnarBackendError(f"table {table!r} not in {manifest_path}")
    path = os.path.join(directory, entry["file"])
    fmt = manifest.get("format")
    if fmt == "json":
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        rows: List[Row] = []
        for columns in payload["batches"]:
            rows.extend(zip(*columns) if columns else ())
        return rows
    if fmt in ("arrow", "parquet"):  # pragma: no cover - needs pyarrow
        if not HAVE_PYARROW:
            raise ColumnarBackendError(
                f"reading {fmt} output needs pyarrow (pip install repro[columnar])"
            )
        if fmt == "parquet":
            import pyarrow.parquet as pq

            arrow_table = pq.read_table(path)
        else:
            with _pa.memory_map(path, "r") as source:
                arrow_table = _pa.ipc.open_file(source).read_all()
        columns = [column.to_pylist() for column in arrow_table.columns]
        return [tuple(row) for row in zip(*columns)] if columns else []
    raise ColumnarBackendError(f"unknown columnar format {fmt!r} in manifest")
