"""The null backend: count rows, store nothing — the ``--dry-run`` target.

A dry run executes the full migration pipeline (planning, joins, key
generation, cross-chunk/shard merging — everything that determines *what*
would be written) but lands the rows in this backend, which only counts
them.  The resulting :class:`~repro.runtime.executor.ExecutionReport`
carries the exact per-table row counts of a real run, with no output
artifact touched.

The same counting pass is what ``repro verify`` uses to *re-derive* the
expected row counts of a finished migration from its source document
(:mod:`repro.runtime.verify`).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ...relational.schema import DatabaseSchema
from .base import ExecutionBackend, Row


class NullBackend(ExecutionBackend):
    """Drains row streams and records per-table counts; stores no rows.

    Deliberately not registered under a ``--backend`` name: it is reached
    through ``--dry-run`` (and the verifier), where the intent "do not
    write" is explicit.
    """

    def __init__(self) -> None:
        self.schema: Optional[DatabaseSchema] = None
        self.counts: Dict[str, int] = {}

    def begin(self, schema: DatabaseSchema) -> None:
        self.schema = schema
        self.counts = {table.name: 0 for table in schema.tables}

    def insert_rows(self, table: str, rows: Iterable[Row]) -> int:
        if table not in self.counts:
            raise RuntimeError(f"unknown table {table!r} (begin() not called?)")
        inserted = 0
        for _ in rows:
            inserted += 1
        self.counts[table] += inserted
        return inserted

    def finalize(self) -> None:
        if self.schema is None:
            raise RuntimeError("begin() was not called")

    def fetch_rows(self, table: str) -> List[Row]:
        raise RuntimeError(
            "the null (dry-run) backend stores no rows; only counts are available"
        )

    def row_count(self, table: str) -> int:
        return self.counts[table]
