"""Pluggable storage backends for plan execution.

Every execution mode (whole-tree, streamed, sharded) lands rows through the
:class:`~repro.runtime.backends.base.ExecutionBackend` protocol; this package
holds the protocol and the four shipped implementations, plus a small
registry so callers (notably the CLI) can construct backends by name:

>>> from repro.runtime.backends import available_backends, create_backend
>>> available_backends()
('memory', 'sqlite', 'columnar', 'duckdb')
>>> create_backend("memory").__class__.__name__
'MemoryBackend'

``duckdb`` is always *registered* (so ``--backend duckdb`` is a recognized
name everywhere), but constructing it without the optional ``duckdb``
package raises :class:`~repro.runtime.backends.duckdb.DuckDBBackendError`
pointing at the ``repro[duckdb]`` extra — the same guarded-import pattern
the columnar backend uses for pyarrow.

The protocol, ordering guarantees and backend trade-offs are documented in
``docs/backends.md``.
"""

from __future__ import annotations

from typing import Optional, Tuple

from .base import ExecutionBackend, Row
from .columnar import (
    HAVE_PYARROW,
    ColumnarBackend,
    ColumnarBackendError,
    ColumnBatch,
    load_table_rows,
)
from .duckdb import HAVE_DUCKDB, DuckDBBackend, DuckDBBackendError
from .memory import MemoryBackend
from .null import NullBackend
from .sqlite import (
    SQLiteBackend,
    SQLiteBackendError,
    database_matches_sqlite,
    load_database,
)

#: Backend names accepted by :func:`create_backend` (and ``repro run --backend``).
BACKEND_NAMES: Tuple[str, ...] = ("memory", "sqlite", "columnar", "duckdb")

#: Which named backends write to ``output`` — a file for sqlite/duckdb, a
#: directory for columnar.  The memory backend rejects an output path.
OUTPUT_KIND = {"memory": None, "sqlite": "file", "columnar": "directory", "duckdb": "file"}


def available_backends() -> Tuple[str, ...]:
    """The backend names :func:`create_backend` accepts, in doc order."""
    return BACKEND_NAMES


def create_backend(name: str, output: Optional[str] = None, **options) -> ExecutionBackend:
    """Construct a backend by registry name.

    ``output`` is the sqlite/duckdb database path or the columnar output
    directory; it must be ``None`` for the memory backend (which produces no
    artifact) and is required for sqlite and duckdb.  Extra keyword
    ``options`` pass through to the backend constructor (``batch_size``,
    ``file_format``, ``spill``, ``dictionary``, ``apply_indexes``, ...).
    """
    if name not in BACKEND_NAMES:
        raise ValueError(
            f"unknown backend {name!r} (available: {', '.join(BACKEND_NAMES)})"
        )
    if name == "memory":
        if output is not None:
            raise ValueError("the memory backend takes no output path")
        return MemoryBackend(**options)
    if name == "sqlite":
        if output is None:
            raise ValueError("the sqlite backend needs an output path")
        return SQLiteBackend(output, **options)
    if name == "duckdb":
        if output is None:
            raise ValueError("the duckdb backend needs an output path")
        return DuckDBBackend(output, **options)
    return ColumnarBackend(output, **options)


__all__ = [
    "ExecutionBackend",
    "Row",
    "MemoryBackend",
    "NullBackend",
    "SQLiteBackend",
    "SQLiteBackendError",
    "database_matches_sqlite",
    "load_database",
    "ColumnarBackend",
    "ColumnarBackendError",
    "ColumnBatch",
    "HAVE_PYARROW",
    "load_table_rows",
    "DuckDBBackend",
    "DuckDBBackendError",
    "HAVE_DUCKDB",
    "BACKEND_NAMES",
    "OUTPUT_KIND",
    "available_backends",
    "create_backend",
]
