"""The in-memory backend: rows land in the research :class:`Database`."""

from __future__ import annotations

from typing import Iterable, List, Optional

from ...relational.database import Database
from ...relational.schema import DatabaseSchema
from .base import ExecutionBackend, Row


class MemoryBackend(ExecutionBackend):
    """Loads rows into the in-memory :class:`Database` (the research path).

    Every insert is constraint-checked by the database itself;
    ``finalize`` additionally runs the whole-database validation (foreign
    keys resolvable, key uniqueness) unless ``validate=False``.
    """

    def __init__(self, *, validate: bool = True) -> None:
        self.validate = validate
        self.database: Optional[Database] = None

    def begin(self, schema: DatabaseSchema) -> None:
        self.database = Database(schema)

    def insert_rows(self, table: str, rows: Iterable[Row]) -> int:
        assert self.database is not None, "begin() not called"
        return self.database.insert_many(table, rows)

    def finalize(self) -> None:
        assert self.database is not None, "begin() not called"
        if self.validate:
            self.database.validate()

    def fetch_rows(self, table: str) -> List[Row]:
        assert self.database is not None, "begin() not called"
        return [tuple(row) for row in self.database.table(table).rows]
