"""Plan execution against pluggable storage backends.

The runtime separates *what to compute* (a :class:`MigrationPlan`) from
*where the rows go* (an :class:`ExecutionBackend`).  Two backends ship with
the reproduction:

* :class:`MemoryBackend` — the in-memory :class:`~repro.relational.database.Database`
  used by the research pipeline (constraint checks on every insert);
* :class:`~repro.runtime.sqlite_backend.SQLiteBackend` — a real SQLite
  database with native key enforcement (see that module).

:func:`execute_plan` is the whole-tree entry point: it runs every table's
program with the cross-product-free optimizer, generates keys exactly as the
one-shot engine does, and loads the backend in foreign-key dependency order.
For bounded-memory execution over large documents use
:func:`repro.runtime.streaming.stream_execute` instead.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..hdt.node import Scalar
from ..hdt.tree import HDT
from ..migration.engine import TableRowBatch, generate_table_rows
from ..optimizer.optimize import execute_nodes
from ..relational.database import Database
from ..relational.schema import DatabaseSchema, TableSchema
from .plan import MigrationPlan

Row = Tuple[Scalar, ...]


class ExecutionBackend:
    """Where migrated rows are stored.

    Lifecycle: ``begin(schema)`` once, ``insert_rows(table, rows)`` any number
    of times (tables arrive in foreign-key dependency order), ``finalize()``
    once.  Backends may buffer; only after ``finalize`` must all rows be
    durable and constraint-checked.
    """

    def begin(self, schema: DatabaseSchema) -> None:
        raise NotImplementedError

    def insert_rows(self, table: str, rows: Iterable[Row]) -> int:
        raise NotImplementedError

    def finalize(self) -> None:
        raise NotImplementedError


class MemoryBackend(ExecutionBackend):
    """Loads rows into the in-memory :class:`Database` (the research path)."""

    def __init__(self, *, validate: bool = True) -> None:
        self.validate = validate
        self.database: Optional[Database] = None

    def begin(self, schema: DatabaseSchema) -> None:
        self.database = Database(schema)

    def insert_rows(self, table: str, rows: Iterable[Row]) -> int:
        assert self.database is not None, "begin() not called"
        return self.database.insert_many(table, rows)

    def finalize(self) -> None:
        assert self.database is not None, "begin() not called"
        if self.validate:
            self.database.validate()


@dataclass
class _TableMergeState:
    seen_keys: set = field(default_factory=set)
    seen_rows: set = field(default_factory=set)
    content_to_pk: Dict[Tuple[Scalar, ...], Optional[str]] = field(default_factory=dict)
    aliases: Dict[str, str] = field(default_factory=dict)


class ChunkMerger:
    """Deduplicate rows and reconcile surrogate keys across row batches.

    Content deduplication can *drop* a surrogate-keyed row whose key other
    rows still reference — within one document when a program relates columns
    by data value (so distinct node tuples denote the same logical row), and
    across streaming chunks when the same logical row is rebuilt from
    different freshly-parsed nodes.  The merger keeps the first key for each
    logical row, records aliases for every dropped key, and rewrites later
    foreign-key references through the alias table.  Batches must arrive
    table-by-table in foreign-key dependency order (referenced tables first);
    one merger instance accumulates state over all batches of one execution.
    """

    def __init__(self, schema: DatabaseSchema) -> None:
        self.schema = schema
        self._tables = {t.name: t for t in schema.tables}
        self._state = {t.name: _TableMergeState() for t in schema.tables}

    def merge(self, batch: TableRowBatch) -> List[Row]:
        """Rows of this batch that should actually be inserted."""
        table = self._tables[batch.table]
        if table.natural_keys:
            return self._merge_natural(table, batch)
        return self._merge_surrogate(table, batch)

    def key_aliases(self, table: str) -> Dict[str, str]:
        """Surrogate keys dropped so far, mapped to the keys that replaced them."""
        return self._state[table].aliases

    # ------------------------------------------------------------- internals
    def _merge_natural(self, table: TableSchema, batch: TableRowBatch) -> List[Row]:
        state = self._state[table.name]
        out: List[Row] = []
        if table.primary_key is not None:
            pk_index = table.column_names.index(table.primary_key)
            for row in batch.rows:
                if row[pk_index] in state.seen_keys:
                    continue
                state.seen_keys.add(row[pk_index])
                out.append(row)
            return out
        for row in batch.rows:
            if row in state.seen_rows:
                continue
            state.seen_rows.add(row)
            out.append(row)
        return out

    def _merge_surrogate(self, table: TableSchema, batch: TableRowBatch) -> List[Row]:
        state = self._state[table.name]
        names = table.column_names
        pk_index = names.index(table.primary_key) if table.primary_key is not None else None
        fk_targets = [
            (names.index(fk.column), fk.target_table)
            for fk in table.foreign_keys
            if not self._tables[fk.target_table].natural_keys
        ]
        out: List[Row] = []
        for row in batch.rows:
            values = list(row)
            for fk_index, target in fk_targets:
                value = values[fk_index]
                if value is not None:
                    values[fk_index] = self._state[target].aliases.get(value, value)
            pk = values[pk_index] if pk_index is not None else None
            content = tuple(v for i, v in enumerate(values) if i != pk_index)
            if content in state.content_to_pk:
                known = state.content_to_pk[content]
                if pk is not None and known is not None:
                    state.aliases[pk] = known
                continue
            state.content_to_pk[content] = pk
            out.append(tuple(values))
        # Keys the generator dropped *within* the batch alias to a kept key of
        # the same batch, which may itself have been aliased to an earlier
        # batch's key just above — compose the two mappings.
        for dropped, kept in batch.key_aliases.items():
            state.aliases[dropped] = state.aliases.get(kept, kept)
        return out


@dataclass
class ExecutionReport:
    """What happened during one plan execution."""

    backend: ExecutionBackend
    per_table_rows: Dict[str, int] = field(default_factory=dict)
    execution_time: float = 0.0
    chunks: int = 1

    @property
    def total_rows(self) -> int:
        return sum(self.per_table_rows.values())


def execute_plan(
    plan: MigrationPlan,
    dataset: HDT,
    backend: Optional[ExecutionBackend] = None,
) -> ExecutionReport:
    """Execute a plan on a fully-materialized document.

    Returns an :class:`ExecutionReport`; the populated storage is reachable
    through ``report.backend`` (e.g. ``report.backend.database`` for the
    memory backend).
    """
    backend = backend if backend is not None else MemoryBackend()
    start = time.perf_counter()
    backend.begin(plan.schema)
    merger = ChunkMerger(plan.schema)
    report = ExecutionReport(backend=backend)
    for table_schema in plan.execution_order():
        table_plan = plan.table_plan(table_schema.name)
        node_rows = execute_nodes(table_plan.program, dataset)
        batch = generate_table_rows(
            table_schema, table_plan.data_columns, table_plan.foreign_key_rules, node_rows
        )
        report.per_table_rows[table_schema.name] = backend.insert_rows(
            table_schema.name, merger.merge(batch)
        )
    backend.finalize()
    report.execution_time = time.perf_counter() - start
    return report


def canonical_table_rows(
    schema: DatabaseSchema, rows_by_table: Dict[str, Sequence[Row]]
) -> Dict[str, List[Row]]:
    """Rows with surrogate keys renamed to deterministic first-occurrence ids.

    Surrogate keys are injective but arbitrary (they embed process-local node
    uids), so two runs of the same migration produce equal databases only *up
    to a renaming* of the generated keys.  This helper applies that renaming:
    each generated key becomes ``"<table>:<n>"`` in order of first appearance,
    and foreign-key columns are rewritten through the same mapping.  Natural
    -key tables are returned untouched.  Two executions are equivalent iff
    their canonical forms are equal.
    """
    by_name = {t.name: t for t in schema.tables}
    renaming: Dict[str, Dict[Scalar, str]] = {t.name: {} for t in schema.tables}
    canonical: Dict[str, List[Row]] = {}
    for table_schema in schema.topological_order():
        rows = list(rows_by_table.get(table_schema.name, []))
        if table_schema.natural_keys:
            canonical[table_schema.name] = rows
            continue
        names = table_schema.column_names
        pk_index = (
            names.index(table_schema.primary_key)
            if table_schema.primary_key is not None
            else None
        )
        fk_indices = {
            names.index(fk.column): fk.target_table for fk in table_schema.foreign_keys
        }
        out: List[Row] = []
        for row in rows:
            new_row = list(row)
            if pk_index is not None:
                mapping = renaming[table_schema.name]
                if row[pk_index] not in mapping:
                    mapping[row[pk_index]] = f"{table_schema.name}:{len(mapping)}"
                new_row[pk_index] = mapping[row[pk_index]]
            for index, target in fk_indices.items():
                value = row[index]
                if value is None:
                    continue
                target_schema = by_name[target]
                if target_schema.natural_keys:
                    continue
                new_row[index] = renaming[target].get(value, value)
            out.append(tuple(new_row))
        canonical[table_schema.name] = out
    return canonical


def canonical_database_rows(database: Database) -> Dict[str, List[Row]]:
    """Canonical form (see :func:`canonical_table_rows`) of a loaded database."""
    return canonical_table_rows(
        database.schema,
        {name: table.rows for name, table in database.tables.items()},
    )
