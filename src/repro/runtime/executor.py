"""Plan execution: the fused per-table pipeline and cross-batch merging.

The runtime separates *what to compute* (a :class:`MigrationPlan`) from
*where the rows go* (an :class:`~repro.runtime.backends.base.ExecutionBackend`
— see :mod:`repro.runtime.backends` for the protocol, the shipped
memory/SQLite/columnar implementations and the name registry).

:func:`execute_plan` is the whole-tree entry point: it runs every table's
program with the cross-product-free optimizer, generates keys exactly as the
one-shot engine does, and loads the backend in foreign-key dependency order.
For bounded-memory execution over large documents use
:func:`repro.runtime.streaming.stream_execute`; for multi-process fan-out
over record shards use :func:`repro.runtime.sharded.shard_execute`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..hdt.node import Scalar
from ..hdt.tree import HDT
from ..migration.engine import (
    TableRowBatch,
    consumed_projection,
    iter_generate_table_rows,
)
from ..optimizer.optimize import ExecutionPlan, iter_execute_nodes
from ..optimizer.optimize import plan as compile_program
from ..relational.database import Database
from ..relational.schema import DatabaseSchema, TableSchema
from .backends.base import ExecutionBackend, Row
from .backends.memory import MemoryBackend
from .plan import MigrationPlan, TablePlan

__all__ = [
    "ExecutionBackend",
    "MemoryBackend",
    "Row",
    "ChunkMerger",
    "ExecutionReport",
    "compile_plan_executions",
    "stream_table_rows",
    "execute_plan",
    "canonical_table_rows",
    "canonical_database_rows",
]


@dataclass
class _TableMergeState:
    seen_keys: set = field(default_factory=set)
    seen_rows: set = field(default_factory=set)
    content_to_pk: Dict[Tuple[Scalar, ...], Optional[str]] = field(default_factory=dict)
    aliases: Dict[str, str] = field(default_factory=dict)


class ChunkMerger:
    """Deduplicate rows and reconcile surrogate keys across row batches.

    Content deduplication can *drop* a surrogate-keyed row whose key other
    rows still reference — within one document when a program relates columns
    by data value (so distinct node tuples denote the same logical row), and
    across streaming chunks when the same logical row is rebuilt from
    different freshly-parsed nodes.  The merger keeps the first key for each
    logical row, records aliases for every dropped key, and rewrites later
    foreign-key references through the alias table.  Batches must arrive
    table-by-table in foreign-key dependency order (referenced tables first);
    one merger instance accumulates state over all batches of one execution.
    """

    def __init__(self, schema: DatabaseSchema) -> None:
        self.schema = schema
        self._tables = {t.name: t for t in schema.tables}
        self._state = {t.name: _TableMergeState() for t in schema.tables}

    def merge(self, batch: TableRowBatch) -> List[Row]:
        """Rows of this batch that should actually be inserted.

        Materialized wrapper around :meth:`iter_merge` +
        :meth:`absorb_aliases` (used by the multiprocessing fan-out, which
        ships whole batches between processes).
        """
        out = list(self.iter_merge(batch.table, batch.rows))
        self.absorb_aliases(batch.table, batch.key_aliases)
        return out

    def iter_merge(self, table_name: str, rows: Iterable[Row]) -> Iterator[Row]:
        """Stream-filter rows to the ones that should actually be inserted.

        Accepts any row iterable — in particular the lazy stream of
        :func:`~repro.migration.engine.iter_generate_table_rows` — so the
        whole per-table pipeline runs in fixed memory.  For surrogate-key
        tables, call :meth:`absorb_aliases` with the generator's collected
        ``key_aliases`` *after* the stream is exhausted (and before the next
        table is merged, so later foreign-key references resolve).
        """
        table = self._tables[table_name]
        if table.natural_keys:
            return self._iter_merge_natural(table, rows)
        return self._iter_merge_surrogate(table, rows)

    def absorb_aliases(self, table_name: str, key_aliases: Dict[str, str]) -> None:
        """Record the surrogate keys a row generator dropped within its batch.

        Keys dropped *within* the batch alias to a kept key of the same
        batch, which may itself have been aliased to an earlier batch's key
        during :meth:`iter_merge` — compose the two mappings.
        """
        state = self._state[table_name]
        for dropped, kept in key_aliases.items():
            state.aliases[dropped] = state.aliases.get(kept, kept)

    def key_aliases(self, table: str) -> Dict[str, str]:
        """Surrogate keys dropped so far, mapped to the keys that replaced them."""
        return self._state[table].aliases

    # ------------------------------------------------------------- internals
    def _iter_merge_natural(self, table: TableSchema, rows: Iterable[Row]) -> Iterator[Row]:
        state = self._state[table.name]
        if table.primary_key is not None:
            pk_index = table.column_names.index(table.primary_key)
            for row in rows:
                if row[pk_index] in state.seen_keys:
                    continue
                state.seen_keys.add(row[pk_index])
                yield row
            return
        for row in rows:
            if row in state.seen_rows:
                continue
            state.seen_rows.add(row)
            yield row

    def _iter_merge_surrogate(self, table: TableSchema, rows: Iterable[Row]) -> Iterator[Row]:
        state = self._state[table.name]
        names = table.column_names
        pk_index = names.index(table.primary_key) if table.primary_key is not None else None
        fk_targets = [
            (names.index(fk.column), fk.target_table)
            for fk in table.foreign_keys
            if not self._tables[fk.target_table].natural_keys
        ]
        for row in rows:
            values = list(row)
            for fk_index, target in fk_targets:
                value = values[fk_index]
                if value is not None:
                    values[fk_index] = self._state[target].aliases.get(value, value)
            pk = values[pk_index] if pk_index is not None else None
            content = tuple(v for i, v in enumerate(values) if i != pk_index)
            if content in state.content_to_pk:
                known = state.content_to_pk[content]
                if pk is not None and known is not None:
                    state.aliases[pk] = known
                continue
            state.content_to_pk[content] = pk
            yield tuple(values)


#: Backend class → registry name, for report serialization.  Kept here (not
#: in the backends package) so ``to_json`` needs no registry import.
_BACKEND_CLASS_NAMES = {
    "MemoryBackend": "memory",
    "SQLiteBackend": "sqlite",
    "ColumnarBackend": "columnar",
    "DuckDBBackend": "duckdb",
    "NullBackend": "null",
}

REPORT_KIND = "repro_execution_report"


@dataclass
class ExecutionReport:
    """What happened during one plan execution."""

    backend: ExecutionBackend
    per_table_rows: Dict[str, int] = field(default_factory=dict)
    execution_time: float = 0.0
    chunks: int = 1
    shards: int = 1

    shards_executed: int = 0
    """Shards actually mapped this run (< ``shards`` after a resume)."""

    shards_resumed: int = 0
    """Shards skipped because a checkpointed spill already covered them."""

    shards_retried: int = 0
    """Shard attempts re-dispatched by the supervisor (crash/timeout/transient)."""

    shards_failed: int = 0
    """Shards that exhausted their retries (the run degraded; see below)."""

    shard_failures: List[dict] = field(default_factory=list)
    """Structured :class:`~repro.runtime.supervisor.ShardFailure` records
    (as dicts) for every permanently-failed shard, in shard order."""

    dry_run: bool = False
    """True when rows were counted but never written (``--dry-run``)."""

    transport: str = "local"
    """Which :class:`~repro.runtime.transport.ShardTransport` ran the map
    stage (``"local"`` for in-process/subprocess shards, ``"socket"`` for
    remote workers; whole-tree and streamed runs report ``"local"``)."""

    @property
    def total_rows(self) -> int:
        return sum(self.per_table_rows.values())

    @property
    def backend_name(self) -> str:
        """The registry name of the backend rows landed in (e.g. ``"sqlite"``)."""
        class_name = type(self.backend).__name__
        return _BACKEND_CLASS_NAMES.get(class_name, class_name)

    def to_json(self) -> dict:
        """The report as a JSON-serializable dict — one schema for the CLI's
        ``--report-json`` and the service's ``GET /jobs/<id>/report``."""
        return {
            "kind": REPORT_KIND,
            "backend": self.backend_name,
            "per_table_rows": dict(self.per_table_rows),
            "total_rows": self.total_rows,
            "execution_time_s": self.execution_time,
            "chunks": self.chunks,
            "shards": self.shards,
            "shards_executed": self.shards_executed,
            "shards_resumed": self.shards_resumed,
            "shards_retried": self.shards_retried,
            "shards_failed": self.shards_failed,
            "shard_failures": [dict(failure) for failure in self.shard_failures],
            "dry_run": self.dry_run,
            "transport": self.transport,
        }


def compile_plan_executions(plan: MigrationPlan) -> Dict[str, ExecutionPlan]:
    """Compile every table's program once (CNF, pushdown/join split, fusable
    analysis under the table's consumed projection).

    The compiled :class:`ExecutionPlan` is reusable across documents and
    chunks — the streaming path compiles per plan, not per chunk.
    """
    executions: Dict[str, ExecutionPlan] = {}
    for table_schema in plan.schema.tables:
        table_plan = plan.table_plan(table_schema.name)
        projection = consumed_projection(
            table_schema, table_plan.data_columns, table_plan.program.arity
        )
        executions[table_schema.name] = compile_program(table_plan.program, projection)
    return executions


def stream_table_rows(
    table_schema: TableSchema,
    table_plan: TablePlan,
    tree: HDT,
    merger: ChunkMerger,
    key_aliases: Dict[str, str],
    execution: Optional[ExecutionPlan] = None,
) -> Iterator[Row]:
    """The fully-fused per-table pipeline, as one lazy row stream.

    ``iter_execute_nodes`` (projection-aware hash joins, fused dedup) →
    ``iter_generate_table_rows`` (key generation + content dedup, recording
    dropped-key aliases into ``key_aliases``) → ``ChunkMerger.iter_merge``
    (cross-batch dedup and foreign-key rewriting).  Nothing is materialized;
    the caller must exhaust the stream and then pass ``key_aliases`` to
    :meth:`ChunkMerger.absorb_aliases`.  Pass a pre-compiled ``execution``
    (see :func:`compile_plan_executions`) to skip per-call planning.
    """
    if execution is None:
        projection = consumed_projection(
            table_schema, table_plan.data_columns, table_plan.program.arity
        )
        execution = compile_program(table_plan.program, projection)
    node_rows = iter_execute_nodes(table_plan.program, tree, execution=execution)
    rows = iter_generate_table_rows(
        table_schema,
        table_plan.data_columns,
        table_plan.foreign_key_rules,
        node_rows,
        key_aliases=key_aliases,
    )
    return merger.iter_merge(table_schema.name, rows)


def execute_plan(
    plan: MigrationPlan,
    dataset: HDT,
    backend: Optional[ExecutionBackend] = None,
) -> ExecutionReport:
    """Execute a plan on a fully-materialized document.

    Every table runs as a generator pipeline: node tuples stream out of the
    fused executor, through key generation and merging, straight into the
    backend — peak memory is the column scans plus hash indexes (linear in
    the document), never an intermediate tuple list.

    Returns an :class:`ExecutionReport`; the populated storage is reachable
    through ``report.backend`` (e.g. ``report.backend.database`` for the
    memory backend).

    Examples
    --------
    >>> from repro.datasets import dblp
    >>> from repro.runtime import MigrationPlan, execute_plan
    >>> bundle = dblp.dataset(scale=2)
    >>> plan = MigrationPlan.learn(bundle.migration_spec())
    >>> report = execute_plan(plan, bundle.generate(2))
    >>> report.per_table_rows["journal"]
    1
    """
    backend = backend if backend is not None else MemoryBackend()
    start = time.perf_counter()
    backend.begin(plan.schema)
    merger = ChunkMerger(plan.schema)
    executions = compile_plan_executions(plan)
    report = ExecutionReport(backend=backend)
    for table_schema in plan.execution_order():
        table_plan = plan.table_plan(table_schema.name)
        key_aliases: Dict[str, str] = {}
        rows = stream_table_rows(
            table_schema,
            table_plan,
            dataset,
            merger,
            key_aliases,
            execution=executions[table_schema.name],
        )
        report.per_table_rows[table_schema.name] = backend.insert_rows(
            table_schema.name, rows
        )
        merger.absorb_aliases(table_schema.name, key_aliases)
    backend.finalize()
    report.execution_time = time.perf_counter() - start
    return report


def canonical_table_rows(
    schema: DatabaseSchema, rows_by_table: Dict[str, Sequence[Row]]
) -> Dict[str, List[Row]]:
    """Rows with surrogate keys renamed to deterministic first-occurrence ids.

    Surrogate keys are injective but arbitrary (they embed process-local node
    uids), so two runs of the same migration produce equal databases only *up
    to a renaming* of the generated keys.  This helper applies that renaming:
    each generated key becomes ``"<table>:<n>"`` in order of first appearance,
    and foreign-key columns are rewritten through the same mapping.  Natural
    -key tables are returned untouched.  Two executions are equivalent iff
    their canonical forms are equal.
    """
    by_name = {t.name: t for t in schema.tables}
    renaming: Dict[str, Dict[Scalar, str]] = {t.name: {} for t in schema.tables}
    canonical: Dict[str, List[Row]] = {}
    for table_schema in schema.topological_order():
        rows = list(rows_by_table.get(table_schema.name, []))
        if table_schema.natural_keys:
            canonical[table_schema.name] = rows
            continue
        names = table_schema.column_names
        pk_index = (
            names.index(table_schema.primary_key)
            if table_schema.primary_key is not None
            else None
        )
        fk_indices = {
            names.index(fk.column): fk.target_table for fk in table_schema.foreign_keys
        }
        out: List[Row] = []
        for row in rows:
            new_row = list(row)
            if pk_index is not None:
                mapping = renaming[table_schema.name]
                if row[pk_index] not in mapping:
                    mapping[row[pk_index]] = f"{table_schema.name}:{len(mapping)}"
                new_row[pk_index] = mapping[row[pk_index]]
            for index, target in fk_indices.items():
                value = row[index]
                if value is None:
                    continue
                target_schema = by_name[target]
                if target_schema.natural_keys:
                    continue
                new_row[index] = renaming[target].get(value, value)
            out.append(tuple(new_row))
        canonical[table_schema.name] = out
    return canonical


def canonical_database_rows(database: Database) -> Dict[str, List[Row]]:
    """Canonical form (see :func:`canonical_table_rows`) of a loaded database."""
    return canonical_table_rows(
        database.schema,
        {name: table.rows for name, table in database.tables.items()},
    )
