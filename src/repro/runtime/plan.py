"""The :class:`MigrationPlan` artifact — "learn once, run on the full dataset".

A plan bundles everything a migration needs at *execution* time and nothing it
only needs at *learning* time: the target :class:`DatabaseSchema`, one
synthesized :class:`~repro.dsl.ast.Program` per table, the per-table data
columns, and the learned :class:`~repro.migration.keys.ForeignKeyRule`s.
Synthesis artifacts (example alignments, search statistics) are deliberately
dropped, so a plan is small, JSON-serializable and independent of the example
document it was learned from.

Plans are the currency of the runtime layer: :func:`MigrationPlan.learn`
produces one, :mod:`repro.runtime.plan_cache` stores them on disk keyed by a
spec fingerprint, and :mod:`repro.runtime.executor` /
:mod:`repro.runtime.streaming` execute them against fresh datasets without
ever touching the synthesizer again.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .. import __version__
from ..dsl.ast import Program
from ..dsl.serialize import (
    SerializationError,
    foreign_key_rule_from_json,
    foreign_key_rule_to_json,
    program_from_json,
    program_to_json,
    schema_from_json,
    schema_to_json,
)
from ..migration.engine import MigrationEngine, MigrationSpec, TableProgram
from ..migration.keys import ForeignKeyRule
from ..relational.schema import DatabaseSchema, TableSchema

PLAN_FORMAT_VERSION = 1


@dataclass
class TablePlan:
    """The executable artifact for one target table."""

    table: str
    program: Program
    data_columns: List[str]
    foreign_key_rules: List[ForeignKeyRule] = field(default_factory=list)

    def to_json(self) -> dict:
        return {
            "table": self.table,
            "program": program_to_json(self.program),
            "data_columns": list(self.data_columns),
            "foreign_key_rules": [foreign_key_rule_to_json(r) for r in self.foreign_key_rules],
        }

    @staticmethod
    def from_json(payload: dict) -> "TablePlan":
        return TablePlan(
            table=payload["table"],
            program=program_from_json(payload["program"]),
            data_columns=list(payload["data_columns"]),
            foreign_key_rules=[
                foreign_key_rule_from_json(r) for r in payload.get("foreign_key_rules", [])
            ],
        )


@dataclass
class MigrationPlan:
    """A complete, durable migration program for one target database."""

    schema: DatabaseSchema
    tables: Dict[str, TablePlan]
    source_format: Optional[str] = None
    """``"xml"`` or ``"json"`` when known — used by the CLI to pick a parser."""

    metadata: Dict[str, str] = field(default_factory=dict)
    """Free-form provenance (spec fingerprint, creation tool, ...)."""

    def __post_init__(self) -> None:
        missing = [t.name for t in self.schema.tables if t.name not in self.tables]
        if missing:
            raise SerializationError(f"plan is missing programs for tables: {missing}")

    # ------------------------------------------------------------- queries
    def table_plan(self, name: str) -> TablePlan:
        return self.tables[name]

    def execution_order(self) -> List[TableSchema]:
        """Table schemas in foreign-key dependency order."""
        return self.schema.topological_order()

    def content_fingerprint(self) -> str:
        """A stable digest of the plan's executable content.

        Covers the schema, every program, the data columns and the key rules
        — everything that determines what an execution produces — but not
        free-form ``metadata`` or the generator version, so re-learning an
        unchanged spec keeps the fingerprint stable.  The sharded runtime
        stamps it into shard spill manifests so a reducer can never merge
        worker output produced by a different plan
        (:mod:`repro.runtime.sharded`).
        """
        payload = self.to_json()
        payload.pop("metadata", None)
        payload.pop("generator", None)
        rendered = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(rendered.encode("utf-8")).hexdigest()[:16]

    def restrict(self, table_names) -> "MigrationPlan":
        """A sub-plan migrating only the given tables.

        The subset must be closed under foreign-key references (schema
        validation raises otherwise).  Useful for partial migrations and for
        excluding tables whose synthesized programs are too expensive for a
        given execution budget.
        """
        names = set(table_names)
        unknown = names - set(self.schema.table_names)
        if unknown:
            raise SerializationError(f"unknown tables in restriction: {sorted(unknown)}")
        sub_schema = DatabaseSchema(
            name=self.schema.name,
            tables=[t for t in self.schema.tables if t.name in names],
        )
        return MigrationPlan(
            schema=sub_schema,
            tables={name: self.tables[name] for name in self.tables if name in names},
            source_format=self.source_format,
            metadata={**self.metadata, "restricted_to": ",".join(sorted(names))},
        )

    # ------------------------------------------------------------ learning
    @staticmethod
    def learn(
        spec: MigrationSpec,
        engine: Optional[MigrationEngine] = None,
        *,
        jobs: int = 1,
        context_store=None,
    ) -> "MigrationPlan":
        """Run synthesis once and package the result as a durable plan.

        ``jobs`` fans independent per-table synthesis out over processes when
        no explicit engine is given (``0`` = CPU count); the learned plan is
        identical regardless of parallelism.  Pass a
        :class:`~repro.runtime.context_store.ContextStore` as
        ``context_store`` to learn *incrementally*: persisted synthesis
        caches are rehydrated, the spec is diffed against the store's
        snapshots, and only the tables the edit affected are re-synthesized
        (see :func:`repro.runtime.incremental.learn_incremental`, which also
        returns the reuse report).  The plan is byte-identical either way.

        Example
        -------
        >>> from repro.datasets import dblp
        >>> plan = MigrationPlan.learn(dblp.dataset().migration_spec())
        >>> sorted(plan.tables)[:2]
        ['article', 'article_author']
        """
        if context_store is not None:
            from .incremental import learn_incremental

            plan, _ = learn_incremental(
                spec,
                context_store,
                config=engine.config if engine is not None else None,
                jobs=engine.jobs if engine is not None else jobs,
            )
            return plan
        engine = engine if engine is not None else MigrationEngine(jobs=jobs)
        programs, _ = engine.learn(spec)
        return MigrationPlan.from_programs(spec.schema, programs)

    @staticmethod
    def from_programs(
        schema: DatabaseSchema, programs: Dict[str, TableProgram]
    ) -> "MigrationPlan":
        """Package the output of :meth:`MigrationEngine.learn` as a plan."""
        return MigrationPlan(
            schema=schema,
            tables={
                name: TablePlan(
                    table=name,
                    program=tp.program,
                    data_columns=list(tp.data_columns),
                    foreign_key_rules=list(tp.foreign_key_rules),
                )
                for name, tp in programs.items()
            },
        )

    # ------------------------------------------------------- serialization
    def to_json(self) -> dict:
        return {
            "kind": "migration_plan",
            "version": PLAN_FORMAT_VERSION,
            "generator": f"repro {__version__}",
            "schema": schema_to_json(self.schema),
            "source_format": self.source_format,
            "metadata": dict(self.metadata),
            "tables": [self.tables[t.name].to_json() for t in self.schema.tables],
        }

    @staticmethod
    def from_json(payload: dict) -> "MigrationPlan":
        if not isinstance(payload, dict) or payload.get("kind") != "migration_plan":
            raise SerializationError("payload is not a serialized migration plan")
        version = payload.get("version", PLAN_FORMAT_VERSION)
        if version > PLAN_FORMAT_VERSION:
            raise SerializationError(
                f"plan format version {version} is newer than supported "
                f"({PLAN_FORMAT_VERSION})"
            )
        tables = [TablePlan.from_json(t) for t in payload["tables"]]
        return MigrationPlan(
            schema=schema_from_json(payload["schema"]),
            tables={t.table: t for t in tables},
            source_format=payload.get("source_format"),
            metadata=dict(payload.get("metadata", {})),
        )

    def dumps(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_json(), indent=indent, sort_keys=True)

    @staticmethod
    def loads(text: str) -> "MigrationPlan":
        return MigrationPlan.from_json(json.loads(text))

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.dumps())
            handle.write("\n")

    @staticmethod
    def load(path: str) -> "MigrationPlan":
        with open(path, "r", encoding="utf-8") as handle:
            return MigrationPlan.loads(handle.read())
