"""Streaming (chunked) plan execution with bounded memory.

The whole-tree path materializes the entire document as an HDT before any
program runs — fine for research benchmarks, fatal for a multi-gigabyte DBLP
dump.  This module splits a document into *record chunks* (groups of the
root's direct children, the natural unit of repetition in both the paper's
XML and JSON datasets), executes every table's program chunk by chunk with
the cross-product-free optimizer, and merges the per-chunk results.

**Equivalence assumption**: the result matches a whole-tree run for programs
whose output rows are *record-local* — every node of a row's defining tuple
lives inside one top-level record.  That is the shape migration programs
naturally have (a row per record, columns drawn from within it, predicates
relating columns of the same record).  A program whose predicate deliberately
*pairs nodes from different records* (a self-join across records, e.g. "all
author pairs sharing a country") can have rows whose nodes straddle a chunk
boundary; those rows are not produced.  Use :func:`repro.runtime.executor.
execute_plan` for such programs.

Merging handles everything else:

* **natural-key tables** deduplicate across chunks on the primary key (or the
  whole row) exactly as the one-shot engine deduplicates within a document;
* **surrogate-key tables** need *key reconciliation*: the same logical row
  seen in two chunks is built from different freshly-parsed nodes and would
  get two different generated keys, so the merger keeps the first key,
  records an alias for the second, and rewrites later foreign-key references
  through the alias table (referenced tables are always merged before
  referencing ones).

Chunk iterators:

* :func:`iter_xml_chunks` — true incremental parsing via
  ``xml.etree.ElementTree.iterparse``; peak memory is one chunk of records;
* :func:`iter_json_chunks` — top-level array/object chunking (the stdlib has
  no incremental JSON parser, so the decoded value is materialized once, but
  the far larger per-record node structures exist only one chunk at a time);
* :func:`iter_tree_chunks` — chunk an already-built HDT by cloning record
  subtrees (used by tests and benchmarks).

:func:`stream_execute` optionally fans chunks out to a multiprocessing pool:
chunks are parsed in the parent (I/O bound), executed in workers (CPU bound),
and merged back in arrival order so results are deterministic.
"""

from __future__ import annotations

import json
import multiprocessing
import time
import xml.etree.ElementTree as ET
from dataclasses import dataclass
from typing import Any, Dict, IO, Iterable, Iterator, List, Optional, Tuple, Union

from ..hdt.json_plugin import ITEM_TAG, ROOT_TAG, json_value_to_node
from ..hdt.node import Node, Scalar
from ..hdt.tree import HDT
from ..hdt.xml_plugin import _coerce as coerce_xml_scalar
from ..hdt.xml_plugin import element_to_node
from ..migration.engine import TableRowBatch, generate_table_rows
from ..optimizer.optimize import ExecutionPlan, iter_execute_nodes
from .executor import (
    ChunkMerger,
    ExecutionBackend,
    ExecutionReport,
    MemoryBackend,
    Row,
    compile_plan_executions,
    stream_table_rows,
)
from .plan import MigrationPlan

DEFAULT_CHUNK_SIZE = 1000


@dataclass
class Chunk:
    """One bounded slice of a document: a synthetic root over a few records."""

    tree: HDT
    index: int
    records: int


# --------------------------------------------------------------------------- #
# Chunk iterators
# --------------------------------------------------------------------------- #


def _normalize_record_range(
    record_range: Optional[Tuple[int, int]],
) -> Tuple[int, Optional[int]]:
    """Validate a ``(start, stop)`` record range; ``None`` means everything."""
    if record_range is None:
        return 0, None
    start, stop = record_range
    if start < 0 or stop < start:
        raise ValueError(f"invalid record range {record_range!r}")
    return start, stop


def iter_xml_chunks(
    source: Union[str, IO],
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    *,
    coerce_numbers: bool = True,
    record_range: Optional[Tuple[int, int]] = None,
    tag_positions: Optional[Dict[str, int]] = None,
) -> Iterator[Chunk]:
    """Incrementally parse an XML file into record chunks.

    ``source`` is a filesystem path or an open (binary or text) file object.
    Each direct child of the document root is one record; records keep their
    whole-document positions (per-tag counters run across chunks), so
    position-sensitive extractors behave as they would on the full tree.
    Root-level *attributes* are replicated into every chunk (they become leaf
    children of the root in the whole-tree mapping, and programs may read
    them); root-level *text* in mixed content is not reconstructed — it is
    not fully available until the document ends.  Parsed elements are
    discarded as soon as they are converted, so peak memory is one chunk,
    not one document.

    ``record_range=(start, stop)`` restricts the output to records with
    document sequence numbers in ``[start, stop)`` — the unit the sharded
    runtime partitions on.  Skipped records are still parsed (and counted,
    so per-tag positions stay whole-document) but never converted to nodes,
    and parsing stops early once ``stop`` is reached.

    ``tag_positions`` seeds the per-tag position counters — the hook the
    byte-offset index path (:func:`iter_indexed_xml_chunks`) uses to start
    parsing mid-document while keeping whole-document record positions.
    """
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    start_record, stop_record = _normalize_record_range(record_range)
    context = ET.iterparse(source, events=("start", "end"))
    depth = 0
    document_root: Optional[ET.Element] = None
    root_tag = ROOT_TAG
    root_extras: List[Tuple[str, int, Scalar]] = []
    tag_counts: Dict[str, int] = dict(tag_positions) if tag_positions else {}
    records: List[Node] = []
    index = 0
    sequence = 0
    for event, element in context:
        if event == "start":
            depth += 1
            if document_root is None:
                document_root = element
                root_tag = element.tag
                root_extras = [
                    (name, 0, coerce_xml_scalar(value) if coerce_numbers else value)
                    for name, value in element.attrib.items()
                ]
            continue
        depth -= 1
        if depth != 1:
            continue
        pos = tag_counts.get(element.tag, 0)
        tag_counts[element.tag] = pos + 1
        in_range = sequence >= start_record and (
            stop_record is None or sequence < stop_record
        )
        sequence += 1
        if in_range:
            records.append(element_to_node(element, pos, coerce_numbers=coerce_numbers))
        element.clear()
        if document_root is not None:
            # Drop the (now empty) element from the root so the ElementTree
            # side of the parse stays O(chunk) too.
            try:
                document_root.remove(element)
            except ValueError:  # pragma: no cover - defensive
                pass
        if len(records) >= chunk_size:
            yield _make_chunk(root_tag, records, index, extras=root_extras)
            records = []
            index += 1
        if stop_record is not None and sequence >= stop_record:
            break
    if records:
        yield _make_chunk(root_tag, records, index, extras=root_extras)


def count_xml_records(source: Union[str, IO]) -> int:
    """Count an XML document's records (root's direct children), incrementally.

    The cheap first pass of sharded execution: elements are discarded as soon
    as they close, so the count runs in bounded memory like
    :func:`iter_xml_chunks` does.
    """
    context = ET.iterparse(source, events=("start", "end"))
    depth = 0
    count = 0
    root: Optional[ET.Element] = None
    for event, element in context:
        if event == "start":
            depth += 1
            if root is None:
                root = element
            continue
        depth -= 1
        if depth == 1:
            count += 1
            element.clear()
            if root is not None:
                try:
                    root.remove(element)
                except ValueError:  # pragma: no cover - defensive
                    pass
    return count


class _ByteSpliceReader:
    """A read-only binary file-like over ``preamble + file[start:stop] + suffix``.

    Feeds :func:`xml.etree.ElementTree.iterparse` a mid-document byte slice
    as if it were a complete document, without materializing the slice: the
    middle segment streams straight from the underlying file.
    """

    def __init__(self, path: str, preamble: bytes, start: int, stop: int, suffix: bytes):
        self._handle = open(path, "rb")
        self._handle.seek(start)
        self._remaining = max(0, stop - start)
        self._head = preamble
        self._tail = suffix
        self.closed = False

    def read(self, size: int = -1) -> bytes:
        if size is None or size < 0:
            pieces = [self._head]
            if self._remaining:
                pieces.append(self._handle.read(self._remaining))
                self._remaining = 0
            pieces.append(self._tail)
            self._head = b""
            self._tail = b""
            return b"".join(pieces)
        out = bytearray()
        while len(out) < size:
            want = size - len(out)
            if self._head:
                out += self._head[:want]
                self._head = self._head[want:]
            elif self._remaining:
                piece = self._handle.read(min(want, self._remaining))
                if not piece:
                    self._remaining = 0  # file shrank underneath us; stop cleanly
                    continue
                self._remaining -= len(piece)
                out += piece
            elif self._tail:
                out += self._tail[:want]
                self._tail = self._tail[want:]
            else:
                break
        return bytes(out)

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self._handle.close()

    def __enter__(self) -> "_ByteSpliceReader":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def iter_indexed_xml_chunks(
    path: str,
    index,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    *,
    coerce_numbers: bool = True,
    record_range: Optional[Tuple[int, int]] = None,
) -> Iterator[Chunk]:
    """Like :func:`iter_xml_chunks` over a file, but *seek* to the record
    range using a :class:`~repro.hdt.xml_plugin.XMLRecordIndex` instead of
    parsing every record before ``start`` — the difference between O(range)
    and O(file) per shard.

    The yielded chunks are identical to the full-reparse path's: the spliced
    document keeps the original preamble (XML declaration, doctype, the root
    start tag with its attributes), and per-tag position counters are seeded
    from the index so record positions stay whole-document.
    """
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    if not index.seekable:
        raise ValueError("index is not seekable (namespaced document)")
    start, stop = _normalize_record_range(record_range)
    total = index.record_count
    start = min(start, total)
    stop = total if stop is None else min(stop, total)
    if start >= stop:
        return
    with open(path, "rb") as handle:
        preamble = handle.read(index.offsets[0])
    end_byte = index.offsets[stop] if stop < total else index.content_end
    suffix = f"</{index.root_tag}>".encode(index.encoding)
    positions: Dict[str, int] = {}
    for tag in index.tags[:start]:
        positions[tag] = positions.get(tag, 0) + 1
    with _ByteSpliceReader(path, preamble, index.offsets[start], end_byte, suffix) as reader:
        for chunk in iter_xml_chunks(
            reader,
            chunk_size,
            coerce_numbers=coerce_numbers,
            tag_positions=positions,
        ):
            yield chunk


def iter_json_chunks(
    source: Union[str, IO, list, dict],
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    *,
    record_range: Optional[Tuple[int, int]] = None,
) -> Iterator[Chunk]:
    """Chunk a JSON document by its top-level records.

    ``source`` is a path, an open file object, a JSON string, or an
    already-decoded value.  A top-level array contributes one record per
    element (tag ``item``, array positions preserved); a top-level object
    contributes one record per key/value pair, with array values flattened
    into repeated same-tag records exactly as :func:`repro.hdt.json_to_hdt`
    flattens them.  ``record_range=(start, stop)`` restricts the output to
    the records with sequence numbers in ``[start, stop)``; skipped records
    are never converted to node structures.
    """
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    start_record, stop_record = _normalize_record_range(record_range)
    value = _decode_json_source(source)
    records: List[Node] = []
    index = 0
    for sequence, (tag, pos, item) in enumerate(_iter_json_records(value)):
        if stop_record is not None and sequence >= stop_record:
            break
        if sequence < start_record:
            continue
        records.append(json_value_to_node(tag, pos, item))
        if len(records) >= chunk_size:
            yield _make_chunk(ROOT_TAG, records, index)
            records = []
            index += 1
    if records:
        yield _make_chunk(ROOT_TAG, records, index)


def count_json_records(source: Union[str, IO, list, dict]) -> int:
    """Count a JSON document's records as :func:`iter_json_chunks` defines them."""
    return sum(1 for _ in _iter_json_records(_decode_json_source(source)))


def iter_tree_chunks(
    tree: HDT,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    *,
    record_range: Optional[Tuple[int, int]] = None,
) -> Iterator[Chunk]:
    """Chunk an already-materialized HDT by cloning its record subtrees.

    The source tree is left untouched (records are deep-cloned into each
    chunk), which makes this iterator suitable for comparing streaming and
    whole-tree execution on the same document.  ``record_range=(start,
    stop)`` clones only the records in that window.
    """
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    start_record, stop_record = _normalize_record_range(record_range)
    records: List[Node] = []
    index = 0
    for sequence, child in enumerate(tree.root.children):
        if stop_record is not None and sequence >= stop_record:
            break
        if sequence < start_record:
            continue
        records.append(clone_subtree(child))
        if len(records) >= chunk_size:
            yield _make_chunk(tree.root.tag, records, index)
            records = []
            index += 1
    if records:
        yield _make_chunk(tree.root.tag, records, index)


def clone_subtree(node: Node) -> Node:
    """Deep-copy a subtree into fresh nodes (new uids, no parent)."""
    copy = Node(node.tag, node.pos, node.data)
    stack = [(node, copy)]
    while stack:
        original, clone = stack.pop()
        for child in original.children:
            child_clone = clone.new_child(child.tag, child.pos, child.data)
            if child.children:
                stack.append((child, child_clone))
    return copy


def _make_chunk(
    root_tag: str,
    records: List[Node],
    index: int,
    extras: Optional[List[Tuple[str, int, Scalar]]] = None,
) -> Chunk:
    root = Node(root_tag, 0, None)
    for tag, pos, data in extras or ():
        # Fresh leaf nodes per chunk: chunks must not share Node objects.
        root.new_child(tag, pos, data)
    for record in records:
        root.add_child(record)
    return Chunk(tree=HDT(root), index=index, records=len(records))


def _decode_json_source(source: Union[str, IO, list, dict]) -> Any:
    if isinstance(source, (list, dict)):
        return source
    if isinstance(source, str):
        stripped = source.lstrip()
        if stripped.startswith("{") or stripped.startswith("["):
            return json.loads(source)
        with open(source, "r", encoding="utf-8") as handle:
            return json.load(handle)
    return json.load(source)


def _iter_json_records(value: Any) -> Iterator[Tuple[str, int, Any]]:
    if isinstance(value, list):
        for pos, item in enumerate(value):
            yield ITEM_TAG, pos, item
        return
    if isinstance(value, dict):
        for key, val in value.items():
            if isinstance(val, list):
                for pos, item in enumerate(val):
                    yield str(key), pos, item
            else:
                yield str(key), 0, val
        return
    raise ValueError("top-level JSON value must be an array or an object")


# --------------------------------------------------------------------------- #
# Streaming execution
# --------------------------------------------------------------------------- #


def execute_plan_on_chunk(
    plan: MigrationPlan,
    tree: HDT,
    executions: Optional[Dict[str, ExecutionPlan]] = None,
) -> Dict[str, TableRowBatch]:
    """Run every table's program on one chunk (no cross-chunk state).

    Uses the fused, projection-aware executor but materializes the per-chunk
    batches (bounded by the chunk size) — this is the unit the
    multiprocessing fan-out pickles back to the parent; the serial path
    streams instead (see :func:`stream_execute`).  Pass pre-compiled
    ``executions`` (:func:`~repro.runtime.executor.compile_plan_executions`)
    when running many chunks, so programs are planned once, not per chunk.
    """
    if executions is None:
        executions = compile_plan_executions(plan)
    batches: Dict[str, TableRowBatch] = {}
    for table_schema in plan.execution_order():
        table_plan = plan.table_plan(table_schema.name)
        node_rows = iter_execute_nodes(
            table_plan.program, tree, execution=executions[table_schema.name]
        )
        batches[table_schema.name] = generate_table_rows(
            table_schema, table_plan.data_columns, table_plan.foreign_key_rules, node_rows
        )
    return batches


# The plan is invariant across chunks; ship it to each worker once via the
# pool initializer (instead of re-pickling it into every task) and compile
# its programs once per worker.
_WORKER_PLAN: Optional[MigrationPlan] = None
_WORKER_EXECUTIONS: Optional[Dict[str, ExecutionPlan]] = None


def _init_worker(plan: MigrationPlan) -> None:
    global _WORKER_PLAN, _WORKER_EXECUTIONS
    _WORKER_PLAN = plan
    _WORKER_EXECUTIONS = compile_plan_executions(plan)


def _execute_chunk_task(tree: HDT) -> Dict[str, TableRowBatch]:
    assert _WORKER_PLAN is not None, "worker pool was not initialized with a plan"
    return execute_plan_on_chunk(_WORKER_PLAN, tree, _WORKER_EXECUTIONS)


def stream_execute(
    plan: MigrationPlan,
    chunks: Iterable[Chunk],
    backend: Optional[ExecutionBackend] = None,
    *,
    workers: int = 0,
) -> ExecutionReport:
    """Execute a plan over a chunk stream with bounded memory.

    ``workers > 1`` fans chunk execution out to a ``multiprocessing`` pool;
    merging stays in the parent and processes results in chunk order, so the
    output is identical to the serial path.

    Examples
    --------
    >>> from repro.datasets import dblp
    >>> from repro.runtime import MigrationPlan, iter_tree_chunks, stream_execute
    >>> bundle = dblp.dataset(scale=2)
    >>> plan = MigrationPlan.learn(bundle.migration_spec())
    >>> chunks = iter_tree_chunks(bundle.generate(2), chunk_size=1)
    >>> report = stream_execute(plan, chunks)
    >>> report.total_rows, report.chunks > 1
    (30, True)
    """
    backend = backend if backend is not None else MemoryBackend()
    start = time.perf_counter()
    backend.begin(plan.schema)
    merger = ChunkMerger(plan.schema)
    order = plan.execution_order()
    report = ExecutionReport(backend=backend, chunks=0)
    report.per_table_rows = {t.name: 0 for t in plan.schema.tables}

    def _consume(batches: Dict[str, TableRowBatch]) -> None:
        for table_schema in order:
            rows = merger.merge(batches[table_schema.name])
            if rows:
                report.per_table_rows[table_schema.name] += backend.insert_rows(
                    table_schema.name, rows
                )
        report.chunks += 1

    def _consume_streamed(tree: HDT) -> None:
        # Serial path: the per-table pipeline is one generator chain from
        # tuple enumeration to backend insert; even within a chunk no row
        # list is materialized.
        for table_schema in order:
            table_plan = plan.table_plan(table_schema.name)
            key_aliases: Dict[str, str] = {}
            rows = stream_table_rows(
                table_schema,
                table_plan,
                tree,
                merger,
                key_aliases,
                execution=executions[table_schema.name],
            )
            report.per_table_rows[table_schema.name] += backend.insert_rows(
                table_schema.name, rows
            )
            merger.absorb_aliases(table_schema.name, key_aliases)
        report.chunks += 1

    if workers and workers > 1:
        # Workers compile their own executions in _init_worker.
        with multiprocessing.Pool(
            processes=workers, initializer=_init_worker, initargs=(plan,)
        ) as pool:
            for batches in pool.imap(_execute_chunk_task, (chunk.tree for chunk in chunks)):
                _consume(batches)
    else:
        executions = compile_plan_executions(plan)  # once per plan, not per chunk
        for chunk in chunks:
            _consume_streamed(chunk.tree)

    backend.finalize()
    report.execution_time = time.perf_counter() - start
    return report
