"""Incremental learning: synthesize only what a spec edit actually changed.

This is the runtime's answer to the interactive schema-design loop.  A cold
:func:`learn_incremental` behaves like :meth:`MigrationPlan.learn` and leaves
two artifacts behind in a :class:`~repro.runtime.context_store.ContextStore`:
a snapshot of the spec with its plan, and the serialized synthesis context.
Every later call against the *same example document*:

1. rehydrates the persisted :class:`~repro.synthesis.context.SynthesisContext`
   (per-tree facts, column-extractor lists, χi sets, predicate universes);
2. diffs the edited spec against the best stored snapshot
   (:func:`~repro.runtime.spec_diff.diff_specs`) to find tables whose
   programs — and possibly key rules — are still valid;
3. re-synthesizes only the affected tables (seeding ``--jobs`` workers from
   the same payload), reusing everything else from the cached plan;
4. records the new spec + plan + context for the next edit.

The learned plan is **byte-identical** to a cold learn of the edited spec
(same pretty-printed programs, same θ-cost, same key rules): every reuse
decision mirrors a determinism invariant of the learner, never a heuristic.
See ``benchmarks/bench_incremental.py`` for the measured speedups
(``BENCH_PR4.json``) and ``docs/runtime.md`` for the architecture.

Example::

    from repro.datasets import dblp
    from repro.runtime import ContextStore, learn_incremental

    store = ContextStore("/tmp/ctx")
    spec = dblp.dataset().migration_spec()
    plan, report = learn_incremental(spec, store)     # cold
    plan, report = learn_incremental(spec, store)     # warm: everything reused
    assert report.tables_synthesized == []
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..migration.engine import MigrationEngine, MigrationSpec
from ..synthesis.config import SynthesisConfig
from .context_store import ContextStore
from .plan import MigrationPlan
from .plan_cache import spec_fingerprint
from .spec_diff import SpecDiff, reusable_plans


@dataclass
class IncrementalReport:
    """What an incremental learn reused, re-learned and why."""

    spec_fingerprint: str
    base_fingerprint: Optional[str] = None
    """Spec fingerprint of the snapshot the diff ran against (``None`` = cold)."""

    diff: Optional[SpecDiff] = None
    context_hit: bool = False
    context_stats: Dict[str, int] = field(default_factory=dict)
    tables_total: int = 0
    tables_synthesized: List[str] = field(default_factory=list)
    tables_reused: List[str] = field(default_factory=list)
    tables_keys_reused: List[str] = field(default_factory=list)
    learn_seconds: float = 0.0
    cache_counters: Dict[str, int] = field(default_factory=dict)
    """Candidate-level cache hit/miss counters accumulated over the learn
    (universe/χi/bitmatrix — see
    :attr:`~repro.synthesis.context.SynthesisContext.COUNTERS`)."""

    @property
    def cold(self) -> bool:
        return self.base_fingerprint is None

    def describe(self) -> str:
        """Multi-line cache-hit summary printed by ``repro learn|migrate``."""
        lines: List[str] = []
        if self.context_hit:
            context = (
                "hit ({column_results} column lists, {chi} χi sets, "
                "{universes} universes)".format(**{**_EMPTY_STATS, **self.context_stats})
            )
        elif not self.tables_synthesized:
            context = "not needed (no tables re-synthesized)"
        else:
            context = "miss"
        lines.append(f"  context cache: {context}")
        if self.cold:
            lines.append("  base spec: none (cold learn, all tables synthesized)")
        else:
            assert self.diff is not None
            lines.append(
                f"  base spec: {self.base_fingerprint[:12]} ({self.diff.summary()})"
            )
        reused = len(self.tables_reused)
        lines.append(
            f"  tables: {len(self.tables_synthesized)} synthesized, "
            f"{reused}/{self.tables_total} programs reused, "
            f"{len(self.tables_keys_reused)} key rules reused"
        )
        if self.tables_synthesized:
            lines.append(f"  synthesized: {', '.join(self.tables_synthesized)}")
        counters = {**_EMPTY_COUNTERS, **self.cache_counters}
        if any(counters.values()):
            lines.append(
                "  candidate caches: universe {universe_hits}h/{universe_misses}m, "
                "χi {chi_hits}h/{chi_misses}m, "
                "bitmatrix {mask_hits}h/{mask_misses}m".format(**counters)
            )
        return "\n".join(lines)


_EMPTY_STATS = {"trees": 0, "column_results": 0, "chi": 0, "universes": 0}
_EMPTY_COUNTERS = {
    "universe_hits": 0,
    "universe_misses": 0,
    "chi_hits": 0,
    "chi_misses": 0,
    "mask_hits": 0,
    "mask_misses": 0,
}


def learn_incremental(
    spec: MigrationSpec,
    store: ContextStore,
    *,
    config: Optional[SynthesisConfig] = None,
    jobs: int = 1,
) -> "tuple[MigrationPlan, IncrementalReport]":
    """Learn a plan, reusing as much persisted state as the edit allows.

    ``config`` defaults to :meth:`SynthesisConfig.for_migration` (the engine
    default); the context entry is keyed by the configuration, so switching
    bounds never reuses stale caches.  ``jobs`` fans the re-synthesized
    tables out over worker processes seeded from the persisted context.
    """
    config = config if config is not None else SynthesisConfig.for_migration()
    fingerprint = spec_fingerprint(spec)
    report = IncrementalReport(
        spec_fingerprint=fingerprint, tables_total=spec.schema.num_tables
    )

    reuse, reuse_keys = {}, set()
    base = store.best_base(spec, config)
    if base is not None:
        snapshot, diff = base
        report.base_fingerprint = snapshot.fingerprint
        report.diff = diff
        reuse, reuse_keys = reusable_plans(diff, snapshot.plan, spec.schema)

    # The persisted context only helps tables that actually re-synthesize;
    # when the diff covers everything, skip the (de)serialization round trip
    # entirely — an exact re-learn then costs only the diff and key checks.
    needs_synthesis = {t.name for t in spec.schema.tables} - set(reuse)
    context = None
    if needs_synthesis:
        context = store.load_context([spec.example_tree], config)
        report.context_hit = context is not None
        if context is not None:
            report.context_stats = context.stats()

    engine = MigrationEngine(config, jobs=jobs, context=context)
    start = time.perf_counter()
    programs, _ = engine.learn(spec, reuse=reuse, reuse_keys=reuse_keys)
    report.learn_seconds = time.perf_counter() - start
    report.cache_counters = dict(engine.synthesizer.context.counters)
    report.tables_reused = sorted(reuse)
    report.tables_keys_reused = sorted(reuse_keys)
    report.tables_synthesized = sorted(set(programs) - set(reuse))

    plan = MigrationPlan.from_programs(spec.schema, programs)
    plan.metadata["spec_fingerprint"] = fingerprint
    if report.base_fingerprint is not None:
        plan.metadata["incremental_base"] = report.base_fingerprint
    store.record_spec(spec, plan, config)
    if needs_synthesis:
        store.store_context(engine.synthesizer.context)
    return plan, report
