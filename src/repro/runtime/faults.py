"""Deterministic fault injection for the sharded runtime.

A :class:`FaultPlan` is a small, declarative list of failures to induce at
well-known sites inside a sharded run.  It exists so every retry, timeout,
and degradation path in the shard supervisor (``supervisor.py``) is
exercised by *real* induced failures — in unit tests, through the CLI
(``--inject-faults``), and against a live daemon (the ``chaos-smoke`` CI
job) — instead of by mocks that drift from the code they imitate.

Spec grammar (see docs/robustness.md#fault-injection-spec-grammar)::

    spec    := rule ("," rule)*
    rule    := action (":" selector)*
    action  := "kill" | "delay" | "fail" | "truncate_spill" | "lock_db"
             | "drop_conn" | "corrupt_frame" | "stall"
    selector:= "shard=" int | "attempt=" int | "ms=" int

A selector that is omitted matches every value, so ``kill:shard=2`` kills
shard 2 on *every* attempt (retries are exhausted), while
``kill:shard=2:attempt=1`` kills only the first attempt (the retry
succeeds).  Injection sites:

``worker start``
    ``delay`` sleeps ``ms`` milliseconds before the shard does any work;
    ``fail`` raises :class:`FaultInjected` (classified non-retryable).
``spill write``
    ``kill`` terminates the worker process with ``os._exit`` mid-spill
    (in-process runs raise :class:`WorkerKilled` instead, which the retry
    policy classifies the same way); ``truncate_spill`` truncates the spill
    file and raises a retryable :class:`OSError`.
``backend insert``
    ``lock_db`` raises ``sqlite3.OperationalError("database is locked")``
    before a batch insert, exercising the backend's retry loop.
``wire frame`` (remote workers only, docs/distributed.md#fault-injection)
    fired by a ``repro worker`` as it streams a finished shard's spill
    back over a :class:`~repro.runtime.transport.SocketTransport`:
    ``stall`` sleeps ``ms`` milliseconds before the first data frame,
    ``corrupt_frame`` flips a payload byte after the CRC is computed (the
    client detects the mismatch and re-dispatches), and ``drop_conn``
    sends half of the first data frame and severs the connection — the
    "cable cut mid-result" case that must retry to a byte-identical
    result, never a silently truncated one.

Plans are carried explicitly through the map stage (they are pickled into
worker payloads), and *ambiently* — via a context variable or the
``REPRO_FAULTS`` environment variable — for the reduce-stage backend hook,
which has no shard identity.  When no plan is set every hook is a single
``None`` check: zero overhead on the production path.
"""

from __future__ import annotations

import contextlib
import contextvars
import os
import sqlite3
import time
from dataclasses import dataclass
from typing import IO, Iterator, Optional, Tuple

__all__ = [
    "ENV_VAR",
    "FAULT_ACTIONS",
    "FaultError",
    "FaultInjected",
    "WorkerKilled",
    "FaultRule",
    "FaultPlan",
    "FaultContext",
    "resolve_plan",
    "active_plan",
    "activation",
    "fire_backend_insert",
]

#: Environment variable consulted when no explicit plan is given.
ENV_VAR = "REPRO_FAULTS"

#: Exit code a ``kill``-faulted worker process dies with (distinctive on
#: purpose, so a supervisor log line is attributable to the harness).
KILL_EXIT_CODE = 70

FAULT_ACTIONS = (
    "kill",
    "delay",
    "fail",
    "truncate_spill",
    "lock_db",
    "drop_conn",
    "corrupt_frame",
    "stall",
)

#: Actions that take (and require, for the sleeping ones) an ``ms=`` selector.
_TIMED_ACTIONS = ("delay", "stall")


class FaultError(Exception):
    """An unparseable fault spec — user error, raised before any run work."""


class FaultInjected(Exception):
    """The failure a ``fail`` rule induces (classified non-retryable)."""


class WorkerKilled(Exception):
    """In-process stand-in for a ``kill`` rule (a real worker process dies
    with ``os._exit`` and never raises; classified retryable either way)."""


@dataclass(frozen=True)
class FaultRule:
    """One induced failure: an action plus optional shard/attempt selectors."""

    action: str
    shard: Optional[int] = None
    attempt: Optional[int] = None
    ms: int = 0

    def matches(self, *, shard: Optional[int], attempt: Optional[int]) -> bool:
        if self.shard is not None and self.shard != shard:
            return False
        if self.attempt is not None and self.attempt != attempt:
            return False
        return True

    def to_spec(self) -> str:
        parts = [self.action]
        if self.shard is not None:
            parts.append(f"shard={self.shard}")
        if self.attempt is not None:
            parts.append(f"attempt={self.attempt}")
        if self.ms:
            parts.append(f"ms={self.ms}")
        return ":".join(parts)


def _parse_rule(text: str) -> FaultRule:
    pieces = [piece.strip() for piece in text.strip().split(":")]
    action = pieces[0]
    if action not in FAULT_ACTIONS:
        raise FaultError(
            f"unknown fault action {action!r} in {text!r} "
            f"(expected one of: {', '.join(FAULT_ACTIONS)})"
        )
    shard: Optional[int] = None
    attempt: Optional[int] = None
    ms = 0
    for piece in pieces[1:]:
        key, equals, value = piece.partition("=")
        if not equals:
            raise FaultError(f"bad fault selector {piece!r} in {text!r} (expected key=value)")
        if key not in ("shard", "attempt", "ms"):
            raise FaultError(f"unknown fault selector {key!r} in {text!r} (expected shard/attempt/ms)")
        try:
            number = int(value)
        except ValueError:
            raise FaultError(f"fault selector {key}={value!r} in {text!r} is not an integer") from None
        if number < 0:
            raise FaultError(f"fault selector {key}={number} in {text!r} must be >= 0")
        if key == "shard":
            shard = number
        elif key == "attempt":
            if number < 1:
                raise FaultError(f"attempt={number} in {text!r} must be >= 1 (attempts are 1-based)")
            attempt = number
        elif key == "ms":
            ms = number
    if action in _TIMED_ACTIONS and ms <= 0:
        raise FaultError(f"{action} rule {text!r} needs ms=<milliseconds>")
    if action not in _TIMED_ACTIONS and ms:
        raise FaultError(f"ms= only applies to delay/stall rules (got {text!r})")
    return FaultRule(action, shard=shard, attempt=attempt, ms=ms)


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, immutable (and picklable) set of :class:`FaultRule`\\ s."""

    rules: Tuple[FaultRule, ...] = ()

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        text = (spec or "").strip()
        if not text:
            raise FaultError("empty fault spec")
        return cls(tuple(_parse_rule(rule) for rule in text.split(",") if rule.strip()))

    def to_spec(self) -> str:
        return ",".join(rule.to_spec() for rule in self.rules)

    def match(
        self, action: str, *, shard: Optional[int] = None, attempt: Optional[int] = None
    ) -> Optional[FaultRule]:
        """First rule for ``action`` whose selectors match, or ``None``."""
        for rule in self.rules:
            if rule.action == action and rule.matches(shard=shard, attempt=attempt):
                return rule
        return None

    def __bool__(self) -> bool:
        return bool(self.rules)


def resolve_plan(faults: object) -> Optional[FaultPlan]:
    """Normalise a ``faults`` argument: a plan, a spec string, or ``None``
    (which falls back to the ``REPRO_FAULTS`` environment variable)."""
    if faults is None:
        return _plan_from_env()
    if isinstance(faults, FaultPlan):
        return faults
    return FaultPlan.parse(str(faults))


# --------------------------------------------------------------------------- #
# Ambient activation (reduce-stage hooks have no shard context to thread
# a plan through, so they read the active plan from here).
# --------------------------------------------------------------------------- #

_ACTIVE: "contextvars.ContextVar[Optional[FaultPlan]]" = contextvars.ContextVar(
    "repro_fault_plan", default=None
)

#: (spec string, parsed plan) — parse the env var at most once per value.
_ENV_CACHE: Tuple[Optional[str], Optional[FaultPlan]] = (None, None)


def _plan_from_env() -> Optional[FaultPlan]:
    global _ENV_CACHE
    spec = os.environ.get(ENV_VAR)
    if not spec:
        return None
    if _ENV_CACHE[0] != spec:
        _ENV_CACHE = (spec, FaultPlan.parse(spec))
    return _ENV_CACHE[1]


def active_plan() -> Optional[FaultPlan]:
    plan = _ACTIVE.get()
    return plan if plan is not None else _plan_from_env()


@contextlib.contextmanager
def activation(plan: Optional[FaultPlan]) -> Iterator[Optional[FaultPlan]]:
    """Make ``plan`` the ambient fault plan for the duration of the block."""
    token = _ACTIVE.set(plan)
    try:
        yield plan
    finally:
        _ACTIVE.reset(token)


def fire_backend_insert(attempt: int) -> None:
    """Backend-insert hook: raise an injected "database is locked" error if
    a ``lock_db`` rule matches ``attempt``.  A no-op without an active plan."""
    plan = active_plan()
    if plan is None:
        return
    rule = plan.match("lock_db", attempt=attempt)
    if rule is not None:
        raise sqlite3.OperationalError(f"database is locked [injected: {rule.to_spec()}]")


# --------------------------------------------------------------------------- #
# Per-attempt context carried through the map stage.
# --------------------------------------------------------------------------- #


class FaultContext:
    """The fault hooks one shard attempt carries through its map stage.

    ``in_process`` softens ``kill`` from ``os._exit`` to :class:`WorkerKilled`
    so serial runs (and tests) exercise the same retry path without dying.
    """

    __slots__ = ("plan", "shard", "attempt", "in_process")

    def __init__(
        self,
        plan: FaultPlan,
        *,
        shard: int,
        attempt: int,
        in_process: bool = False,
    ) -> None:
        self.plan = plan
        self.shard = shard
        self.attempt = attempt
        self.in_process = in_process

    def _match(self, action: str) -> Optional[FaultRule]:
        return self.plan.match(action, shard=self.shard, attempt=self.attempt)

    def worker_start(self) -> None:
        rule = self._match("delay")
        if rule is not None:
            time.sleep(rule.ms / 1000.0)
        rule = self._match("fail")
        if rule is not None:
            raise FaultInjected(
                f"injected failure [{rule.to_spec()}] "
                f"(shard {self.shard}, attempt {self.attempt})"
            )

    def spill_write(self, handle: IO[bytes]) -> None:
        rule = self._match("kill")
        if rule is not None:
            if self.in_process:
                raise WorkerKilled(
                    f"injected worker kill [{rule.to_spec()}] "
                    f"(shard {self.shard}, attempt {self.attempt})"
                )
            handle.flush()
            os._exit(KILL_EXIT_CODE)
        rule = self._match("truncate_spill")
        if rule is not None:
            handle.flush()
            size = handle.tell()
            handle.truncate(max(0, size // 2))
            raise OSError(
                f"injected spill truncation [{rule.to_spec()}] "
                f"(shard {self.shard}, attempt {self.attempt})"
            )

    def wire_frame(self, frame_index: int) -> Optional[str]:
        """Wire-path hook, fired by a remote worker per outgoing data frame.

        Deterministically targets the *first* data frame of the matching
        shard attempt so every injected wire fault lands at the same byte
        position run after run.  ``stall`` sleeps here and returns ``None``;
        ``corrupt_frame``/``drop_conn`` return ``"corrupt"``/``"drop"`` for
        the worker's framing loop to act on.
        """
        if frame_index != 0:
            return None
        rule = self._match("stall")
        if rule is not None:
            time.sleep(rule.ms / 1000.0)
        rule = self._match("corrupt_frame")
        if rule is not None:
            return "corrupt"
        rule = self._match("drop_conn")
        if rule is not None:
            return "drop"
        return None
