"""The 98-task StackOverflow-style benchmark suite (Table 1 of the paper).

The paper evaluates Mitra on 98 tree-to-table transformation tasks collected
from StackOverflow (51 XML, 47 JSON), bucketed by the number of columns of the
target table, and reports that 92 of them are solvable (94%), the remaining 6
being inexpressible in the DSL or prohibitively large.

The original benchmark archive is no longer reachable offline, so this module
regenerates a suite with the same composition (see DESIGN.md, "Substitutions"):

* the same per-bucket task counts as Table 1
  (XML: 17 / 12 / 12 / 10, JSON: 11 / 11 / 11 / 14 for ≤2 / 3 / 4 / ≥5 columns),
* each task is a realistic micro-scenario (orders, sensor logs, playlists,
  library catalogues, ...) with an input document of a few dozen elements and
  an output table of a handful of rows, like the examples found in the posts,
* 6 tasks are intentionally *not* expressible in the DSL (they require union
  columns, string concatenation or aggregation), mirroring the paper's
  failure analysis.

Tasks are generated deterministically; :func:`load_suite` returns the full
list and :func:`suite_summary` the per-bucket composition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..hdt.node import Scalar
from ..hdt.tree import HDT, build_tree
from ..hdt.json_plugin import json_to_hdt
from ..hdt.xml_plugin import xml_to_hdt
from ..datasets.base import rng

Row = Tuple[Scalar, ...]


@dataclass
class BenchmarkTask:
    """One tree-to-table transformation task."""

    name: str
    format: str                       # "xml" or "json"
    tree: HDT
    rows: List[Row]
    expressible: bool = True
    description: str = ""

    @property
    def num_columns(self) -> int:
        return len(self.rows[0]) if self.rows else 0

    @property
    def num_elements(self) -> int:
        return self.tree.element_count()

    @property
    def bucket(self) -> str:
        cols = self.num_columns
        if cols <= 2:
            return "<=2"
        if cols >= 5:
            return ">=5"
        return str(cols)


# --------------------------------------------------------------------------- #
# Scenario templates.  Each template builds one task given a variant index;
# varying the index changes names/values/sizes so tasks are distinct.
# --------------------------------------------------------------------------- #

_CITIES = ["austin", "boston", "chicago", "denver", "eugene", "fresno"]
_PRODUCTS = ["lamp", "desk", "chair", "mug", "notebook", "monitor", "cable"]
_SENSORS = ["temp", "humidity", "pressure", "lux"]
_GENRES = ["jazz", "folk", "ambient", "electro"]


def _contacts(variant: int, columns: int, fmt: str) -> BenchmarkTask:
    """Flat contact list -> one row per contact with the first ``columns`` fields."""
    generator = rng(1000 + variant)
    people = [
        {
            "name": f"person{variant}_{i}",
            "email": f"p{variant}_{i}@example.org",
            "age": 20 + generator.randrange(45),
            "city": _CITIES[(variant + i) % len(_CITIES)],
            "phone": f"555-01{variant % 10}{i}",
        }
        for i in range(3 + variant % 3)
    ]
    fields = ["name", "email", "age", "city", "phone"][:columns]
    rows = [tuple(p[f] for f in fields) for p in people]
    doc = {"contact": people} if fmt == "xml" else {"contacts": people}
    tree = build_tree(doc, tag="addressbook") if fmt == "xml" else json_to_hdt(doc)
    return BenchmarkTask(
        name=f"{fmt}_contacts_{columns}c_v{variant}",
        format=fmt,
        tree=tree,
        rows=rows,
        description="flatten a contact list into one row per person",
    )


def _orders(variant: int, columns: int, fmt: str) -> BenchmarkTask:
    """Orders with nested line items -> one row per item, joined to its order."""
    generator = rng(2000 + variant)
    orders = []
    for o in range(2 + variant % 2):
        items = [
            {
                "sku": f"sku{variant}{o}{i}",
                "qty": 1 + generator.randrange(5),
                "price": round(3.5 + generator.random() * 90, 2),
            }
            for i in range(1 + (o + variant) % 3)
        ]
        orders.append(
            {
                "order_id": f"o{variant}-{o}",
                "customer": f"customer{variant}_{o}",
                "date": f"2023-0{1 + o}-1{variant % 9}",
                "item": items,
            }
        )
    rows = []
    for order in orders:
        for item in order["item"]:
            full = (order["order_id"], item["sku"], item["qty"], order["customer"], item["price"])
            rows.append(full[:columns])
    doc = {"order": orders}
    tree = build_tree(doc, tag="orders") if fmt == "xml" else json_to_hdt({"orders": orders})
    return BenchmarkTask(
        name=f"{fmt}_orders_{columns}c_v{variant}",
        format=fmt,
        tree=tree,
        rows=rows,
        description="shred nested order line items into a relational table",
    )


def _sensors(variant: int, columns: int, fmt: str) -> BenchmarkTask:
    """Device/sensor readings -> one row per reading with device metadata."""
    generator = rng(3000 + variant)
    devices = []
    for d in range(2 + variant % 2):
        readings = [
            {
                "kind": _SENSORS[(d + r + variant) % len(_SENSORS)],
                "value": round(generator.random() * 100, 1),
                "ts": f"12:{10 + r}:0{d}",
            }
            for r in range(2 + (variant + d) % 2)
        ]
        devices.append(
            {
                "device_id": f"dev{variant}-{d}",
                "location": _CITIES[(variant + d) % len(_CITIES)],
                "reading": readings,
            }
        )
    rows = []
    for device in devices:
        for reading in device["reading"]:
            full = (device["device_id"], reading["kind"], reading["value"], device["location"], reading["ts"])
            rows.append(full[:columns])
    tree = build_tree({"device": devices}, tag="telemetry") if fmt == "xml" else json_to_hdt({"devices": devices})
    return BenchmarkTask(
        name=f"{fmt}_sensors_{columns}c_v{variant}",
        format=fmt,
        tree=tree,
        rows=rows,
        description="flatten per-device sensor readings",
    )


def _playlist(variant: int, columns: int, fmt: str) -> BenchmarkTask:
    """Playlists with tracks -> one row per track."""
    generator = rng(4000 + variant)
    playlists = []
    for p in range(2):
        tracks = [
            {
                "title": f"track{variant}_{p}_{t}",
                "artist": f"artist{variant}_{(p + t) % 4}",
                "seconds": 120 + generator.randrange(300),
                "genre": _GENRES[(p + t + variant) % len(_GENRES)],
            }
            for t in range(2 + (variant + p) % 2)
        ]
        playlists.append({"playlist_name": f"mix{variant}-{p}", "owner": f"dj{variant}_{p}", "track": tracks})
    rows = []
    for playlist in playlists:
        for track in playlist["track"]:
            full = (
                playlist["playlist_name"],
                track["title"],
                track["artist"],
                track["seconds"],
                track["genre"],
            )
            rows.append(full[:columns])
    tree = (
        build_tree({"playlist": playlists}, tag="library")
        if fmt == "xml"
        else json_to_hdt({"playlists": playlists})
    )
    return BenchmarkTask(
        name=f"{fmt}_playlist_{columns}c_v{variant}",
        format=fmt,
        tree=tree,
        rows=rows,
        description="convert playlists with nested tracks to rows",
    )


def _filtered_products(variant: int, columns: int, fmt: str) -> BenchmarkTask:
    """Product catalogue -> rows for products below a price threshold (needs a constant predicate)."""
    generator = rng(5000 + variant)
    threshold = 50
    products = [
        {
            "name": _PRODUCTS[(variant + i) % len(_PRODUCTS)] + f"_{variant}_{i}",
            "price": 10 + 15 * i + variant % 7,
            "stock": generator.randrange(200),
            "category": "home" if i % 2 == 0 else "office",
        }
        for i in range(5)
    ]
    rows = [
        (p["name"], p["price"], p["stock"], p["category"])[:columns]
        for p in products
        if p["price"] < threshold
    ]
    tree = (
        build_tree({"product": products}, tag="catalog")
        if fmt == "xml"
        else json_to_hdt({"products": products})
    )
    return BenchmarkTask(
        name=f"{fmt}_cheap_products_{columns}c_v{variant}",
        format=fmt,
        tree=tree,
        rows=rows,
        description="select products under a price threshold",
    )


def _course_enrollment(variant: int, columns: int, fmt: str) -> BenchmarkTask:
    """Students with course references -> (student, course, grade, ...) join rows."""
    generator = rng(6000 + variant)
    courses = [
        {"code": f"cs{100 + 10 * c + variant % 5}", "title": f"course{variant}_{c}", "credits": 2 + c % 3}
        for c in range(3)
    ]
    students = []
    for s in range(3):
        enrollments = [
            {"course": courses[(s + e) % len(courses)]["code"], "grade": round(2.0 + generator.random() * 2, 1)}
            for e in range(1 + (s + variant) % 2)
        ]
        students.append({"student_id": f"s{variant}-{s}", "student_name": f"student{variant}_{s}", "enrollment": enrollments})
    rows = []
    course_by_code = {c["code"]: c for c in courses}
    for student in students:
        for enrollment in student["enrollment"]:
            course = course_by_code[enrollment["course"]]
            full = (
                student["student_id"],
                enrollment["course"],
                enrollment["grade"],
                student["student_name"],
                course["credits"],
            )
            rows.append(full[:columns])
    doc = {"course": courses, "student": students}
    tree = build_tree(doc, tag="university") if fmt == "xml" else json_to_hdt({"courses": courses, "students": students})
    return BenchmarkTask(
        name=f"{fmt}_enrollment_{columns}c_v{variant}",
        format=fmt,
        tree=tree,
        rows=rows,
        description="join students to the courses they are enrolled in",
    )


def _inexpressible_union(variant: int, fmt: str) -> BenchmarkTask:
    """Requires a single column drawing from two different tags — not in the DSL."""
    doc = {
        "book": [{"title": f"book{variant}_{i}", "isbn": f"97{variant}{i}"} for i in range(2)],
        "magazine": [{"name": f"mag{variant}_{i}", "issue": i + 1} for i in range(2)],
    }
    rows: List[Row] = [(f"book{variant}_0",), (f"book{variant}_1",), (f"mag{variant}_0",), (f"mag{variant}_1",)]
    tree = build_tree(doc, tag="shelf") if fmt == "xml" else json_to_hdt(doc)
    return BenchmarkTask(
        name=f"{fmt}_union_titles_v{variant}",
        format=fmt,
        tree=tree,
        rows=rows,
        expressible=False,
        description="one column mixing book titles and magazine names (needs a union column extractor)",
    )


def _inexpressible_concat(variant: int, fmt: str) -> BenchmarkTask:
    """Requires string concatenation of two leaves — not in the DSL."""
    people = [{"first": f"fn{variant}{i}", "last": f"ln{variant}{i}"} for i in range(3)]
    rows = [(f"fn{variant}{i} ln{variant}{i}",) for i in range(3)]
    tree = build_tree({"person": people}, tag="people") if fmt == "xml" else json_to_hdt({"people": people})
    return BenchmarkTask(
        name=f"{fmt}_fullname_concat_v{variant}",
        format=fmt,
        tree=tree,
        rows=rows,
        expressible=False,
        description="full name column requires concatenating first and last name",
    )


def _inexpressible_aggregate(variant: int, fmt: str) -> BenchmarkTask:
    """Requires aggregation (count of children) — not in the DSL."""
    teams = [
        {"team": f"team{variant}_{t}", "member": [f"m{variant}{t}{m}" for m in range(t + 1)]}
        for t in range(3)
    ]
    rows = [(f"team{variant}_{t}", t + 1) for t in range(3)]
    tree = build_tree({"entry": teams}, tag="teams") if fmt == "xml" else json_to_hdt({"entries": teams})
    return BenchmarkTask(
        name=f"{fmt}_team_sizes_v{variant}",
        format=fmt,
        tree=tree,
        rows=rows,
        expressible=False,
        description="second column is the number of members (needs aggregation)",
    )


# --------------------------------------------------------------------------- #
# Suite assembly
# --------------------------------------------------------------------------- #

_EXPRESSIBLE_TEMPLATES = [_contacts, _orders, _sensors, _playlist, _filtered_products, _course_enrollment]

# Per-bucket task counts from Table 1 of the paper.
_XML_BUCKETS = {2: 17, 3: 12, 4: 12, 5: 10}
_JSON_BUCKETS = {2: 11, 3: 11, 4: 11, 5: 14}


def _bucket_tasks(fmt: str, buckets: Dict[int, int], inexpressible: List[BenchmarkTask]) -> List[BenchmarkTask]:
    tasks: List[BenchmarkTask] = []
    pending_inexpressible = list(inexpressible)
    for columns, count in buckets.items():
        produced = 0
        variant = 0
        while produced < count:
            # Reserve slots for the inexpressible tasks in the bucket matching
            # their own column count.
            slot_filled = False
            for task in list(pending_inexpressible):
                bucket = 2 if task.num_columns <= 2 else (5 if task.num_columns >= 5 else task.num_columns)
                if bucket == columns and produced < count:
                    tasks.append(task)
                    pending_inexpressible.remove(task)
                    produced += 1
                    slot_filled = True
            if produced >= count:
                break
            # Pick a template that can actually produce the requested width
            # (some scenarios max out at 4 columns); try successive templates
            # until the produced task lands in the intended bucket.
            for attempt in range(len(_EXPRESSIBLE_TEMPLATES)):
                template = _EXPRESSIBLE_TEMPLATES[
                    (variant + columns + attempt) % len(_EXPRESSIBLE_TEMPLATES)
                ]
                candidate = template(variant, columns, fmt)
                target_bucket = "<=2" if columns <= 2 else (">=5" if columns >= 5 else str(columns))
                if candidate.bucket == target_bucket:
                    tasks.append(candidate)
                    produced += 1
                    break
            else:  # pragma: no cover - every width ≤5 has a capable template
                raise RuntimeError(f"no template can produce a {columns}-column task")
            variant += 1
            if slot_filled:
                continue
    return tasks


def load_suite() -> List[BenchmarkTask]:
    """Build the full 98-task suite (51 XML + 47 JSON)."""
    xml_inexpressible = [
        _inexpressible_union(0, "xml"),
        _inexpressible_concat(0, "xml"),
        _inexpressible_aggregate(0, "xml"),
    ]
    json_inexpressible = [
        _inexpressible_union(1, "json"),
        _inexpressible_concat(1, "json"),
        _inexpressible_aggregate(1, "json"),
    ]
    tasks = _bucket_tasks("xml", _XML_BUCKETS, xml_inexpressible)
    tasks += _bucket_tasks("json", _JSON_BUCKETS, json_inexpressible)
    return tasks


def suite_summary(tasks: Optional[Sequence[BenchmarkTask]] = None) -> Dict[str, Dict[str, int]]:
    """Per-format, per-bucket composition of the suite."""
    tasks = list(tasks) if tasks is not None else load_suite()
    summary: Dict[str, Dict[str, int]] = {}
    for task in tasks:
        fmt = summary.setdefault(task.format, {})
        fmt[task.bucket] = fmt.get(task.bucket, 0) + 1
        fmt["total"] = fmt.get("total", 0) + 1
    return summary
