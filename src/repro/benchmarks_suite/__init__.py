"""Benchmark task suites used by the evaluation harness."""

from .stackoverflow import BenchmarkTask, load_suite, suite_summary

__all__ = ["BenchmarkTask", "load_suite", "suite_summary"]
