"""Configuration knobs for the synthesis algorithm.

The paper's algorithm explores an in-principle unbounded space (column
extractors of arbitrary length, node extractors of arbitrary depth).  In
practice Mitra bounds that exploration; this dataclass collects every bound in
one place so that the evaluation harness and the ablation benchmarks can vary
them explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet

from ..dsl.ast import Op


@dataclass(frozen=True)
class SynthesisConfig:
    """Bounds and strategy switches for :class:`~repro.synthesis.synthesizer.Synthesizer`."""

    # --- column extractor learning (Section 5.1) ---------------------------
    max_column_program_length: int = 6
    """Maximum number of operators in a column extractor (DFA word length)."""

    max_column_programs: int = 24
    """Maximum number of column extractors enumerated per column."""

    max_dfa_states: int = 4000
    """Safety cap on the number of DFA states built per example."""

    # --- table extractor enumeration ---------------------------------------
    max_table_extractors: int = 48
    """Maximum number of candidate table extractors (cartesian combinations)."""

    max_candidates_without_improvement: int = 12
    """Stop exploring further table extractors after this many consecutive
    candidates fail to improve on the best program found so far."""

    max_intermediate_rows: int = 200_000
    """Skip candidate table extractors whose intermediate table would exceed this."""

    # --- predicate learning (Section 5.2) -----------------------------------
    max_node_extractor_depth: int = 3
    """Maximum nesting depth of parent/child chains in node extractors."""

    max_node_extractors_per_column: int = 40
    """Cap on the number of node extractors considered per column."""

    constant_ops: FrozenSet[Op] = frozenset({Op.EQ, Op.LT, Op.GT})
    """Operators used when comparing extracted data against constants."""

    node_pair_ops: FrozenSet[Op] = frozenset({Op.EQ})
    """Operators used when comparing two extracted nodes."""

    max_predicate_universe: int = 3000
    """Hard cap on the size of the atomic-predicate universe."""

    max_constants: int = 64
    """Cap on the number of distinct constants drawn from the input documents."""

    # --- solvers -------------------------------------------------------------
    cover_strategy: str = "auto"
    """Minimum-cover strategy: 'auto', 'ilp', 'branch_and_bound', 'greedy' or
    'legacy' (the pre-PR-8 auto dispatch that hands large instances to HiGHS)."""

    exact_cover_limit: int = 26
    """Use exact branch-and-bound only when at most this many candidate predicates
    survive pre-filtering (otherwise fall back to ILP/greedy)."""

    # --- search control -------------------------------------------------------
    stop_after_first_solution: bool = False
    """When true, return the first consistent program instead of the θ-minimal one."""

    timeout_seconds: float = 60.0
    """Soft wall-clock budget for a single synthesis task."""

    # --- engine ---------------------------------------------------------------
    vectorized: bool = True
    """Use the bitset-vectorized engine (lazy product DFA, predicate
    bitmatrices, shared caches).  ``False`` runs the seed algorithms —
    eager per-example DFAs and tuple-by-tuple predicate evaluation — which
    the equivalence tests and benchmarks compare against."""

    candidate_caching: bool = True
    """Reuse predicate universes, χi sets and per-predicate satisfying-node
    sets across candidate table extractors (keyed by column *node-list
    signatures*, so syntactically different extractors that land on the same
    nodes share everything).  ``False`` forces the cold path — every candidate
    rebuilds from scratch — which the parity tests compare against: caching
    must never change a learned program, only how fast it is learned."""


    # ------------------------------------------------------------- presets
    @staticmethod
    def for_migration() -> "SynthesisConfig":
        """Preset used by the whole-database migration engine (Table 2).

        The Table 2 schemas never need constant comparisons in their filters —
        every hidden link is structural — so constant predicates are disabled,
        which both removes the risk of overfitting to the tiny per-table
        examples and shrinks the predicate universe considerably.  The search
        bounds are tightened accordingly.
        """
        return SynthesisConfig(
            constant_ops=frozenset(),
            max_node_extractor_depth=2,
            max_node_extractors_per_column=24,
            max_table_extractors=24,
            max_candidates_without_improvement=3,
            max_column_programs=16,
            timeout_seconds=45.0,
        )

    @staticmethod
    def fast() -> "SynthesisConfig":
        """A tightened preset for unit tests and quick interactive use."""
        return SynthesisConfig(
            max_column_programs=12,
            max_table_extractors=16,
            max_candidates_without_improvement=6,
            max_node_extractors_per_column=24,
            timeout_seconds=20.0,
        )

    def seed_variant(self) -> "SynthesisConfig":
        """The same bounds with the seed (non-vectorized) algorithms selected."""
        from dataclasses import replace

        return replace(self, vectorized=False)


DEFAULT_CONFIG = SynthesisConfig()
