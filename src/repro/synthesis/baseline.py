"""Baseline enumerative synthesizer used for ablation studies.

The paper motivates its two technical ingredients — the DFA-based column
learner and the ILP + Quine–McCluskey predicate learner — as the reason Mitra
is fast.  To quantify that on our substrate, this module provides a naive
baseline that solves the same problem by brute force:

* column extractors are enumerated bottom-up by increasing length (no DFA and
  therefore no sharing of intermediate node sets across examples);
* the row filter is learned by enumerating conjunctions of atomic predicates by
  increasing size (no minimum-cover ILP, no logic minimization), taking the
  first conjunction that separates the positive and negative tuples.

The baseline is deliberately limited to conjunctive filters: that is what a
straightforward enumerative implementation does, and the ablation benchmark
reports both its slower synthesis times and the cases where it fails on tasks
that need disjunctive filters.
"""

from __future__ import annotations

import itertools
import time
from typing import List, Optional, Sequence, Tuple

from ..dsl.ast import ColumnExtractor, Children, Descendants, PChildren, Predicate, Program, TableExtractor, True_, Var, conjoin
from ..dsl.semantics import compare_values, eval_column_on_tree, eval_predicate, Op
from ..hdt.tree import HDT
from .config import DEFAULT_CONFIG, SynthesisConfig
from .predicate_learner import check_program, classify_tuples
from .predicate_universe import construct_predicate_universe
from .synthesizer import ExamplePair, SynthesisResult, SynthesisTask


def enumerate_column_extractors(
    tree: HDT, max_length: int
) -> List[ColumnExtractor]:
    """Enumerate every column extractor of length ≤ max_length over the tree's tags."""
    tags = tree.tags()
    positions = {tag: tree.positions_for_tag(tag) for tag in tags}
    current: List[ColumnExtractor] = [Var()]
    all_programs: List[ColumnExtractor] = [Var()]
    for _ in range(max_length):
        next_level: List[ColumnExtractor] = []
        for base in current:
            for tag in tags:
                next_level.append(Children(base, tag))
                next_level.append(Descendants(base, tag))
                for pos in positions[tag]:
                    next_level.append(PChildren(base, tag, pos))
        all_programs.extend(next_level)
        current = next_level
    return all_programs


class BaselineSynthesizer:
    """Brute-force enumerative synthesizer (ablation baseline)."""

    def __init__(self, config: SynthesisConfig = DEFAULT_CONFIG, *, max_conjunction: int = 3) -> None:
        self.config = config
        self.max_conjunction = max_conjunction

    def synthesize(self, task: SynthesisTask) -> SynthesisResult:
        start = time.perf_counter()
        config = self.config
        arity = task.arity
        if arity == 0:
            return SynthesisResult(None, False, 0.0, message="empty output example")

        # Enumerate candidate extractors per column by filtering the brute-force
        # pool against the coverage requirement on every example.
        column_candidates: List[List[ColumnExtractor]] = []
        pool_cache = {}
        for j in range(arity):
            candidates: List[ColumnExtractor] = []
            for example in task.examples:
                key = id(example.tree)
                if key not in pool_cache:
                    pool_cache[key] = enumerate_column_extractors(
                        example.tree, config.max_column_program_length
                    )
            first = task.examples[0]
            for extractor in pool_cache[id(first.tree)]:
                if all(
                    self._covers(extractor, ex.tree, [row[j] for row in ex.rows])
                    for ex in task.examples
                ):
                    candidates.append(extractor)
                    if len(candidates) >= config.max_column_programs:
                        break
            if not candidates:
                return SynthesisResult(
                    None,
                    False,
                    time.perf_counter() - start,
                    message=f"no column extractor found for column {j}",
                )
            candidates.sort(key=lambda e: (e.size(), repr(e)))
            column_candidates.append(candidates)

        predicate_examples = [(ex.tree, ex.rows) for ex in task.examples]
        combos = list(itertools.product(*column_candidates))
        combos.sort(key=lambda combo: sum(c.size() for c in combo))
        tried = 0
        for combo in combos[: config.max_table_extractors]:
            if time.perf_counter() - start > config.timeout_seconds:
                break
            tried += 1
            table_extractor = TableExtractor(tuple(combo))
            predicate = self._learn_conjunction(predicate_examples, table_extractor)
            if predicate is None:
                continue
            program = Program(table_extractor, predicate)
            if check_program(program, predicate_examples):
                return SynthesisResult(
                    program,
                    True,
                    time.perf_counter() - start,
                    candidates_tried=tried,
                    column_candidates=[len(c) for c in column_candidates],
                )
        return SynthesisResult(
            None,
            False,
            time.perf_counter() - start,
            candidates_tried=tried,
            column_candidates=[len(c) for c in column_candidates],
            message="baseline found no conjunctive filter",
        )

    # ------------------------------------------------------------- internals
    def _covers(self, extractor: ColumnExtractor, tree: HDT, values) -> bool:
        extracted = [n.data for n in eval_column_on_tree(extractor, tree)]
        return all(
            any(compare_values(v, Op.EQ, d) for d in extracted) for v in values
        )

    def _learn_conjunction(
        self, examples, table_extractor: TableExtractor
    ) -> Optional[Predicate]:
        """Enumerate conjunctions of atomic predicates by increasing size."""
        try:
            positives, negatives = classify_tuples(
                examples, table_extractor, max_rows=self.config.max_intermediate_rows
            )
        except MemoryError:
            return None
        if not negatives:
            return True_()
        if not positives:
            return None
        universe = construct_predicate_universe(
            [tree for tree, _ in examples], table_extractor.columns, self.config
        )
        # Keep only predicates that hold on every positive tuple: a conjunction
        # containing any other predicate would reject a positive example.
        keep = [
            p for p in universe if all(eval_predicate(p, t) for t in positives)
        ]
        for size in range(1, self.max_conjunction + 1):
            for subset in itertools.combinations(keep, size):
                formula = conjoin(subset)
                if not any(eval_predicate(formula, t) for t in negatives):
                    return formula
        return None
