"""Top-level synthesis algorithm (Algorithm 1 of the paper).

:class:`Synthesizer` learns a DSL program ``λτ. filter(π1 × ... × πk, λt. φ)``
from input-output examples ``{T1 → R1, ..., Tm → Rm}``:

1. for every output column j, learn the set Πj of candidate column extractors
   with the DFA-based learner (Section 5.1);
2. enumerate candidate table extractors ψ ∈ Π1 × ... × Πk in order of
   increasing extractor cost;
3. for each ψ, try to learn a filtering predicate φ (Section 5.2); every
   success yields a candidate program;
4. return the program minimizing the simplicity cost θ (Occam's razor).

The module also defines :class:`SynthesisTask` (an input-output specification)
and :class:`SynthesisResult` (the learned program plus diagnostics), which the
benchmark suite and evaluation harness build upon.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..dsl.ast import Predicate, Program, TableExtractor, True_
from ..dsl.cost import program_cost
from ..dsl.pretty import pretty_program
from ..dsl.semantics import eval_column_on_tree, run_program
from ..hdt.node import Scalar
from ..hdt.tree import HDT
from .column_learner import ColumnLearningError, learn_column_extractors
from .config import DEFAULT_CONFIG, SynthesisConfig
from .context import SynthesisContext, _is_nan
from .predicate_learner import (
    PredicateLearningStats,
    check_program,
    learn_predicate,
    row_in_table,
)

Row = Tuple[Scalar, ...]


class SynthesisError(Exception):
    """Raised when no DSL program consistent with the examples can be found."""


@dataclass
class ExamplePair:
    """One input-output example: a document (HDT) and the desired table rows."""

    tree: HDT
    rows: List[Row]

    @property
    def arity(self) -> int:
        return len(self.rows[0]) if self.rows else 0


@dataclass
class SynthesisTask:
    """A complete synthesis problem: one or more input-output examples."""

    examples: List[ExamplePair]
    name: str = "task"

    def __post_init__(self) -> None:
        if not self.examples:
            raise ValueError("a synthesis task needs at least one example")
        arities = {ex.arity for ex in self.examples if ex.rows}
        if len(arities) > 1:
            raise ValueError(f"output tables have inconsistent arities: {arities}")

    @property
    def arity(self) -> int:
        for example in self.examples:
            if example.rows:
                return example.arity
        return 0


@dataclass
class SynthesisStats:
    """Aggregated per-task diagnostics across every candidate ψ tried.

    ``universe_sizes`` has one entry per candidate (the ISSUE-8 fix: the
    universe size used to be visible only for the winning candidate), the
    ``*_seconds`` fields are the summed per-phase wall-clock of predicate
    learning, and ``cache_counters`` holds the context cache hit/miss deltas
    attributable to this task (universe/χi/bitmatrix, see
    :attr:`~repro.synthesis.context.SynthesisContext.COUNTERS`).
    """

    universe_sizes: List[int] = field(default_factory=list)
    universe_seconds: float = 0.0
    bitmatrix_seconds: float = 0.0
    cover_seconds: float = 0.0
    cache_counters: Dict[str, int] = field(default_factory=dict)

    def add(self, stats: PredicateLearningStats) -> None:
        self.universe_sizes.append(stats.universe_size)
        self.universe_seconds += stats.universe_seconds
        self.bitmatrix_seconds += stats.bitmatrix_seconds
        self.cover_seconds += stats.cover_seconds

    def describe(self) -> str:
        """One line per concern, used by ``repro learn --verbose``."""
        sizes = ", ".join(str(size) for size in self.universe_sizes) or "-"
        lines = [
            f"universe sizes per candidate: {sizes}",
            "phase seconds: universe {:.3f}, bitmatrix {:.3f}, cover {:.3f}".format(
                self.universe_seconds, self.bitmatrix_seconds, self.cover_seconds
            ),
        ]
        counters = self.cache_counters
        if any(counters.values()):
            lines.append(
                "caches: universe {universe_hits}h/{universe_misses}m, "
                "chi {chi_hits}h/{chi_misses}m, "
                "bitmatrix {mask_hits}h/{mask_misses}m".format(
                    **{name: counters.get(name, 0) for name in SynthesisContext.COUNTERS}
                )
            )
        return "\n".join(lines)


@dataclass
class SynthesisResult:
    """The outcome of a synthesis run, including diagnostics for the evaluation."""

    program: Optional[Program]
    success: bool
    synthesis_time: float
    candidates_tried: int = 0
    column_candidates: List[int] = field(default_factory=list)
    predicate_stats: Optional[PredicateLearningStats] = None
    stats: Optional[SynthesisStats] = None
    message: str = ""

    @property
    def num_atomic_predicates(self) -> int:
        return self.program.num_atomic_predicates() if self.program else 0

    def describe(self) -> str:
        if not self.success or self.program is None:
            return f"synthesis failed: {self.message}"
        return pretty_program(self.program)


#: Per-process state of the candidate-ψ pool: each worker holds its own
#: unpickled trees, a synthesizer seeded from the parent's serialized context,
#: and the rebuilt predicate examples.
_CANDIDATE_WORKER_STATE: Dict[str, object] = {}


def _init_candidate_worker(
    trees_bytes: bytes, rows_list, config: SynthesisConfig, context_payload
) -> None:
    """Initialize one candidate-stage worker process.

    The worker rehydrates the parent's context artifacts (χi sets, universes,
    per-tree facts) against its own unpickled trees, so speculative candidates
    start from the same caches the serial loop would have.
    """
    import pickle

    trees = pickle.loads(trees_bytes)
    context = SynthesisContext()
    if context_payload is not None:
        from .serialize import deserialize_context

        context = deserialize_context(context_payload, trees)
    synthesizer = Synthesizer(config, context=context)
    examples = [
        (tree, [tuple(row) for row in rows]) for tree, rows in zip(trees, rows_list)
    ]
    _CANDIDATE_WORKER_STATE["synthesizer"] = synthesizer
    _CANDIDATE_WORKER_STATE["examples"] = examples


def _evaluate_candidate_worker(columns):
    """Pool entry point: evaluate one candidate ψ, return its verdict."""
    synthesizer: Synthesizer = _CANDIDATE_WORKER_STATE["synthesizer"]  # type: ignore[assignment]
    examples = _CANDIDATE_WORKER_STATE["examples"]
    return synthesizer._evaluate_candidate(TableExtractor(tuple(columns)), examples)


class Synthesizer:
    """Programming-by-example synthesizer for tree-to-table transformations.

    A synthesizer owns a :class:`~repro.synthesis.context.SynthesisContext`
    shared across all its :meth:`synthesize` calls (vectorized engine only):
    the tables of a multi-table migration reuse per-tree indexes, learned
    column-extractor lists, χi sets, predicate universes and node-extractor
    target memos.  Pass an explicit ``context`` to share caches between
    synthesizers with the same configuration.

    ``jobs`` parallelizes the candidate-ψ stage *within* one task (vectorized
    engine only): candidate table extractors are shipped to a process pool in
    enumeration order and evaluated speculatively, while the parent replays
    the serial control flow — strict-improvement tracking, stop conditions,
    θ-cost winner selection — over the results in submission order.  Because
    predicate learning is deterministic per candidate and the replay makes
    the same decisions on the same inputs, the learned program is
    byte-identical to a serial run; parallelism only changes how fast the
    answer arrives (plus up to one speculation window of wasted work after a
    stop condition fires).  ``jobs=0`` uses the CPU count.
    """

    def __init__(
        self,
        config: SynthesisConfig = DEFAULT_CONFIG,
        context: Optional[SynthesisContext] = None,
        *,
        jobs: int = 1,
    ) -> None:
        if jobs < 0:
            raise ValueError(f"jobs must be >= 0 (got {jobs})")
        self.config = config
        self.jobs = jobs
        self.context = context if context is not None else SynthesisContext()
        self.context.bind_config(config)

    # ------------------------------------------------------------------ API
    def synthesize(self, task: SynthesisTask) -> SynthesisResult:
        """Learn the θ-minimal DSL program consistent with the task's examples."""
        start = time.perf_counter()
        config = self.config
        arity = task.arity
        if arity == 0:
            return SynthesisResult(
                program=None,
                success=False,
                synthesis_time=time.perf_counter() - start,
                message="output example has no rows; cannot infer the table arity",
            )

        # Phase 1: column extractor candidates (Algorithm 2).  Identical
        # columns — ubiquitous across the tables of one migration (keys,
        # names, positions) — are learned once via the shared context cache.
        column_candidates: List[List] = []
        try:
            for j in range(arity):
                examples = [
                    (ex.tree, [row[j] for row in ex.rows]) for ex in task.examples
                ]
                column_candidates.append(self._learn_column(examples, config))
        except ColumnLearningError as error:
            return SynthesisResult(
                program=None,
                success=False,
                synthesis_time=time.perf_counter() - start,
                column_candidates=[len(c) for c in column_candidates],
                message=str(error),
            )

        # Phase 2: enumerate table extractors by increasing total size, learn a
        # predicate for each, and keep the θ-minimal program.  The enumeration
        # (candidate stream), the per-candidate evaluation, and the control
        # flow (replay loop) are separated so the serial and parallel paths
        # share the decision logic verbatim — the parallel path merely
        # evaluates candidates speculatively on a process pool and feeds the
        # results to the identical replay in submission order.
        best_program: Optional[Program] = None
        best_cost = None
        best_stats: Optional[PredicateLearningStats] = None
        candidates_tried = 0
        since_improvement = 0
        message = "no candidate table extractor admits a filtering predicate"
        aggregate = SynthesisStats()
        counters_before = dict(self.context.counters) if config.vectorized else {}

        predicate_examples = [(ex.tree, ex.rows) for ex in task.examples]
        stream_state = {"timed_out": False}
        stream = self._candidate_stream(column_candidates, task, start, stream_state)

        import os

        workers = self.jobs if self.jobs else (os.cpu_count() or 1)
        if config.vectorized and workers > 1:
            results = self._parallel_results(stream, predicate_examples, workers)
        else:
            results = (
                (te, self._evaluate_candidate(te, predicate_examples)) for te in stream
            )
        try:
            while True:
                if time.perf_counter() - start > config.timeout_seconds:
                    message = "synthesis timed out"
                    break
                if (
                    best_program is not None
                    and since_improvement >= config.max_candidates_without_improvement
                ):
                    break
                item = next(results, None)
                if item is None:
                    if stream_state["timed_out"]:
                        message = "synthesis timed out"
                    break
                table_extractor, (status, predicate, stats) = item
                candidates_tried += 1
                since_improvement += 1
                aggregate.add(stats)
                if status != "ok":
                    continue
                program = Program(table_extractor, predicate)
                cost = program_cost(program)
                if best_cost is None or cost < best_cost:
                    best_program, best_cost, best_stats = program, cost, stats
                    since_improvement = 0
                if config.stop_after_first_solution:
                    break
                if best_program is not None and best_program.num_atomic_predicates() == 0:
                    # No program can beat a filter-free program under θ.
                    break
        finally:
            results.close()
            stream.close()

        if config.vectorized:
            counters_after = self.context.counters
            aggregate.cache_counters = {
                name: counters_after.get(name, 0) - counters_before.get(name, 0)
                for name in counters_after
            }

        elapsed = time.perf_counter() - start
        if best_program is None:
            return SynthesisResult(
                program=None,
                success=False,
                synthesis_time=elapsed,
                candidates_tried=candidates_tried,
                column_candidates=[len(c) for c in column_candidates],
                stats=aggregate,
                message=message,
            )
        return SynthesisResult(
            program=best_program,
            success=True,
            synthesis_time=elapsed,
            candidates_tried=candidates_tried,
            column_candidates=[len(c) for c in column_candidates],
            predicate_stats=best_stats,
            stats=aggregate,
        )

    # ------------------------------------------------------------- internals
    def _learn_column(self, examples, config: SynthesisConfig) -> List:
        """Learn one column's extractor candidates, cached across tasks."""
        if not config.vectorized:
            return learn_column_extractors(examples, config)
        context = self.context
        key = (
            context.trees_key(tree for tree, _ in examples),
            tuple(tuple(values) for _, values in examples),
        )
        hit = context.column_results.get(key)
        if hit is None:
            hit = learn_column_extractors(examples, config, context)
            context.column_results[key] = hit
        return hit

    def _candidate_stream(
        self, column_candidates, task: SynthesisTask, start: float, state: Dict
    ):
        """Yield candidate ψ passing the over-approximation check, in order.

        Applies the enumeration-side bounds of the serial loop: stops at
        ``max_table_extractors`` produced candidates and when the wall-clock
        budget runs out while scanning (``state["timed_out"]`` reports which).
        The cost-based stop conditions live in the replay loop, which pulls
        from this stream lazily (serial) or speculatively (parallel).
        """
        config = self.config
        produced = 0
        for combo in self._enumerate_combinations(column_candidates):
            if time.perf_counter() - start > config.timeout_seconds:
                state["timed_out"] = True
                return
            if produced >= config.max_table_extractors:
                return
            table_extractor = TableExtractor(tuple(combo))
            if not self._overapproximates(table_extractor, task.examples):
                continue
            produced += 1
            yield table_extractor

    def _evaluate_candidate(
        self, table_extractor: TableExtractor, predicate_examples
    ) -> Tuple[str, Optional[Predicate], PredicateLearningStats]:
        """Learn and verify one candidate's predicate.

        Returns ``(status, predicate, stats)`` with status ``"ok"`` (learned
        and verified), ``"none"`` (no separating predicate), ``"reject"``
        (verification failed) or ``"memory"`` (intermediate table too large)
        — the exact set of outcomes the serial loop used to branch on inline.
        Deterministic given (examples, candidate, config), which is what the
        parallel stage's byte-identity argument rests on.
        """
        stats = PredicateLearningStats()
        try:
            predicate = learn_predicate(
                predicate_examples,
                table_extractor,
                self.config,
                stats=stats,
                context=self.context if self.config.vectorized else None,
            )
        except MemoryError:
            return ("memory", None, stats)
        if predicate is None:
            return ("none", None, stats)
        program = Program(table_extractor, predicate)
        if not self._check_program(program, predicate_examples):
            return ("reject", None, stats)
        return ("ok", predicate, stats)

    def _parallel_results(self, stream, predicate_examples, workers: int):
        """Evaluate streamed candidates speculatively on a process pool.

        Futures are submitted in enumeration order and yielded in the same
        order, keeping a window of ``2 × workers`` in flight; the replay loop
        consuming this generator therefore sees exactly the sequence the
        serial path would have produced.  Workers are seeded with the
        parent's serialized context (PR 4's wire format), so χi sets and
        universes learned before the fan-out are shared; work left in the
        window when a stop condition fires is cancelled on close.
        """
        import pickle
        from collections import deque
        from concurrent.futures import ProcessPoolExecutor

        from .serialize import serialize_context

        trees = [tree for tree, _ in predicate_examples]
        rows_list = [list(rows) for _, rows in predicate_examples]
        context_payload = (
            serialize_context(self.context) if self.context.trees() else None
        )
        trees_bytes = pickle.dumps(trees)
        window = max(2 * workers, workers + 1)
        pool = ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_candidate_worker,
            initargs=(trees_bytes, rows_list, self.config, context_payload),
        )
        pending = deque()
        try:
            exhausted = False
            while True:
                while not exhausted and len(pending) < window:
                    table_extractor = next(stream, None)
                    if table_extractor is None:
                        exhausted = True
                        break
                    pending.append(
                        (
                            table_extractor,
                            pool.submit(
                                _evaluate_candidate_worker, table_extractor.columns
                            ),
                        )
                    )
                if not pending:
                    return
                table_extractor, future = pending.popleft()
                yield table_extractor, future.result()
        finally:
            for _, future in pending:
                future.cancel()
            pool.shutdown(wait=False, cancel_futures=True)

    def _enumerate_combinations(self, column_candidates: Sequence[Sequence]):
        """Lazily yield combinations of per-column extractors, cheapest first.

        The per-column candidate lists are already sorted by size, so the
        cheapest combination is the vector of first candidates.  A best-first
        search over index vectors (expanding one coordinate at a time) yields
        combinations in non-decreasing total size without materializing the
        full cartesian product, which matters when the product is huge
        (e.g. 24^5 for five columns).
        """
        import heapq

        sizes = [[c.size() for c in candidates] for candidates in column_candidates]
        start = tuple(0 for _ in column_candidates)
        initial_cost = sum(s[0] for s in sizes)
        heap = [(initial_cost, start)]
        seen = {start}
        while heap:
            cost, indices = heapq.heappop(heap)
            yield tuple(
                column_candidates[col][idx] for col, idx in enumerate(indices)
            )
            for col in range(len(indices)):
                nxt = indices[col] + 1
                if nxt >= len(column_candidates[col]):
                    continue
                successor = indices[:col] + (nxt,) + indices[col + 1 :]
                if successor in seen:
                    continue
                seen.add(successor)
                successor_cost = cost - sizes[col][indices[col]] + sizes[col][nxt]
                heapq.heappush(heap, (successor_cost, successor))

    def _overapproximates(
        self, table_extractor: TableExtractor, examples: Sequence[ExamplePair]
    ) -> bool:
        """Check R ⊆ [[ψ]]T for every example — a cheap column-wise test.

        Every value of output column j must be producible by column extractor
        πj; otherwise no filtering predicate can recover the missing rows.
        The vectorized engine answers from cached per-extractor value sets
        (value-aware membership, NaN never matches); the seed path scans.
        """
        from ..dsl.semantics import compare_values
        from ..dsl.ast import Op

        if self.config.vectorized:
            context = self.context
            for example in examples:
                for j, extractor in enumerate(table_extractor.columns):
                    extracted = context.column_data_values(extractor, example.tree)
                    for row in example.rows:
                        value = row[j]
                        if _is_nan(value) or value not in extracted:
                            return False
            return True

        for example in examples:
            for j, extractor in enumerate(table_extractor.columns):
                values = [row[j] for row in example.rows]
                extracted = [n.data for n in eval_column_on_tree(extractor, example.tree)]
                for value in values:
                    if not any(compare_values(value, Op.EQ, d) for d in extracted):
                        return False
        return True

    def _check_program(
        self, program: Program, examples: Sequence[Tuple[HDT, Sequence[Row]]]
    ) -> bool:
        """Final verification that the program reproduces every output table.

        The vectorized engine uses hash-based row membership (equivalent to
        the value-aware scan) and the shared column-evaluation cache; the seed
        path defers to :func:`check_program`.
        """
        if not self.config.vectorized:
            return check_program(program, examples)
        context = self.context
        for tree, expected_rows in examples:
            produced = run_program(
                program, tree, cache=context.facts(tree).eval_cache
            )
            produced_set = set(produced)
            expected_set = set(map(tuple, expected_rows))
            # A row containing NaN can never be matched under compare_values
            # (NaN equals nothing), so its mere presence on either side fails
            # the check — guarding against set membership's object-identity
            # shortcut treating a shared NaN object as equal.
            if any(
                any(_is_nan(value) for value in row)
                for rows in (expected_set, produced_set)
                for row in rows
            ):
                return False
            if any(row not in produced_set for row in expected_set):
                return False
            if any(row not in expected_set for row in produced_set):
                return False
        return True


def synthesize(
    examples: Sequence[Tuple[HDT, Sequence[Row]]],
    config: SynthesisConfig = DEFAULT_CONFIG,
    *,
    name: str = "task",
) -> SynthesisResult:
    """Convenience wrapper: synthesize from ``(tree, rows)`` pairs.

    Examples
    --------
    >>> from repro.hdt import build_tree
    >>> tree = build_tree({"user": [{"name": "Ann"}, {"name": "Bob"}]})
    >>> result = synthesize([(tree, [("Ann",), ("Bob",)])])
    >>> result.success
    True
    >>> result.describe()
    'λτ. filter((λs.descendants(s, name)){root(τ)}, λt. true)'
    """
    task = SynthesisTask(
        examples=[ExamplePair(tree, [tuple(r) for r in rows]) for tree, rows in examples],
        name=name,
    )
    return Synthesizer(config).synthesize(task)
