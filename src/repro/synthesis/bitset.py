"""Bitset primitives for the vectorized synthesis engine.

The predicate learner represents truth vectors over the example tuple space as
arbitrary-precision python integers: bit *i* of a predicate's mask says whether
tuple *i* satisfies it.  Boolean algebra over whole columns of the truth table
then becomes single ``&``/``|``/``^`` machine-word operations, which is what
makes the bitmatrix pipeline fast.

``int.bit_count`` only exists on python ≥ 3.10; :func:`popcount` falls back to
``bin(x).count("1")`` on 3.9 (the oldest interpreter in CI).
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

if hasattr(int, "bit_count"):

    def popcount(mask: int) -> int:
        """Number of set bits in a non-negative integer."""
        return mask.bit_count()

else:  # pragma: no cover - python < 3.10

    def popcount(mask: int) -> int:
        """Number of set bits in a non-negative integer."""
        return bin(mask).count("1")


def mask_from_bits(bits: Sequence[bool]) -> int:
    """Pack an iterable of booleans into a mask (element 0 → bit 0)."""
    mask = 0
    for index, bit in enumerate(bits):
        if bit:
            mask |= 1 << index
    return mask


def mask_from_indices(indices) -> int:
    """A mask with exactly the given bit positions set."""
    mask = 0
    for index in indices:
        mask |= 1 << index
    return mask


#: positions of set bits within one byte, for the linear-time extraction below
_BYTE_BITS = tuple(
    tuple(b for b in range(8) if (byte >> b) & 1) for byte in range(256)
)


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the positions of set bits in ascending order.

    Isolating the lowest bit with ``mask & -mask`` touches every word of the
    integer, so looping it over a k-bit mask is O(k²/64) — quadratic in the
    tuple space.  Large masks are therefore exported to bytes once (O(k)) and
    scanned with a per-byte position table, keeping whole-mask iteration
    linear; tiny masks keep the allocation-free low-bit loop.
    """
    if mask.bit_length() <= 64:
        while mask:
            low = mask & -mask
            yield low.bit_length() - 1
            mask ^= low
        return
    base = 0
    for byte in mask.to_bytes((mask.bit_length() + 7) // 8, "little"):
        if byte:
            for offset in _BYTE_BITS[byte]:
                yield base + offset
        base += 8


def bits_to_set(mask: int) -> set:
    """The set of positions of set bits."""
    return set(iter_bits(mask))


def full_mask(width: int) -> int:
    """A mask with bits ``0 .. width-1`` set."""
    return (1 << width) - 1


def mask_to_bools(mask: int, width: int) -> List[bool]:
    """Unpack the low ``width`` bits into a list of booleans."""
    return [bool((mask >> index) & 1) for index in range(width)]


def compose_mask(uids, uid_masks) -> int:
    """Recompose a predicate's tuple mask from its satisfying node uids.

    ``uid_masks`` maps a column's node uids to tuple bitmasks (the
    :class:`~repro.synthesis.predicate_matrix.TupleSpace` tables); the
    predicate holds on exactly the tuples whose column entry is one of
    ``uids``.  Separating the *decision* (which nodes satisfy the predicate —
    cacheable across candidate table extractors) from the *expansion* (which
    tuple positions those nodes occupy — specific to one tuple space) is what
    lets a new candidate reuse every predicate evaluation whose column nodes
    did not change.
    """
    mask = 0
    for uid in uids:
        mask |= uid_masks[uid]
    return mask


def compose_pair_mask(pairs, left_masks, right_masks) -> int:
    """Recompose a two-column predicate's tuple mask from satisfying uid pairs.

    A tuple satisfies the predicate iff its (left column, right column) node
    pair is one of ``pairs``; the tuple positions holding that pair are the
    intersection of the two per-column bitmasks.
    """
    mask = 0
    for left, right in pairs:
        mask |= left_masks[left] & right_masks[right]
    return mask
