"""The synthesis core: column learning, predicate learning, top-level search."""

from .baseline import BaselineSynthesizer, enumerate_column_extractors
from .column_learner import (
    ColumnLearningError,
    construct_dfa,
    extractor_to_word,
    learn_column_extractors,
    learn_column_extractors_eager,
    learn_column_extractors_lazy,
    word_to_extractor,
)
from .config import DEFAULT_CONFIG, SynthesisConfig
from .context import SynthesisContext
from .predicate_learner import (
    PredicateLearningStats,
    check_program,
    classify_tuples,
    classify_tuples_fast,
    learn_predicate,
    row_in_table,
    rows_equal,
)
from .predicate_matrix import build_predicate_masks, distinguishing_pairs_mask
from .predicate_universe import construct_predicate_universe, valid_node_extractors
from .qm import minimize, minimize_bits, prime_implicants, prime_implicants_bits
from .serialize import (
    config_fingerprint,
    config_from_json,
    config_to_json,
    context_dumps,
    context_loads,
    deserialize_context,
    serialize_context,
)
from .set_cover import (
    CoverError,
    branch_and_bound_cover,
    branch_and_bound_cover_bits,
    greedy_cover,
    greedy_cover_bits,
    ilp_cover,
    ilp_cover_bits,
    minimum_cover,
    minimum_cover_bits,
)
from .synthesizer import (
    ExamplePair,
    SynthesisError,
    SynthesisResult,
    SynthesisTask,
    Synthesizer,
    synthesize,
)

__all__ = [
    "BaselineSynthesizer",
    "enumerate_column_extractors",
    "ColumnLearningError",
    "construct_dfa",
    "extractor_to_word",
    "learn_column_extractors",
    "learn_column_extractors_eager",
    "learn_column_extractors_lazy",
    "word_to_extractor",
    "DEFAULT_CONFIG",
    "SynthesisConfig",
    "SynthesisContext",
    "PredicateLearningStats",
    "check_program",
    "classify_tuples",
    "classify_tuples_fast",
    "learn_predicate",
    "row_in_table",
    "rows_equal",
    "build_predicate_masks",
    "distinguishing_pairs_mask",
    "construct_predicate_universe",
    "valid_node_extractors",
    "config_fingerprint",
    "config_from_json",
    "config_to_json",
    "context_dumps",
    "context_loads",
    "deserialize_context",
    "serialize_context",
    "minimize",
    "minimize_bits",
    "prime_implicants",
    "prime_implicants_bits",
    "CoverError",
    "branch_and_bound_cover",
    "branch_and_bound_cover_bits",
    "greedy_cover",
    "greedy_cover_bits",
    "ilp_cover",
    "ilp_cover_bits",
    "minimum_cover",
    "minimum_cover_bits",
    "ExamplePair",
    "SynthesisError",
    "SynthesisResult",
    "SynthesisTask",
    "Synthesizer",
    "synthesize",
]
