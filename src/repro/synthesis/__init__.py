"""The synthesis core: column learning, predicate learning, top-level search."""

from .baseline import BaselineSynthesizer, enumerate_column_extractors
from .column_learner import (
    ColumnLearningError,
    construct_dfa,
    extractor_to_word,
    learn_column_extractors,
    word_to_extractor,
)
from .config import DEFAULT_CONFIG, SynthesisConfig
from .predicate_learner import (
    PredicateLearningStats,
    check_program,
    classify_tuples,
    learn_predicate,
    row_in_table,
    rows_equal,
)
from .predicate_universe import construct_predicate_universe, valid_node_extractors
from .qm import minimize, prime_implicants
from .set_cover import (
    CoverError,
    branch_and_bound_cover,
    greedy_cover,
    ilp_cover,
    minimum_cover,
)
from .synthesizer import (
    ExamplePair,
    SynthesisError,
    SynthesisResult,
    SynthesisTask,
    Synthesizer,
    synthesize,
)

__all__ = [
    "BaselineSynthesizer",
    "enumerate_column_extractors",
    "ColumnLearningError",
    "construct_dfa",
    "extractor_to_word",
    "learn_column_extractors",
    "word_to_extractor",
    "DEFAULT_CONFIG",
    "SynthesisConfig",
    "PredicateLearningStats",
    "check_program",
    "classify_tuples",
    "learn_predicate",
    "row_in_table",
    "rows_equal",
    "construct_predicate_universe",
    "valid_node_extractors",
    "minimize",
    "prime_implicants",
    "CoverError",
    "branch_and_bound_cover",
    "greedy_cover",
    "ilp_cover",
    "minimum_cover",
    "ExamplePair",
    "SynthesisError",
    "SynthesisResult",
    "SynthesisTask",
    "Synthesizer",
    "synthesize",
]
