"""Construction of the universe of atomic predicates (Figure 10).

Given a candidate table extractor ``ψ = π1 × ... × πk`` and the input-output
examples, the predicate learner needs a finite universe Φ of atomic predicates
to select from.  Following Figure 10:

* rules (1)-(3) define the *valid node extractors* χi for column i: chains of
  ``parent`` / ``child(tag, pos)`` steps that never evaluate to ⊥ on any node
  extracted for column i in any example;
* rule (4) creates constant-comparison predicates ``((λn.ϕ) t[i]) ⊙ c`` where
  ``c`` is a constant occurring in some input document;
* rule (5) creates node-comparison predicates
  ``((λn.ϕ1) t[i]) ⊙ ((λn.ϕ2) t[j])`` for pairs of columns.

The universe is bounded by the knobs in :class:`SynthesisConfig`
(node-extractor depth, operator sets, constant count, total size).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from ..dsl.ast import (
    Child,
    ColumnExtractor,
    CompareConst,
    CompareNodes,
    NodeExtractor,
    NodeVar,
    Op,
    Parent,
    Predicate,
)
from ..dsl.semantics import eval_column_on_tree, eval_node_extractor
from ..hdt.node import Node, Scalar
from ..hdt.tree import HDT
from .config import DEFAULT_CONFIG, SynthesisConfig


def valid_node_extractors(
    column_nodes_per_example: Sequence[Sequence[Node]],
    config: SynthesisConfig = DEFAULT_CONFIG,
    context=None,
) -> List[NodeExtractor]:
    """Compute the set χi of node extractors valid for one column.

    A node extractor is *valid* (rules (1)-(3) of Figure 10) if evaluating it on
    every node extracted for this column, in every example, never yields ⊥.
    The search grows extractors breadth-first up to
    ``config.max_node_extractor_depth`` steps and is capped at
    ``config.max_node_extractors_per_column`` results.  When a
    :class:`~repro.synthesis.context.SynthesisContext` is provided, extractor
    applications go through its shared ``(ϕ, node) → target`` memo.
    """
    evaluate = context.target_of if context is not None else eval_node_extractor
    all_nodes: List[Node] = [n for nodes in column_nodes_per_example for n in nodes]
    results: List[NodeExtractor] = [NodeVar()]
    frontier: List[NodeExtractor] = [NodeVar()]
    seen: Set[NodeExtractor] = {NodeVar()}

    for _ in range(config.max_node_extractor_depth):
        next_frontier: List[NodeExtractor] = []
        for base in frontier:
            if len(results) >= config.max_node_extractors_per_column:
                return results
            # Where does `base` land for each column node?  Candidate child
            # steps only make sense for tags/positions present at those nodes.
            landing = [evaluate(base, n) for n in all_nodes]
            if any(n is None for n in landing):
                continue

            candidates: List[NodeExtractor] = []
            if all(n.parent is not None for n in landing):
                candidates.append(Parent(base))
            child_keys: Set[Tuple[str, int]] = set()
            if landing:
                first = landing[0]
                child_keys = {(c.tag, c.pos) for c in first.children}
                for node in landing[1:]:
                    child_keys &= {(c.tag, c.pos) for c in node.children}
            for tag, pos in sorted(child_keys):
                candidates.append(Child(base, tag, pos))

            for candidate in candidates:
                if candidate in seen:
                    continue
                if all(evaluate(candidate, n) is not None for n in all_nodes):
                    seen.add(candidate)
                    results.append(candidate)
                    next_frontier.append(candidate)
                    if len(results) >= config.max_node_extractors_per_column:
                        return results
        frontier = next_frontier
        if not frontier:
            break
    return results


def _dedupe_by_signature(
    extractors: List[NodeExtractor], column_nodes: Sequence[Node], context=None
) -> List[NodeExtractor]:
    """Collapse node extractors that land on identical targets for every column node.

    Two extractors with the same target signature generate predicates with
    identical truth values on every tuple, so only the syntactically smallest
    representative is kept.  This prunes the quadratic node-pair universe
    substantially (distinct behaviours, not distinct syntax, are what matter
    for classification).
    """
    evaluate = context.target_of if context is not None else eval_node_extractor
    seen: Dict[Tuple, NodeExtractor] = {}
    order: List[NodeExtractor] = []
    for extractor in extractors:
        signature = tuple(
            evaluate(extractor, node).uid  # type: ignore[union-attr]
            for node in column_nodes
        )
        previous = seen.get(signature)
        if previous is None:
            seen[signature] = extractor
            order.append(extractor)
        elif extractor.size() < previous.size():
            order[order.index(previous)] = extractor
            seen[signature] = extractor
    return order


def _collect_constants(
    trees: Sequence[HDT], config: SynthesisConfig, context=None
) -> List[Scalar]:
    """Constants from the input documents, capped at ``config.max_constants``."""
    seen: Set[Scalar] = set()
    constants: List[Scalar] = []
    for tree in trees:
        tree_constants = (
            context.facts(tree).constants if context is not None else tree.constants()
        )
        for value in tree_constants:
            if value not in seen:
                seen.add(value)
                constants.append(value)
                if len(constants) >= config.max_constants:
                    return constants
    return constants


def _extractor_yields_leaves(
    extractor: NodeExtractor, column_nodes: Sequence[Node], context=None
) -> bool:
    """True if the extractor lands on a leaf for every node of the column."""
    evaluate = context.target_of if context is not None else eval_node_extractor
    for node in column_nodes:
        target = evaluate(extractor, node)
        if target is None or not target.is_leaf():
            return False
    return True


def construct_predicate_universe(
    trees: Sequence[HDT],
    column_extractors: Sequence[ColumnExtractor],
    config: SynthesisConfig = DEFAULT_CONFIG,
    *,
    context=None,
) -> List[Predicate]:
    """Build the universe Φ of atomic predicates for a candidate table extractor.

    Parameters
    ----------
    trees:
        The input HDTs of the examples.
    column_extractors:
        The column extractors π1..πk of the candidate table extractor ψ.
    context:
        Optional :class:`~repro.synthesis.context.SynthesisContext`.  When
        provided (and ``config.candidate_caching`` is on), the per-column
        valid-extractor sets χi and whole universes are cached by the
        columns' *node-list signatures* and shared across the candidate table
        extractors of a column, across output columns and across the tables
        of a multi-table task: the universe is a pure function of which nodes
        each column extracts (predicates embed node extractors and column
        indices, never the column extractors themselves), so syntactically
        different candidates that land on the same nodes reuse it outright.
        Node-extractor applications go through the context's shared memo
        regardless of the caching flag.

    Returns
    -------
    A deduplicated list of atomic predicates, bounded by
    ``config.max_predicate_universe``.
    """
    arity = len(column_extractors)
    caching = context is not None and config.candidate_caching
    columns_key = None
    if caching:
        trees_key = context.trees_key(trees)
        sigs = tuple(
            context.column_signature(extractor, trees)
            for extractor in column_extractors
        )
        columns_key = (trees_key, sigs)
        cached = context.universes.get(columns_key)
        if cached is not None:
            context.count("universe_hits")
            return cached
        context.count("universe_misses")

    # Nodes extracted per column per example (used for validity checks).
    per_column_nodes: List[List[Node]] = []
    per_column_nodes_by_example: List[List[List[Node]]] = []
    for extractor in column_extractors:
        if context is not None:
            per_example = [context.eval_column(extractor, tree) for tree in trees]
        else:
            per_example = [eval_column_on_tree(extractor, tree) for tree in trees]
        per_column_nodes_by_example.append(per_example)
        per_column_nodes.append([n for nodes in per_example for n in nodes])

    chi: List[List[NodeExtractor]] = []
    for i in range(arity):
        if caching:
            chi_key = (trees_key, sigs[i])
            hit = context.chi.get(chi_key)
            if hit is not None:
                context.count("chi_hits")
                chi.append(hit)
                continue
            context.count("chi_misses")
        computed = _dedupe_by_signature(
            valid_node_extractors(per_column_nodes_by_example[i], config, context),
            per_column_nodes[i],
            context,
        )
        if caching:
            context.chi[chi_key] = computed
        chi.append(computed)

    constants = _collect_constants(trees, config, context)
    universe: List[Predicate] = []
    seen: Set[Predicate] = set()

    def add(predicate: Predicate) -> bool:
        if predicate in seen:
            return True
        if len(universe) >= config.max_predicate_universe:
            return False
        seen.add(predicate)
        universe.append(predicate)
        return True

    def build() -> None:
        # Rule (4): constant comparisons.  Only generated for node extractors
        # that land on leaves (internal nodes carry no data, so comparing them
        # with a constant is always false and never useful as a classifier
        # feature).  Ordering comparisons (<, <=, >, >=) are only generated
        # for *numeric* constants: ordering arbitrary strings drawn from the
        # document almost never reflects user intent and inflates the universe.
        ordering_ops = {Op.LT, Op.LE, Op.GT, Op.GE}
        for i in range(arity):
            for extractor in chi[i]:
                if not _extractor_yields_leaves(extractor, per_column_nodes[i], context):
                    continue
                for constant in constants:
                    numeric = isinstance(constant, (int, float)) and not isinstance(constant, bool)
                    for op in sorted(config.constant_ops, key=lambda o: o.value):
                        if op in ordering_ops and not numeric:
                            continue
                        if not add(CompareConst(extractor, i, op, constant)):
                            return

        # Rule (5): node-to-node comparisons between columns i and j.
        for i in range(arity):
            for j in range(i, arity):
                for phi1 in chi[i]:
                    for phi2 in chi[j]:
                        if i == j and phi1 == phi2:
                            continue
                        for op in sorted(config.node_pair_ops, key=lambda o: o.value):
                            if not add(CompareNodes(phi1, i, op, phi2, j)):
                                return

    build()
    if caching:
        context.universes[columns_key] = universe
    return universe
