"""Learning row-filter predicates (Algorithm 3 of the paper).

Given the input-output examples and a candidate table extractor ψ, the learner

1. builds the universe Φ of atomic predicates (Figure 10),
2. labels every tuple of the intermediate table ``[[ψ]]T`` as positive (it
   appears in the output table R) or negative (spurious),
3. selects a minimum subset Φ* of predicates that distinguishes every
   (positive, negative) pair — the 0-1 ILP of Algorithm 4,
4. finds a smallest DNF formula over Φ* consistent with the labels using
   Quine–McCluskey minimization, treating unobserved predicate combinations as
   don't-cares.

The result is a :class:`~repro.dsl.ast.Predicate`, or ``None`` when no
classifier expressible over Φ exists (the caller then tries the next candidate
table extractor).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..dsl.ast import (
    And,
    Not,
    Predicate,
    Program,
    TableExtractor,
    True_,
    conjoin,
    disjoin,
)
from ..dsl.semantics import (
    NodeTuple,
    compare_values,
    eval_node_extractor,
    eval_predicate,
    eval_table,
)
from ..dsl.ast import Op
from ..hdt.node import Scalar
from ..hdt.tree import HDT
from .config import DEFAULT_CONFIG, SynthesisConfig
from .predicate_universe import construct_predicate_universe
from .qm import implicant_to_clause, minimize
from .set_cover import CoverError, minimum_cover

Row = Tuple[Scalar, ...]
Example = Tuple[HDT, Sequence[Row]]


@dataclass
class PredicateLearningStats:
    """Diagnostics collected while learning a predicate (used in reports)."""

    universe_size: int = 0
    distinct_feature_vectors: int = 0
    positive_examples: int = 0
    negative_examples: int = 0
    selected_predicates: int = 0
    dnf_terms: int = 0
    universe_seconds: float = 0.0
    """Wall-clock spent constructing (or fetching) the predicate universe."""
    bitmatrix_seconds: float = 0.0
    """Wall-clock spent building predicate truth masks and the pair instance."""
    cover_seconds: float = 0.0
    """Wall-clock spent in the minimum-cover solver and QM minimization."""


def rows_equal(a: Row, b: Row) -> bool:
    """Value-aware row comparison (numeric 3 equals "3" read from XML text)."""
    if len(a) != len(b):
        return False
    return all(compare_values(x, Op.EQ, y) for x, y in zip(a, b))


def row_in_table(row: Row, table: Sequence[Row]) -> bool:
    """Membership of a row in a table under value-aware equality."""
    return any(rows_equal(row, other) for other in table)


def classify_tuples(
    examples: Sequence[Example],
    table_extractor: TableExtractor,
    *,
    max_rows: Optional[int] = None,
) -> Tuple[List[NodeTuple], List[NodeTuple]]:
    """Split intermediate-table tuples into positive and negative examples.

    Positive tuples are those whose data projection appears in the output
    table of their example; every other tuple is negative (spurious).
    """
    positives: List[NodeTuple] = []
    negatives: List[NodeTuple] = []
    for tree, output_rows in examples:
        intermediate = eval_table(table_extractor, tree)
        if max_rows is not None and len(intermediate) > max_rows:
            raise MemoryError(
                f"intermediate table too large ({len(intermediate)} rows > {max_rows})"
            )
        for node_tuple in intermediate:
            data_row = tuple(node.data for node in node_tuple)
            if row_in_table(data_row, output_rows):
                positives.append(node_tuple)
            else:
                negatives.append(node_tuple)
    return positives, negatives


def _feature_matrix(
    universe: Sequence[Predicate],
    positives: Sequence[NodeTuple],
    negatives: Sequence[NodeTuple],
) -> Tuple[List[Tuple[bool, ...]], List[Tuple[bool, ...]]]:
    """Evaluate every candidate predicate on every example tuple.

    Evaluating the universe naively re-runs every node extractor for every
    tuple; since the tuples of one intermediate table draw their column-i
    entries from a small set of nodes, the extractor applications are heavily
    shared.  We therefore memoize ``(extractor, node) -> target node`` lookups,
    which brings the cost down from
    ``O(|Φ| * |tuples| * extractor_depth)`` tree walks to one walk per distinct
    (extractor, node) pair — the difference between minutes and milliseconds on
    the wider Table 2 tables.
    """
    from ..dsl.ast import CompareConst, CompareNodes

    tuples = list(positives) + list(negatives)
    extractor_cache: Dict[Tuple[int, int], object] = {}

    def target_of(extractor, node):
        key = (id(extractor), node.uid)
        if key not in extractor_cache:
            extractor_cache[key] = eval_node_extractor(extractor, node)
        return extractor_cache[key]

    def evaluate(predicate: Predicate, row: NodeTuple) -> bool:
        if isinstance(predicate, CompareConst):
            if predicate.column >= len(row):
                return False
            target = target_of(predicate.extractor, row[predicate.column])
            if target is None:
                return False
            return compare_values(target.data, predicate.op, predicate.constant)
        if isinstance(predicate, CompareNodes):
            if predicate.left_column >= len(row) or predicate.right_column >= len(row):
                return False
            left = target_of(predicate.left_extractor, row[predicate.left_column])
            right = target_of(predicate.right_extractor, row[predicate.right_column])
            if left is None or right is None:
                return False
            if left.is_leaf() and right.is_leaf():
                return compare_values(left.data, predicate.op, right.data)
            if predicate.op is Op.EQ and not left.is_leaf() and not right.is_leaf():
                return left is right
            return False
        return eval_predicate(predicate, row)

    matrix = [tuple(evaluate(p, t) for p in universe) for t in tuples]
    return matrix[: len(positives)], matrix[len(positives) :]


def _deduplicate_features(
    universe: Sequence[Predicate],
    pos_rows: Sequence[Tuple[bool, ...]],
    neg_rows: Sequence[Tuple[bool, ...]],
) -> List[int]:
    """Keep, per distinct truth-vector, only the simplest predicate.

    Predicates whose truth vector is constant over all example tuples can never
    distinguish a positive from a negative example and are dropped outright.
    """
    by_vector: Dict[Tuple[bool, ...], int] = {}
    order: List[int] = []
    num_pos = len(pos_rows)
    for idx, predicate in enumerate(universe):
        vector = tuple(row[idx] for row in pos_rows) + tuple(row[idx] for row in neg_rows)
        if len(set(vector)) <= 1:
            continue
        previous = by_vector.get(vector)
        if previous is None:
            by_vector[vector] = idx
            order.append(idx)
        else:
            if _predicate_sort_key(predicate) < _predicate_sort_key(universe[previous]):
                by_vector[vector] = idx
                order[order.index(previous)] = idx
    return order


def _predicate_sort_key(predicate: Predicate) -> Tuple:
    from ..dsl.pretty import pretty_predicate

    return (_predicate_complexity(predicate), pretty_predicate(predicate))


def _predicate_complexity(predicate: Predicate) -> int:
    from ..dsl.ast import CompareConst, CompareNodes

    if isinstance(predicate, CompareNodes):
        return predicate.left_extractor.size() + predicate.right_extractor.size()
    if isinstance(predicate, CompareConst):
        return predicate.extractor.size()
    return predicate.size()


def learn_predicate(
    examples: Sequence[Example],
    table_extractor: TableExtractor,
    config: SynthesisConfig = DEFAULT_CONFIG,
    *,
    stats: Optional[PredicateLearningStats] = None,
    context=None,
) -> Optional[Predicate]:
    """Algorithm 3: learn a filtering predicate for a candidate table extractor.

    Returns ``None`` when the positive and negative tuples cannot be separated
    by any boolean combination of predicates in the universe.
    ``config.vectorized`` selects the bitmatrix engine (default) or the seed
    tuple-by-tuple evaluation; both return the same predicate.
    """
    if config.vectorized:
        return _learn_predicate_vectorized(
            examples, table_extractor, config, stats=stats, context=context
        )
    return _learn_predicate_seed(examples, table_extractor, config, stats=stats)


def _learn_predicate_seed(
    examples: Sequence[Example],
    table_extractor: TableExtractor,
    config: SynthesisConfig = DEFAULT_CONFIG,
    *,
    stats: Optional[PredicateLearningStats] = None,
) -> Optional[Predicate]:
    """The seed algorithm: per-tuple feature matrix, list-based solvers."""
    trees = [tree for tree, _ in examples]

    positives, negatives = classify_tuples(
        examples, table_extractor, max_rows=config.max_intermediate_rows
    )
    if stats is not None:
        stats.positive_examples = len(positives)
        stats.negative_examples = len(negatives)

    if not positives:
        # The output tables are all empty only if the user supplied empty
        # examples; nothing needs to be kept.
        from ..dsl.ast import False_

        return False_() if negatives else True_()
    if not negatives:
        return True_()

    universe = construct_predicate_universe(trees, table_extractor.columns, config)
    if stats is not None:
        stats.universe_size = len(universe)
    if not universe:
        return None

    pos_rows, neg_rows = _feature_matrix(universe, positives, negatives)
    kept_indices = _deduplicate_features(universe, pos_rows, neg_rows)
    if stats is not None:
        stats.distinct_feature_vectors = len(kept_indices)
    if not kept_indices:
        return None

    # ------------------------------------------------------------------ ILP
    # Elements: (positive, negative) pairs; sets: pairs distinguished by each
    # surviving predicate (Algorithm 4).
    num_neg = len(neg_rows)
    cover_sets: List[Set[int]] = []
    for idx in kept_indices:
        distinguished: Set[int] = set()
        for p, pos_row in enumerate(pos_rows):
            for n, neg_row in enumerate(neg_rows):
                if pos_row[idx] != neg_row[idx]:
                    distinguished.add(p * num_neg + n)
        cover_sets.append(distinguished)
    universe_pairs = set(range(len(pos_rows) * num_neg))

    # Among equally-minimal covers, prefer predicates that hold on the
    # positive tuples (false-on-positive counts as the per-set cost): they
    # render as positive literals in the final DNF instead of negated ones.
    polarity_costs = [
        sum(1 for pos_row in pos_rows if not pos_row[idx]) for idx in kept_indices
    ]
    try:
        chosen_positions = minimum_cover(
            cover_sets,
            universe_pairs,
            strategy=config.cover_strategy,
            exact_limit=config.exact_cover_limit,
            costs=polarity_costs,
        )
    except CoverError:
        return None

    selected_indices = [kept_indices[i] for i in sorted(set(chosen_positions))]
    selected = [universe[i] for i in selected_indices]
    if stats is not None:
        stats.selected_predicates = len(selected)

    # --------------------------------------------------------- QM minimization
    num_vars = len(selected)
    pos_assignments = {
        tuple(int(pos_rows[p][i]) for i in selected_indices) for p in range(len(pos_rows))
    }
    neg_assignments = {
        tuple(int(neg_rows[n][i]) for i in selected_indices) for n in range(len(neg_rows))
    }
    if pos_assignments & neg_assignments:
        # The minimum cover guarantees this cannot happen; guard anyway.
        return None

    from .qm import bits_to_minterm

    minterms = sorted(bits_to_minterm(bits) for bits in pos_assignments)
    off_terms = {bits_to_minterm(bits) for bits in neg_assignments}
    if num_vars <= 12:
        all_terms = set(range(1 << num_vars))
        dont_cares = sorted(all_terms - set(minterms) - off_terms)
    else:  # pragma: no cover - extremely large selections
        dont_cares = []

    implicants = minimize(
        num_vars, minterms, dont_cares, cover_strategy=config.cover_strategy
    )
    if stats is not None:
        stats.dnf_terms = len(implicants)

    terms: List[Predicate] = []
    for implicant in implicants:
        literals: List[Predicate] = []
        for var_index, positive in implicant_to_clause(implicant):
            literal = selected[var_index]
            literals.append(literal if positive else Not(literal))
        terms.append(conjoin(literals))
    formula = disjoin(terms) if terms else True_()

    # Final sanity check: the classifier must separate the labelled tuples.
    if not all(eval_predicate(formula, t) for t in positives):
        return None
    if any(eval_predicate(formula, t) for t in negatives):
        return None
    return formula


def classify_tuples_fast(
    examples: Sequence[Example],
    table_extractor: TableExtractor,
    *,
    max_rows: Optional[int] = None,
    context=None,
) -> Tuple[List[NodeTuple], List[NodeTuple]]:
    """Hash-based twin of :func:`classify_tuples` (same tuples, same order).

    Value-aware row equality coincides with python tuple equality (numeric
    cross-type equality included) for every scalar except NaN: ``set``
    membership short-circuits on object *identity*, so a NaN object shared
    between the document and an output row would match even though
    ``compare_values`` says NaN equals nothing.  Output rows containing NaN
    are therefore dropped from the hash set up front — they can never match a
    document row — after which membership is one exact set lookup instead of
    a scan.  Column evaluations go through the shared per-tree cache when a
    context is provided.
    """
    from .context import SynthesisContext, _is_nan

    if context is None:
        context = SynthesisContext()
    positives: List[NodeTuple] = []
    negatives: List[NodeTuple] = []
    from itertools import product as _product

    for tree, output_rows in examples:
        columns = [context.eval_column(col, tree) for col in table_extractor.columns]
        total = 1
        for column in columns:
            total *= len(column)
        if max_rows is not None and total > max_rows:
            raise MemoryError(
                f"intermediate table too large ({total} rows > {max_rows})"
            )
        expected = {
            row
            for row in map(tuple, output_rows)
            if not any(_is_nan(value) for value in row)
        }
        for node_tuple in _product(*columns):
            data_row = tuple(node.data for node in node_tuple)
            if data_row in expected:
                positives.append(node_tuple)
            else:
                negatives.append(node_tuple)
    return positives, negatives


def _learn_predicate_vectorized(
    examples: Sequence[Example],
    table_extractor: TableExtractor,
    config: SynthesisConfig = DEFAULT_CONFIG,
    *,
    stats: Optional[PredicateLearningStats] = None,
    context=None,
) -> Optional[Predicate]:
    """The bitmatrix engine: identical decisions, bitset representation.

    Every stage of Algorithm 3 runs on integer bitmasks over the example tuple
    space: the universe is evaluated once per distinct column node
    (:mod:`repro.synthesis.predicate_matrix`), feature deduplication compares
    mask integers, the Algorithm 4 cover instance packs (positive, negative)
    pairs into bits, and Quine–McCluskey minimizes over packed minterms.  The
    solvers make the same tie-break choices as their list-based counterparts,
    so the returned predicate is byte-identical to the seed learner's.
    """
    from .bitset import full_mask, popcount
    from .context import SynthesisContext
    from .predicate_matrix import (
        build_predicate_masks,
        distinguishing_pairs_mask,
        dnf_mask,
    )
    from .qm import minimize_bits
    from .set_cover import minimum_cover_bits

    if context is None:
        context = SynthesisContext()
    trees = [tree for tree, _ in examples]

    positives, negatives = classify_tuples_fast(
        examples,
        table_extractor,
        max_rows=config.max_intermediate_rows,
        context=context,
    )
    if stats is not None:
        stats.positive_examples = len(positives)
        stats.negative_examples = len(negatives)

    if not positives:
        from ..dsl.ast import False_

        return False_() if negatives else True_()
    if not negatives:
        return True_()

    import time as _time

    phase_start = _time.perf_counter()
    universe = construct_predicate_universe(
        trees, table_extractor.columns, config, context=context
    )
    if stats is not None:
        stats.universe_size = len(universe)
        stats.universe_seconds = _time.perf_counter() - phase_start
    if not universe:
        return None

    arity = len(table_extractor.columns)
    tuples = positives + negatives
    num_pos, num_neg = len(positives), len(negatives)
    num_tuples = num_pos + num_neg
    tuples_full = full_mask(num_tuples)

    phase_start = _time.perf_counter()
    masks = build_predicate_masks(
        universe, tuples, arity, context, cache=config.candidate_caching
    )

    # Feature deduplication: constant masks can never split a (positive,
    # negative) pair; equal masks keep only the simplest predicate.
    by_mask: Dict[int, int] = {}
    kept_indices: List[int] = []
    for idx, predicate in enumerate(universe):
        mask = masks[idx]
        if mask == 0 or mask == tuples_full:
            continue
        previous = by_mask.get(mask)
        if previous is None:
            by_mask[mask] = idx
            kept_indices.append(idx)
        elif _predicate_sort_key(predicate) < _predicate_sort_key(universe[previous]):
            kept_indices[kept_indices.index(previous)] = idx
            by_mask[mask] = idx
    if stats is not None:
        stats.distinct_feature_vectors = len(kept_indices)
    if not kept_indices:
        return None

    # ------------------------------------------------------------------ ILP
    # Algorithm 4 as a bitmask cover: element p*num_neg+n is pair (p, n).
    pair_masks = [
        distinguishing_pairs_mask(masks[idx], num_pos, num_neg) for idx in kept_indices
    ]
    pair_universe = full_mask(num_pos * num_neg)
    if stats is not None:
        stats.bitmatrix_seconds = _time.perf_counter() - phase_start
    phase_start = _time.perf_counter()
    # Same polarity preference as the seed path: positives occupy the low
    # ``num_pos`` bits of every truth mask, so the false-on-positive count is
    # one popcount per kept predicate.
    pos_mask = full_mask(num_pos)
    polarity_costs = [
        num_pos - popcount(masks[idx] & pos_mask) for idx in kept_indices
    ]
    try:
        chosen_positions = minimum_cover_bits(
            pair_masks,
            pair_universe,
            strategy=config.cover_strategy,
            exact_limit=config.exact_cover_limit,
            costs=polarity_costs,
        )
    except CoverError:
        if stats is not None:
            stats.cover_seconds = _time.perf_counter() - phase_start
        return None

    selected_indices = [kept_indices[i] for i in sorted(set(chosen_positions))]
    selected = [universe[i] for i in selected_indices]
    selected_masks = [masks[i] for i in selected_indices]
    if stats is not None:
        stats.selected_predicates = len(selected)

    # --------------------------------------------------------- QM minimization
    num_vars = len(selected)
    # Minterm of tuple t: predicate k contributes bit (num_vars-1-k) — the
    # MSB-first packing the seed's bits_to_minterm uses.
    from .bitset import iter_bits

    minterms_of: List[int] = [0] * num_tuples
    for k, mask in enumerate(selected_masks):
        weight = 1 << (num_vars - 1 - k)
        for position in iter_bits(mask):
            minterms_of[position] |= weight
    pos_assignments = set(minterms_of[:num_pos])
    neg_assignments = set(minterms_of[num_pos:])
    if pos_assignments & neg_assignments:
        # The minimum cover guarantees this cannot happen; guard anyway.
        return None

    minterms = sorted(pos_assignments)
    if num_vars <= 12:
        all_terms = set(range(1 << num_vars))
        dont_cares = sorted(all_terms - pos_assignments - neg_assignments)
    else:  # pragma: no cover - extremely large selections
        dont_cares = []

    implicants = minimize_bits(
        num_vars, minterms, dont_cares, cover_strategy=config.cover_strategy
    )
    if stats is not None:
        stats.dnf_terms = len(implicants)
        stats.cover_seconds = _time.perf_counter() - phase_start

    clauses = [implicant_to_clause(implicant) for implicant in implicants]
    terms: List[Predicate] = []
    for clause in clauses:
        literals: List[Predicate] = []
        for var_index, positive in clause:
            literal = selected[var_index]
            literals.append(literal if positive else Not(literal))
        terms.append(conjoin(literals))
    formula = disjoin(terms) if terms else True_()

    # Final sanity check, on the masks: the classifier must accept every
    # positive and reject every negative.
    formula_mask = dnf_mask(clauses, selected_masks, tuples_full)
    pos_full = full_mask(num_pos)
    if formula_mask & pos_full != pos_full:
        return None
    if formula_mask >> num_pos:
        return None
    return formula


def check_program(
    program: Program, examples: Sequence[Example]
) -> bool:
    """Verify that a program reproduces every output table exactly (as a set)."""
    from ..dsl.semantics import run_program

    for tree, expected_rows in examples:
        produced = run_program(program, tree)
        for row in expected_rows:
            if not row_in_table(row, produced):
                return False
        for row in produced:
            if not row_in_table(row, expected_rows):
                return False
    return True
