"""Learning column extraction programs with deterministic finite automata.

This module implements Algorithm 2 and the DFA construction rules of Figure 9:

* :func:`construct_dfa` builds, for a single (tree, column) example, a DFA whose
  states are *sets of HDT nodes* reachable from ``{root}`` by applying DSL
  operators, whose alphabet symbols are the instantiated operators
  ``children_tag`` / ``pchildren_tag,pos`` / ``descendants_tag``, and whose
  accepting states are exactly the node sets that cover the target column
  (rule (5): ``s ⊇ column(R, i)``).
* :func:`learn_column_extractors` intersects the per-example DFAs and
  enumerates accepted words shortest-first, converting each word into a column
  extractor AST.

A word ``(f1, f2, ..., fm)`` corresponds to the extractor
``fm(... f2(f1(s)) ...)`` applied to ``{root(τ)}``.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..automata.dfa import DFA, intersect_all
from ..dsl.ast import Children, ColumnExtractor, Descendants, PChildren, Var
from ..dsl.semantics import compare_values, _dedupe
from ..hdt.node import Node, Scalar
from ..hdt.tree import HDT
from .config import DEFAULT_CONFIG, SynthesisConfig
from ..dsl.ast import Op

# Alphabet symbols.  Using plain tuples keeps them hashable and comparable.
CHILDREN = "children"
PCHILDREN = "pchildren"
DESCENDANTS = "descendants"

Symbol = Tuple


class ColumnLearningError(Exception):
    """Raised when no column extractor consistent with the examples exists."""


def _alphabet_for_tree(tree: HDT) -> List[Symbol]:
    """All operator symbols instantiated with tags/positions present in the tree."""
    symbols: List[Symbol] = []
    tags = tree.tags()
    for tag in tags:
        symbols.append((CHILDREN, tag))
        symbols.append((DESCENDANTS, tag))
    for tag in tags:
        for pos in tree.positions_for_tag(tag):
            symbols.append((PCHILDREN, tag, pos))
    return symbols


def _apply_symbol(symbol: Symbol, nodes: Sequence[Node]) -> List[Node]:
    """Apply one instantiated operator to an ordered set of nodes."""
    kind = symbol[0]
    if kind == CHILDREN:
        tag = symbol[1]
        return _dedupe(c for n in nodes for c in n.children_with_tag(tag))
    if kind == PCHILDREN:
        tag, pos = symbol[1], symbol[2]
        out: List[Node] = []
        for n in nodes:
            child = n.child_with(tag, pos)
            if child is not None:
                out.append(child)
        return _dedupe(out)
    if kind == DESCENDANTS:
        tag = symbol[1]
        return _dedupe(d for n in nodes for d in n.descendants_with_tag(tag))
    raise ValueError(f"unknown symbol kind: {kind!r}")


def _covers_column(nodes: Sequence[Node], column_values: Sequence[Scalar]) -> bool:
    """Rule (5): does the node set cover every value of the output column?"""
    for value in column_values:
        if not any(compare_values(node.data, Op.EQ, value) for node in nodes):
            return False
    return True


def construct_dfa(
    tree: HDT,
    column_values: Sequence[Scalar],
    config: SynthesisConfig = DEFAULT_CONFIG,
) -> DFA:
    """Build the DFA of Figure 9 for one (tree, column) example.

    States are frozensets of node uids; the uid → node mapping is recovered
    through the tree.  Exploration is breadth-first from ``{root}`` and bounded
    by ``config.max_dfa_states`` and ``config.max_column_program_length``.
    Transitions whose result set is empty are pruned (an empty set can never
    cover a non-empty column, and keeping them would blow up the automaton).
    """
    alphabet = _alphabet_for_tree(tree)
    uid_to_node = {n.uid: n for n in tree.nodes()}

    initial: FrozenSet[int] = frozenset({tree.root.uid})
    states: Set[FrozenSet[int]] = {initial}
    transitions: Dict[Tuple[FrozenSet[int], Symbol], FrozenSet[int]] = {}
    accepting: Set[FrozenSet[int]] = set()

    def nodes_of(state: FrozenSet[int]) -> List[Node]:
        return sorted((uid_to_node[uid] for uid in state), key=lambda n: n.uid)

    if _covers_column(nodes_of(initial), column_values):
        accepting.add(initial)

    frontier: deque = deque([(initial, 0)])
    while frontier:
        state, depth = frontier.popleft()
        if depth >= config.max_column_program_length:
            continue
        current_nodes = nodes_of(state)
        for symbol in alphabet:
            result = _apply_symbol(symbol, current_nodes)
            if not result:
                continue
            new_state = frozenset(n.uid for n in result)
            if new_state not in states:
                if len(states) >= config.max_dfa_states:
                    continue
                states.add(new_state)
                if _covers_column(result, column_values):
                    accepting.add(new_state)
                frontier.append((new_state, depth + 1))
            transitions[(state, symbol)] = new_state

    dfa = DFA(
        states=states,
        alphabet=set(alphabet),
        transitions=transitions,
        initial=initial,
        accepting=accepting,
    )
    return dfa.prune()


def word_to_extractor(word: Sequence[Symbol]) -> ColumnExtractor:
    """Convert a DFA word into the corresponding column extractor AST."""
    extractor: ColumnExtractor = Var()
    for symbol in word:
        kind = symbol[0]
        if kind == CHILDREN:
            extractor = Children(extractor, symbol[1])
        elif kind == PCHILDREN:
            extractor = PChildren(extractor, symbol[1], symbol[2])
        elif kind == DESCENDANTS:
            extractor = Descendants(extractor, symbol[1])
        else:
            raise ValueError(f"unknown symbol kind: {kind!r}")
    return extractor


def extractor_to_word(extractor: ColumnExtractor) -> Tuple[Symbol, ...]:
    """Inverse of :func:`word_to_extractor` (useful for tests and debugging)."""
    symbols: List[Symbol] = []
    current = extractor
    while not isinstance(current, Var):
        if isinstance(current, Children):
            symbols.append((CHILDREN, current.tag))
        elif isinstance(current, PChildren):
            symbols.append((PCHILDREN, current.tag, current.pos))
        elif isinstance(current, Descendants):
            symbols.append((DESCENDANTS, current.tag))
        else:
            raise ValueError(f"unknown column extractor: {current!r}")
        current = current.source
    symbols.reverse()
    return tuple(symbols)


def learn_column_extractors(
    examples: Sequence[Tuple[HDT, Sequence[Scalar]]],
    config: SynthesisConfig = DEFAULT_CONFIG,
) -> List[ColumnExtractor]:
    """Algorithm 2: learn the set of column extractors consistent with all examples.

    Parameters
    ----------
    examples:
        A list of ``(tree, column_values)`` pairs — one entry per input-output
        example, where ``column_values`` is the i-th column of the output table.

    Returns
    -------
    A list of column extractor ASTs, ordered from simplest (shortest) to most
    complex, at most ``config.max_column_programs`` long.

    Raises
    ------
    ColumnLearningError
        If no column extractor consistent with every example exists within the
        configured bounds.
    """
    if not examples:
        raise ValueError("at least one example is required")

    automata = [construct_dfa(tree, column, config) for tree, column in examples]
    combined = intersect_all(automata)
    if combined.is_empty():
        raise ColumnLearningError(
            "no column extraction program is consistent with all examples"
        )
    words = combined.enumerate_words(
        max_length=config.max_column_program_length,
        max_words=config.max_column_programs,
    )
    if not words:
        raise ColumnLearningError(
            "no column extraction program found within the length bound"
        )
    extractors = [word_to_extractor(word) for word in words]
    extractors.sort(key=lambda e: (e.size(), repr(e)))
    return extractors
