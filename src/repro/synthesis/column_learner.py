"""Learning column extraction programs with deterministic finite automata.

This module implements Algorithm 2 and the DFA construction rules of Figure 9
in two interchangeable ways:

* the *eager* seed algorithm — :func:`construct_dfa` builds, for a single
  (tree, column) example, a DFA whose states are *sets of HDT nodes* reachable
  from ``{root}`` by applying DSL operators, whose alphabet symbols are the
  instantiated operators ``children_tag`` / ``pchildren_tag,pos`` /
  ``descendants_tag``, and whose accepting states are exactly the node sets
  that cover the target column (rule (5): ``s ⊇ column(R, i)``);
  :func:`learn_column_extractors_eager` intersects the per-example DFAs and
  enumerates accepted words shortest-first;
* the *lazy* vectorized engine — :class:`_LazyExampleDFA` exposes each example
  as an on-demand automaton (states are interned node-set ids, transitions are
  computed from the tree's :class:`~repro.hdt.tree.TagIndex` only when the
  product enumeration asks for them), and
  :func:`repro.automata.dfa.enumerate_product_words` walks the intersection
  without ever materializing it.  The lazy engine reports the identical word
  list (same words, same order) as the eager one whenever the
  ``config.max_dfa_states`` safety cap does not bind — under the cap the two
  engines admit states in different orders (eager: per-example BFS with a
  per-call budget; lazy: product-demand order with a per-tree budget shared
  across columns), so cap-bound searches are best-effort in both and may
  differ.  The evaluation benchmarks stay far below the default cap.

:func:`learn_column_extractors` dispatches on ``config.vectorized``.
A word ``(f1, f2, ..., fm)`` corresponds to the extractor
``fm(... f2(f1(s)) ...)`` applied to ``{root(τ)}``.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..automata.dfa import DFA, enumerate_product_words, intersect_all
from ..dsl.ast import Children, ColumnExtractor, Descendants, PChildren, Var
from ..dsl.semantics import compare_values, _dedupe
from ..hdt.node import Node, Scalar
from ..hdt.tree import HDT
from .config import DEFAULT_CONFIG, SynthesisConfig
from .context import SynthesisContext
from ..dsl.ast import Op

# Alphabet symbols.  Using plain tuples keeps them hashable and comparable.
CHILDREN = "children"
PCHILDREN = "pchildren"
DESCENDANTS = "descendants"

Symbol = Tuple


class ColumnLearningError(Exception):
    """Raised when no column extractor consistent with the examples exists."""


def _alphabet_for_tree(tree: HDT) -> List[Symbol]:
    """All operator symbols instantiated with tags/positions present in the tree."""
    symbols: List[Symbol] = []
    tags = tree.tags()
    for tag in tags:
        symbols.append((CHILDREN, tag))
        symbols.append((DESCENDANTS, tag))
    for tag in tags:
        for pos in tree.positions_for_tag(tag):
            symbols.append((PCHILDREN, tag, pos))
    return symbols


def _apply_symbol(symbol: Symbol, nodes: Sequence[Node]) -> List[Node]:
    """Apply one instantiated operator to an ordered set of nodes."""
    kind = symbol[0]
    if kind == CHILDREN:
        tag = symbol[1]
        return _dedupe(c for n in nodes for c in n.children_with_tag(tag))
    if kind == PCHILDREN:
        tag, pos = symbol[1], symbol[2]
        out: List[Node] = []
        for n in nodes:
            child = n.child_with(tag, pos)
            if child is not None:
                out.append(child)
        return _dedupe(out)
    if kind == DESCENDANTS:
        tag = symbol[1]
        return _dedupe(d for n in nodes for d in n.descendants_with_tag(tag))
    raise ValueError(f"unknown symbol kind: {kind!r}")


def _covers_column(nodes: Sequence[Node], column_values: Sequence[Scalar]) -> bool:
    """Rule (5): does the node set cover every value of the output column?"""
    for value in column_values:
        if not any(compare_values(node.data, Op.EQ, value) for node in nodes):
            return False
    return True


def construct_dfa(
    tree: HDT,
    column_values: Sequence[Scalar],
    config: SynthesisConfig = DEFAULT_CONFIG,
) -> DFA:
    """Build the DFA of Figure 9 for one (tree, column) example.

    States are frozensets of node uids; the uid → node mapping is recovered
    through the tree.  Exploration is breadth-first from ``{root}`` and bounded
    by ``config.max_dfa_states`` and ``config.max_column_program_length``.
    Transitions whose result set is empty are pruned (an empty set can never
    cover a non-empty column, and keeping them would blow up the automaton).
    """
    alphabet = _alphabet_for_tree(tree)
    uid_to_node = {n.uid: n for n in tree.nodes()}

    initial: FrozenSet[int] = frozenset({tree.root.uid})
    states: Set[FrozenSet[int]] = {initial}
    transitions: Dict[Tuple[FrozenSet[int], Symbol], FrozenSet[int]] = {}
    accepting: Set[FrozenSet[int]] = set()

    def nodes_of(state: FrozenSet[int]) -> List[Node]:
        return sorted((uid_to_node[uid] for uid in state), key=lambda n: n.uid)

    if _covers_column(nodes_of(initial), column_values):
        accepting.add(initial)

    frontier: deque = deque([(initial, 0)])
    while frontier:
        state, depth = frontier.popleft()
        if depth >= config.max_column_program_length:
            continue
        current_nodes = nodes_of(state)
        for symbol in alphabet:
            result = _apply_symbol(symbol, current_nodes)
            if not result:
                continue
            new_state = frozenset(n.uid for n in result)
            if new_state not in states:
                if len(states) >= config.max_dfa_states:
                    continue
                states.add(new_state)
                if _covers_column(result, column_values):
                    accepting.add(new_state)
                frontier.append((new_state, depth + 1))
            transitions[(state, symbol)] = new_state

    dfa = DFA(
        states=states,
        alphabet=set(alphabet),
        transitions=transitions,
        initial=initial,
        accepting=accepting,
    )
    return dfa.prune()


def word_to_extractor(word: Sequence[Symbol]) -> ColumnExtractor:
    """Convert a DFA word into the corresponding column extractor AST."""
    extractor: ColumnExtractor = Var()
    for symbol in word:
        kind = symbol[0]
        if kind == CHILDREN:
            extractor = Children(extractor, symbol[1])
        elif kind == PCHILDREN:
            extractor = PChildren(extractor, symbol[1], symbol[2])
        elif kind == DESCENDANTS:
            extractor = Descendants(extractor, symbol[1])
        else:
            raise ValueError(f"unknown symbol kind: {kind!r}")
    return extractor


def extractor_to_word(extractor: ColumnExtractor) -> Tuple[Symbol, ...]:
    """Inverse of :func:`word_to_extractor` (useful for tests and debugging)."""
    symbols: List[Symbol] = []
    current = extractor
    while not isinstance(current, Var):
        if isinstance(current, Children):
            symbols.append((CHILDREN, current.tag))
        elif isinstance(current, PChildren):
            symbols.append((PCHILDREN, current.tag, current.pos))
        elif isinstance(current, Descendants):
            symbols.append((DESCENDANTS, current.tag))
        else:
            raise ValueError(f"unknown column extractor: {current!r}")
        current = current.source
    symbols.reverse()
    return tuple(symbols)


def learn_column_extractors_eager(
    examples: Sequence[Tuple[HDT, Sequence[Scalar]]],
    config: SynthesisConfig = DEFAULT_CONFIG,
) -> List[ColumnExtractor]:
    """The seed algorithm: eager per-example DFAs + product intersection.

    Kept as the reference implementation — the equivalence property tests and
    the ``BENCH_PR3`` seed-vs-vectorized comparison run it against the lazy
    engine.
    """
    if not examples:
        raise ValueError("at least one example is required")

    automata = [construct_dfa(tree, column, config) for tree, column in examples]
    combined = intersect_all(automata)
    if combined.is_empty():
        raise ColumnLearningError(
            "no column extraction program is consistent with all examples"
        )
    words = combined.enumerate_words(
        max_length=config.max_column_program_length,
        max_words=config.max_column_programs,
    )
    if not words:
        raise ColumnLearningError(
            "no column extraction program found within the length bound"
        )
    extractors = [word_to_extractor(word) for word in words]
    extractors.sort(key=lambda e: (e.size(), repr(e)))
    return extractors


class TreeAutomaton:
    """The interned node-set transition graph of one tree, built on demand.

    Transitions do not depend on the output column — only *acceptance* does —
    so one automaton per example tree is shared by every column of every table
    of a migration (it lives in the :class:`SynthesisContext`): each
    ``(state, symbol)`` expansion runs at most once per tree across the whole
    synthesis run.

    States are integer ids of interned node-uid frozensets; the initial state
    is ``{root}``.  ``children``/``descendants`` steps answer from the tree's
    :class:`~repro.hdt.tree.TagIndex` instead of re-walking the document.
    Transitions with an empty result are dead (mirroring the eager
    construction, which prunes them), and interning stops at ``max_states``,
    the same safety cap the eager builder applies per example — though here
    the budget covers the whole tree (shared across columns) and fills in
    demand order, so once the cap binds, results may diverge from the eager
    engine's equally-truncated search (see the module docstring).
    """

    def __init__(self, tree: HDT, max_states: int, alphabet: Sequence[Tuple]) -> None:
        self._index = tree.tag_index()
        self._max_states = max_states
        self._alphabet = alphabet
        self._intern: Dict[FrozenSet[int], int] = {}
        self._sets: List[FrozenSet[int]] = []
        self._nodes: List[List[Node]] = []
        self._steps: Dict[Tuple[int, Tuple], Optional[int]] = {}
        self._out_edges: Dict[int, List[Tuple[Tuple, int]]] = {}
        self.initial = self._intern_state([tree.root])

    def _intern_state(self, nodes: List[Node]) -> Optional[int]:
        uids = frozenset(n.uid for n in nodes)
        state = self._intern.get(uids)
        if state is not None:
            return state
        if len(self._sets) >= self._max_states:
            return None
        state = len(self._sets)
        self._intern[uids] = state
        self._sets.append(uids)
        self._nodes.append(nodes)
        return state

    def node_set(self, state: int) -> FrozenSet[int]:
        return self._sets[state]

    def step(self, state: int, symbol: Tuple) -> Optional[int]:
        key = (state, symbol)
        hit = self._steps.get(key, _STEP_MISS)
        if hit is not _STEP_MISS:
            return hit
        nodes = self._nodes[state]
        kind = symbol[0]
        index = self._index
        if kind == CHILDREN:
            tag = symbol[1]
            result = _dedupe(c for n in nodes for c in index.children_with_tag(n, tag))
        elif kind == PCHILDREN:
            tag, pos = symbol[1], symbol[2]
            out: List[Node] = []
            for n in nodes:
                child = n.child_with(tag, pos)
                if child is not None:
                    out.append(child)
            result = _dedupe(out)
        elif kind == DESCENDANTS:
            tag = symbol[1]
            result = _dedupe(d for n in nodes for d in index.descendants_with_tag(n, tag))
        else:  # pragma: no cover - alphabet only contains the three operators
            raise ValueError(f"unknown symbol kind: {kind!r}")
        dst = self._intern_state(result) if result else None
        self._steps[key] = dst
        return dst

    def successors(self, state: int) -> List[Tuple[Tuple, int]]:
        """Live out-edges of a state over the tree's full alphabet, cached.

        Only valid when the enumeration's alphabet is the whole per-tree
        alphabet — i.e. single-example products, where the product alphabet
        intersection is trivial.  The edge order follows the repr-sorted
        alphabet, matching the eager enumeration's out-edge sort.
        """
        edges = self._out_edges.get(state)
        if edges is None:
            step = self.step
            edges = []
            for symbol in self._alphabet:
                dst = step(state, symbol)
                if dst is not None:
                    edges.append((symbol, dst))
            self._out_edges[state] = edges
        return edges


_STEP_MISS = object()


class _LazyExampleDFA:
    """One (tree, column) example: the tree's shared automaton plus the
    column-specific acceptance predicate (rule (5))."""

    def __init__(
        self,
        tree: HDT,
        column_values: Sequence[Scalar],
        config: SynthesisConfig,
        context: SynthesisContext,
    ) -> None:
        facts = context.facts(tree)
        automaton = facts.automaton
        if automaton is None:
            automaton = TreeAutomaton(tree, config.max_dfa_states, facts.alphabet)
            facts.automaton = automaton
        self._automaton = automaton
        self.initial = automaton.initial
        self.step = automaton.step
        self.successors = automaton.successors
        """Full-alphabet out-edges — usable by the product enumeration only
        for single-example tasks (see :meth:`TreeAutomaton.successors`)."""
        # Equality classes for rule (5): the state covers the column iff it
        # intersects every value's uid set.  Deduplicate the sets so repeated
        # column values cost one check; an empty set (value absent from the
        # document) makes every state rejecting, exactly like the eager check.
        seen_sets: Set[FrozenSet[int]] = set()
        self._value_sets: List[FrozenSet[int]] = []
        for value in column_values:
            uids = facts.uids_for_value(value)
            if uids in seen_sets:
                continue
            seen_sets.add(uids)
            self._value_sets.append(uids)
        self._accepting: Dict[int, bool] = {}

    def is_accepting(self, state: int) -> bool:
        hit = self._accepting.get(state)
        if hit is None:
            uids = self._automaton.node_set(state)
            hit = all(not value_set.isdisjoint(uids) for value_set in self._value_sets)
            self._accepting[state] = hit
        return hit


def learn_column_extractors_lazy(
    examples: Sequence[Tuple[HDT, Sequence[Scalar]]],
    config: SynthesisConfig = DEFAULT_CONFIG,
    context: Optional[SynthesisContext] = None,
) -> List[ColumnExtractor]:
    """The vectorized engine: lazy product-DFA enumeration over the examples."""
    if not examples:
        raise ValueError("at least one example is required")
    if context is None:
        context = SynthesisContext()

    components = [
        _LazyExampleDFA(tree, column, config, context) for tree, column in examples
    ]
    # Product alphabet: symbols instantiated in every example, in repr order
    # (each per-tree alphabet is repr-sorted; filtering preserves the order).
    alphabet = context.facts(examples[0][0]).alphabet
    for tree, _ in examples[1:]:
        other = set(context.facts(tree).alphabet)
        alphabet = [symbol for symbol in alphabet if symbol in other]

    words = enumerate_product_words(
        components,
        alphabet,
        max_length=config.max_column_program_length,
        max_words=config.max_column_programs,
    )
    if not words:
        # The lazy search cannot tell a genuinely empty intersection from one
        # whose shortest witness exceeds the length bound, so one message
        # covers both (the eager path distinguishes them).
        raise ColumnLearningError(
            "no column extraction program is consistent with all examples "
            "within the configured bounds"
        )
    extractors = [word_to_extractor(word) for word in words]
    extractors.sort(key=lambda e: (e.size(), repr(e)))
    return extractors


def learn_column_extractors(
    examples: Sequence[Tuple[HDT, Sequence[Scalar]]],
    config: SynthesisConfig = DEFAULT_CONFIG,
    context: Optional[SynthesisContext] = None,
) -> List[ColumnExtractor]:
    """Algorithm 2: learn the set of column extractors consistent with all examples.

    Parameters
    ----------
    examples:
        A list of ``(tree, column_values)`` pairs — one entry per input-output
        example, where ``column_values`` is the i-th column of the output table.
    config:
        Search bounds; ``config.vectorized`` selects the lazy product engine
        (default) or the eager seed algorithm.
    context:
        Optional :class:`SynthesisContext` with shared per-tree caches
        (vectorized engine only).

    Returns
    -------
    A list of column extractor ASTs, ordered from simplest (shortest) to most
    complex, at most ``config.max_column_programs`` long.

    Raises
    ------
    ColumnLearningError
        If no column extractor consistent with every example exists within the
        configured bounds.
    """
    if config.vectorized:
        return learn_column_extractors_lazy(examples, config, context)
    return learn_column_extractors_eager(examples, config)
